//! Soft bits → Viterbi → tag frame.
//!
//! Takes the per-symbol phasors from the MRC stage, produces Gray-PSK soft
//! metrics, strips the puncturing, runs the Viterbi decoder (truncated: the
//! tag pads its coded stream to a whole symbol, so the trellis does not end
//! at a known state at the very end — only the in-frame tail is zero), and
//! parses the tag frame.

use crate::mrc::SymbolEstimate;
use backfi_coding::puncture::depuncture_soft;
use backfi_coding::{CodeRate, ViterbiDecoder};
use backfi_dsp::{stats, Complex};
use backfi_tag::config::TagModulation;
use backfi_tag::framer::{FrameError, TagFrame};
use backfi_tag::psk::{bits_to_phase, phase_to_bits, SoftDemapper};

/// Decoded link-quality metrics.
#[derive(Clone, Debug)]
pub struct LinkMetrics {
    /// Decision-directed symbol SNR in dB (the Fig. 11a "measured SNR").
    pub symbol_snr_db: f64,
    /// EVM of the symbol phasors in percent.
    pub evm_percent: f64,
    /// Number of payload symbols combined.
    pub symbols: usize,
}

/// Decode MRC symbol estimates into a tag frame.
///
/// Returns the frame parse result, the raw decoded information bits (for BER
/// experiments against known payloads) and the link metrics.
pub fn decode_symbols(
    estimates: &[SymbolEstimate],
    modulation: TagModulation,
    code_rate: CodeRate,
) -> (Result<Vec<u8>, FrameError>, Vec<bool>, LinkMetrics) {
    let bps = modulation.bits_per_symbol();

    // Soft bits from each phasor.
    let mut llrs = Vec::with_capacity(estimates.len() * bps);
    {
        let _t = backfi_obs::span("decode.soft_bits");
        // One cached planar constellation for the whole burst: `from_polar`
        // runs once per point here instead of once per point·bit·symbol.
        let demap = SoftDemapper::new(modulation, 1.0);
        for est in estimates {
            demap.soft_bits(est.z, est.noise_var, &mut llrs);
        }
    }

    // Trim to a whole puncturing period so depuncturing is consistent.
    let (period_tx, period_mother) = match code_rate {
        CodeRate::Half => (2usize, 2usize),
        CodeRate::TwoThirds => (3, 4),
        CodeRate::ThreeQuarters => (4, 6),
    };
    let usable = llrs.len() - llrs.len() % period_tx;
    let mother_len = usable / period_tx * period_mother;
    let decoded = if mother_len >= 16 {
        let _t = backfi_obs::span("decode.viterbi");
        let soft = depuncture_soft(&llrs[..usable], code_rate, mother_len);
        ViterbiDecoder::ieee80211().decode_soft_truncated(&soft)
    } else {
        Vec::new()
    };

    if backfi_obs::enabled() && !decoded.is_empty() {
        // Viterbi work metric: re-encode the decoded sequence, puncture it
        // back to the transmitted rate, and count where it disagrees with the
        // hard decisions of the received soft bits. Each disagreement is a
        // channel bit the decoder corrected (or, past the FEC's limit,
        // miscorrected) — the pre-FEC error count attribution probe.
        let reenc = backfi_coding::ConvEncoder::ieee80211().encode(&decoded);
        let punct = backfi_coding::puncture::puncture(&reenc, code_rate);
        let corrected = llrs[..usable]
            .iter()
            .zip(&punct)
            .filter(|(l, b)| (**l > 0.0) != **b)
            .count();
        backfi_obs::probe("decode.viterbi_corrected_bits", corrected as f64);
        backfi_obs::probe(
            "decode.pre_fec_ber",
            corrected as f64 / usable.min(punct.len()).max(1) as f64,
        );
    }

    let frame = {
        let _t = backfi_obs::span("decode.crc");
        TagFrame::parse(&decoded)
    };
    if frame.is_err() {
        backfi_obs::counter_add("reader.err.crc", 1);
        backfi_obs::trace::instant("decode.crc_fail");
    }

    // Metrics over the symbols the frame actually occupies: the tag stops
    // reflecting once its frame ends, so trailing symbol slots in the
    // excitation hold only noise and must not pollute the link statistics.
    let span = match &frame {
        Ok(payload) => {
            let info = (3 + payload.len() + 4) * 8 + 6;
            let coded = match code_rate {
                CodeRate::Half => info * 2,
                CodeRate::TwoThirds => info * 2 * 3 / 4,
                CodeRate::ThreeQuarters => info * 2 * 2 / 3,
            };
            coded.div_ceil(bps).min(estimates.len())
        }
        Err(_) => estimates.len(),
    };
    let metrics = link_metrics(&estimates[..span], modulation);

    (frame, decoded, metrics)
}

/// Decision-directed link metrics over a set of symbol phasors.
pub fn link_metrics(estimates: &[SymbolEstimate], modulation: TagModulation) -> LinkMetrics {
    if estimates.is_empty() {
        return LinkMetrics {
            symbol_snr_db: f64::NEG_INFINITY,
            evm_percent: 100.0,
            symbols: 0,
        };
    }
    let rx: Vec<Complex> = estimates.iter().map(|e| e.z).collect();
    let ideal: Vec<Complex> = rx
        .iter()
        .map(|z| {
            let bits = phase_to_bits(modulation, z.arg());
            Complex::exp_j(bits_to_phase(modulation, &bits))
        })
        .collect();
    LinkMetrics {
        symbol_snr_db: stats::snr_from_decisions_db(&rx, &ideal),
        evm_percent: stats::evm_percent(&rx, &ideal),
        symbols: estimates.len(),
    }
}

/// Compare decoded information bits against the expected frame for a known
/// payload; returns the BER over the frame's information bits.
pub fn frame_ber(decoded: &[bool], payload: &[u8]) -> f64 {
    let expect = TagFrame::info_bits(payload);
    backfi_coding::bits::bit_error_rate(&expect, decoded).unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::noise::cgauss;
    use backfi_dsp::rng::SplitMix64;

    /// Build symbol estimates straight from an encoded frame, with optional
    /// phase noise.
    fn estimates_for(
        payload: &[u8],
        modulation: TagModulation,
        code_rate: CodeRate,
        noise: f64,
        seed: u64,
    ) -> Vec<SymbolEstimate> {
        let cfg = backfi_tag::config::TagConfig {
            modulation,
            code_rate,
            symbol_rate_hz: 1e6,
            preamble_us: 32.0,
        };
        let symbols = TagFrame::encode(payload, &cfg);
        let mut rng = SplitMix64::new(seed);
        // decode_symbols consumes the post-pilot data symbols.
        symbols[backfi_tag::framer::PILOT_SYMBOLS..]
            .iter()
            .map(|&idx| {
                let phase = 2.0 * std::f64::consts::PI * idx as f64 / modulation.order() as f64;
                let z = Complex::exp_j(phase) + cgauss(&mut rng, noise);
                SymbolEstimate {
                    z,
                    ref_energy: 1.0,
                    noise_var: noise.max(1e-12),
                }
            })
            .collect()
    }

    #[test]
    fn clean_decode_all_modulations_and_rates() {
        let payload: Vec<u8> = (0..40).map(|i| (i * 7) as u8).collect();
        for m in TagModulation::ALL {
            for r in [CodeRate::Half, CodeRate::TwoThirds] {
                let est = estimates_for(&payload, m, r, 0.0, 1);
                let (frame, _, metrics) = decode_symbols(&est, m, r);
                assert_eq!(frame.unwrap(), payload, "{m:?} {}", r.label());
                assert!(metrics.symbol_snr_db > 60.0);
                assert!(metrics.evm_percent < 1e-3);
            }
        }
    }

    #[test]
    fn decodes_through_moderate_noise() {
        let payload: Vec<u8> = (0..64).map(|i| (i ^ 0x35) as u8).collect();
        // QPSK at ~10 dB symbol SNR with rate-1/2 coding decodes cleanly.
        let est = estimates_for(&payload, TagModulation::Qpsk, CodeRate::Half, 0.1, 2);
        let (frame, decoded, metrics) = decode_symbols(&est, TagModulation::Qpsk, CodeRate::Half);
        assert_eq!(frame.unwrap(), payload);
        assert!(frame_ber(&decoded, &payload) < 1e-9);
        assert!(
            (metrics.symbol_snr_db - 10.0).abs() < 2.0,
            "snr {}",
            metrics.symbol_snr_db
        );
    }

    #[test]
    fn heavy_noise_fails_crc_not_panics() {
        let payload = vec![0x42; 30];
        let est = estimates_for(&payload, TagModulation::Psk16, CodeRate::TwoThirds, 2.0, 3);
        let (frame, decoded, _) = decode_symbols(&est, TagModulation::Psk16, CodeRate::TwoThirds);
        assert!(frame.is_err());
        assert!(frame_ber(&decoded, &payload) > 0.01);
    }

    #[test]
    fn ber_degrades_monotonically_with_noise() {
        let payload: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let mut prev = -1.0;
        for noise in [0.3, 0.8, 2.0] {
            let mut total = 0.0;
            for seed in 0..5 {
                let est = estimates_for(
                    &payload,
                    TagModulation::Qpsk,
                    CodeRate::Half,
                    noise,
                    10 + seed,
                );
                let (_, decoded, _) = decode_symbols(&est, TagModulation::Qpsk, CodeRate::Half);
                total += frame_ber(&decoded, &payload);
            }
            assert!(total >= prev, "noise {noise}: {total} < {prev}");
            prev = total;
        }
    }

    #[test]
    fn empty_input_is_graceful() {
        let (frame, decoded, metrics) = decode_symbols(&[], TagModulation::Bpsk, CodeRate::Half);
        assert!(frame.is_err());
        assert!(decoded.is_empty());
        assert_eq!(metrics.symbols, 0);
    }
}
