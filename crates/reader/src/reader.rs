//! The composed BackFi reader (Fig. 5).
//!
//! `decode()` takes the clean transmitted baseband, the raw received samples
//! and the protocol timeline, then runs: two-stage self-interference
//! cancellation (digital stage trained on the silent window) → `h_fb`
//! estimation from the PN preamble (with timing search) → per-symbol MRC →
//! soft-decision Viterbi → frame parse.

use crate::chanest::estimate_h_fb;
use crate::decode::{decode_symbols, LinkMetrics};
use crate::mrc::{mrc_symbol, zf_symbol, SymbolEstimate};
use crate::timeline::Timeline;
use backfi_dsp::{stats, Complex};
use backfi_sic::{CancellerConfig, SelfInterferenceCanceller};
use backfi_tag::config::TagConfig;
use backfi_tag::framer::FrameError;

/// Reader-side settings.
#[derive(Clone, Copy, Debug)]
pub struct ReaderConfig {
    /// Self-interference canceller settings.
    pub canceller: CancellerConfig,
    /// Taps of the combined forward∗backward channel estimate.
    pub fb_taps: usize,
    /// LS regularization for the channel estimate.
    pub ridge: f64,
    /// Timing search span in ±samples around the nominal preamble start
    /// (searched in 1 µs steps plus zero).
    pub timing_span: usize,
    /// Use the naive zero-forcing combiner instead of MRC (ablation).
    pub use_zero_forcing: bool,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig {
            canceller: CancellerConfig::default(),
            fb_taps: 3,
            ridge: 1e-6,
            timing_span: 40,
            use_zero_forcing: false,
        }
    }
}

/// Why the reader failed to produce symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReaderError {
    /// The digital canceller could not be trained (silent window too short).
    CancellationFailed,
    /// No timing offset yielded a channel estimate.
    ChannelEstimationFailed,
    /// The payload window holds no complete symbol.
    NoSymbols,
}

impl std::fmt::Display for ReaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReaderError::CancellationFailed => "self-interference cancellation failed",
            ReaderError::ChannelEstimationFailed => "forward/backward channel estimation failed",
            ReaderError::NoSymbols => "no complete tag symbols in the payload window",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ReaderError {}

impl ReaderError {
    /// The obs counter attributing this failure to its pipeline stage
    /// (`reader.err.*`); bumped on every error return so CRC-level failure
    /// rates can be decomposed by cause instead of one opaque
    /// `success: false`.
    pub fn obs_counter(&self) -> &'static str {
        match self {
            ReaderError::CancellationFailed => "reader.err.cancellation",
            ReaderError::ChannelEstimationFailed => "reader.err.chanest",
            ReaderError::NoSymbols => "reader.err.no_symbols",
        }
    }
}

/// Count a reader-stage failure and pass the error through (used on every
/// `ReaderError` return path so the attribution counters cannot drift from
/// the error identity).
fn count_err(e: ReaderError) -> ReaderError {
    backfi_obs::counter_add(e.obs_counter(), 1);
    e
}

/// Everything the reader learned from one packet.
#[derive(Clone, Debug)]
pub struct TagDecodeResult {
    /// Parsed tag payload (or why parsing failed — CRC errors etc.).
    pub payload: Result<Vec<u8>, FrameError>,
    /// Raw decoded information bits (for BER measurements).
    pub decoded_bits: Vec<bool>,
    /// Link quality metrics.
    pub metrics: LinkMetrics,
    /// Per-symbol phasors (constellation view).
    pub symbols: Vec<SymbolEstimate>,
    /// Total cancellation achieved, dB.
    pub cancellation_db: f64,
    /// Post-cancellation residual floor, dB (simulator units).
    pub residual_db: f64,
    /// Estimated combined channel.
    pub h_fb: Vec<Complex>,
    /// Timing correction applied, samples.
    pub timing_offset: isize,
}

/// The BackFi AP's backscatter receive path.
#[derive(Clone, Debug)]
pub struct BackscatterReader {
    cfg: ReaderConfig,
}

impl Default for BackscatterReader {
    fn default() -> Self {
        Self::new(ReaderConfig::default())
    }
}

impl BackscatterReader {
    /// Create a reader.
    pub fn new(cfg: ReaderConfig) -> Self {
        BackscatterReader { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ReaderConfig {
        &self.cfg
    }

    /// Decode one tag transmission.
    ///
    /// * `x_clean` — transmitted baseband with TX power applied (the
    ///   canceller's reference tap),
    /// * `y_rx` — received samples (same length; truncate the medium's tail),
    /// * `h_env_view` — the analog canceller's converged view of the
    ///   environment response,
    /// * `timeline` — nominal protocol timeline,
    /// * `tag_cfg` — the tag's modulation/coding/symbol-rate settings.
    pub fn decode(
        &self,
        x_clean: &[Complex],
        y_rx: &[Complex],
        h_env_view: &[Complex],
        timeline: &Timeline,
        tag_cfg: &TagConfig,
    ) -> Result<TagDecodeResult, ReaderError> {
        let branch = self.demodulate(x_clean, y_rx, h_env_view, timeline, tag_cfg)?;
        Ok(self.finish(branch, tag_cfg))
    }

    /// Decode one tag transmission received on several antennas
    /// simultaneously (§7: "multiple antennas at the AP provide additional
    /// diversity combining gain … We can then perform MRC combining for the
    /// signals received across space").
    ///
    /// Each antenna gets its own `(y_rx, h_env_view)` pair; per-antenna
    /// demodulation runs independently (own canceller, own h_f∗h_b estimate,
    /// own timing) and the per-symbol estimates are then maximal-ratio
    /// combined across space, weighted by each branch's reference energy
    /// over its noise floor.
    ///
    /// # Panics
    /// Panics if `antennas` is empty.
    pub fn decode_mimo(
        &self,
        x_clean: &[Complex],
        antennas: &[(&[Complex], &[Complex])],
        timeline: &Timeline,
        tag_cfg: &TagConfig,
    ) -> Result<TagDecodeResult, ReaderError> {
        assert!(!antennas.is_empty(), "need at least one antenna");
        let mut branches = Vec::new();
        for (y_rx, h_env_view) in antennas {
            // A branch may individually fail (deep fade); keep the others.
            if let Ok(b) = self.demodulate(x_clean, y_rx, h_env_view, timeline, tag_cfg) {
                branches.push(b);
            }
        }
        if branches.is_empty() {
            return Err(ReaderError::ChannelEstimationFailed);
        }

        // Spatial MRC: combine per-symbol numerators/denominators. Each
        // branch's SymbolEstimate is z = num/den with noise_var = N0/den, so
        // num = z·den and the optimal weights are den/N0.
        let nsym = branches.iter().map(|b| b.symbols.len()).min().unwrap();
        let mut combined = Vec::with_capacity(nsym);
        for i in 0..nsym {
            let mut num = Complex::ZERO;
            let mut den = 0.0;
            let mut inv_noise_den = 0.0;
            for b in &branches {
                let s = &b.symbols[i];
                let n0 = stats::undb(b.residual_db);
                num += s.z * (s.ref_energy / n0);
                den += s.ref_energy / n0;
                inv_noise_den += s.ref_energy / n0;
            }
            combined.push(SymbolEstimate {
                z: num / den,
                ref_energy: den,
                noise_var: 1.0 / inv_noise_den.max(1e-300),
            });
        }

        // Take the best branch's bookkeeping, replace its symbols.
        let mut best = branches
            .into_iter()
            .max_by(|a, b| a.snr_proxy().partial_cmp(&b.snr_proxy()).unwrap())
            .unwrap();
        best.symbols = combined;
        Ok(self.finish(best, tag_cfg))
    }

    /// Per-antenna front half: cancellation → channel estimation → MRC.
    fn demodulate(
        &self,
        x_clean: &[Complex],
        y_rx: &[Complex],
        h_env_view: &[Complex],
        timeline: &Timeline,
        tag_cfg: &TagConfig,
    ) -> Result<Branch, ReaderError> {
        assert_eq!(x_clean.len(), y_rx.len(), "length mismatch");

        // --- Stage 1+2: self-interference cancellation -----------------
        let rep = {
            let _t = backfi_obs::span("reader.sic");
            let canceller = SelfInterferenceCanceller::new(self.cfg.canceller, h_env_view);
            canceller
                .process(x_clean, y_rx, timeline.silent.clone())
                .ok_or_else(|| count_err(ReaderError::CancellationFailed))?
        };
        backfi_obs::probe("reader.cancellation_db", rep.cancellation_db);
        backfi_obs::probe("reader.residual_db", rep.residual_db);
        let y = rep.samples;
        let noise_power = stats::undb(rep.residual_db);

        // --- Stage 3: h_fb estimation with timing search ----------------
        let est = {
            let _t = backfi_obs::span("reader.chanest");
            let mut search: Vec<isize> = vec![0];
            let mut off = 20isize;
            while off <= self.cfg.timing_span as isize {
                search.push(off);
                search.push(-off);
                off += 20;
            }
            estimate_h_fb(
                x_clean,
                &y,
                timeline.preamble.start,
                tag_cfg.preamble_us,
                self.cfg.fb_taps,
                &search,
                self.cfg.ridge,
            )
            .ok_or_else(|| count_err(ReaderError::ChannelEstimationFailed))?
        };
        backfi_obs::probe("reader.timing_offset_samples", est.offset as f64);
        let timeline = timeline.shifted(est.offset);

        // --- Stage 4: MRC over every payload symbol ---------------------
        let _t_mrc = backfi_obs::span("reader.mrc");
        let reference = backfi_dsp::fir::filter(&est.h_fb, x_clean);
        let sps = tag_cfg.samples_per_symbol();
        let nsym = timeline.payload.len() / sps;
        if nsym == 0 {
            return Err(count_err(ReaderError::NoSymbols));
        }
        let guard = self.cfg.fb_taps; // §4.3.2's boundary guard
        let mut symbols = Vec::with_capacity(nsym);
        for i in 0..nsym {
            let s = timeline.payload.start + i * sps;
            let e = (s + sps).min(y.len());
            if e <= s + guard {
                break;
            }
            let estimate = if self.cfg.use_zero_forcing {
                zf_symbol(&y[s..e], &reference[s..e], guard).map(|z| SymbolEstimate {
                    z,
                    ref_energy: 1.0,
                    noise_var: noise_power,
                })
            } else {
                mrc_symbol(&y[s..e], &reference[s..e], guard, noise_power)
            };
            match estimate {
                Some(v) => symbols.push(v),
                None => break,
            }
        }
        if symbols.len() <= backfi_tag::framer::PILOT_SYMBOLS {
            return Err(count_err(ReaderError::NoSymbols));
        }
        Ok(Branch {
            symbols,
            cancellation_db: rep.cancellation_db,
            residual_db: rep.residual_db,
            h_fb: est.h_fb,
            timing_offset: est.offset,
        })
    }

    /// Shared back half: pilot phase anchor → decision-directed phase
    /// refinement → soft decode → frame parse.
    fn finish(&self, branch: Branch, tag_cfg: &TagConfig) -> TagDecodeResult {
        let _t = backfi_obs::span("reader.decode");
        let Branch {
            symbols,
            cancellation_db,
            residual_db,
            h_fb,
            timing_offset,
        } = branch;
        // The first payload symbol is a known index-0 pilot; derotating by
        // its phase removes any constant phase error the channel estimate
        // picked up (which would otherwise rotate the whole constellation by
        // a step and flip every bit consistently).
        let pilot: Complex = symbols[..backfi_tag::framer::PILOT_SYMBOLS]
            .iter()
            .map(|s| s.z)
            .sum();
        let derot = if pilot.abs() > 0.0 {
            Complex::exp_j(-pilot.arg())
        } else {
            Complex::ONE
        };
        let mut symbols = symbols;
        for s in symbols.iter_mut() {
            s.z *= derot;
        }
        // Second pass: the single pilot is itself noisy, and its phase error
        // rotates every symbol. Refine the common phase decision-directed:
        // slice each symbol, accumulate z·conj(ideal), and derotate by the
        // residual — averaging the phase reference over the whole frame.
        {
            let mut acc = Complex::ZERO;
            for s in symbols.iter() {
                let bits = backfi_tag::psk::phase_to_bits(tag_cfg.modulation, s.z.arg());
                let ideal =
                    Complex::exp_j(backfi_tag::psk::bits_to_phase(tag_cfg.modulation, &bits));
                // Weight by reference energy so noisy symbols count less.
                acc += s.z * ideal.conj() * s.ref_energy;
            }
            if acc.abs() > 0.0 {
                let refine = Complex::exp_j(-acc.arg());
                for s in symbols.iter_mut() {
                    s.z *= refine;
                }
            }
        }
        let data_symbols = &symbols[backfi_tag::framer::PILOT_SYMBOLS..];
        let (payload, decoded_bits, metrics) =
            decode_symbols(data_symbols, tag_cfg.modulation, tag_cfg.code_rate);

        TagDecodeResult {
            payload,
            decoded_bits,
            metrics,
            symbols,
            cancellation_db,
            residual_db,
            h_fb,
            timing_offset,
        }
    }
}

/// One antenna's demodulated view of the packet.
struct Branch {
    symbols: Vec<SymbolEstimate>,
    cancellation_db: f64,
    residual_db: f64,
    h_fb: Vec<Complex>,
    timing_offset: isize,
}

impl Branch {
    /// Rough per-branch quality: total reference energy over the noise floor.
    fn snr_proxy(&self) -> f64 {
        let e: f64 = self.symbols.iter().map(|s| s.ref_energy).sum();
        e / stats::undb(self.residual_db).max(1e-300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_chan::budget::LinkBudget;
    use backfi_chan::medium::{BackscatterMedium, MediumConfig};
    use backfi_dsp::noise::cgauss_vec;
    use backfi_dsp::rng::SplitMix64;
    use backfi_tag::Tag;

    /// Full closed-loop: synthetic wideband excitation with an embedded
    /// wake-up preamble, a real Tag state machine, the real medium, and the
    /// reader. (End-to-end with real WiFi excitation lives in `backfi-core`.)
    fn run_link(
        distance: f64,
        tag_cfg: TagConfig,
        seed: u64,
    ) -> (Result<TagDecodeResult, ReaderError>, Vec<u8>) {
        use backfi_tag::detector::SAMPLES_PER_BIT;

        // Excitation: idle, wake-up pulses for tag 1, then wideband "data".
        let mut rng = SplitMix64::new(seed);
        let mut x = vec![Complex::ZERO; 200];
        for &b in &backfi_coding::prbs::tag_preamble(1) {
            if b {
                x.extend(cgauss_vec(&mut rng, SAMPLES_PER_BIT, 1.0));
            } else {
                x.extend(std::iter::repeat_n(Complex::ZERO, SAMPLES_PER_BIT));
            }
        }
        let detect_end = x.len();
        let data_samples = backfi_dsp::us_to_samples(1500.0);
        x.extend(cgauss_vec(&mut rng, data_samples, 1.0));
        let excitation_end = x.len();

        // Tag reacts to the forward signal.
        let budget = LinkBudget::default();
        let mut medium = BackscatterMedium::new(budget, MediumConfig::at_distance(distance), seed);
        let a = budget.tx_power().sqrt();
        let incident: Vec<Complex> =
            backfi_dsp::fir::filter(&medium.h_f, &x.iter().map(|&v| v * a).collect::<Vec<_>>());
        let mut tag = Tag::new(1, tag_cfg);
        // Size the payload to fit the excitation at this configuration.
        let airtime_us = backfi_dsp::samples_to_us(excitation_end - detect_end);
        let max = backfi_tag::framer::TagFrame::max_payload_bytes(&tag_cfg, airtime_us);
        let len = max.clamp(4, 48);
        let data: Vec<u8> = (0..len).map(|i| (i * 11 + 3) as u8).collect();
        tag.load_data(&data);
        let gamma = tag.react(&incident);

        // Propagate and decode.
        let y_full = medium.propagate(&x, &gamma);
        let x_scaled: Vec<Complex> = x.iter().map(|&v| v * a).collect();
        let y = &y_full[..x.len()];
        let timeline = Timeline::nominal(detect_end, excitation_end, &tag_cfg);
        let reader = BackscatterReader::default();
        (
            reader.decode(&x_scaled, y, &medium.h_env, &timeline, &tag_cfg),
            data,
        )
    }

    #[test]
    fn decodes_qpsk_at_one_meter() {
        let cfg = TagConfig::default(); // QPSK 1/2 @ 1 MSPS
        let (res, data) = run_link(1.0, cfg, 42);
        let res = res.expect("decode");
        assert_eq!(res.payload.as_ref().unwrap(), &data);
        assert!(
            res.cancellation_db > 50.0,
            "cancellation {}",
            res.cancellation_db
        );
        assert!(
            res.metrics.symbol_snr_db > 5.0,
            "snr {}",
            res.metrics.symbol_snr_db
        );
    }

    #[test]
    fn decodes_bpsk_at_three_meters() {
        let cfg = TagConfig {
            modulation: backfi_tag::TagModulation::Bpsk,
            code_rate: backfi_coding::CodeRate::Half,
            symbol_rate_hz: 500e3,
            preamble_us: 32.0,
        };
        let (res, data) = run_link(3.0, cfg, 7);
        let res = res.expect("decode");
        assert_eq!(res.payload.as_ref().unwrap(), &data);
    }

    #[test]
    fn fails_gracefully_at_extreme_range() {
        let cfg = TagConfig {
            modulation: backfi_tag::TagModulation::Psk16,
            code_rate: backfi_coding::CodeRate::TwoThirds,
            symbol_rate_hz: 2.5e6,
            preamble_us: 32.0,
        };
        // 16PSK 2/3 at 2.5 MSPS at 6 m should not decode — but must not
        // panic either: CRC failure or reader error are both acceptable.
        let (res, data) = run_link(6.0, cfg, 9);
        if let Ok(r) = res {
            assert_ne!(r.payload.ok(), Some(data))
        }
    }

    #[test]
    fn snr_decreases_with_distance() {
        // Averaged over ≥20 seeds so a single lucky/unlucky fading draw
        // cannot flip the comparison (ROADMAP statistical-test convention).
        let cfg = TagConfig::default();
        let mean_snr_at = |d: f64| {
            let mut total = 0.0;
            let mut n = 0usize;
            for seed in 0..20u64 {
                let (res, _) = run_link(d, cfg, 123 + seed);
                if let Ok(r) = res {
                    total += r.metrics.symbol_snr_db;
                    n += 1;
                }
            }
            assert!(n >= 15, "{d} m: too few successful decodes ({n}/20)");
            total / n as f64
        };
        let near = mean_snr_at(0.5);
        let far = mean_snr_at(4.0);
        assert!(
            near > far + 3.0,
            "0.5 m mean snr {near} should exceed 4 m mean snr {far}"
        );
    }

    /// Force each `ReaderError` in turn and check the failure lands on the
    /// right `reader.err.*` attribution counter (the obs layer's per-stage
    /// breakdown of CRC-level failures).
    #[test]
    fn failure_modes_increment_their_stage_counter() {
        use crate::timeline::Timeline;

        backfi_obs::enable();
        let mut rng = SplitMix64::new(77);
        let n = 3000usize;
        let x: Vec<Complex> = cgauss_vec(&mut rng, n, 1.0);
        let h_env = vec![Complex::new(0.05, -0.02), Complex::new(0.004, 0.001)];
        let mut y = backfi_dsp::fir::filter(&h_env, &x);
        backfi_dsp::noise::add_noise(&mut rng, &mut y, 1e-10);
        let tag_cfg = TagConfig::default();
        let reader = BackscatterReader::default();

        let force = |timeline: Timeline, want: ReaderError| {
            let before = backfi_obs::counter_value(want.obs_counter());
            let got = reader
                .decode(&x, &y, &h_env, &timeline, &tag_cfg)
                .expect_err("decode must fail");
            assert_eq!(got, want, "wrong failure stage");
            let after = backfi_obs::counter_value(want.obs_counter());
            assert!(
                after > before,
                "{} did not increment ({before} -> {after})",
                want.obs_counter()
            );
        };

        // Silent window shorter than the digital canceller's 28 taps: the
        // digital stage cannot train.
        force(
            Timeline {
                silent: 0..10,
                preamble: 10..650,
                payload: 650..n,
            },
            ReaderError::CancellationFailed,
        );
        // Preamble window escapes the buffer at every searched offset: no
        // candidate yields a solvable LS system.
        force(
            Timeline {
                silent: 0..400,
                preamble: 2900..2950,
                payload: 2950..n,
            },
            ReaderError::ChannelEstimationFailed,
        );
        // Payload window shorter than one symbol (20 samples at 1 MSPS):
        // chanest succeeds on the (noise-only) preamble, MRC finds nothing.
        force(
            Timeline {
                silent: 0..400,
                preamble: 400..1040,
                payload: 1040..1050,
            },
            ReaderError::NoSymbols,
        );
    }
}
