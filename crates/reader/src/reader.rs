//! The composed BackFi reader (Fig. 5).
//!
//! `decode()` takes the clean transmitted baseband, the raw received samples
//! and the protocol timeline, then runs: two-stage self-interference
//! cancellation (digital stage trained on the silent window) → `h_fb`
//! estimation from the PN preamble (with timing search) → per-symbol MRC →
//! soft-decision Viterbi → frame parse.

use crate::chanest::estimate_h_fb;
use crate::decode::{decode_symbols, LinkMetrics};
use crate::mrc::{mrc_symbol, zf_symbol, SymbolEstimate};
use crate::timeline::Timeline;
use backfi_dsp::{stats, Complex};
use backfi_sic::{CancellerConfig, SelfInterferenceCanceller};
use backfi_tag::config::TagConfig;
use backfi_tag::framer::FrameError;

/// Reader-side settings.
#[derive(Clone, Copy, Debug)]
pub struct ReaderConfig {
    /// Self-interference canceller settings.
    pub canceller: CancellerConfig,
    /// Taps of the combined forward∗backward channel estimate.
    pub fb_taps: usize,
    /// LS regularization for the channel estimate.
    pub ridge: f64,
    /// Timing search span in ±samples around the nominal preamble start
    /// (searched in 1 µs steps plus zero).
    pub timing_span: usize,
    /// Use the naive zero-forcing combiner instead of MRC (ablation).
    pub use_zero_forcing: bool,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig {
            canceller: CancellerConfig::default(),
            fb_taps: 3,
            ridge: 1e-6,
            timing_span: 40,
            use_zero_forcing: false,
        }
    }
}

/// Why the reader failed to produce symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReaderError {
    /// The digital canceller could not be trained (silent window too short).
    CancellationFailed,
    /// No timing offset yielded a channel estimate.
    ChannelEstimationFailed,
    /// The payload window holds no complete symbol.
    NoSymbols,
    /// The inputs are unusable: non-finite reference/environment samples, or
    /// a received stream that is mostly non-finite (mirrors the
    /// `linalg::solve` guard, but at the pipeline's front door).
    InvalidInput,
}

impl std::fmt::Display for ReaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReaderError::CancellationFailed => "self-interference cancellation failed",
            ReaderError::ChannelEstimationFailed => "forward/backward channel estimation failed",
            ReaderError::NoSymbols => "no complete tag symbols in the payload window",
            ReaderError::InvalidInput => "non-finite samples in the reader inputs",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ReaderError {}

impl ReaderError {
    /// The obs counter attributing this failure to its pipeline stage
    /// (`reader.err.*`); bumped on every error return so CRC-level failure
    /// rates can be decomposed by cause instead of one opaque
    /// `success: false`.
    pub fn obs_counter(&self) -> &'static str {
        match self {
            ReaderError::CancellationFailed => "reader.err.cancellation",
            ReaderError::ChannelEstimationFailed => "reader.err.chanest",
            ReaderError::NoSymbols => "reader.err.no_symbols",
            ReaderError::InvalidInput => "reader.err.invalid_input",
        }
    }
}

/// Count a reader-stage failure and pass the error through (used on every
/// `ReaderError` return path so the attribution counters cannot drift from
/// the error identity).
fn count_err(e: ReaderError) -> ReaderError {
    backfi_obs::counter_add(e.obs_counter(), 1);
    e
}

/// Everything the reader learned from one packet.
#[derive(Clone, Debug)]
pub struct TagDecodeResult {
    /// Parsed tag payload (or why parsing failed — CRC errors etc.).
    pub payload: Result<Vec<u8>, FrameError>,
    /// Raw decoded information bits (for BER measurements).
    pub decoded_bits: Vec<bool>,
    /// Link quality metrics.
    pub metrics: LinkMetrics,
    /// Per-symbol phasors (constellation view).
    pub symbols: Vec<SymbolEstimate>,
    /// Total cancellation achieved, dB.
    pub cancellation_db: f64,
    /// Post-cancellation residual floor, dB (simulator units).
    pub residual_db: f64,
    /// Estimated combined channel.
    pub h_fb: Vec<Complex>,
    /// Timing correction applied, samples.
    pub timing_offset: isize,
}

/// The BackFi AP's backscatter receive path.
#[derive(Clone, Debug)]
pub struct BackscatterReader {
    cfg: ReaderConfig,
}

impl Default for BackscatterReader {
    fn default() -> Self {
        Self::new(ReaderConfig::default())
    }
}

impl BackscatterReader {
    /// Create a reader.
    pub fn new(cfg: ReaderConfig) -> Self {
        BackscatterReader { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ReaderConfig {
        &self.cfg
    }

    /// Decode one tag transmission.
    ///
    /// * `x_clean` — transmitted baseband with TX power applied (the
    ///   canceller's reference tap),
    /// * `y_rx` — received samples (same length; truncate the medium's tail),
    /// * `h_env_view` — the analog canceller's converged view of the
    ///   environment response,
    /// * `timeline` — nominal protocol timeline,
    /// * `tag_cfg` — the tag's modulation/coding/symbol-rate settings.
    pub fn decode(
        &self,
        x_clean: &[Complex],
        y_rx: &[Complex],
        h_env_view: &[Complex],
        timeline: &Timeline,
        tag_cfg: &TagConfig,
    ) -> Result<TagDecodeResult, ReaderError> {
        let branch = self.demodulate(x_clean, y_rx, h_env_view, timeline, tag_cfg)?;
        Ok(self.finish(branch, tag_cfg))
    }

    /// Decode one tag transmission received on several antennas
    /// simultaneously (§7: "multiple antennas at the AP provide additional
    /// diversity combining gain … We can then perform MRC combining for the
    /// signals received across space").
    ///
    /// Each antenna gets its own `(y_rx, h_env_view)` pair; per-antenna
    /// demodulation runs independently (own canceller, own h_f∗h_b estimate,
    /// own timing) and the per-symbol estimates are then maximal-ratio
    /// combined across space, weighted by each branch's reference energy
    /// over its noise floor.
    ///
    /// # Panics
    /// Panics if `antennas` is empty.
    pub fn decode_mimo(
        &self,
        x_clean: &[Complex],
        antennas: &[(&[Complex], &[Complex])],
        timeline: &Timeline,
        tag_cfg: &TagConfig,
    ) -> Result<TagDecodeResult, ReaderError> {
        assert!(!antennas.is_empty(), "need at least one antenna");
        let mut branches = Vec::new();
        for (y_rx, h_env_view) in antennas {
            // A branch may individually fail (deep fade); keep the others.
            if let Ok(b) = self.demodulate(x_clean, y_rx, h_env_view, timeline, tag_cfg) {
                branches.push(b);
            }
        }
        if branches.is_empty() {
            return Err(ReaderError::ChannelEstimationFailed);
        }

        // Spatial MRC: combine per-symbol numerators/denominators. Each
        // branch's SymbolEstimate is z = num/den with noise_var = N0/den, so
        // num = z·den and the optimal weights are den/N0.
        // `branches` was checked non-empty above, but prefer a defined
        // degenerate value over a panic path if that invariant ever shifts.
        let nsym = branches.iter().map(|b| b.symbols.len()).min().unwrap_or(0);
        let mut combined = Vec::with_capacity(nsym);
        for i in 0..nsym {
            let mut num = Complex::ZERO;
            let mut den = 0.0;
            let mut inv_noise_den = 0.0;
            for b in &branches {
                let s = &b.symbols[i];
                let n0 = stats::undb(b.residual_db);
                num += s.z * (s.ref_energy / n0);
                den += s.ref_energy / n0;
                inv_noise_den += s.ref_energy / n0;
            }
            // Every branch erased this symbol ⇒ the combination stays an
            // erasure (0/0 here would send NaN into the soft decoder).
            combined.push(if den > 0.0 {
                SymbolEstimate {
                    z: num / den,
                    ref_energy: den,
                    noise_var: 1.0 / inv_noise_den.max(1e-300),
                }
            } else {
                SymbolEstimate::erasure()
            });
        }

        // Take the best branch's bookkeeping, replace its symbols.
        let mut best = branches
            .into_iter()
            .max_by(|a, b| nan_loses_max(a.snr_proxy(), b.snr_proxy()))
            .ok_or(ReaderError::ChannelEstimationFailed)?;
        best.symbols = combined;
        Ok(self.finish(best, tag_cfg))
    }

    /// Per-antenna front half: cancellation → channel estimation → MRC.
    fn demodulate(
        &self,
        x_clean: &[Complex],
        y_rx: &[Complex],
        h_env_view: &[Complex],
        timeline: &Timeline,
        tag_cfg: &TagConfig,
    ) -> Result<Branch, ReaderError> {
        assert_eq!(x_clean.len(), y_rx.len(), "length mismatch");

        // --- Stage 0: input validation / sanitization -------------------
        // The reader's own reference and the analog canceller's view must be
        // finite — a NaN there poisons every downstream filter silently.
        if x_clean.iter().any(|v| !v.is_finite()) || h_env_view.iter().any(|v| !v.is_finite()) {
            return Err(count_err(ReaderError::InvalidInput));
        }
        // Non-finite *received* samples are a front-end fault the pipeline
        // can ride out: zero them (the AGC/canceller then ignores them) and
        // remember where they were so the affected symbols become erasures.
        // A stream that is mostly garbage is rejected outright.
        let bad_rx: Vec<usize> = y_rx
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_finite())
            .map(|(i, _)| i)
            .collect();
        if bad_rx.len() * 2 > y_rx.len() {
            return Err(count_err(ReaderError::InvalidInput));
        }
        let sanitized: Option<Vec<Complex>> = (!bad_rx.is_empty()).then(|| {
            backfi_obs::counter_add("reader.nonfinite_rx", bad_rx.len() as u64);
            let mut y = y_rx.to_vec();
            for &i in &bad_rx {
                y[i] = Complex::ZERO;
            }
            y
        });
        let y_rx: &[Complex] = sanitized.as_deref().unwrap_or(y_rx);

        // --- Stage 1+2: self-interference cancellation -----------------
        // Degradation ladder rung 1: if the residual diverges towards the
        // end of the silent window (a time-varying effect like residual CFO
        // that the LTI digital filter cannot track, or a transient that
        // corrupted the head of the window), retrain on the trailing half
        // and keep whichever training leaves the cleaner tail.
        let rep = {
            let _t = backfi_obs::span("reader.sic");
            let canceller = SelfInterferenceCanceller::new(self.cfg.canceller, h_env_view);
            match canceller.process(x_clean, y_rx, timeline.silent.clone()) {
                Some(rep) => self
                    .sic_retrain(&canceller, x_clean, y_rx, timeline, &rep)
                    .unwrap_or(rep),
                None => {
                    backfi_obs::counter_add("reader.sic_retrain", 1);
                    let fallback = fallback_window(&timeline.silent);
                    canceller
                        .process(x_clean, y_rx, fallback)
                        .ok_or_else(|| count_err(ReaderError::CancellationFailed))?
                }
            }
        };
        backfi_obs::probe("reader.cancellation_db", rep.cancellation_db);
        backfi_obs::probe("reader.residual_db", rep.residual_db);
        let noise_power = stats::undb(rep.residual_db);

        // Erasure mask: non-finite input positions plus the ADC's *long*
        // clipped runs. Isolated clipped samples (Gaussian tails crossing
        // full scale) keep the seed behavior — only transient-scale runs,
        // which ordinary operation essentially never produces, mark spans.
        const CLIP_RUN_MIN: usize = 16;
        let flag_prefix = {
            let clip: Vec<&std::ops::Range<usize>> = rep
                .clip_ranges
                .iter()
                .filter(|r| r.len() >= CLIP_RUN_MIN)
                .collect();
            if bad_rx.is_empty() && clip.is_empty() {
                None
            } else {
                let mut flags = vec![0u32; y_rx.len() + 1];
                for &i in &bad_rx {
                    flags[i] = 1;
                }
                for r in clip {
                    for f in &mut flags[r.clone()] {
                        *f = 1;
                    }
                }
                // In-place prefix sum: flags[i] = flagged samples in [0, i).
                let mut acc = 0u32;
                for f in flags.iter_mut() {
                    let v = *f;
                    *f = acc;
                    acc += v;
                }
                Some(flags)
            }
        };
        let y = rep.samples;

        // --- Stage 3: h_fb estimation with timing search ----------------
        // Degradation ladder rung 2: when no nominal offset yields an
        // estimate, re-acquire with a 3× wider, finer search before giving
        // up. The clean path never gets here (the nominal search only fails
        // when every candidate window escapes the buffer).
        let est = {
            let _t = backfi_obs::span("reader.chanest");
            let mut search: Vec<isize> = vec![0];
            let mut off = 20isize;
            while off <= self.cfg.timing_span as isize {
                search.push(off);
                search.push(-off);
                off += 20;
            }
            let nominal = estimate_h_fb(
                x_clean,
                &y,
                timeline.preamble.start,
                tag_cfg.preamble_us,
                self.cfg.fb_taps,
                &search,
                self.cfg.ridge,
            );
            nominal
                .or_else(|| {
                    backfi_obs::counter_add("reader.timing_reacquire", 1);
                    let _t = backfi_obs::span("reader.acquire");
                    let span = (self.cfg.timing_span as isize).max(20) * 3;
                    let mut wide: Vec<isize> = vec![0];
                    let mut off = 10isize;
                    while off <= span {
                        wide.push(off);
                        wide.push(-off);
                        off += 10;
                    }
                    estimate_h_fb(
                        x_clean,
                        &y,
                        timeline.preamble.start,
                        tag_cfg.preamble_us,
                        self.cfg.fb_taps,
                        &wide,
                        self.cfg.ridge,
                    )
                })
                .ok_or_else(|| count_err(ReaderError::ChannelEstimationFailed))?
        };
        backfi_obs::probe("reader.timing_offset_samples", est.offset as f64);
        let timeline = timeline.shifted(est.offset);

        // --- Stage 4: MRC over every payload symbol ---------------------
        // Degradation ladder rung 3: symbol windows dominated by flagged
        // (saturated/non-finite) samples become erasures — zero LLRs into
        // the soft Viterbi — instead of confident wrong decisions.
        let _t_mrc = backfi_obs::span("reader.mrc");
        let reference = backfi_dsp::fir::filter(&est.h_fb, x_clean);
        let sps = tag_cfg.samples_per_symbol();
        let nsym = timeline.payload.len() / sps;
        if nsym == 0 {
            return Err(count_err(ReaderError::NoSymbols));
        }
        let guard = self.cfg.fb_taps; // §4.3.2's boundary guard
        let mut symbols = Vec::with_capacity(nsym);
        let mut erased = 0u64;
        for i in 0..nsym {
            let s = timeline.payload.start + i * sps;
            let e = (s + sps).min(y.len());
            if e <= s + guard {
                break;
            }
            if let Some(p) = &flag_prefix {
                let usable = e - (s + guard);
                let flagged = (p[e] - p[s + guard]) as usize;
                if flagged * 4 >= usable {
                    symbols.push(SymbolEstimate::erasure());
                    erased += 1;
                    continue;
                }
            }
            let estimate = if self.cfg.use_zero_forcing {
                zf_symbol(&y[s..e], &reference[s..e], guard).map(|z| SymbolEstimate {
                    z,
                    ref_energy: 1.0,
                    noise_var: noise_power,
                })
            } else {
                mrc_symbol(&y[s..e], &reference[s..e], guard, noise_power)
            };
            match estimate {
                Some(v) if v.z.is_finite() => symbols.push(v),
                Some(_) => {
                    symbols.push(SymbolEstimate::erasure());
                    erased += 1;
                }
                None => break,
            }
        }
        if erased > 0 {
            backfi_obs::counter_add("reader.erasures", erased);
        }
        if symbols.len() <= backfi_tag::framer::PILOT_SYMBOLS {
            return Err(count_err(ReaderError::NoSymbols));
        }
        Ok(Branch {
            symbols,
            cancellation_db: rep.cancellation_db,
            residual_db: rep.residual_db,
            h_fb: est.h_fb,
            timing_offset: est.offset,
        })
    }

    /// SIC divergence check + retrain (degradation ladder rung 1).
    ///
    /// Compares the residual over the *trailing* quarter of the silent
    /// window against the *leading* quarter (after the filter-settling
    /// trim). A hot tail means the whole-window fit is diverging in time —
    /// a transient corrupted part of the window, the stream truncated, or a
    /// time-varying effect is outrunning the LTI filter. Retrain on the
    /// trailing half (closest to the payload) and keep whichever training
    /// leaves the cleaner tail. Returns `None` to keep the original report;
    /// the 6 dB margin is far beyond clean-run fluctuation (≲ 1 dB between
    /// two 80-sample quarters), so the clean path never retrains.
    fn sic_retrain(
        &self,
        canceller: &SelfInterferenceCanceller,
        x_clean: &[Complex],
        y_rx: &[Complex],
        timeline: &Timeline,
        rep: &backfi_sic::CancellerReport,
    ) -> Option<backfi_sic::CancellerReport> {
        const DIVERGENCE_DB: f64 = 6.0;
        let silent = &timeline.silent;
        let q = silent.len() / 4;
        let head_start = silent.start + self.cfg.canceller.digital_taps;
        if q == 0 || head_start + q > silent.end - q {
            return None;
        }
        let tail = (silent.end - q)..silent.end;
        // SIMD-routed power scans: `mean_power_auto` folds in order below
        // `SIMD_MIN_REDUCE`, so quarter-window scans (≲ a few hundred
        // samples) are bitwise identical to `stats::mean_power`.
        let head_db = stats::db(backfi_dsp::simd::mean_power_auto(
            &rep.samples[head_start..head_start + q],
        ));
        let tail_db = stats::db(backfi_dsp::simd::mean_power_auto(
            &rep.samples[tail.clone()],
        ));
        if !tail_db.is_finite() || !head_db.is_finite() || tail_db <= head_db + DIVERGENCE_DB {
            return None;
        }
        backfi_obs::counter_add("reader.sic_retrain", 1);
        let _t = backfi_obs::span("reader.retrain");
        backfi_obs::trace::instant_arg("reader.retrain", "tail_minus_head_db", tail_db - head_db);
        let rep2 = canceller.process(x_clean, y_rx, fallback_window(silent))?;
        let tail2_db = stats::db(backfi_dsp::simd::mean_power_auto(&rep2.samples[tail]));
        (tail2_db < tail_db).then_some(rep2)
    }

    /// Shared back half: pilot phase anchor → decision-directed phase
    /// refinement → soft decode → frame parse.
    fn finish(&self, branch: Branch, tag_cfg: &TagConfig) -> TagDecodeResult {
        let _t = backfi_obs::span("reader.decode");
        let Branch {
            symbols,
            cancellation_db,
            residual_db,
            h_fb,
            timing_offset,
        } = branch;
        // The first payload symbol is a known index-0 pilot; derotating by
        // its phase removes any constant phase error the channel estimate
        // picked up (which would otherwise rotate the whole constellation by
        // a step and flip every bit consistently).
        let pilot: Complex = symbols[..backfi_tag::framer::PILOT_SYMBOLS]
            .iter()
            .map(|s| s.z)
            .sum();
        let derot = if pilot.abs() > 0.0 {
            Complex::exp_j(-pilot.arg())
        } else {
            Complex::ONE
        };
        let mut symbols = symbols;
        for s in symbols.iter_mut() {
            s.z *= derot;
        }
        // Second pass: the single pilot is itself noisy, and its phase error
        // rotates every symbol. Refine the common phase decision-directed:
        // slice each symbol, accumulate z·conj(ideal), and derotate by the
        // residual — averaging the phase reference over the whole frame.
        {
            let mut acc = Complex::ZERO;
            for s in symbols.iter() {
                let bits = backfi_tag::psk::phase_to_bits(tag_cfg.modulation, s.z.arg());
                let ideal =
                    Complex::exp_j(backfi_tag::psk::bits_to_phase(tag_cfg.modulation, &bits));
                // Weight by reference energy so noisy symbols count less.
                acc += s.z * ideal.conj() * s.ref_energy;
            }
            if acc.abs() > 0.0 {
                let refine = Complex::exp_j(-acc.arg());
                for s in symbols.iter_mut() {
                    s.z *= refine;
                }
            }
        }
        let data_symbols = &symbols[backfi_tag::framer::PILOT_SYMBOLS..];
        let (payload, decoded_bits, metrics) =
            decode_symbols(data_symbols, tag_cfg.modulation, tag_cfg.code_rate);

        TagDecodeResult {
            payload,
            decoded_bits,
            metrics,
            symbols,
            cancellation_db,
            residual_db,
            h_fb,
            timing_offset,
        }
    }
}

/// Total order on `f64` where NaN always loses a max selection (sorts below
/// `-∞`); identical to `partial_cmp` for finite values, but panic-free.
fn nan_loses_max(a: f64, b: f64) -> std::cmp::Ordering {
    let key = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
    key(a).total_cmp(&key(b))
}

/// The trailing half of the silent window — the SIC retrain fallback
/// (closest to the payload, and past any transient that corrupted the head).
fn fallback_window(silent: &std::ops::Range<usize>) -> std::ops::Range<usize> {
    (silent.start + silent.len() / 2)..silent.end
}

/// One antenna's demodulated view of the packet.
struct Branch {
    symbols: Vec<SymbolEstimate>,
    cancellation_db: f64,
    residual_db: f64,
    h_fb: Vec<Complex>,
    timing_offset: isize,
}

impl Branch {
    /// Rough per-branch quality: total reference energy over the noise floor.
    fn snr_proxy(&self) -> f64 {
        let e: f64 = self.symbols.iter().map(|s| s.ref_energy).sum();
        e / stats::undb(self.residual_db).max(1e-300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_chan::budget::LinkBudget;
    use backfi_chan::medium::{BackscatterMedium, MediumConfig};
    use backfi_dsp::noise::cgauss_vec;
    use backfi_dsp::rng::SplitMix64;
    use backfi_tag::Tag;

    /// Full closed-loop: synthetic wideband excitation with an embedded
    /// wake-up preamble, a real Tag state machine, the real medium, and the
    /// reader. (End-to-end with real WiFi excitation lives in `backfi-core`.)
    fn run_link(
        distance: f64,
        tag_cfg: TagConfig,
        seed: u64,
    ) -> (Result<TagDecodeResult, ReaderError>, Vec<u8>) {
        run_link_mut(distance, tag_cfg, seed, |_| {})
    }

    /// [`run_link`] with a hook that corrupts the received samples before
    /// they reach the reader (the fault-injection tests' entry point).
    fn run_link_mut(
        distance: f64,
        tag_cfg: TagConfig,
        seed: u64,
        corrupt: impl Fn(&mut [Complex]),
    ) -> (Result<TagDecodeResult, ReaderError>, Vec<u8>) {
        use backfi_tag::detector::SAMPLES_PER_BIT;

        // Excitation: idle, wake-up pulses for tag 1, then wideband "data".
        let mut rng = SplitMix64::new(seed);
        let mut x = vec![Complex::ZERO; 200];
        for &b in &backfi_coding::prbs::tag_preamble(1) {
            if b {
                x.extend(cgauss_vec(&mut rng, SAMPLES_PER_BIT, 1.0));
            } else {
                x.extend(std::iter::repeat_n(Complex::ZERO, SAMPLES_PER_BIT));
            }
        }
        let detect_end = x.len();
        let data_samples = backfi_dsp::us_to_samples(1500.0);
        x.extend(cgauss_vec(&mut rng, data_samples, 1.0));
        let excitation_end = x.len();

        // Tag reacts to the forward signal.
        let budget = LinkBudget::default();
        let mut medium = BackscatterMedium::new(budget, MediumConfig::at_distance(distance), seed);
        let a = budget.tx_power().sqrt();
        let incident: Vec<Complex> =
            backfi_dsp::fir::filter(&medium.h_f, &x.iter().map(|&v| v * a).collect::<Vec<_>>());
        let mut tag = Tag::new(1, tag_cfg);
        // Size the payload to fit the excitation at this configuration.
        let airtime_us = backfi_dsp::samples_to_us(excitation_end - detect_end);
        let max = backfi_tag::framer::TagFrame::max_payload_bytes(&tag_cfg, airtime_us);
        let len = max.clamp(4, 48);
        let data: Vec<u8> = (0..len).map(|i| (i * 11 + 3) as u8).collect();
        tag.load_data(&data);
        let gamma = tag.react(&incident);

        // Propagate and decode.
        let mut y_full = medium.propagate(&x, &gamma);
        let x_scaled: Vec<Complex> = x.iter().map(|&v| v * a).collect();
        corrupt(&mut y_full[..x.len()]);
        let y = &y_full[..x.len()];
        let timeline = Timeline::nominal(detect_end, excitation_end, &tag_cfg);
        let reader = BackscatterReader::default();
        (
            reader.decode(&x_scaled, y, &medium.h_env, &timeline, &tag_cfg),
            data,
        )
    }

    #[test]
    fn decodes_qpsk_at_one_meter() {
        let cfg = TagConfig::default(); // QPSK 1/2 @ 1 MSPS
        let (res, data) = run_link(1.0, cfg, 42);
        let res = res.expect("decode");
        assert_eq!(res.payload.as_ref().unwrap(), &data);
        assert!(
            res.cancellation_db > 50.0,
            "cancellation {}",
            res.cancellation_db
        );
        assert!(
            res.metrics.symbol_snr_db > 5.0,
            "snr {}",
            res.metrics.symbol_snr_db
        );
    }

    #[test]
    fn decodes_bpsk_at_three_meters() {
        let cfg = TagConfig {
            modulation: backfi_tag::TagModulation::Bpsk,
            code_rate: backfi_coding::CodeRate::Half,
            symbol_rate_hz: 500e3,
            preamble_us: 32.0,
        };
        let (res, data) = run_link(3.0, cfg, 7);
        let res = res.expect("decode");
        assert_eq!(res.payload.as_ref().unwrap(), &data);
    }

    #[test]
    fn fails_gracefully_at_extreme_range() {
        let cfg = TagConfig {
            modulation: backfi_tag::TagModulation::Psk16,
            code_rate: backfi_coding::CodeRate::TwoThirds,
            symbol_rate_hz: 2.5e6,
            preamble_us: 32.0,
        };
        // 16PSK 2/3 at 2.5 MSPS at 6 m should not decode — but must not
        // panic either: CRC failure or reader error are both acceptable.
        let (res, data) = run_link(6.0, cfg, 9);
        if let Ok(r) = res {
            assert_ne!(r.payload.ok(), Some(data))
        }
    }

    #[test]
    fn snr_decreases_with_distance() {
        // Averaged over ≥20 seeds so a single lucky/unlucky fading draw
        // cannot flip the comparison (ROADMAP statistical-test convention).
        let cfg = TagConfig::default();
        let mean_snr_at = |d: f64| {
            let mut total = 0.0;
            let mut n = 0usize;
            for seed in 0..20u64 {
                let (res, _) = run_link(d, cfg, 123 + seed);
                if let Ok(r) = res {
                    total += r.metrics.symbol_snr_db;
                    n += 1;
                }
            }
            assert!(n >= 15, "{d} m: too few successful decodes ({n}/20)");
            total / n as f64
        };
        let near = mean_snr_at(0.5);
        let far = mean_snr_at(4.0);
        assert!(
            near > far + 3.0,
            "0.5 m mean snr {near} should exceed 4 m mean snr {far}"
        );
    }

    /// Force each `ReaderError` in turn and check the failure lands on the
    /// right `reader.err.*` attribution counter (the obs layer's per-stage
    /// breakdown of CRC-level failures).
    #[test]
    fn failure_modes_increment_their_stage_counter() {
        use crate::timeline::Timeline;

        backfi_obs::enable();
        let mut rng = SplitMix64::new(77);
        let n = 3000usize;
        let x: Vec<Complex> = cgauss_vec(&mut rng, n, 1.0);
        let h_env = vec![Complex::new(0.05, -0.02), Complex::new(0.004, 0.001)];
        let mut y = backfi_dsp::fir::filter(&h_env, &x);
        backfi_dsp::noise::add_noise(&mut rng, &mut y, 1e-10);
        let tag_cfg = TagConfig::default();
        let reader = BackscatterReader::default();

        let force = |timeline: Timeline, want: ReaderError| {
            let before = backfi_obs::counter_value(want.obs_counter());
            let got = reader
                .decode(&x, &y, &h_env, &timeline, &tag_cfg)
                .expect_err("decode must fail");
            assert_eq!(got, want, "wrong failure stage");
            let after = backfi_obs::counter_value(want.obs_counter());
            assert!(
                after > before,
                "{} did not increment ({before} -> {after})",
                want.obs_counter()
            );
        };

        // Silent window shorter than the digital canceller's 28 taps: the
        // digital stage cannot train.
        force(
            Timeline {
                silent: 0..10,
                preamble: 10..650,
                payload: 650..n,
            },
            ReaderError::CancellationFailed,
        );
        // Preamble window escapes the buffer at every searched offset: no
        // candidate yields a solvable LS system.
        force(
            Timeline {
                silent: 0..400,
                preamble: 2900..2950,
                payload: 2950..n,
            },
            ReaderError::ChannelEstimationFailed,
        );
        // Payload window shorter than one symbol (20 samples at 1 MSPS):
        // chanest succeeds on the (noise-only) preamble, MRC finds nothing.
        force(
            Timeline {
                silent: 0..400,
                preamble: 400..1040,
                payload: 1040..1050,
            },
            ReaderError::NoSymbols,
        );

        // Non-finite reference samples: rejected at the front door.
        let timeline = Timeline {
            silent: 0..400,
            preamble: 400..1040,
            payload: 1040..n,
        };
        let mut x_bad = x.clone();
        x_bad[17] = Complex::new(f64::NAN, 0.0);
        let before = backfi_obs::counter_value(ReaderError::InvalidInput.obs_counter());
        let got = reader
            .decode(&x_bad, &y, &h_env, &timeline, &tag_cfg)
            .expect_err("NaN reference must fail");
        assert_eq!(got, ReaderError::InvalidInput);
        // Non-finite analog-canceller view: same guard.
        let mut h_bad = h_env.clone();
        h_bad[0] = Complex::new(f64::INFINITY, 0.0);
        let got = reader
            .decode(&x, &y, &h_bad, &timeline, &tag_cfg)
            .expect_err("Inf h_env must fail");
        assert_eq!(got, ReaderError::InvalidInput);
        // A mostly-NaN received stream: unusable.
        let mut y_bad = y.clone();
        for v in y_bad.iter_mut().take(2 * n / 3) {
            *v = Complex::new(f64::NAN, f64::NAN);
        }
        let got = reader
            .decode(&x, &y_bad, &h_env, &timeline, &tag_cfg)
            .expect_err("mostly-NaN stream must fail");
        assert_eq!(got, ReaderError::InvalidInput);
        let after = backfi_obs::counter_value(ReaderError::InvalidInput.obs_counter());
        assert_eq!(after, before + 3, "each InvalidInput must be counted");
    }

    /// A handful of NaN samples in the received stream must be survivable:
    /// they are zeroed, their symbols become erasures, and the frame still
    /// decodes through the FEC.
    #[test]
    fn few_nonfinite_rx_samples_decode_gracefully() {
        let cfg = TagConfig::default();
        let (res, data) = run_link_mut(1.0, cfg, 42, |y| {
            let mid = y.len() / 2;
            for v in &mut y[mid..mid + 8] {
                *v = Complex::new(f64::NAN, f64::NAN);
            }
        });
        let res = res.expect("graceful path must produce a decode");
        assert_eq!(
            res.payload.as_ref().expect("CRC should still pass"),
            &data,
            "8 erased samples are well within the FEC's budget"
        );
    }

    /// A strong blocker railing the ADC mid-payload: the clipped span's
    /// symbols become erasures and the decode path must not panic. With a
    /// short transient the FEC usually still recovers the frame.
    #[test]
    fn saturation_transient_is_survivable() {
        backfi_obs::enable();
        let cfg = TagConfig::default();
        let before = backfi_obs::counter_value("reader.erasures");
        let (res, _data) = run_link_mut(1.0, cfg, 42, |y| {
            let mid = y.len() / 2;
            for v in &mut y[mid..mid + 300] {
                *v = Complex::new(1.0, -1.0); // ~60 dB above the SI level
            }
        });
        // Graceful: either a decode attempt (CRC pass or fail) or a typed
        // error — never a panic or a NaN-poisoned result.
        if let Ok(r) = res {
            assert!(
                r.metrics.symbol_snr_db.is_finite() || r.symbols.iter().all(|s| s.is_erasure())
            );
            let after = backfi_obs::counter_value("reader.erasures");
            assert!(after > before, "clipped span should erase symbols");
        }
    }

    /// Corrupting the tail of the silent window forces the SIC divergence
    /// detector to fire and attempt a fallback-window retrain.
    #[test]
    fn sic_divergence_triggers_retrain() {
        use backfi_tag::detector::SAMPLES_PER_BIT;
        backfi_obs::enable();
        let cfg = TagConfig::default();
        // Reconstruct the timeline run_link_mut builds internally.
        let detect_end = 200 + backfi_coding::prbs::tag_preamble(1).len() * SAMPLES_PER_BIT;
        let silent = Timeline::nominal(
            detect_end,
            detect_end + backfi_dsp::us_to_samples(1500.0),
            &cfg,
        )
        .silent;
        let before = backfi_obs::counter_value("reader.sic_retrain");
        let (res, _data) = run_link_mut(1.0, cfg, 42, |y| {
            let q = silent.len() / 4;
            for v in &mut y[silent.end - q..silent.end] {
                *v += Complex::new(0.5, 0.5); // blocker burst in the tail
            }
        });
        let after = backfi_obs::counter_value("reader.sic_retrain");
        assert!(after > before, "divergence detector should have fired");
        // Graceful ladder: a typed result either way, no panic.
        let _ = res;
    }
}
