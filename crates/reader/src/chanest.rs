//! Combined forward∗backward channel estimation (§4.3.1).
//!
//! During the tag's PN preamble the received (post-cancellation) signal is
//! `y[n] = ((x ∗ h_f)·c) ∗ h_b ≈ ((x·c) ∗ h_fb)[n]`, exact whenever the whole
//! `h_fb` history of sample `n` lies inside one PN chip. We therefore build
//! the reference `u = x·c`, mask out chip-transition samples, and solve
//! regularized least squares for `h_fb` — trying a handful of timing offsets
//! (the tag's comparator quantizes its timeline to 1 µs) and keeping the one
//! with the smallest residual.

use backfi_dsp::us_to_samples;
use backfi_dsp::Complex;
use backfi_sic::estimator::{estimate_fir_masked, residual_power};
use backfi_tag::framer::{TagFrame, PREAMBLE_CHIP_US};

/// Result of channel estimation.
#[derive(Clone, Debug)]
pub struct ChannelEstimate {
    /// Estimated combined channel `h_f ∗ h_b`.
    pub h_fb: Vec<Complex>,
    /// Timing correction (samples) applied to the nominal preamble start.
    pub offset: isize,
    /// LS residual power at the chosen offset.
    pub residual: f64,
    /// Total energy of the estimate (≈ received tag power / TX power).
    pub energy: f64,
}

/// Expand the ±1 chip sequence to one value per baseband sample.
pub fn chips_per_sample(preamble_us: f64) -> Vec<f64> {
    let chips = TagFrame::preamble_chips(preamble_us);
    let per = us_to_samples(PREAMBLE_CHIP_US);
    let mut out = Vec::with_capacity(chips.len() * per);
    for c in chips {
        out.extend(std::iter::repeat_n(c, per));
    }
    out
}

/// Estimate `h_fb` from the preamble window.
///
/// * `x` — clean transmitted baseband (with TX scaling), full packet,
/// * `y` — post-cancellation received samples, full packet,
/// * `nominal_start` — where the tag preamble nominally begins,
/// * `preamble_us` — tag preamble duration,
/// * `taps` — `h_fb` length to estimate,
/// * `search` — timing offsets (samples) to try, e.g. `[-20, 0, 20, 40]`,
/// * `ridge` — LS regularization.
///
/// Returns `None` when no offset yields a solvable system.
#[allow(clippy::too_many_arguments)]
pub fn estimate_h_fb(
    x: &[Complex],
    y: &[Complex],
    nominal_start: usize,
    preamble_us: f64,
    taps: usize,
    search: &[isize],
    ridge: f64,
) -> Option<ChannelEstimate> {
    let _t = backfi_obs::span("chanest.estimate_h_fb");
    let chips = chips_per_sample(preamble_us);
    let per_chip = us_to_samples(PREAMBLE_CHIP_US);
    let n = chips.len();

    let mut best: Option<ChannelEstimate> = None;
    for &off in search {
        let start = nominal_start as isize + off;
        if start < 0 {
            continue;
        }
        let start = start as usize;
        if start + n > x.len().min(y.len()) {
            continue;
        }
        // Reference u = x·c over the candidate window.
        let u: Vec<Complex> = (0..n).map(|i| x[start + i].scale(chips[i])).collect();
        let yw = &y[start..start + n];
        // Mask: a sample is valid when its whole taps-history sits in one chip.
        let mask: Vec<bool> = (0..n).map(|i| i % per_chip >= taps - 1).collect();
        let Some(h) = estimate_fir_masked(&u, yw, taps, ridge, &mask) else {
            continue;
        };
        let res = residual_power(&u, yw, &h);
        let energy: f64 = h.iter().map(|t| t.norm_sqr()).sum();
        let cand = ChannelEstimate {
            h_fb: h,
            offset: off,
            residual: res,
            energy,
        };
        match &best {
            Some(b) if b.residual <= cand.residual => {}
            _ => best = Some(cand),
        }
    }
    if let Some(b) = &best {
        backfi_obs::probe("chanest.energy", b.energy);
        backfi_obs::probe("chanest.residual", b.residual);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::fir::filter;
    use backfi_dsp::noise::{add_noise, cgauss_vec};
    use backfi_dsp::rng::SplitMix64;

    /// Simulate the true tag preamble signal: ((x∗h_f)·c)∗h_b.
    fn tag_preamble_signal(
        x: &[Complex],
        start: usize,
        preamble_us: f64,
        h_f: &[Complex],
        h_b: &[Complex],
    ) -> Vec<Complex> {
        let chips = chips_per_sample(preamble_us);
        let z = filter(h_f, x);
        let modded: Vec<Complex> = z
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i >= start && i < start + chips.len() {
                    v.scale(chips[i - start])
                } else {
                    Complex::ZERO
                }
            })
            .collect();
        filter(h_b, &modded)
    }

    #[test]
    fn recovers_cascade_channel() {
        let mut rng = SplitMix64::new(1);
        let x = cgauss_vec(&mut rng, 3000, 1.0);
        let h_f = vec![Complex::new(3e-3, 1e-3), Complex::new(5e-4, -2e-4)];
        let h_b = vec![Complex::new(2e-3, -1e-3), Complex::new(-3e-4, 1e-4)];
        let start = 500;
        let mut y = tag_preamble_signal(&x, start, 32.0, &h_f, &h_b);
        add_noise(&mut rng, &mut y, 1e-14);
        let est = estimate_h_fb(&x, &y, start, 32.0, 4, &[0], 1e-9).unwrap();
        let truth = backfi_dsp::fir::convolve(&h_f, &h_b, backfi_dsp::fir::ConvMode::Full);
        for (g, t) in est.h_fb.iter().zip(&truth) {
            assert!((*g - *t).abs() < 1e-7, "{g:?} vs {t:?}");
        }
        assert_eq!(est.offset, 0);
    }

    #[test]
    fn timing_search_finds_true_offset() {
        let mut rng = SplitMix64::new(2);
        let x = cgauss_vec(&mut rng, 4000, 1.0);
        let h_f = vec![Complex::new(2e-3, 0.0)];
        let h_b = vec![Complex::new(1e-3, 1e-3)];
        let true_start = 540; // 40 samples (2 µs) later than nominal
        let mut y = tag_preamble_signal(&x, true_start, 32.0, &h_f, &h_b);
        add_noise(&mut rng, &mut y, 1e-14);
        let est = estimate_h_fb(&x, &y, 500, 32.0, 3, &[-20, 0, 20, 40, 60], 1e-9).unwrap();
        assert_eq!(est.offset, 40);
    }

    #[test]
    fn longer_preamble_reduces_estimation_error() {
        // The Fig. 8 mechanism: 96 µs preamble → ~3× more observations →
        // lower estimate variance.
        let h_f = vec![Complex::new(1e-4, 5e-5)];
        let h_b = vec![Complex::new(1e-4, -5e-5)];
        let truth = backfi_dsp::fir::convolve(&h_f, &h_b, backfi_dsp::fir::ConvMode::Full);
        let noise = 1e-9;
        let mut errs = Vec::new();
        for &us in &[32.0, 96.0] {
            let mut total = 0.0;
            for seed in 0..24 {
                let mut rng = SplitMix64::new(100 + seed);
                let x = cgauss_vec(&mut rng, 4000, 1.0);
                let mut y = tag_preamble_signal(&x, 300, us, &h_f, &h_b);
                add_noise(&mut rng, &mut y, noise);
                let est = estimate_h_fb(&x, &y, 300, us, 2, &[0], 1e-9).unwrap();
                total += est
                    .h_fb
                    .iter()
                    .zip(&truth)
                    .map(|(g, t)| (*g - *t).norm_sqr())
                    .sum::<f64>();
            }
            errs.push(total);
        }
        assert!(
            errs[1] < errs[0] * 0.6,
            "96 µs should be ~3x better: {errs:?}"
        );
    }

    #[test]
    fn chips_per_sample_expansion() {
        let c = chips_per_sample(32.0);
        assert_eq!(c.len(), 640);
        // 20 equal samples per chip
        for chip in 0..32 {
            let v = c[chip * 20];
            for i in 0..20 {
                assert_eq!(c[chip * 20 + i], v);
            }
        }
    }

    #[test]
    fn returns_none_when_window_escapes_buffer() {
        let x = vec![Complex::ONE; 100];
        let y = vec![Complex::ONE; 100];
        assert!(estimate_h_fb(&x, &y, 90, 32.0, 4, &[0], 1e-9).is_none());
    }
}
