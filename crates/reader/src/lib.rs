//! # backfi-reader
//!
//! The BackFi AP-side backscatter decoder (§4.3 and Fig. 5 of the paper).
//!
//! Pipeline per packet: self-interference cancellation (`backfi-sic`) →
//! combined forward∗backward channel estimation from the tag's PN preamble
//! (with timing search) → per-symbol maximal-ratio combining (Eq. 7) →
//! Gray n-PSK soft demapping → de-puncturing + Viterbi → tag frame parsing.
//!
//! * [`timeline`] — where the protocol phases land in the sample stream,
//! * [`chanest`] — `h_f ∗ h_b` estimation (§4.3.1),
//! * [`mrc`] — the MRC symbol estimator (§4.3.2) plus the naive
//!   zero-forcing alternative used as an ablation,
//! * [`decode`] — soft bits → Viterbi → frame,
//! * [`reader`] — the composed [`reader::BackscatterReader`],
//! * [`rate_adapt`] — the min-REPB rate selection logic of §6.1.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod chanest;
pub mod decode;
pub mod mrc;
pub mod rate_adapt;
pub mod reader;
pub mod timeline;

pub use reader::{BackscatterReader, ReaderConfig, ReaderError, TagDecodeResult};
pub use timeline::Timeline;
