//! Maximal-ratio combining symbol estimation (§4.3.2, Eq. 7).
//!
//! Within one tag symbol the reflection coefficient is a constant `e^{jθc}`,
//! and the received samples are `y[n] = e^{jθc}·ŷ[n] + w[n]` where
//! `ŷ = x ∗ ĥ_fb` is the reconstructed unmodulated backscatter. MRC weights
//! each observation by the reference and normalizes:
//!
//! ```text
//! ẑ = Σ_w y[n]·conj(ŷ[n]) / Σ_w |ŷ[n]|²        (Eq. 7)
//! ```
//!
//! Samples whose `h_fb` history crosses the symbol boundary are skipped
//! ("Sample ignored" in the paper's Fig. 6). The module also implements the
//! naive per-sample division the paper dismisses ("this works poorly because
//! it will also divide the noise term … and in many scenarios amplify it"),
//! used by the ablation bench.

use backfi_dsp::Complex;

/// Per-symbol estimate produced by the combiner.
#[derive(Clone, Copy, Debug)]
pub struct SymbolEstimate {
    /// Combined phasor ẑ (≈ `e^{jθc}` at high SNR).
    pub z: Complex,
    /// Reference energy Σ|ŷ|² used for this symbol (the MRC gain driver).
    pub ref_energy: f64,
    /// Effective noise variance of `z` given the per-sample noise power.
    pub noise_var: f64,
}

impl SymbolEstimate {
    /// A zero-information erasure: `z = 0` with infinite noise variance, so
    /// the soft-bit stage emits exactly-zero LLRs and the Viterbi decoder
    /// treats the symbol as unknown instead of as a confident wrong guess.
    /// Used for symbol windows dominated by saturated or non-finite samples.
    pub fn erasure() -> SymbolEstimate {
        SymbolEstimate {
            z: Complex::ZERO,
            ref_energy: 0.0,
            noise_var: f64::INFINITY,
        }
    }

    /// Whether this estimate is an [`SymbolEstimate::erasure`] placeholder.
    pub fn is_erasure(&self) -> bool {
        self.ref_energy == 0.0 && self.noise_var.is_infinite()
    }
}

/// MRC-combine one symbol window.
///
/// * `y` — received (cancelled) samples of the symbol window,
/// * `reference` — `x ∗ ĥ_fb` over the same window,
/// * `guard` — samples to skip at the window start (channel transient from
///   the previous symbol) — the trailing boundary is handled by the next
///   symbol's guard,
/// * `noise_power` — per-sample noise power estimate.
///
/// Returns `None` for a degenerate window (no usable samples or zero
/// reference energy).
pub fn mrc_symbol(
    y: &[Complex],
    reference: &[Complex],
    guard: usize,
    noise_power: f64,
) -> Option<SymbolEstimate> {
    assert_eq!(y.len(), reference.len(), "window length mismatch");
    if guard >= y.len() {
        return None;
    }
    // Symbol windows are ≲ 80 samples — far below `SIMD_MIN_REDUCE` — so the
    // `_auto` reduction always takes the ordered path and this is bit-exact
    // with [`mrc_symbol_direct`]'s accumulation loop.
    let (num, den) = backfi_dsp::simd::dot_conj_energy_auto(&y[guard..], &reference[guard..]);
    if den <= 0.0 {
        return None;
    }
    Some(SymbolEstimate {
        z: num / den,
        ref_energy: den,
        noise_var: noise_power / den,
    })
}

/// Reference form of [`mrc_symbol`]: the original explicit accumulation
/// loop. Pinned against the dispatched path by the `_equiv` test.
pub fn mrc_symbol_direct(
    y: &[Complex],
    reference: &[Complex],
    guard: usize,
    noise_power: f64,
) -> Option<SymbolEstimate> {
    assert_eq!(y.len(), reference.len(), "window length mismatch");
    if guard >= y.len() {
        return None;
    }
    let mut num = Complex::ZERO;
    let mut den = 0.0;
    for i in guard..y.len() {
        num += y[i] * reference[i].conj();
        den += reference[i].norm_sqr();
    }
    if den <= 0.0 {
        return None;
    }
    Some(SymbolEstimate {
        z: num / den,
        ref_energy: den,
        noise_var: noise_power / den,
    })
}

/// The naive zero-forcing alternative: average of per-sample `y/ŷ`.
/// Amplifies noise wherever the OFDM reference passes near zero.
pub fn zf_symbol(y: &[Complex], reference: &[Complex], guard: usize) -> Option<Complex> {
    assert_eq!(y.len(), reference.len(), "window length mismatch");
    if guard >= y.len() {
        return None;
    }
    let mut acc = Complex::ZERO;
    let mut cnt = 0usize;
    for i in guard..y.len() {
        if reference[i].norm_sqr() > 0.0 {
            acc += y[i] / reference[i];
            cnt += 1;
        }
    }
    if cnt == 0 {
        None
    } else {
        Some(acc / cnt as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::noise::{cgauss, cgauss_vec};
    use backfi_dsp::rng::SplitMix64;
    use backfi_dsp::stats;

    #[test]
    fn mrc_equiv_direct() {
        let mut rng = SplitMix64::new(77);
        for (n, guard) in [(80usize, 16usize), (40, 4), (33, 0), (8, 7)] {
            let mut y = cgauss_vec(&mut rng, n, 1.0);
            let reference = cgauss_vec(&mut rng, n, 1.0);
            // Hostile lanes: the dispatched path must propagate non-finite
            // samples exactly like the reference loop.
            if n >= 8 {
                y[1].re = f64::NAN;
                y[3].im = f64::INFINITY;
                y[5] = Complex::ZERO;
            }
            let a = mrc_symbol(&y, &reference, guard, 0.25);
            let b = mrc_symbol_direct(&y, &reference, guard, 0.25);
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    let eq =
                        |x: f64, y: f64| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan());
                    assert!(eq(a.z.re, b.z.re) && eq(a.z.im, b.z.im), "z mismatch n {n}");
                    assert!(eq(a.ref_energy, b.ref_energy), "ref_energy mismatch n {n}");
                    assert!(eq(a.noise_var, b.noise_var), "noise_var mismatch n {n}");
                }
                _ => panic!("Some/None disagreement at n {n}"),
            }
        }
    }

    #[test]
    fn noiseless_recovers_exact_phase() {
        let mut rng = SplitMix64::new(1);
        let reference = cgauss_vec(&mut rng, 40, 1.0);
        let theta = 1.234;
        let y: Vec<Complex> = reference
            .iter()
            .map(|r| *r * Complex::exp_j(theta))
            .collect();
        let est = mrc_symbol(&y, &reference, 4, 0.0).unwrap();
        assert!((est.z.arg() - theta).abs() < 1e-12);
        assert!((est.z.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mrc_noise_variance_model_holds() {
        // var(ẑ) should match noise_power/Σ|ŷ|².
        let mut rng = SplitMix64::new(2);
        let reference = cgauss_vec(&mut rng, 32, 1.0);
        let noise = 0.1;
        let mut errs = Vec::new();
        let mut predicted = 0.0;
        for _ in 0..3000 {
            let y: Vec<Complex> = reference
                .iter()
                .map(|r| *r + cgauss(&mut rng, noise))
                .collect();
            let est = mrc_symbol(&y, &reference, 0, noise).unwrap();
            errs.push((est.z - Complex::ONE).norm_sqr());
            predicted = est.noise_var;
        }
        let measured = stats::mean(&errs);
        assert!(
            (measured / predicted - 1.0).abs() < 0.1,
            "measured {measured:e} predicted {predicted:e}"
        );
    }

    #[test]
    fn longer_windows_reduce_error() {
        // The MRC diversity gain of Fig. 11b: more samples per symbol →
        // lower phase-estimate variance.
        let mut rng = SplitMix64::new(3);
        let noise = 0.5;
        let mut var_by_len = Vec::new();
        for &len in &[8usize, 64] {
            let reference = cgauss_vec(&mut rng, len, 1.0);
            let mut errs = Vec::new();
            for _ in 0..2000 {
                let y: Vec<Complex> = reference
                    .iter()
                    .map(|r| *r + cgauss(&mut rng, noise))
                    .collect();
                let est = mrc_symbol(&y, &reference, 0, noise).unwrap();
                errs.push((est.z - Complex::ONE).norm_sqr());
            }
            var_by_len.push(stats::mean(&errs));
        }
        let ratio = var_by_len[0] / var_by_len[1];
        assert!(ratio > 4.0, "8→64 samples should cut variance ~8x: {ratio}");
    }

    #[test]
    fn mrc_beats_zero_forcing() {
        // §4.3.2's claim: dividing by the reference amplifies noise when the
        // wideband reference fades.
        let mut rng = SplitMix64::new(4);
        let noise = 0.05;
        let mut mrc_err = 0.0;
        let mut zf_err = 0.0;
        for _ in 0..500 {
            let reference = cgauss_vec(&mut rng, 24, 1.0); // OFDM-like: Rayleigh magnitudes
            let y: Vec<Complex> = reference
                .iter()
                .map(|r| *r + cgauss(&mut rng, noise))
                .collect();
            let m = mrc_symbol(&y, &reference, 0, noise).unwrap();
            let z = zf_symbol(&y, &reference, 0).unwrap();
            mrc_err += (m.z - Complex::ONE).norm_sqr();
            zf_err += (z - Complex::ONE).norm_sqr();
        }
        assert!(
            zf_err > mrc_err * 3.0,
            "ZF {zf_err:e} should be much worse than MRC {mrc_err:e}"
        );
    }

    #[test]
    fn guard_skips_corrupted_boundary() {
        let mut rng = SplitMix64::new(5);
        let reference = cgauss_vec(&mut rng, 20, 1.0);
        let mut y: Vec<Complex> = reference.clone();
        // Corrupt the first 3 samples (previous-symbol transient).
        for v in y.iter_mut().take(3) {
            *v = Complex::new(10.0, -10.0);
        }
        let est = mrc_symbol(&y, &reference, 3, 0.0).unwrap();
        assert!((est.z - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn degenerate_windows_return_none() {
        let y = vec![Complex::ONE; 4];
        let r = vec![Complex::ZERO; 4];
        assert!(mrc_symbol(&y, &r, 0, 1.0).is_none());
        assert!(mrc_symbol(&y, &y, 4, 1.0).is_none());
        assert!(zf_symbol(&y, &r, 0).is_none());
    }
}
