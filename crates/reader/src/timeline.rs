//! Protocol timeline bookkeeping (Fig. 4).
//!
//! The reader transmitted the wake-up preamble itself, so it knows — up to
//! the tag's 1 µs comparator quantization and the propagation delay — where
//! the tag's silent period, PN preamble and payload land in its own sample
//! stream. The channel estimator refines this with a small timing search.

use backfi_dsp::us_to_samples;
use backfi_tag::config::TagConfig;
use backfi_tag::framer::SILENT_US;
use std::ops::Range;

/// Sample ranges of the tag protocol phases within the reader's stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Timeline {
    /// Tag silent window (reader trains the digital canceller here).
    pub silent: Range<usize>,
    /// Tag PN preamble window.
    pub preamble: Range<usize>,
    /// Tag payload window (up to the end of the excitation).
    pub payload: Range<usize>,
}

impl Timeline {
    /// Build the nominal timeline.
    ///
    /// * `detect_end` — sample index where the AP's 16-bit wake-up preamble
    ///   ended (the tag detects on its final bit),
    /// * `excitation_end` — last sample of the excitation signal,
    /// * `cfg` — the tag's configuration (for the preamble length).
    ///
    /// # Panics
    /// Panics if the excitation ends before the payload could start.
    pub fn nominal(detect_end: usize, excitation_end: usize, cfg: &TagConfig) -> Timeline {
        let silent_start = detect_end;
        let silent_end = silent_start + us_to_samples(SILENT_US);
        let preamble_end = silent_end + us_to_samples(cfg.preamble_us);
        assert!(
            preamble_end < excitation_end,
            "excitation too short for the tag protocol"
        );
        Timeline {
            silent: silent_start..silent_end,
            preamble: silent_end..preamble_end,
            payload: preamble_end..excitation_end,
        }
    }

    /// Number of whole tag symbols that fit in the payload window.
    pub fn payload_symbols(&self, cfg: &TagConfig) -> usize {
        self.payload.len() / cfg.samples_per_symbol()
    }

    /// Shift the preamble+payload part of the timeline by `offset` samples
    /// (timing-search correction; the silent window is conservative and is
    /// not shifted).
    pub fn shifted(&self, offset: isize) -> Timeline {
        let mv = |r: &Range<usize>| {
            let s = (r.start as isize + offset).max(0) as usize;
            let e = (r.end as isize + offset).max(0) as usize;
            s..e
        };
        Timeline {
            silent: self.silent.clone(),
            preamble: mv(&self.preamble),
            payload: mv(&self.payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_layout() {
        let cfg = TagConfig::default(); // 32 µs preamble
        let t = Timeline::nominal(1000, 50_000, &cfg);
        assert_eq!(t.silent, 1000..1320);
        assert_eq!(t.preamble, 1320..1960);
        assert_eq!(t.payload, 1960..50_000);
    }

    #[test]
    fn payload_symbol_count() {
        let cfg = TagConfig::default(); // 1 MSPS → 20 samples/symbol
        let t = Timeline::nominal(0, 320 + 640 + 1000, &cfg);
        assert_eq!(t.payload_symbols(&cfg), 50);
    }

    #[test]
    fn shifting() {
        let cfg = TagConfig::default();
        let t = Timeline::nominal(100, 10_000, &cfg);
        let s = t.shifted(40);
        assert_eq!(s.preamble.start, t.preamble.start + 40);
        assert_eq!(s.payload.start, t.payload.start + 40);
        assert_eq!(s.silent, t.silent);
        let neg = t.shifted(-20);
        assert_eq!(neg.preamble.start, t.preamble.start - 20);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_tiny_excitation() {
        Timeline::nominal(0, 500, &TagConfig::default());
    }
}
