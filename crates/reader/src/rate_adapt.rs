//! Rate adaptation (§6.1).
//!
//! "The rate adaptation algorithm would always pick the modulation, coding
//! rate and symbol switching rate combination with the lowest REPB since the
//! most precious resource here is energy." Given the set of configurations
//! that decode successfully at the current range, this module implements the
//! paper's two selection policies:
//!
//! * max throughput (Fig. 8's frontier),
//! * min energy-per-bit at a target throughput (Figs. 9/10).

use backfi_tag::config::TagConfig;
use backfi_tag::energy::repb;

/// Total order where NaN loses a "bigger is better" comparison (sorts below
/// `-∞`). Identical to `partial_cmp` on real values but panic-free: one NaN
/// REPB or throughput must not crash a whole sweep.
fn nan_last_desc_key(v: f64) -> f64 {
    if v.is_nan() {
        f64::NEG_INFINITY
    } else {
        v
    }
}

/// Total order where NaN loses a "smaller is better" comparison (sorts above
/// `+∞`).
fn nan_last_asc_key(v: f64) -> f64 {
    if v.is_nan() {
        f64::INFINITY
    } else {
        v
    }
}

/// A configuration together with whether it decoded at the evaluated link.
#[derive(Clone, Copy, Debug)]
pub struct TrialOutcome {
    /// The evaluated tag configuration.
    pub config: TagConfig,
    /// Whether the reader recovered the frame (CRC clean).
    pub decoded: bool,
    /// Measured symbol SNR (dB), for diagnostics.
    pub symbol_snr_db: f64,
}

/// Highest-throughput decodable configuration (ties broken by lower REPB;
/// NaN throughput or REPB always loses, never panics).
pub fn max_throughput(outcomes: &[TrialOutcome]) -> Option<TagConfig> {
    outcomes
        .iter()
        .filter(|o| o.decoded)
        .max_by(|a, b| {
            let ta = nan_last_desc_key(a.config.throughput_bps());
            let tb = nan_last_desc_key(b.config.throughput_bps());
            // For the REPB tie-break, "a wins" means `Greater`: compare b's
            // REPB against a's so the smaller (and never the NaN) REPB wins.
            let ea = nan_last_asc_key(repb(&a.config));
            let eb = nan_last_asc_key(repb(&b.config));
            ta.total_cmp(&tb).then(eb.total_cmp(&ea))
        })
        .map(|o| o.config)
}

/// Minimum-REPB decodable configuration achieving at least
/// `target_throughput_bps`. This is the paper's preferred policy.
pub fn min_repb_at_throughput(
    outcomes: &[TrialOutcome],
    target_throughput_bps: f64,
) -> Option<TagConfig> {
    outcomes
        .iter()
        .filter(|o| o.decoded && o.config.throughput_bps() >= target_throughput_bps - 1e-6)
        .min_by(|a, b| {
            nan_last_asc_key(repb(&a.config)).total_cmp(&nan_last_asc_key(repb(&b.config)))
        })
        .map(|o| o.config)
}

/// The rate-fallback ladder: candidates sorted by throughput descending
/// (REPB ascending within a throughput tier). Configurations with non-finite
/// throughput are dropped — they cannot be ordered and could not carry data.
pub fn fallback_ladder(candidates: &[TagConfig]) -> Vec<TagConfig> {
    let mut v: Vec<TagConfig> = candidates
        .iter()
        .copied()
        .filter(|c| c.throughput_bps().is_finite() && c.throughput_bps() > 0.0)
        .collect();
    v.sort_by(|a, b| {
        b.throughput_bps()
            .total_cmp(&a.throughput_bps())
            .then(nan_last_asc_key(repb(a)).total_cmp(&nan_last_asc_key(repb(b))))
    });
    v
}

/// The next configuration strictly below `current` in throughput on the
/// ladder (the CRC-failure retry step), or `None` at the bottom.
pub fn next_lower(ladder: &[TagConfig], current: &TagConfig) -> Option<TagConfig> {
    let t = current.throughput_bps();
    if !t.is_finite() {
        return ladder.first().copied();
    }
    ladder
        .iter()
        .copied()
        .find(|c| c.throughput_bps() < t - 1e-6)
}

/// The (throughput, min-REPB) frontier over all decodable configurations:
/// for each achievable throughput, the smallest REPB that reaches it.
/// Sorted by throughput ascending — the data behind each Fig. 9 curve.
pub fn energy_frontier(outcomes: &[TrialOutcome]) -> Vec<(f64, f64)> {
    let mut points: Vec<(f64, f64)> = outcomes
        .iter()
        .filter(|o| o.decoded)
        .map(|o| (o.config.throughput_bps(), repb(&o.config)))
        .collect();
    points.sort_by(|a, b| nan_last_asc_key(a.0).total_cmp(&nan_last_asc_key(b.0)));
    // Deduplicate equal throughputs, keeping the min REPB.
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (t, e) in points {
        match out.last_mut() {
            Some((lt, le)) if (*lt - t).abs() < 1e-6 => *le = le.min(e),
            _ => out.push((t, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_coding::CodeRate;
    use backfi_tag::config::TagModulation;

    fn outcome(m: TagModulation, r: CodeRate, f: f64, decoded: bool) -> TrialOutcome {
        TrialOutcome {
            config: TagConfig {
                modulation: m,
                code_rate: r,
                symbol_rate_hz: f,
                preamble_us: 32.0,
            },
            decoded,
            symbol_snr_db: 10.0,
        }
    }

    fn sample_outcomes() -> Vec<TrialOutcome> {
        vec![
            outcome(TagModulation::Bpsk, CodeRate::Half, 1e6, true), // 0.5 Mbps
            outcome(TagModulation::Qpsk, CodeRate::Half, 1e6, true), // 1.0 Mbps
            outcome(TagModulation::Qpsk, CodeRate::TwoThirds, 1e6, true), // 1.33 Mbps
            outcome(TagModulation::Psk16, CodeRate::Half, 1e6, false), // 2.0 Mbps (fails)
            outcome(TagModulation::Psk16, CodeRate::TwoThirds, 2.5e6, false),
        ]
    }

    #[test]
    fn max_throughput_skips_failures() {
        let best = max_throughput(&sample_outcomes()).unwrap();
        assert_eq!(best.modulation, TagModulation::Qpsk);
        assert_eq!(best.code_rate, CodeRate::TwoThirds);
    }

    #[test]
    fn min_repb_prefers_cheaper_config() {
        // Both QPSK 1/2 and QPSK 2/3 exceed 1 Mbps... only 2/3 does (1.33 ≥ 1.0
        // and 1.0 ≥ 1.0). Of those, 2/3 has the lower REPB (paper §6.1).
        let cfg = min_repb_at_throughput(&sample_outcomes(), 1.0e6).unwrap();
        assert_eq!(cfg.code_rate, CodeRate::TwoThirds);
    }

    #[test]
    fn unreachable_target_gives_none() {
        assert!(min_repb_at_throughput(&sample_outcomes(), 5e6).is_none());
        assert!(max_throughput(&[]).is_none());
    }

    #[test]
    fn frontier_is_sorted_and_deduplicated() {
        let mut o = sample_outcomes();
        // duplicate throughput with worse REPB (slower symbol rate)
        o.push(outcome(TagModulation::Bpsk, CodeRate::Half, 1e6, true));
        let f = energy_frontier(&o);
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn nan_throughput_cannot_win_or_panic() {
        // A config with NaN symbol rate has NaN throughput and NaN REPB.
        // Every policy must survive it and never select it.
        let mut o = sample_outcomes();
        o.push(outcome(TagModulation::Qpsk, CodeRate::Half, f64::NAN, true));
        let best = max_throughput(&o).unwrap();
        assert!(best.symbol_rate_hz.is_finite());
        assert_eq!(best.code_rate, CodeRate::TwoThirds);
        let cheap = min_repb_at_throughput(&o, 1.0e6).unwrap();
        assert!(cheap.symbol_rate_hz.is_finite());
        let f = energy_frontier(&o);
        assert!(!f.is_empty()); // no panic; NaN rows sort last

        // All-NaN input: policies return *something* without panicking, and
        // a frontier over it stays well-formed.
        let only_nan = vec![outcome(TagModulation::Bpsk, CodeRate::Half, f64::NAN, true)];
        let _ = max_throughput(&only_nan);
        let _ = energy_frontier(&only_nan);
    }

    #[test]
    fn fallback_ladder_descends_and_skips_nan() {
        let cfgs: Vec<TagConfig> = vec![
            outcome(TagModulation::Qpsk, CodeRate::Half, 1e6, true).config, // 1.0 Mbps
            outcome(TagModulation::Bpsk, CodeRate::Half, 1e6, true).config, // 0.5 Mbps
            outcome(TagModulation::Psk16, CodeRate::Half, 1e6, true).config, // 2.0 Mbps
            outcome(TagModulation::Qpsk, CodeRate::Half, f64::NAN, true).config,
        ];
        let ladder = fallback_ladder(&cfgs);
        assert_eq!(ladder.len(), 3, "NaN config dropped");
        for w in ladder.windows(2) {
            assert!(w[0].throughput_bps() >= w[1].throughput_bps());
        }
        let top = ladder[0];
        let mid = next_lower(&ladder, &top).unwrap();
        assert!(mid.throughput_bps() < top.throughput_bps());
        let bottom = next_lower(&ladder, &mid).unwrap();
        assert!(next_lower(&ladder, &bottom).is_none(), "ladder bottoms out");
    }

    #[test]
    fn frontier_matches_paper_shape_more_throughput_costs_energy_at_fixed_rate() {
        // At a fixed symbol rate, frontier REPB for 16PSK exceeds QPSK.
        let o = vec![
            outcome(TagModulation::Qpsk, CodeRate::Half, 1e6, true),
            outcome(TagModulation::Psk16, CodeRate::Half, 1e6, true),
        ];
        let f = energy_frontier(&o);
        assert_eq!(f.len(), 2);
        assert!(f[1].1 > f[0].1, "16PSK REPB should exceed QPSK: {f:?}");
    }
}
