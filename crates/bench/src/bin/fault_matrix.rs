//! Fault-injection smoke matrix — the robustness harness, not a paper figure.
//!
//! Runs the end-to-end link under every impairment mode at several
//! intensities, plus one deliberately poisoned sweep cell, and verifies the
//! pipeline *degrades instead of dying*: no job may panic uncaught, clean
//! cells must keep decoding, and the poisoned cell must be attributed. Exits
//! non-zero on any violation, so CI can gate on it. `--short` shrinks the
//! seed count for smoke runs.

use backfi_bench::{header, rule};
use backfi_chan::impair::{ImpairmentMode, Impairments};
use backfi_core::link::LinkConfig;
use backfi_core::sweep::{grid_cells, run_grid_on, run_trials_on, Executor};
use backfi_tag::config::TagConfig;

fn base(distance: f64) -> LinkConfig {
    let mut cfg = LinkConfig::at_distance(distance);
    cfg.excitation.wifi_payload_bytes = 1200;
    cfg
}

fn main() {
    header(
        "Fault matrix",
        "Graceful degradation under injected impairments + executor panic safety",
        "robustness harness (no paper counterpart): zero uncaught panics",
    );
    let short = std::env::args().any(|a| a == "--short");
    let trials = if short { 4 } else { 20 };
    backfi_bench::sweep_setup();
    let exec = Executor::new();
    backfi_obs::enable(); // counters feed the panic-attribution checks

    let mut violations = 0usize;

    // --- impairment grid: every mode × intensity --------------------------
    println!(
        "{:<14} {:>9} {:>9} {:>12} {:>12} {:>8}",
        "mode", "intensity", "success", "pre-FEC BER", "goodput", "panics"
    );
    rule(70);
    for mode in ImpairmentMode::ALL {
        let mut clean_rate = None;
        for &intensity in &[0.0, 0.25, 0.5, 1.0] {
            let mut cfg = base(2.0);
            cfg.impair = Impairments::single(mode, intensity);
            let stats = run_trials_on(&exec, &cfg, trials, 31_000);
            if stats.panics > 0 {
                violations += 1;
            }
            if intensity == 0.0 {
                clean_rate = Some(stats.success_rate);
            }
            println!(
                "{:<14} {:>9.2} {:>8.0}% {:>12.4} {:>10.0}bps {:>8}",
                mode.name(),
                intensity,
                100.0 * stats.success_rate,
                stats.mean_pre_fec_ber,
                stats.mean_goodput_bps,
                stats.panics
            );
        }
        // Zero intensity must be a healthy link at 2 m.
        if clean_rate.unwrap_or(0.0) < 0.5 {
            eprintln!("VIOLATION: {} at intensity 0 is not clean", mode.name());
            violations += 1;
        }
    }
    rule(70);

    // --- everything at once ----------------------------------------------
    let mut cfg = base(2.0);
    cfg.impair = Impairments::all(0.5);
    let combined = run_trials_on(&exec, &cfg, trials, 32_000);
    println!(
        "{:<14} {:>9} {:>8.0}% {:>12.4} {:>10.0}bps {:>8}",
        "all",
        "0.50",
        100.0 * combined.success_rate,
        combined.mean_pre_fec_ber,
        combined.mean_goodput_bps,
        combined.panics
    );
    if combined.panics > 0 {
        violations += 1;
    }

    // --- executor panic safety: a deliberately poisoned cell --------------
    // 10 MHz symbols at 20 MSPS is below the tag pipeline's contract and
    // panics; the sweep must absorb it and attribute every lost trial.
    let poison = TagConfig {
        symbol_rate_hz: 10e6,
        ..TagConfig::default()
    };
    let cells = grid_cells(&base(1.0), &[TagConfig::default(), poison]);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // the panics below are deliberate
    let before = backfi_obs::counter_value("sweep.job_panic");
    let stats = run_grid_on(&exec, &cells, trials, 33_000);
    std::panic::set_hook(hook);
    let caught = backfi_obs::counter_value("sweep.job_panic") - before;
    println!(
        "poisoned cell: {}/{} trials panicked, caught {} (healthy cell {:.0}% success)",
        stats[1].panics,
        trials,
        caught,
        100.0 * stats[0].success_rate
    );
    if stats.len() != 2 || stats[1].panics != trials || caught < trials as u64 {
        eprintln!("VIOLATION: poisoned trials not fully caught/attributed");
        violations += 1;
    }
    if stats[0].success_rate < 0.5 {
        eprintln!("VIOLATION: healthy cell degraded by its poisoned neighbour");
        violations += 1;
    }

    rule(70);
    if violations == 0 {
        println!("fault matrix clean: 0 uncaught job panics, 0 violations");
    } else {
        println!("fault matrix FAILED: {violations} violation(s)");
        std::process::exit(1);
    }
}
