//! Fig. 7 — "Table provides BackFi tag's relative EPB and corresponding data
//! rate for different choices of modulation, coding and tag symbol switching
//! rate." Pure energy-model computation; compares against the paper's
//! values cell by cell.

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, fmt_bps, header, rule};
use backfi_core::figures::fig7;

/// The paper's own REPB table (rows: symbol rate; cols: BPSK 1/2, BPSK 2/3,
/// QPSK 1/2, QPSK 2/3, 16PSK 1/2, 16PSK 2/3).
const PAPER: [(f64, [f64; 6]); 6] = [
    (10e3, [29.2162, 28.1984, 31.2517, 29.7250, 40.4117, 36.5951]),
    (100e3, [3.5651, 3.3333, 4.0287, 3.6810, 6.1151, 5.2458]),
    (500e3, [1.2850, 1.1231, 1.6089, 1.3660, 3.0665, 2.4592]),
    (1e6, [1.0000, 0.8468, 1.3064, 1.0766, 2.6855, 2.1109]),
    (2e6, [0.8575, 0.7086, 1.1552, 0.9319, 2.4949, 1.9367]),
    (2.5e6, [0.8290, 0.6810, 1.1250, 0.9030, 2.4568, 1.9019]),
];

fn main() {
    header(
        "Fig. 7",
        "Relative energy-per-bit and throughput per tag configuration",
        "reference EPB (BPSK 1/2 @ 1 MSPS) = 3.15 pJ/bit",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig07", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let table = timed_figure("fig07", fig7);
    println!(
        "{:>10} | {:^22} | {:^22} | {:^22}",
        "sym rate", "BPSK 1/2 / 2/3", "QPSK 1/2 / 2/3", "16PSK 1/2 / 2/3"
    );
    rule(106);
    let mut worst = 0.0f64;
    for (row, paper) in table.iter().zip(PAPER.iter()) {
        assert!((row.symbol_rate_hz - paper.0).abs() < 1.0);
        let mut cells = Vec::new();
        for (i, (_, repb, thr)) in row.columns.iter().enumerate() {
            let err = (repb - paper.1[i]).abs() / paper.1[i];
            worst = worst.max(err);
            cells.push(format!("{:7.4} ({:>9})", repb, fmt_bps(*thr)));
        }
        println!(
            "{:>7} Hz | {} {} | {} {} | {} {}",
            row.symbol_rate_hz, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        );
    }
    rule(106);
    println!(
        "worst deviation from the paper's table: {:.3} %",
        worst * 100.0
    );
    println!(
        "reference EPB: {:.3} pJ/bit (paper: 3.15 pJ/bit)",
        backfi_tag::energy::epb_pj(&backfi_tag::energy::reference_config())
    );
}
