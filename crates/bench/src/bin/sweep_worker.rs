//! Sweep-service worker process.
//!
//! Binds a TCP listener and serves sweep shards to any coordinator (a
//! figure binary run with `--workers`), computing each shard with the
//! cache-aware local grid runner — so a worker given `--cache` shares and
//! grows the same persistent result store the figure binaries use.
//!
//! ```text
//! sweep_worker --listen 127.0.0.1:7070 [--cache DIR]
//! ```
//!
//! `--listen` defaults to `127.0.0.1:0` (an OS-assigned port, printed on
//! stderr) so loopback smoke tests need no port bookkeeping. The process
//! serves until killed: a bad peer, a failed accept or a wedged connection
//! ends that conversation, never the listener, and per-connection reads are
//! bounded by `BACKFI_SWEEP_TIMEOUT_MS` (default 10 min) so a vanished
//! coordinator cannot pin a handler forever. Results are bit-identical to
//! in-process execution by construction: every trial's seed is a pure
//! function of the grid coordinates the coordinator ships with each cell.

fn main() {
    backfi_bench::sweep_setup();
    let mut listen = String::from("127.0.0.1:0");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--listen" {
            match args.next() {
                Some(addr) if !addr.is_empty() && !addr.starts_with("--") => listen = addr,
                _ => {
                    eprintln!("error: --listen requires host:port");
                    std::process::exit(2);
                }
            }
        }
    }
    if let Err(e) = backfi_core::sweep::service::worker_main(&listen) {
        eprintln!("error: sweep_worker: {e}");
        std::process::exit(1);
    }
}
