//! Fig. 10 — "For achieving fixed throughput using BackFi for different
//! distance, the tag needs to spend more energy as it goes far away. For
//! achieving 1.25 Mbps we need to spend 2.5× more than power needed for
//! reference modulation, coding and switching rate."

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, fmt_bps, header, rule};
use backfi_core::figures::fig10;

fn main() {
    header(
        "Fig. 10",
        "Min REPB to sustain a fixed throughput vs range",
        "REPB steps between the two supported coding rates (1/2 and 2/3); \
         farther ranges need costlier configurations until the target becomes \
         infeasible",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig10", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let ranges = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0];
    let targets = [1.25e6, 5.0e6];
    let rows = timed_figure("fig10", || fig10(&ranges, &targets, &budget));

    println!(
        "{:>8} | {:^34} | {:^34}",
        "range",
        format!("target {}", fmt_bps(targets[0])),
        format!("target {}", fmt_bps(targets[1]))
    );
    rule(84);
    for (d, per_target) in &rows {
        let cell = |o: &Option<(backfi_tag::config::TagConfig, f64)>| match o {
            Some((cfg, repb)) => format!("REPB {:.3} via {}", repb, cfg.label()),
            None => "infeasible".to_string(),
        };
        println!(
            "{d:>6} m | {:>34} | {:>34}",
            cell(&per_target[0]),
            cell(&per_target[1])
        );
    }
    rule(84);

    // Shape check: REPB at the 1.25 Mbps target must not decrease with range.
    let repbs: Vec<Option<f64>> = rows.iter().map(|(_, t)| t[0].map(|x| x.1)).collect();
    let feasible: Vec<f64> = repbs.iter().flatten().copied().collect();
    let monotone = feasible.windows(2).all(|w| w[1] >= w[0] - 1e-9);
    println!("1.25 Mbps REPB non-decreasing with range: {monotone}");
}
