//! Fig. 13b — "shows the degradation of SNR for tag on and tag off for each
//! point for the plot on the left."

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, header, rule};
use backfi_core::figures::fig13;
use backfi_wifi::Mcs;

fn main() {
    header(
        "Fig. 13b",
        "Client SNR with tag on vs off, per bitrate point",
        "small (≈1–2 dB) degradation, largest for the closest/fastest clients",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig13b", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let rates = [
        Mcs::Mbps6,
        Mcs::Mbps12,
        Mcs::Mbps24,
        Mcs::Mbps36,
        Mcs::Mbps54,
    ];
    let pts = timed_figure("fig13", || fig13(&rates, &budget));

    println!(
        "{:>9} | {:>11} | {:>11} | {:>12}",
        "rate", "SNR off", "SNR on", "degradation"
    );
    rule(52);
    for p in &pts {
        println!(
            "{:>6} Mb | {:>8.1} dB | {:>8.1} dB | {:>9.2} dB",
            p.mcs.mbps(),
            p.snr_off_db,
            p.snr_on_db,
            p.snr_off_db - p.snr_on_db
        );
    }
    rule(52);
    let worst = pts
        .iter()
        .map(|p| p.snr_off_db - p.snr_on_db)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("worst-case SNR degradation: {worst:.2} dB (paper: a few dB at most)");
}
