//! Ablations of BackFi's design choices (DESIGN.md §5): quantify what each
//! ingredient buys, including the §7 multi-antenna extension.

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, header, rule};
use backfi_core::link::{LinkConfig, LinkSimulator};
use backfi_core::mimo::MimoLinkSimulator;
use backfi_dsp::stats;

fn base(distance: f64, payload: usize) -> LinkConfig {
    let mut cfg = LinkConfig::at_distance(distance);
    cfg.excitation.wifi_payload_bytes = payload;
    cfg
}

fn mean_snr(cfg: &LinkConfig, trials: usize, seed0: u64) -> (f64, f64) {
    let sim = LinkSimulator::new(cfg.clone());
    let mut snrs = Vec::new();
    let mut ok = 0usize;
    for s in 0..trials as u64 {
        let r = sim.run(seed0 + s);
        if r.measured_snr_db.is_finite() {
            snrs.push(r.measured_snr_db);
        }
        if r.success {
            ok += 1;
        }
    }
    (stats::mean(&snrs), ok as f64 / trials as f64)
}

fn main() {
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("ablations", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let trials = budget.trials.max(3);
    let payload = budget.wifi_payload_bytes.min(1500);

    header(
        "Ablations",
        "What each design ingredient buys (DESIGN.md §5)",
        "silent-period SIC, MRC vs division, coding, analog+digital stages, \
         preamble length, multi-antenna MRC (§7)",
    );

    // 1. MRC vs zero-forcing division (§4.3.2).
    let mut cfg = base(3.0, payload);
    cfg.tag.symbol_rate_hz = 500e3;
    let ((snr_mrc, ok_mrc), (snr_zf, ok_zf)) = timed_figure("ablations.mrc_vs_zf", || {
        let mrc = mean_snr(&cfg, trials, 100);
        let mut zf_cfg = cfg.clone();
        zf_cfg.reader.use_zero_forcing = true;
        (mrc, mean_snr(&zf_cfg, trials, 100))
    });
    println!("MRC vs per-sample division (3 m, 500 kSPS):");
    println!("   MRC: {snr_mrc:+.1} dB, {:.0} % frames", ok_mrc * 100.0);
    println!("   ZF : {snr_zf:+.1} dB, {:.0} % frames", ok_zf * 100.0);
    rule(60);

    // 2. Canceller stages.
    let ((snr_full, ok_full), ok_no_analog, ok_no_digital) =
        timed_figure("ablations.canceller_stages", || {
            let full = mean_snr(&base(1.5, payload), trials, 200);
            let mut cfg = base(1.5, payload);
            cfg.reader.canceller.analog_enabled = false;
            let (_, no_analog) = mean_snr(&cfg, trials, 200);
            let mut cfg = base(1.5, payload);
            cfg.reader.canceller.digital_enabled = false;
            let (_, no_digital) = mean_snr(&cfg, trials, 200);
            (full, no_analog, no_digital)
        });
    println!("cancellation stages (1.5 m):");
    println!(
        "   both stages   : {snr_full:+.1} dB, {:.0} % frames",
        ok_full * 100.0
    );
    println!(
        "   no analog     : {:.0} % frames (ADC saturates)",
        ok_no_analog * 100.0
    );
    println!(
        "   no digital    : {:.0} % frames (residual SI)",
        ok_no_digital * 100.0
    );
    rule(60);

    // 3. Preamble length at the edge of range.
    let mut cfg = base(6.0, payload);
    cfg.tag.symbol_rate_hz = 500e3;
    let ((snr32, ok32), (snr96, ok96)) = timed_figure("ablations.preamble_length", || {
        let short = mean_snr(&cfg, trials, 300);
        let mut long_cfg = cfg.clone();
        long_cfg.tag.preamble_us = 96.0;
        (short, mean_snr(&long_cfg, trials, 300))
    });
    println!("tag preamble at 6 m, 500 kSPS:");
    println!("   32 µs: {snr32:+.1} dB, {:.0} % frames", ok32 * 100.0);
    println!("   96 µs: {snr96:+.1} dB, {:.0} % frames", ok96 * 100.0);
    rule(60);

    // 4. Multi-antenna MRC (§7).
    println!("spatial MRC at 2 m (QPSK 1 MSPS):");
    let mimo_rows = timed_figure("ablations.spatial_mrc", || {
        [1usize, 2, 4].map(|n| {
            let sim = MimoLinkSimulator::new(base(2.0, payload), n);
            let mut snrs = Vec::new();
            let mut ok = 0usize;
            for s in 0..trials as u64 {
                let r = sim.run(400 + s);
                if r.snr_db.is_finite() {
                    snrs.push(r.snr_db);
                }
                if r.success {
                    ok += 1;
                }
            }
            (n, stats::mean(&snrs), ok as f64 / trials as f64)
        })
    });
    for (n, snr, ok) in mimo_rows {
        println!(
            "   {n} antenna(s): {snr:+.1} dB, {:.0} % frames",
            ok * 100.0
        );
    }
    rule(60);
    println!("(paper §7 predicts additional diversity gain from spatial MRC)");
}
