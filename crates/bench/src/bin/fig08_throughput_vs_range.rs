//! Fig. 8 — "Relationship showing range of BackFi and maximum possible data
//! rate for two different training times."
//!
//! Sweeps tag distance, cycling every (modulation × coding × symbol-rate)
//! combination per §6.1's methodology, for 32 µs and 96 µs tag preambles.

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, fmt_bps, header, rule};
use backfi_core::figures::{fig8, fig8_pruned};

fn main() {
    header(
        "Fig. 8",
        "Maximum throughput vs range, preamble 32 µs vs 96 µs",
        "≈6.67 Mbps @ 0.5 m, 5 Mbps @ 1 m, 1 Mbps @ 5 m; at 7 m the 96 µs \
         preamble buys ~10x over 32 µs",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig08", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    // `--prune` skips candidates that already failed nearer in (frontier
    // monotonicity); seeds stay aligned with the full grid, so the table is
    // identical whenever the monotonicity assumption holds — just cheaper.
    let prune = std::env::args().any(|a| a == "--prune");
    let distances = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
    let preambles = [32.0, 96.0];
    let pts = timed_figure("fig08", || {
        if prune {
            fig8_pruned(&distances, &preambles, &budget)
        } else {
            fig8(&distances, &preambles, &budget)
        }
    });

    println!(
        "{:>8} | {:>22} | {:>22}",
        "range", "32 µs preamble", "96 µs preamble"
    );
    rule(60);
    for &d in &distances {
        let get = |p: f64| {
            pts.iter()
                .find(|x| x.preamble_us == p && x.distance_m == d)
                .map(|x| {
                    let label = x.best.map(|c| c.label()).unwrap_or_else(|| "-".to_string());
                    format!("{:>10} {label}", fmt_bps(x.max_throughput_bps))
                })
                .unwrap_or_default()
        };
        println!("{d:>6} m | {:>32} | {:>32}", get(32.0), get(96.0));
    }
    rule(60);

    // Headline checks.
    let at = |d: f64, p: f64| {
        pts.iter()
            .find(|x| x.distance_m == d && x.preamble_us == p)
            .map(|x| x.max_throughput_bps)
            .unwrap_or(0.0)
    };
    println!("@1 m (32 µs): {} (paper ≈ 5 Mbps)", fmt_bps(at(1.0, 32.0)));
    println!("@5 m (32 µs): {} (paper ≈ 1 Mbps)", fmt_bps(at(5.0, 32.0)));
    let r7 = at(7.0, 96.0) / at(7.0, 32.0).max(1.0);
    println!(
        "@7 m: 96 µs / 32 µs = {:.1}x (paper ≈ 10x: 100 Kbps vs 10 Kbps)",
        r7
    );
}
