//! Fig. 12a — "Throughput of BackFi's tag … under normal WiFi deployment.
//! BackFi tag is active only when the BackFi's reader is transmitting. Hence
//! we achieve on an average 4 Mbps throughput vs the maximum throughput of
//! 5 Mbps" (tag at 2 m, 20 loaded-AP traces).

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, fmt_bps, header, rule};
use backfi_core::figures::fig12a;

fn main() {
    header(
        "Fig. 12a",
        "CDF of BackFi throughput under loaded-AP traces (tag at 2 m)",
        "median ≈ 80 % of the continuous-excitation optimum (4 of 5 Mbps)",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig12a", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let quick = std::env::args().any(|a| a == "--quick");
    let n_traces = if quick { 8 } else { 20 };
    let (cdf, active) = timed_figure("fig12a", || fig12a(2.0, n_traces, &budget));

    println!("continuous-excitation optimum at 2 m: {}", fmt_bps(active));
    println!("{:>14} | {:>6}", "throughput", "CDF");
    rule(25);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        println!("{:>14} | {:>5.2}", fmt_bps(cdf.quantile(q)), q);
    }
    rule(25);
    let median = cdf.quantile(0.5);
    println!(
        "median {} = {:.0} % of optimum (paper: ≈80 %)",
        fmt_bps(median),
        100.0 * median / active.max(1.0)
    );
}
