//! Fig. 11b — "Demonstrates the diversity gains of MRC: as we increase the
//! symbol time period, we have more samples for averaging, hence it improves
//! the SNR. This increase in SNR results in lower bit error rate (BER) for a
//! given modulation."

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, header, rule};
use backfi_core::figures::fig11b;
use backfi_tag::config::TagModulation;

fn main() {
    header(
        "Fig. 11b",
        "Raw BER vs tag symbol rate (MRC time-diversity waterfall)",
        "BER 1e-2…1e-3 at the highest symbol rate, dropping to 1e-4…1e-5 as \
         the symbol rate decreases",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig11b", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    // A placement where the highest symbol rates are error-prone.
    let distance = 3.5;
    let rates = [2.5e6, 2.0e6, 1.0e6, 500e3, 100e3];
    let pts = timed_figure("fig11b", || fig11b(distance, &rates, &budget));

    println!("placement: tag at {distance} m, rate-1/2 coding");
    println!(
        "{:>10} | {:>12} | {:>12}",
        "sym rate", "BPSK BER", "QPSK BER"
    );
    rule(42);
    for &f in &rates {
        let get = |m: TagModulation| {
            pts.iter()
                .find(|p| p.modulation == m && p.symbol_rate_hz == f)
                .map(|p| {
                    if p.ber == 0.0 {
                        "<1e-5".to_string()
                    } else {
                        format!("{:.2e}", p.ber)
                    }
                })
                .unwrap_or_default()
        };
        println!(
            "{:>7} Hz | {:>12} | {:>12}",
            f,
            get(TagModulation::Bpsk),
            get(TagModulation::Qpsk)
        );
    }
    rule(42);

    // Waterfall shape check.
    for m in [TagModulation::Bpsk, TagModulation::Qpsk] {
        let hi = pts
            .iter()
            .find(|p| p.modulation == m && p.symbol_rate_hz == 2.5e6)
            .map(|p| p.ber)
            .unwrap_or(1.0);
        let lo = pts
            .iter()
            .find(|p| p.modulation == m && p.symbol_rate_hz == 100e3)
            .map(|p| p.ber)
            .unwrap_or(1.0);
        println!("{m:?}: BER drops {hi:.2e} -> {lo:.2e} as symbol time grows");
    }
}
