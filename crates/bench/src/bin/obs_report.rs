//! `obs_report` — the automated perf-regression gate.
//!
//! Diffs two telemetry documents of the same kind — either two
//! `OBS_<run>.json` run manifests or two `BENCH_<name>.json` perf
//! trajectories (auto-detected from the document shape) — and reports
//! per-span p50/p99/total deltas, counter deltas and per-record ns/iter
//! deltas against configurable thresholds. Prints a human table on stdout,
//! optionally writes a machine-readable verdict (`--json <path>`), and with
//! `--check` exits nonzero when any regression crosses its threshold — the
//! CI gate against the committed baseline manifest.
//!
//! ```text
//! obs_report <baseline.json> <current.json> [options]
//!   --check                  exit 1 if any regression is found
//!   --span-threshold <f>     span p50/p99/total regression factor (default 0.20)
//!   --bench-threshold <f>    bench ns/iter regression factor     (default 0.20)
//!   --counter-threshold <f>  allowed relative counter drift      (default 0, exact)
//!   --ignore-spans           compare counters only (machine-speed-independent)
//!   --ignore <prefix>        skip spans/counters/records with this name prefix
//!   --require-span NAME[:F]  NAME must exist in the current manifest (count
//!                            > 0) even under --ignore-spans; with :F, its
//!                            p50/p99 are additionally gated at regression
//!                            factor F against the baseline. Hot-path spans
//!                            (wifi.rx.batch, sic.digital.train) are wired
//!                            through this in CI so a deleted or
//!                            order-of-magnitude-slower kernel span fails
//!                            the gate even though the machine-speed-
//!                            dependent default span diff stays off.
//!   --json <path>            also write the verdict as JSON
//! ```
//!
//! Exit status: 0 clean (or regressions found without `--check`), 1
//! regressions found under `--check`, 2 usage or input error.

use backfi_obs::json::{self, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parsed CLI options.
struct Opts {
    baseline: String,
    current: String,
    check: bool,
    span_threshold: f64,
    bench_threshold: f64,
    counter_threshold: f64,
    ignore_spans: bool,
    ignore: Vec<String>,
    /// Spans that must be present in the current manifest; the factor, when
    /// given, gates their p50/p99 against the baseline even under
    /// `--ignore-spans`.
    require_spans: Vec<(String, Option<f64>)>,
    json_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_report <baseline.json> <current.json> [--check] \
         [--span-threshold F] [--bench-threshold F] [--counter-threshold F] \
         [--ignore-spans] [--ignore PREFIX]... [--require-span NAME[:F]]... \
         [--json PATH]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut positional = Vec::new();
    let mut opts = Opts {
        baseline: String::new(),
        current: String::new(),
        check: false,
        span_threshold: 0.20,
        bench_threshold: 0.20,
        counter_threshold: 0.0,
        ignore_spans: false,
        ignore: Vec::new(),
        require_spans: Vec::new(),
        json_out: None,
    };
    let mut args = std::env::args().skip(1);
    let next_f = |args: &mut dyn Iterator<Item = String>, flag: &str| -> f64 {
        match args.next().and_then(|v| v.parse::<f64>().ok()) {
            Some(v) if v >= 0.0 => v,
            _ => {
                eprintln!("error: {flag} requires a non-negative number");
                usage();
            }
        }
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => opts.check = true,
            "--ignore-spans" => opts.ignore_spans = true,
            "--span-threshold" => opts.span_threshold = next_f(&mut args, "--span-threshold"),
            "--bench-threshold" => opts.bench_threshold = next_f(&mut args, "--bench-threshold"),
            "--counter-threshold" => {
                opts.counter_threshold = next_f(&mut args, "--counter-threshold")
            }
            "--ignore" => match args.next() {
                Some(p) if !p.is_empty() => opts.ignore.push(p),
                _ => usage(),
            },
            "--require-span" => match args.next() {
                Some(spec) if !spec.is_empty() => {
                    let (name, factor) = match spec.split_once(':') {
                        Some((n, f)) => match f.parse::<f64>() {
                            Ok(v) if v >= 0.0 && !n.is_empty() => (n.to_string(), Some(v)),
                            _ => {
                                eprintln!(
                                    "error: --require-span factor must be a \
                                     non-negative number: {spec}"
                                );
                                usage();
                            }
                        },
                        None => (spec, None),
                    };
                    opts.require_spans.push((name, factor));
                }
                _ => usage(),
            },
            "--json" => match args.next() {
                Some(p) if !p.is_empty() => opts.json_out = Some(p),
                _ => usage(),
            },
            _ if a.starts_with("--") => usage(),
            _ => positional.push(a),
        }
    }
    if positional.len() != 2 {
        usage();
    }
    opts.baseline = positional.remove(0);
    opts.current = positional.remove(0);
    opts
}

/// One comparison outcome row.
struct Finding {
    kind: &'static str,
    name: String,
    baseline: f64,
    current: f64,
    /// Relative change, `current/baseline − 1` (`inf` when baseline is 0).
    delta: f64,
    regression: bool,
    note: &'static str,
}

fn rel(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        current / baseline - 1.0
    }
}

fn ignored(name: &str, opts: &Opts) -> bool {
    opts.ignore.iter().any(|p| name.starts_with(p.as_str()))
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn f(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn name_of(v: &Json) -> String {
    v.get("name")
        .and_then(Json::as_str)
        .unwrap_or("<unnamed>")
        .to_string()
}

/// Index an array-of-objects section by its `"name"` member.
fn by_name<'a>(doc: &'a Json, section: &str) -> BTreeMap<String, &'a Json> {
    doc.get(section)
        .and_then(Json::as_arr)
        .map(|arr| arr.iter().map(|v| (name_of(v), v)).collect())
        .unwrap_or_default()
}

/// Compare two OBS manifests: span p50/p99/total regressions plus counter
/// drift. Gauges and probes are machine- or wall-clock-shaped; they are not
/// gated here.
fn compare_manifests(base: &Json, cur: &Json, opts: &Opts) -> Vec<Finding> {
    let mut out = Vec::new();
    if !opts.ignore_spans {
        let b = by_name(base, "spans");
        let c = by_name(cur, "spans");
        for (name, bs) in &b {
            if ignored(name, opts) {
                continue;
            }
            let Some(cs) = c.get(name) else {
                if f(bs, "count") > 0.0 {
                    out.push(Finding {
                        kind: "span",
                        name: name.clone(),
                        baseline: f(bs, "count"),
                        current: 0.0,
                        delta: -1.0,
                        regression: true,
                        note: "span missing from current run",
                    });
                }
                continue;
            };
            for (metric, key) in [("p50_ns", "p50_ns"), ("p99_ns", "p99_ns")] {
                let bv = f(bs, key);
                let cv = f(cs, key);
                let delta = rel(bv, cv);
                let regression = bv > 0.0 && cv > bv * (1.0 + opts.span_threshold);
                if regression || delta.abs() > opts.span_threshold {
                    out.push(Finding {
                        kind: "span",
                        name: format!("{name}.{metric}"),
                        baseline: bv,
                        current: cv,
                        delta,
                        regression,
                        note: if regression {
                            "slower than threshold"
                        } else {
                            ""
                        },
                    });
                }
            }
        }
        for name in c.keys() {
            if !b.contains_key(name) && !ignored(name, opts) {
                out.push(Finding {
                    kind: "span",
                    name: name.clone(),
                    baseline: 0.0,
                    current: f(c[name], "count"),
                    delta: f64::INFINITY,
                    regression: false,
                    note: "new span (not in baseline)",
                });
            }
        }
    }
    // Required hot-path spans: presence is machine-speed-independent, so it
    // is enforced even under --ignore-spans; the optional factor bounds
    // p50/p99 against the baseline loosely enough to survive machine skew
    // while still catching an order-of-magnitude kernel blow-up.
    let bspans = by_name(base, "spans");
    let cspans = by_name(cur, "spans");
    for (name, factor) in &opts.require_spans {
        let Some(cs) = cspans.get(name).filter(|s| f(s, "count") > 0.0) else {
            out.push(Finding {
                kind: "span",
                name: name.clone(),
                baseline: bspans.get(name).map(|s| f(s, "count")).unwrap_or(0.0),
                current: 0.0,
                delta: -1.0,
                regression: true,
                note: "required span missing from current run",
            });
            continue;
        };
        let (Some(factor), Some(bs)) = (factor, bspans.get(name)) else {
            continue;
        };
        for key in ["p50_ns", "p99_ns"] {
            let bv = f(bs, key);
            let cv = f(cs, key);
            if bv > 0.0 && cv > bv * (1.0 + factor) {
                out.push(Finding {
                    kind: "span",
                    name: format!("{name}.{key}"),
                    baseline: bv,
                    current: cv,
                    delta: rel(bv, cv),
                    regression: true,
                    note: "required span slower than its factor",
                });
            }
        }
    }
    let b = by_name(base, "counters");
    let c = by_name(cur, "counters");
    let mut names: Vec<&String> = b.keys().chain(c.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        if ignored(name, opts) {
            continue;
        }
        let bv = b.get(name).map(|v| f(v, "value")).unwrap_or(0.0);
        let cv = c.get(name).map(|v| f(v, "value")).unwrap_or(0.0);
        if bv == cv {
            continue;
        }
        let delta = rel(bv, cv);
        let regression = delta.abs() > opts.counter_threshold;
        out.push(Finding {
            kind: "counter",
            name: name.clone(),
            baseline: bv,
            current: cv,
            delta,
            regression,
            note: if regression { "counter drift" } else { "" },
        });
    }
    out
}

/// Compare two BENCH trajectories record-by-record on `ns_per_iter`.
fn compare_benches(base: &Json, cur: &Json, opts: &Opts) -> Vec<Finding> {
    let mut out = Vec::new();
    let b = by_name(base, "records");
    let c = by_name(cur, "records");
    for (name, bs) in &b {
        if ignored(name, opts) {
            continue;
        }
        let Some(cs) = c.get(name) else {
            out.push(Finding {
                kind: "bench",
                name: name.clone(),
                baseline: f(bs, "ns_per_iter"),
                current: 0.0,
                delta: -1.0,
                regression: true,
                note: "record missing from current run",
            });
            continue;
        };
        let bv = f(bs, "ns_per_iter");
        let cv = f(cs, "ns_per_iter");
        let delta = rel(bv, cv);
        let regression = bv > 0.0 && cv > bv * (1.0 + opts.bench_threshold);
        if regression || delta.abs() > opts.bench_threshold {
            out.push(Finding {
                kind: "bench",
                name: name.clone(),
                baseline: bv,
                current: cv,
                delta,
                regression,
                note: if regression {
                    "slower than threshold"
                } else {
                    ""
                },
            });
        }
    }
    out
}

fn verdict_json(findings: &[Finding], regressions: usize) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, fd) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"kind\": \"{}\", \"name\": \"{}\", \"baseline\": {}, \
             \"current\": {}, \"delta\": {}, \"regression\": {}, \"note\": \"{}\"}}",
            json::escape(fd.kind),
            json::escape(&fd.name),
            json::num(fd.baseline),
            json::num(fd.current),
            json::num(fd.delta),
            fd.regression,
            json::escape(fd.note),
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!("],\n  \"regressions\": {regressions}\n}}\n"));
    s
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let (base, cur) = match (load(&opts.baseline), load(&opts.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let base_is_bench = base.get("records").is_some();
    if base_is_bench != cur.get("records").is_some() {
        eprintln!("error: cannot compare a BENCH trajectory against an OBS manifest");
        return ExitCode::from(2);
    }
    let findings = if base_is_bench {
        compare_benches(&base, &cur, &opts)
    } else {
        compare_manifests(&base, &cur, &opts)
    };
    let regressions = findings.iter().filter(|fd| fd.regression).count();

    println!(
        "obs_report: {} vs {} ({})",
        opts.baseline,
        opts.current,
        if base_is_bench {
            "bench trajectory"
        } else {
            "obs manifest"
        }
    );
    if findings.is_empty() {
        println!("no deltas beyond thresholds; {regressions} regression(s)");
    } else {
        println!(
            "{:<9} {:<44} {:>14} {:>14} {:>9}  note",
            "kind", "name", "baseline", "current", "delta"
        );
        for fd in &findings {
            let flag = if fd.regression { "REGRESSION " } else { "" };
            println!(
                "{:<9} {:<44} {:>14.1} {:>14.1} {:>8.1}%  {}{}",
                fd.kind,
                fd.name,
                fd.baseline,
                fd.current,
                fd.delta * 100.0,
                flag,
                fd.note,
            );
        }
        println!(
            "{} finding(s), {} regression(s)",
            findings.len(),
            regressions
        );
    }
    if let Some(path) = &opts.json_out {
        let doc = verdict_json(&findings, regressions);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: --json {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if opts.check && regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
