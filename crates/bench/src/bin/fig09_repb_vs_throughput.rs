//! Fig. 9 — "Each plot is BackFi's REPB for corresponding throughput achieved
//! for the range varying between 0.5 m to 5 m… the vertical line indicates
//! the maximum throughput that is achievable at a given distance."

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, fmt_bps, header, rule};
use backfi_core::figures::fig9;

fn main() {
    header(
        "Fig. 9",
        "Min REPB vs achieved throughput, one curve per range",
        "REPB between ~0.5 and 3 for most combinations; max-throughput \
         frontier shrinks with range",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig09", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let ranges = [0.5, 1.0, 2.0, 4.0, 5.0];
    let curves = timed_figure("fig09", || fig9(&ranges, &budget));

    for (d, frontier) in &curves {
        println!("range {d} m:");
        if frontier.is_empty() {
            println!("   (nothing decodable)");
            continue;
        }
        for (thr, repb) in frontier {
            println!("   {:>10}  REPB {:.3}", fmt_bps(*thr), repb);
        }
        let max = frontier.last().map(|p| p.0).unwrap_or(0.0);
        println!("   max achievable: {}", fmt_bps(max));
        rule(40);
    }

    // Shape checks the paper calls out.
    let max_at = |d: f64| {
        curves
            .iter()
            .find(|(r, _)| *r == d)
            .and_then(|(_, f)| f.last().map(|p| p.0))
            .unwrap_or(0.0)
    };
    println!(
        "frontier monotone with range: 0.5 m {} ≥ 1 m {} ≥ 5 m {}",
        fmt_bps(max_at(0.5)),
        fmt_bps(max_at(1.0)),
        fmt_bps(max_at(5.0))
    );
}
