//! Fig. 13a — "Shows the CDF of the client throughput when the tag is placed
//! at 0.25 m from the AP. There is almost no degradation for lower bit rate
//! of 6 Mbps… However, we observe noticeable difference at 54 Mbps."
//!
//! Sample-level: real OFDM packets decoded by the full WiFi receiver with
//! the tag's actual reflected waveform added at the client.

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, header, rule};
use backfi_core::figures::fig13;
use backfi_wifi::Mcs;

fn main() {
    header(
        "Fig. 13a",
        "Per-bitrate client PHY throughput, tag at 0.25 m from the AP",
        "no degradation at 6 Mbps; noticeable only at 54 Mbps",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig13a", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let rates = [
        Mcs::Mbps6,
        Mcs::Mbps12,
        Mcs::Mbps24,
        Mcs::Mbps36,
        Mcs::Mbps54,
    ];
    let pts = timed_figure("fig13", || fig13(&rates, &budget));

    println!(
        "{:>9} | {:>9} | {:>11} | {:>11} | {:>11}",
        "rate", "client d", "tput off", "tput on", "drop"
    );
    rule(64);
    for p in &pts {
        let off = p.mcs.mbps() * p.success_off;
        let on = p.mcs.mbps() * p.success_on;
        println!(
            "{:>6} Mb | {:>7.1} m | {:>8.2} Mb | {:>8.2} Mb | {:>9.1} %",
            p.mcs.mbps(),
            p.client_distance_m,
            off,
            on,
            100.0 * (off - on) / off.max(1e-9)
        );
    }
    rule(64);
    let low = &pts[0];
    let high = pts.last().unwrap();
    println!(
        "6 Mbps success {:.0} % -> {:.0} % | 54 Mbps success {:.0} % -> {:.0} %",
        100.0 * low.success_off,
        100.0 * low.success_on,
        100.0 * high.success_off,
        100.0 * high.success_on
    );
}
