//! §6 headline — "BackFi provides three orders of magnitude higher
//! throughput, an order of magnitude higher range compared to the best known
//! WiFi backscatter system [27, 25]."

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, fmt_bps, header, rule};
use backfi_core::figures::headline;

fn main() {
    header(
        "§6 headline",
        "BackFi vs prior WiFi backscatter (Wi-Fi Backscatter [27], [25])",
        "10^3x throughput, ~10x range; prior: ≤1 Kbps at <1 m",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("headline", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let h = timed_figure("headline", || headline(&budget));

    println!("{:>28} | {:>14} | {:>14}", "", "BackFi", "prior [27,25]");
    rule(64);
    println!(
        "{:>28} | {:>14} | {:>14}",
        "throughput @ 1 m",
        fmt_bps(h.backfi_1m_bps),
        fmt_bps(h.prior_bps)
    );
    println!(
        "{:>28} | {:>14} | {:>14}",
        "throughput @ 5 m",
        fmt_bps(h.backfi_5m_bps),
        "0 bps"
    );
    println!(
        "{:>28} | {:>14} | {:>13.2}m",
        "max range", "≥7 m", h.prior_range_m
    );
    rule(64);
    println!(
        "throughput gain at 1 m: {:.0}x (paper: one to three orders of magnitude)",
        h.throughput_gain
    );
}
