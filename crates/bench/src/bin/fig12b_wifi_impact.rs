//! Fig. 12b — "Average throughput for all the clients at different locations
//! as a function of distance of tag from the AP. … when the tag is at
//! 0.25 m, we see a 10 % throughput drop when tag is modulating. As the tag
//! moves away from AP, we see no degradation."

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, header, rule};
use backfi_core::figures::fig12b;

fn main() {
    header(
        "Fig. 12b",
        "WiFi network throughput with/without an active tag vs tag–AP distance",
        "≤10 % impact at 0.25–0.5 m, negligible beyond",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig12b", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let distances = [0.25, 0.5, 1.0, 2.0, 3.0, 4.0];
    let pts = timed_figure("fig12b", || fig12b(&distances, &budget));

    println!(
        "{:>10} | {:>12} | {:>12} | {:>8}",
        "tag dist", "tag off", "tag on", "drop"
    );
    rule(52);
    for p in &pts {
        let drop = 100.0 * (p.off_mbps - p.on_mbps) / p.off_mbps.max(1e-9);
        println!(
            "{:>8} m | {:>9.2} Mb | {:>9.2} Mb | {:>6.1} %",
            p.tag_distance_m, p.off_mbps, p.on_mbps, drop
        );
    }
    rule(52);
    let near = &pts[0];
    let far = pts.last().unwrap();
    let near_drop = (near.off_mbps - near.on_mbps) / near.off_mbps.max(1e-9);
    let far_drop = (far.off_mbps - far.on_mbps) / far.off_mbps.max(1e-9);
    println!(
        "0.25 m drop {:.1} % (paper ≈10 %); {} m drop {:.1} % (paper ≈0 %)",
        100.0 * near_drop,
        far.tag_distance_m,
        100.0 * far_drop
    );
}
