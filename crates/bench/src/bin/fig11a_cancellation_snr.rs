//! Fig. 11a — "Demonstrates the effect of imperfect cancellation on the
//! degradation of the measured SNR vs the expected SNR at the reader of
//! BackFi." (30 locations × 10 runs; VNA ground truth.)

use backfi_bench::timing::timed_figure;
use backfi_bench::{budget_from_args, header, rule};
use backfi_core::figures::fig11a;

fn main() {
    header(
        "Fig. 11a",
        "Measured vs expected symbol SNR scatter (cancellation residue)",
        "median degradation < 2.3 dB (prior full-duplex work reports 1.7 dB)",
    );
    let budget = budget_from_args();
    let _obs = backfi_bench::obs_setup("fig11a", &budget);
    backfi_bench::impair_setup();
    backfi_bench::sweep_setup();
    let quick = std::env::args().any(|a| a == "--quick");
    let (locations, runs) = if quick { (8, 2) } else { (30, 10) };
    let (pts, median) = timed_figure("fig11a", || fig11a(locations, runs, &budget));

    println!(
        "{:>14} | {:>14} | {:>12}",
        "expected dB", "measured dB", "degradation"
    );
    rule(48);
    for p in pts.iter().take(15) {
        println!(
            "{:>12.1}   | {:>12.1}   | {:>10.2}",
            p.expected_db,
            p.measured_db,
            p.expected_db - p.measured_db
        );
    }
    if pts.len() > 15 {
        println!("   … ({} points total)", pts.len());
    }
    rule(48);
    println!("median SNR degradation: {median:.2} dB (paper: < 2.3 dB median)");
}
