//! Minimal wall-clock measurement for the bench targets and figure binaries.
//!
//! Instrumentation output goes to **stderr** so the figure tables on stdout
//! stay byte-identical across runs and thread counts (they are diffed by the
//! reproduction harness); only the timing lines vary run to run.

use std::time::{Duration, Instant};

/// Time `iters` calls of `f` after one warm-up call and print ns/iter.
///
/// Used by the `benches/` targets; prints a single
/// `name ... <ns>/iter (<iters> iters)` line on stdout.
pub fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    f(); // warm-up: touch caches, fault pages, fill planners
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = t0.elapsed();
    let per = total.as_nanos() / u128::from(iters.max(1));
    println!("{name:<36} {per:>12} ns/iter ({iters} iters)");
}

/// Per-phase wall-clock accounting for the figure binaries.
///
/// Call [`PhaseTimer::mark`] at the end of each phase; [`PhaseTimer::report`]
/// prints one stderr line per phase plus a total, with trials/sec for phases
/// that counted trials via [`PhaseTimer::mark_with_trials`].
pub struct PhaseTimer {
    start: Instant,
    last: Instant,
    phases: Vec<(String, Duration, Option<usize>)>,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// Start timing; the first phase begins now.
    pub fn new() -> Self {
        let now = Instant::now();
        PhaseTimer {
            start: now,
            last: now,
            phases: Vec::new(),
        }
    }

    /// End the current phase and label it `name`.
    pub fn mark(&mut self, name: &str) {
        self.mark_inner(name, None);
    }

    /// End the current phase, labelling it `name` and recording that it ran
    /// `trials` link trials (enables the trials/sec column).
    pub fn mark_with_trials(&mut self, name: &str, trials: usize) {
        self.mark_inner(name, Some(trials));
    }

    fn mark_inner(&mut self, name: &str, trials: Option<usize>) {
        let now = Instant::now();
        self.phases
            .push((name.to_string(), now - self.last, trials));
        self.last = now;
    }

    /// Total elapsed time since construction.
    pub fn total(&self) -> Duration {
        self.last - self.start
    }

    /// Print the per-phase breakdown to stderr.
    pub fn report(&self, label: &str) {
        for (name, dt, trials) in &self.phases {
            match trials {
                Some(n) => {
                    let rate = *n as f64 / dt.as_secs_f64().max(1e-9);
                    eprintln!(
                        "# {label} phase={name} wall={:.3}s trials={n} rate={rate:.1} trials/s",
                        dt.as_secs_f64()
                    );
                }
                None => {
                    eprintln!("# {label} phase={name} wall={:.3}s", dt.as_secs_f64());
                }
            }
        }
        let trials: usize = self.phases.iter().filter_map(|(_, _, t)| *t).sum();
        let total = self.total().as_secs_f64();
        if trials > 0 {
            eprintln!(
                "# {label} total wall={total:.3}s trials={trials} rate={:.1} trials/s",
                trials as f64 / total.max(1e-9)
            );
        } else {
            eprintln!("# {label} total wall={total:.3}s");
        }
    }
}

/// Run one figure computation and print its wall time and link-trial rate
/// to stderr.
///
/// The trial count comes from the sweep executor's process-wide counters
/// ([`backfi_core::sweep::metrics_snapshot`]), so the binary doesn't need to
/// know how many jobs its figure fanned out.
pub fn timed_figure<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let (jobs0, _) = backfi_core::sweep::metrics_snapshot();
    let t0 = Instant::now();
    let out = f();
    let wall = t0.elapsed().as_secs_f64();
    let (jobs1, _) = backfi_core::sweep::metrics_snapshot();
    let trials = jobs1 - jobs0;
    if trials > 0 {
        eprintln!(
            "# {label} wall={wall:.3}s trials={trials} rate={:.1} trials/s",
            trials as f64 / wall.max(1e-9)
        );
    } else {
        eprintln!("# {label} wall={wall:.3}s");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate() {
        let mut t = PhaseTimer::new();
        std::thread::sleep(Duration::from_millis(2));
        t.mark("a");
        t.mark_with_trials("b", 10);
        assert_eq!(t.phases.len(), 2);
        assert!(t.total() >= Duration::from_millis(2));
        t.report("test"); // just exercise the printer
    }
}
