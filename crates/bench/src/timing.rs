//! Minimal wall-clock measurement for the bench targets and figure binaries.
//!
//! Instrumentation output goes to **stderr** so the figure tables on stdout
//! stay byte-identical across runs and thread counts (they are diffed by the
//! reproduction harness); only the timing lines vary run to run.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Time `iters` calls of `f` after one warm-up call; returns ns/iter.
///
/// The measurement core behind [`bench`] and the JSON-emitting
/// [`BenchReport::measure`].
///
/// # Panics
/// Panics when `iters == 0`: a zero-iteration call would time nothing and
/// silently report ~0 ns/iter — a bogus trajectory point that perf diffs
/// would read as an infinite speedup.
pub fn time_ns<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    assert!(iters >= 1, "time_ns: iters must be >= 1 (got 0)");
    f(); // warm-up: touch caches, fault pages, fill planners
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Time `iters` calls of `f` after one warm-up call and print ns/iter.
///
/// Used by the `benches/` targets; prints a single
/// `name ... <ns>/iter (<iters> iters)` line on stdout.
pub fn bench<F: FnMut()>(name: &str, iters: u32, f: F) {
    let per = time_ns(iters, f) as u128;
    println!("{name:<36} {per:>12} ns/iter ({iters} iters)");
}

/// Wall time one calibrated timing batch must span (default 20 ms, override
/// with `BACKFI_BENCH_MIN_WALL_MS`). Short enough that a handful of repeats
/// per point keeps the bench under a second, long enough that a scheduler
/// preemption mid-batch is amortized instead of doubling the reading.
fn min_batch_wall() -> Duration {
    let ms = std::env::var("BACKFI_BENCH_MIN_WALL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_millis(ms.max(1))
}

/// Calibrated batches timed per point; the fastest batch is reported.
const CALIBRATION_REPEATS: u32 = 5;

/// Robust ns/iter with min-wall-time calibration: grow the iteration count
/// until one timed batch spans [`min_batch_wall`], then time
/// [`CALIBRATION_REPEATS`] such batches and report the **fastest** batch.
/// On a shared machine, preemption and frequency excursions only ever make a
/// batch slower, never faster, so the minimum is the noise-rejecting
/// estimator — a fixed `iters: 10` reading of a multi-millisecond pipeline
/// point swings ±50% run to run; the calibrated minimum is stable to a few
/// percent. Returns `(ns_per_iter, total_iters_timed)`.
pub fn time_ns_min_wall<F: FnMut()>(mut f: F) -> (f64, u32) {
    let target = min_batch_wall();
    f(); // warm-up: touch caches, fault pages, fill planners
         // Calibrate: grow the batch geometrically until it spans the target.
    let mut iters: u32 = 1;
    let mut best = loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt >= target || iters >= 1 << 26 {
            break dt.as_nanos() as f64 / f64::from(iters);
        }
        // Project the batch size that would span the target (with 20%
        // headroom), growing at least 2x and at most 16x per step.
        let grow = (target.as_nanos() as f64 / dt.as_nanos().max(1) as f64) * 1.2;
        iters = (f64::from(iters) * grow.clamp(2.0, 16.0)).ceil() as u32;
    };
    // The calibrated batch above is the first measurement; time the rest.
    let mut total_iters = iters;
    for _ in 1..CALIBRATION_REPEATS {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let batch = t0.elapsed().as_nanos() as f64 / f64::from(iters);
        if batch < best {
            best = batch;
        }
        total_iters += iters;
    }
    (best, total_iters)
}

// ------------------------------------------------------- perf trajectory ---

/// One measured kernel point for the machine-readable perf trajectory.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Unique point name, e.g. `convolve_direct_n8192_l256`.
    pub name: String,
    /// Kernel family, e.g. `convolve`, `xcorr`, `estimate_fir`.
    pub kernel: String,
    /// Signal length (samples) of the measured problem.
    pub n: usize,
    /// Kernel length (taps / template samples); 0 when not applicable.
    pub l: usize,
    /// Which implementation ran: `direct`, `fft`, `toeplitz`, or `auto`
    /// (the public dispatching entry point).
    pub path: String,
    /// Measured nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Input samples processed per second at that rate.
    pub samples_per_sec: f64,
    /// Iterations timed.
    pub iters: u32,
}

/// Collects [`BenchRecord`]s and writes one `BENCH_<name>.json` at the repo
/// root — the machine-readable perf trajectory that later PRs diff against
/// (the CI bench smoke job uploads these as artifacts).
pub struct BenchReport {
    bench: String,
    mode: String,
    records: Vec<BenchRecord>,
}

/// Escape a string for embedding in a JSON string literal (the hand-rolled
/// writer keeps the offline build free of serde).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/∞; clamp those to 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

impl BenchReport {
    /// Start a report for bench target `bench` (`kernels`, `pipeline`, …)
    /// running in `mode` (`short` for CI smoke runs, `full` otherwise).
    pub fn new(bench: &str, mode: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            mode: mode.to_string(),
            records: Vec::new(),
        }
    }

    /// True when the bench args request the CI smoke run (`--short`).
    pub fn short_mode() -> bool {
        std::env::args().any(|a| a == "--short")
    }

    /// Time `iters` calls of `f`, print the usual stdout line, and record the
    /// point. `n`/`l` describe the problem size; `samples` is how many input
    /// samples one iteration processes (for the samples/sec column).
    #[allow(clippy::too_many_arguments)]
    pub fn measure<F: FnMut()>(
        &mut self,
        kernel: &str,
        path: &str,
        n: usize,
        l: usize,
        samples: usize,
        iters: u32,
        f: F,
    ) -> f64 {
        let ns = time_ns(iters, f);
        let name = if l > 0 {
            format!("{kernel}_{path}_n{n}_l{l}")
        } else {
            format!("{kernel}_{path}_n{n}")
        };
        println!("{name:<36} {:>12} ns/iter ({iters} iters)", ns as u128);
        self.records.push(BenchRecord {
            name,
            kernel: kernel.to_string(),
            n,
            l,
            path: path.to_string(),
            ns_per_iter: ns,
            samples_per_sec: samples as f64 / (ns * 1e-9).max(1e-12),
            iters,
        });
        ns
    }

    /// Like [`BenchReport::measure`], but with min-wall-time iteration
    /// calibration ([`time_ns_min_wall`]): the point runs for at least
    /// `CALIBRATION_REPEATS ×` [`min_batch_wall`] and records the fastest
    /// batch. The recorded `iters` is the total number of timed iterations,
    /// so the JSON schema is unchanged and zero-iteration records remain
    /// impossible.
    pub fn measure_calibrated<F: FnMut()>(
        &mut self,
        kernel: &str,
        path: &str,
        n: usize,
        l: usize,
        samples: usize,
        f: F,
    ) -> f64 {
        let (ns, iters) = time_ns_min_wall(f);
        let name = if l > 0 {
            format!("{kernel}_{path}_n{n}_l{l}")
        } else {
            format!("{kernel}_{path}_n{n}")
        };
        println!("{name:<36} {:>12} ns/iter ({iters} iters)", ns as u128);
        self.records.push(BenchRecord {
            name,
            kernel: kernel.to_string(),
            n,
            l,
            path: path.to_string(),
            ns_per_iter: ns,
            samples_per_sec: samples as f64 / (ns * 1e-9).max(1e-12),
            iters,
        });
        ns
    }

    /// Like [`BenchReport::measure_calibrated`], but for points with an
    /// asserted perf gate: `gate_ns` is the slowest acceptable ns/iter.
    /// When a reading misses the gate the point is re-measured (up to
    /// [`GATE_ATTEMPTS`] times, with a short sleep between attempts) and the
    /// fastest reading is recorded.
    ///
    /// On a shared one-core host the interference is strictly one-sided —
    /// preemption, frequency excursions and noisy neighbours only ever make
    /// a batch slower, never faster — so the best reading across temporally
    /// spread attempts is the same noise-rejecting minimum
    /// [`time_ns_min_wall`] already takes, extended across a window longer
    /// than one multi-second scheduler episode. A genuine regression misses
    /// the gate on every attempt and still fails the bench.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_calibrated_gated<F: FnMut()>(
        &mut self,
        kernel: &str,
        path: &str,
        n: usize,
        l: usize,
        samples: usize,
        gate_ns: f64,
        mut f: F,
    ) -> f64 {
        const GATE_ATTEMPTS: u32 = 5;
        let (mut best, mut iters) = time_ns_min_wall(&mut f);
        let mut attempt = 1;
        while best > gate_ns && attempt < GATE_ATTEMPTS {
            std::thread::sleep(Duration::from_millis(300));
            let (ns, it) = time_ns_min_wall(&mut f);
            iters += it;
            if ns < best {
                best = ns;
            }
            attempt += 1;
        }
        let name = if l > 0 {
            format!("{kernel}_{path}_n{n}_l{l}")
        } else {
            format!("{kernel}_{path}_n{n}")
        };
        println!("{name:<36} {:>12} ns/iter ({iters} iters)", best as u128);
        self.records.push(BenchRecord {
            name,
            kernel: kernel.to_string(),
            n,
            l,
            path: path.to_string(),
            ns_per_iter: best,
            samples_per_sec: samples as f64 / (best * 1e-9).max(1e-12),
            iters,
        });
        best
    }

    /// The points measured so far (for speedup assertions in the benches).
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// The workspace root (two levels up from the `backfi-bench` manifest),
    /// where the `BENCH_*.json` trajectory files live.
    pub fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    /// Serialize to `BENCH_<bench>.json` at the repo root. Returns the path
    /// written. Panics on I/O failure — a bench that cannot record its
    /// trajectory should fail loudly in CI.
    pub fn write(&self) -> PathBuf {
        assert!(
            !self.records.is_empty(),
            "BenchReport::write: no records measured"
        );
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        s.push_str(&format!("  \"mode\": \"{}\",\n", json_escape(&self.mode)));
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"kernel\": \"{}\", \"n\": {}, \"l\": {}, \
                 \"path\": \"{}\", \"ns_per_iter\": {}, \"samples_per_sec\": {}, \
                 \"iters\": {}}}{}\n",
                json_escape(&r.name),
                json_escape(&r.kernel),
                r.n,
                r.l,
                json_escape(&r.path),
                json_num(r.ns_per_iter),
                json_num(r.samples_per_sec),
                r.iters,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        let path = Self::repo_root().join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, s).expect("write BENCH json");
        path
    }
}

/// Per-phase wall-clock accounting for the figure binaries.
///
/// Call [`PhaseTimer::mark`] at the end of each phase; [`PhaseTimer::report`]
/// prints one stderr line per phase plus a total, with trials/sec for phases
/// that counted trials via [`PhaseTimer::mark_with_trials`].
pub struct PhaseTimer {
    start: Instant,
    last: Instant,
    phases: Vec<(String, Duration, Option<usize>)>,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// Start timing; the first phase begins now.
    pub fn new() -> Self {
        let now = Instant::now();
        PhaseTimer {
            start: now,
            last: now,
            phases: Vec::new(),
        }
    }

    /// End the current phase and label it `name`.
    pub fn mark(&mut self, name: &str) {
        self.mark_inner(name, None);
    }

    /// End the current phase, labelling it `name` and recording that it ran
    /// `trials` link trials (enables the trials/sec column).
    pub fn mark_with_trials(&mut self, name: &str, trials: usize) {
        self.mark_inner(name, Some(trials));
    }

    fn mark_inner(&mut self, name: &str, trials: Option<usize>) {
        let now = Instant::now();
        self.phases
            .push((name.to_string(), now - self.last, trials));
        self.last = now;
    }

    /// Total elapsed time since construction.
    pub fn total(&self) -> Duration {
        self.last - self.start
    }

    /// Print the per-phase breakdown to stderr.
    pub fn report(&self, label: &str) {
        for (name, dt, trials) in &self.phases {
            match trials {
                Some(n) => {
                    let rate = *n as f64 / dt.as_secs_f64().max(1e-9);
                    eprintln!(
                        "# {label} phase={name} wall={:.3}s trials={n} rate={rate:.1} trials/s",
                        dt.as_secs_f64()
                    );
                }
                None => {
                    eprintln!("# {label} phase={name} wall={:.3}s", dt.as_secs_f64());
                }
            }
        }
        let trials: usize = self.phases.iter().filter_map(|(_, _, t)| *t).sum();
        let total = self.total().as_secs_f64();
        if trials > 0 {
            eprintln!(
                "# {label} total wall={total:.3}s trials={trials} rate={:.1} trials/s",
                trials as f64 / total.max(1e-9)
            );
        } else {
            eprintln!("# {label} total wall={total:.3}s");
        }
    }
}

/// Run one figure computation and print its wall time and link-trial rate
/// to stderr.
///
/// The trial count comes from the sweep executor's process-wide counters
/// ([`backfi_core::sweep::metrics_snapshot`]), so the binary doesn't need to
/// know how many jobs its figure fanned out. When the obs layer is enabled
/// the same numbers also land in the run manifest as gauges.
pub fn timed_figure<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let (jobs0, _) = backfi_core::sweep::metrics_snapshot();
    let t0 = Instant::now();
    let out = f();
    let wall = t0.elapsed().as_secs_f64();
    let (jobs1, _) = backfi_core::sweep::metrics_snapshot();
    let trials = jobs1 - jobs0;
    if trials > 0 {
        eprintln!(
            "# {label} wall={wall:.3}s trials={trials} rate={:.1} trials/s",
            trials as f64 / wall.max(1e-9)
        );
    } else {
        eprintln!("# {label} wall={wall:.3}s");
    }
    if backfi_obs::enabled() {
        backfi_obs::gauge_set("figure.wall_s", wall);
        backfi_obs::gauge_set("figure.trials", trials as f64);
        backfi_obs::gauge_set("figure.trials_per_s", trials as f64 / wall.max(1e-9));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "iters must be >= 1")]
    fn time_ns_rejects_zero_iters() {
        // A zero-iteration measurement must fail loudly, not report ~0 ns.
        time_ns(0, || {});
    }

    #[test]
    fn time_ns_measures_positive_time() {
        let ns = time_ns(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn phases_accumulate() {
        let mut t = PhaseTimer::new();
        std::thread::sleep(Duration::from_millis(2));
        t.mark("a");
        t.mark_with_trials("b", 10);
        assert_eq!(t.phases.len(), 2);
        assert!(t.total() >= Duration::from_millis(2));
        t.report("test"); // just exercise the printer
    }
}
