//! # backfi-bench
//!
//! The benchmark/reproduction harness: one binary per table and figure of
//! the paper's evaluation (§5–§6), plus wall-clock benches over the DSP
//! kernels and the end-to-end pipeline (`benches/`, plain timing loops —
//! no external bench framework in the offline build).
//!
//! Run a figure with e.g. `cargo run --release -p backfi-bench --bin
//! fig08_throughput_vs_range`. Every binary accepts `--quick` for a smoke
//! run and prints the same rows/series the paper reports, alongside the
//! paper's own numbers for comparison (recorded in EXPERIMENTS.md).

#![deny(missing_docs)]
#![warn(clippy::all)]

use backfi_core::figures::FigureBudget;

pub mod timing;

/// Parse the common CLI convention: `--quick` (alias `--short`) selects the
/// smoke budget, anything else (or nothing) the full reproduction budget.
pub fn budget_from_args() -> FigureBudget {
    if std::env::args().any(|a| a == "--quick" || a == "--short") {
        FigureBudget::quick()
    } else {
        FigureBudget::paper()
    }
}

/// Arm the observability layers for a figure binary.
///
/// Every figure calls this once at startup: `--obs` on the command line
/// force-enables recording (equivalent to `BACKFI_OBS=1`) and `--trace`
/// force-enables the event tracer (equivalent to `BACKFI_TRACE=1`). Run
/// metadata (figure id, quick/paper mode, trial budget, a config hash) is
/// stamped into the manifest, and the returned [`backfi_obs::RunScope`]
/// guard writes `OBS_<figure>.json` (recorder on) and/or `TRACE_<figure>.json`
/// (tracer on) at the repo root when it drops at the end of `main`.
///
/// Returns `None` when both layers are off — the figure then pays one
/// relaxed atomic load per instrumentation point, and no file is written.
/// All obs/trace output goes to stderr and the JSON files; stdout stays
/// byte-identical either way.
pub fn obs_setup(figure: &str, budget: &FigureBudget) -> Option<backfi_obs::RunScope> {
    if std::env::args().any(|a| a == "--obs") {
        backfi_obs::enable();
    }
    if std::env::args().any(|a| a == "--trace") {
        backfi_obs::trace::enable();
    }
    if !backfi_obs::enabled() && !backfi_obs::trace::enabled() {
        return None;
    }
    if backfi_obs::enabled() {
        let quick = std::env::args().any(|a| a == "--quick" || a == "--short");
        backfi_obs::set_meta("figure", figure);
        backfi_obs::set_meta("mode", if quick { "quick" } else { "paper" });
        backfi_obs::set_meta("trials", &budget.trials.to_string());
        let cfg = format!("{budget:?}");
        backfi_obs::set_meta(
            "config_hash",
            &format!("{:016x}", backfi_obs::fnv1a64(cfg.as_bytes())),
        );
    }
    backfi_obs::run_scope(figure)
}

/// Arm the fault-injection layer for a figure binary.
///
/// `--impair <spec>` (e.g. `--impair cfo:0.5,interference:1`, `--impair
/// all:0.25`, `--impair off`) installs the parsed impairment set process-wide;
/// without the flag the `BACKFI_IMPAIR` environment variable applies, and
/// with neither the layer is off and every figure's stdout is byte-identical
/// to a build without it. A malformed spec is a usage error: the binary
/// prints the parse error and exits with status 2 rather than silently
/// benchmarking the wrong fault model. The active (non-off) set is echoed to
/// stderr so logs record what was injected.
pub fn impair_setup() {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--impair" {
            let spec = args.next().unwrap_or_default();
            match backfi_chan::impair::Impairments::parse(&spec) {
                Ok(imp) => backfi_chan::impair::set_global(imp),
                Err(e) => {
                    eprintln!("error: --impair {spec:?}: {e}");
                    std::process::exit(2);
                }
            }
            break;
        }
    }
    let active = backfi_chan::impair::global();
    if !active.is_off() {
        eprintln!("# fault injection active: {active:?}");
    }
}

/// Arm the sweep service layer (result cache + worker sharding) for a
/// figure binary.
///
/// `--cache <dir>` (or `BACKFI_CACHE=<dir>`) opens/creates a persistent
/// content-addressed result cache there, so a rerun only computes grid
/// cells it has not seen — stdout is byte-identical to a cold run.
/// `--workers host:p1,host:p2` (or `BACKFI_WORKERS=...`) shards grid cells
/// across `sweep_worker` processes over TCP, bit-identical to in-process
/// execution for any worker count. `--sweep-timeout <ms>` (or
/// `BACKFI_SWEEP_TIMEOUT_MS`) bounds every shard attempt — connect, HELLO
/// and result wait — so no worker failure mode can hang a figure.
/// `--chaos <spec>` (or `BACKFI_CHAOS=<spec>`, e.g. `drop:0.25`,
/// `all:0.1,seed:7`) arms the deterministic fault-injection transport that
/// exercises the retry/re-dispatch/fallback machinery; output stays
/// byte-identical under any spec. With none of these, the sweep layer is
/// untouched and default runs stay byte-identical to a build without it.
///
/// A malformed worker list, timeout or chaos spec is a usage error (exit 2),
/// matching [`impair_setup`]. An *unusable cache directory* is deliberately
/// not: the cache degrades to pass-through with a warning and a
/// `sweep.cache.disabled` counter, because a full disk must cost recompute
/// time, never the run. Active layers are echoed to stderr.
pub fn sweep_setup() {
    let mut cache_dir: Option<String> = std::env::var("BACKFI_CACHE").ok();
    let mut workers: Option<String> = std::env::var("BACKFI_WORKERS").ok();
    let mut timeout_ms: Option<String> = std::env::var("BACKFI_SWEEP_TIMEOUT_MS").ok();
    let mut chaos: Option<String> = std::env::var("BACKFI_CHAOS").ok();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let mut take = |what: &str| match args.next() {
            Some(v) if !v.is_empty() && !v.starts_with("--") => v,
            _ => {
                eprintln!("error: {a} requires {what}");
                std::process::exit(2);
            }
        };
        if a == "--cache" {
            cache_dir = Some(take("a directory argument"));
        } else if a == "--workers" {
            workers = Some(take("host:port[,host:port...]"));
        } else if a == "--sweep-timeout" {
            timeout_ms = Some(take("a per-shard deadline in milliseconds"));
        } else if a == "--chaos" {
            chaos = Some(take("a chaos spec (e.g. drop:0.25 or all:0.1)"));
        }
    }
    if let Some(ms) = timeout_ms {
        match ms.trim().parse::<u64>() {
            Ok(v) if v > 0 => {
                // `ServiceConfig::from_env` reads this when the pool is
                // built below (and in any in-process worker), so the flag
                // and the env variable share one code path.
                std::env::set_var("BACKFI_SWEEP_TIMEOUT_MS", v.to_string());
                eprintln!("# sweep shard deadline: {v} ms");
            }
            _ => {
                eprintln!("error: --sweep-timeout {ms:?}: not a positive integer (milliseconds)");
                std::process::exit(2);
            }
        }
    }
    if let Some(spec) = chaos {
        match backfi_core::sweep::service::chaos::ChaosSpec::parse(&spec) {
            Ok(parsed) => {
                if !parsed.is_off() {
                    eprintln!("# sweep chaos active: {parsed:?}");
                }
                backfi_core::sweep::service::chaos::set_global(Some(parsed));
            }
            Err(e) => {
                eprintln!("error: --chaos {spec:?}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = cache_dir {
        let path = std::path::Path::new(&dir);
        if let Err(e) = backfi_core::sweep::cache::set_global(Some(path)) {
            backfi_obs::counter_add("sweep.cache.disabled", 1);
            eprintln!(
                "warning: cache dir {dir:?} unusable ({e}); continuing without a result cache"
            );
        } else {
            eprintln!("# sweep result cache: {dir}");
        }
    }
    if let Some(spec) = workers {
        match backfi_core::sweep::service::pool_from_spec(&spec) {
            Ok(pool) => {
                eprintln!("# sweep worker pool: {} worker(s) ({spec})", pool.len());
                backfi_core::sweep::service::set_global(Some(pool));
            }
            Err(e) => {
                eprintln!("error: --workers {spec:?}: {e}");
                std::process::exit(2);
            }
        }
    }
}

/// Format a bit/s figure the way the paper writes it (kbps/Mbps).
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e6 {
        format!("{:.2} Mbps", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.1} Kbps", bps / 1e3)
    } else {
        format!("{bps:.0} bps")
    }
}

/// Print a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Print the standard experiment header.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    rule(78);
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    rule(78);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bps_formatting() {
        assert_eq!(fmt_bps(5.0e6), "5.00 Mbps");
        assert_eq!(fmt_bps(6.67e6), "6.67 Mbps");
        assert_eq!(fmt_bps(10e3), "10.0 Kbps");
        assert_eq!(fmt_bps(500.0), "500 bps");
    }
}
