//! Wall-clock benches over the DSP/coding kernels that dominate the
//! simulator's runtime. Plain `harness = false` timing loops (no external
//! bench framework in the offline build): each kernel is warmed up, then
//! timed over enough iterations to smooth scheduler noise, and reported as
//! ns/iter on stdout.
//!
//! Besides the human-readable lines, every point lands in
//! `BENCH_kernels.json` at the repo root via [`BenchReport`] — the
//! machine-readable perf trajectory diffed across PRs. The direct-vs-FFT and
//! old-vs-new pairs double as the empirical record behind the dispatch
//! crossover constants in `backfi_dsp::fir` (see DESIGN.md §8).
//!
//! Pass `--short` for the CI smoke run (fewer iterations, same size grid).

use backfi_bench::timing::{bench, BenchReport};
use backfi_dsp::fastconv;
use backfi_dsp::fft::FftPlan;
use backfi_dsp::fir::{self, filter, ConvMode};
use backfi_dsp::noise::cgauss_vec;
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::Complex;
use backfi_sic::estimator::{estimate_fir, estimate_fir_direct};
use std::hint::black_box;

/// Scale an iteration count down for `--short` CI smoke runs.
fn iters(full: u32, short: bool) -> u32 {
    if short {
        (full / 10).max(2)
    } else {
        full
    }
}

/// Direct-vs-FFT convolution over a size grid straddling the dispatch
/// crossover. The (8192, 256) point is the acceptance benchmark: the FFT
/// path must beat the direct form by ≥ 3× there.
fn bench_convolve_grid(rep: &mut BenchReport, short: bool) {
    let mut rng = SplitMix64::new(0x11);
    // (n, l, iters): sizes below, at, and far past the crossover.
    const GRID: &[(usize, usize, u32)] = &[
        (2048, 48, 200),
        (4096, 48, 100),
        (4096, 128, 60),
        (8192, 256, 30),
        (16384, 512, 10),
    ];
    for &(n, l, it) in GRID {
        let x = cgauss_vec(&mut rng, n, 1.0);
        let h = cgauss_vec(&mut rng, l, 1.0);
        let it = iters(it, short);
        rep.measure("convolve", "direct", n, l, n, it, || {
            black_box(fir::convolve_direct(black_box(&x), black_box(&h), ConvMode::Full)[0]);
        });
        rep.measure("convolve", "fft", n, l, n, it, || {
            black_box(fastconv::convolve_full_fft(black_box(&x), black_box(&h))[0]);
        });
        rep.measure("convolve", "auto", n, l, n, it, || {
            black_box(fir::convolve(black_box(&x), black_box(&h), ConvMode::Full)[0]);
        });
    }
}

/// Direct-vs-FFT cross-correlation at the template sizes the receiver uses
/// (64-tap LTF) and beyond.
fn bench_xcorr_grid(rep: &mut BenchReport, short: bool) {
    let mut rng = SplitMix64::new(0x22);
    const GRID: &[(usize, usize, u32)] = &[(4096, 64, 100), (8192, 128, 40), (16384, 256, 10)];
    for &(n, l, it) in GRID {
        let x = cgauss_vec(&mut rng, n, 1.0);
        let t = cgauss_vec(&mut rng, l, 1.0);
        let it = iters(it, short);
        rep.measure("xcorr", "direct", n, l, n, it, || {
            black_box(backfi_dsp::correlate::xcorr_direct(black_box(&x), black_box(&t))[0]);
        });
        rep.measure("xcorr", "fft", n, l, n, it, || {
            black_box(fastconv::xcorr_fft(black_box(&x), black_box(&t))[0]);
        });
        rep.measure("xcorr", "auto", n, l, n, it, || {
            black_box(backfi_dsp::correlate::xcorr(black_box(&x), black_box(&t))[0]);
        });
    }
}

/// Old-vs-new FIR least-squares estimator. The (4096, 64) point is the
/// acceptance benchmark: the Toeplitz prefix-sum build must beat the direct
/// O(N·taps²) build by ≥ 3×.
fn bench_estimator_grid(rep: &mut BenchReport, short: bool) {
    let mut rng = SplitMix64::new(0x33);
    const GRID: &[(usize, usize, u32)] = &[(640, 6, 200), (2048, 28, 30), (4096, 64, 10)];
    for &(n, taps, it) in GRID {
        let x = cgauss_vec(&mut rng, n, 1.0);
        let h: Vec<Complex> = cgauss_vec(&mut rng, taps.min(8), 0.01);
        let y = filter(&h, &x);
        let it = iters(it, short);
        rep.measure("estimate_fir", "direct", n, taps, n, it, || {
            black_box(estimate_fir_direct(&x, &y, taps, 1e-9).map(|v| v.len()));
        });
        rep.measure("estimate_fir", "toeplitz", n, taps, n, it, || {
            black_box(estimate_fir(&x, &y, taps, 1e-9).map(|v| v.len()));
        });
    }
}

/// Plan-cache effect: fresh-plan FFT vs cached-plan FFT at the OFDM size.
fn bench_fft(rep: &mut BenchReport, short: bool) {
    let mut rng = SplitMix64::new(1);
    let buf = cgauss_vec(&mut rng, 64, 1.0);
    let it = iters(2000, short);
    rep.measure("fft64", "fresh_plan", 64, 0, 64, it, || {
        let plan = FftPlan::new(64);
        let mut x = buf.clone();
        plan.forward(black_box(&mut x));
        black_box(x[0]);
    });
    rep.measure("fft64", "cached_plan", 64, 0, 64, it, || {
        black_box(backfi_dsp::fft::fft(black_box(&buf))[0]);
    });
}

/// The pipeline-shaped kernels kept from the original bench set (short
/// kernels stay on the exact direct path by design).
fn bench_pipeline_kernels(rep: &mut BenchReport, short: bool) {
    let mut rng = SplitMix64::new(2);
    let x = cgauss_vec(&mut rng, 20_000, 1.0);
    let h = cgauss_vec(&mut rng, 24, 0.01);
    rep.measure(
        "fir_filter",
        "auto",
        20_000,
        24,
        20_000,
        iters(50, short),
        || {
            black_box(filter(black_box(&h), black_box(&x))[0]);
        },
    );

    let mut rng = SplitMix64::new(3);
    let x = cgauss_vec(&mut rng, 4_000, 1.0);
    let t = cgauss_vec(&mut rng, 64, 1.0);
    rep.measure(
        "xcorr_normalized",
        "auto",
        4_000,
        64,
        4_000,
        iters(50, short),
        || {
            black_box(backfi_dsp::correlate::xcorr_normalized(&x, &t)[0]);
        },
    );

    let bits: Vec<bool> = (0..1000).map(|i| (i * 31) % 7 > 2).collect();
    let mut enc = backfi_coding::ConvEncoder::ieee80211();
    let coded = enc.encode_terminated(&bits);
    let soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
    let dec = backfi_coding::ViterbiDecoder::ieee80211();
    rep.measure(
        "viterbi_k7",
        "auto",
        1000,
        0,
        1000,
        iters(50, short),
        || {
            black_box(dec.decode_soft_terminated(black_box(&soft)).len());
        },
    );

    let mut rng = SplitMix64::new(5);
    let reference = cgauss_vec(&mut rng, 20, 1.0);
    let y: Vec<Complex> = reference.iter().map(|r| *r * Complex::exp_j(0.7)).collect();
    rep.measure(
        "mrc_symbol",
        "auto",
        20,
        0,
        20,
        iters(20_000, short),
        || {
            black_box(backfi_reader::mrc::mrc_symbol(
                black_box(&y),
                black_box(&reference),
                4,
                1e-9,
            ));
        },
    );
}

/// The disabled observability fast path. With the recorder and the tracer
/// both off, a span guard is one relaxed atomic load and a branch at
/// construction and the same again at drop — the acceptance bound is
/// < 5 ns per call, i.e. instrumentation points are free to leave in the
/// per-trial hot path unconditionally.
fn bench_obs_overhead(rep: &mut BenchReport, short: bool) {
    backfi_obs::disable();
    backfi_obs::trace::disable();
    const CALLS: usize = 1024;
    let ns = rep.measure(
        "obs_span",
        "disabled",
        CALLS,
        0,
        CALLS,
        iters(2000, short),
        || {
            for _ in 0..CALLS {
                drop(black_box(backfi_obs::span(black_box("bench.obs_overhead"))));
            }
        },
    );
    let per_call = ns / CALLS as f64;
    println!("disabled span path: {per_call:.2} ns/call");
    assert!(
        per_call < 5.0,
        "disabled span guard must stay under 5 ns/call, got {per_call:.2}"
    );
}

/// Assert the acceptance speedups from the recorded trajectory and print the
/// ratio table: FFT convolution ≥ 3× direct at (8192, 256), Toeplitz
/// estimator ≥ 3× direct at (4096, 64). Skipped in `--short` mode where the
/// low iteration counts make ratios noisy.
fn check_speedups(rep: &BenchReport, short: bool) {
    let find = |name: &str| {
        rep.records()
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing bench record {name}"))
            .ns_per_iter
    };
    let pairs = [
        ("convolve_direct_n8192_l256", "convolve_fft_n8192_l256"),
        (
            "estimate_fir_direct_n4096_l64",
            "estimate_fir_toeplitz_n4096_l64",
        ),
    ];
    for (slow, fast) in pairs {
        let ratio = find(slow) / find(fast);
        println!("speedup {fast} vs {slow}: {ratio:.1}x");
        if !short {
            assert!(ratio >= 3.0, "{fast} only {ratio:.2}x faster than {slow}");
        }
    }
}

fn main() {
    let short = BenchReport::short_mode();
    let mut rep = BenchReport::new("kernels", if short { "short" } else { "full" });

    bench_fft(&mut rep, short);
    bench_convolve_grid(&mut rep, short);
    bench_xcorr_grid(&mut rep, short);
    bench_estimator_grid(&mut rep, short);
    bench_pipeline_kernels(&mut rep, short);
    bench_obs_overhead(&mut rep, short);

    // Legacy single-line smoke point kept for continuity with older logs.
    let mut rng = SplitMix64::new(4);
    let x = cgauss_vec(&mut rng, 640, 1.0);
    let h: Vec<Complex> = cgauss_vec(&mut rng, 6, 0.01);
    let y = filter(&h, &x);
    bench("ls_estimate_640samples_6taps", iters(200, short), || {
        black_box(estimate_fir(&x, &y, 6, 1e-9).map(|v| v.len()));
    });

    check_speedups(&rep, short);
    let path = rep.write();
    println!("wrote {}", path.display());
}
