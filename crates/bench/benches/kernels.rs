//! Wall-clock benches over the DSP/coding kernels that dominate the
//! simulator's runtime. Plain `harness = false` timing loops (no external
//! bench framework in the offline build): each kernel is warmed up, then
//! timed over enough iterations to smooth scheduler noise, and reported as
//! ns/iter on stdout.

use backfi_bench::timing::bench;
use backfi_dsp::fft::FftPlan;
use backfi_dsp::fir::filter;
use backfi_dsp::noise::cgauss_vec;
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::Complex;
use backfi_sic::estimator::estimate_fir;
use std::hint::black_box;

fn bench_fft() {
    let plan = FftPlan::new(64);
    let mut rng = SplitMix64::new(1);
    let buf = cgauss_vec(&mut rng, 64, 1.0);
    bench("fft64_forward", 2000, || {
        let mut x = buf.clone();
        plan.forward(black_box(&mut x));
        black_box(x[0]);
    });
}

fn bench_fir() {
    let mut rng = SplitMix64::new(2);
    let x = cgauss_vec(&mut rng, 20_000, 1.0);
    let h = cgauss_vec(&mut rng, 24, 0.01);
    bench("fir_filter_20k_x_24taps", 50, || {
        black_box(filter(black_box(&h), black_box(&x))[0]);
    });
}

fn bench_xcorr() {
    let mut rng = SplitMix64::new(3);
    let x = cgauss_vec(&mut rng, 4_000, 1.0);
    let t = cgauss_vec(&mut rng, 64, 1.0);
    bench("xcorr_normalized_4k_x_64", 50, || {
        black_box(backfi_dsp::correlate::xcorr_normalized(&x, &t)[0]);
    });
}

fn bench_viterbi() {
    let bits: Vec<bool> = (0..1000).map(|i| (i * 31) % 7 > 2).collect();
    let mut enc = backfi_coding::ConvEncoder::ieee80211();
    let coded = enc.encode_terminated(&bits);
    let soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
    let dec = backfi_coding::ViterbiDecoder::ieee80211();
    bench("viterbi_k7_1000bits", 50, || {
        black_box(dec.decode_soft_terminated(black_box(&soft)).len());
    });
}

fn bench_ls_estimator() {
    let mut rng = SplitMix64::new(4);
    let x = cgauss_vec(&mut rng, 640, 1.0);
    let h: Vec<Complex> = cgauss_vec(&mut rng, 6, 0.01);
    let y = filter(&h, &x);
    bench("ls_estimate_640samples_6taps", 200, || {
        black_box(estimate_fir(&x, &y, 6, 1e-9).map(|v| v.len()));
    });
}

fn bench_mrc() {
    let mut rng = SplitMix64::new(5);
    let reference = cgauss_vec(&mut rng, 20, 1.0);
    let y: Vec<Complex> = reference.iter().map(|r| *r * Complex::exp_j(0.7)).collect();
    bench("mrc_symbol_20samples", 20_000, || {
        black_box(backfi_reader::mrc::mrc_symbol(
            black_box(&y),
            black_box(&reference),
            4,
            1e-9,
        ));
    });
}

fn main() {
    bench_fft();
    bench_fir();
    bench_xcorr();
    bench_viterbi();
    bench_ls_estimator();
    bench_mrc();
}
