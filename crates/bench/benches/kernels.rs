//! Criterion benches over the DSP/coding kernels that dominate the
//! simulator's runtime.

use backfi_dsp::fft::FftPlan;
use backfi_dsp::fir::filter;
use backfi_dsp::noise::cgauss_vec;
use backfi_dsp::Complex;
use backfi_sic::estimator::estimate_fir;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let plan = FftPlan::new(64);
    let mut rng = StdRng::seed_from_u64(1);
    let buf = cgauss_vec(&mut rng, 64, 1.0);
    c.bench_function("fft64_forward", |b| {
        b.iter(|| {
            let mut x = buf.clone();
            plan.forward(black_box(&mut x));
            black_box(x[0])
        })
    });
}

fn bench_fir(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = cgauss_vec(&mut rng, 20_000, 1.0);
    let h = cgauss_vec(&mut rng, 24, 0.01);
    c.bench_function("fir_filter_20k_x_24taps", |b| {
        b.iter(|| black_box(filter(black_box(&h), black_box(&x)))[0])
    });
}

fn bench_xcorr(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = cgauss_vec(&mut rng, 4_000, 1.0);
    let t = cgauss_vec(&mut rng, 64, 1.0);
    c.bench_function("xcorr_normalized_4k_x_64", |b| {
        b.iter(|| black_box(backfi_dsp::correlate::xcorr_normalized(&x, &t))[0])
    });
}

fn bench_viterbi(c: &mut Criterion) {
    let bits: Vec<bool> = (0..1000).map(|i| (i * 31) % 7 > 2).collect();
    let mut enc = backfi_coding::ConvEncoder::ieee80211();
    let coded = enc.encode_terminated(&bits);
    let soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
    let dec = backfi_coding::ViterbiDecoder::ieee80211();
    c.bench_function("viterbi_k7_1000bits", |b| {
        b.iter(|| black_box(dec.decode_soft_terminated(black_box(&soft))).len())
    });
}

fn bench_ls_estimator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let x = cgauss_vec(&mut rng, 640, 1.0);
    let h: Vec<Complex> = cgauss_vec(&mut rng, 6, 0.01);
    let y = filter(&h, &x);
    c.bench_function("ls_estimate_640samples_6taps", |b| {
        b.iter(|| black_box(estimate_fir(&x, &y, 6, 1e-9)).map(|v| v.len()))
    });
}

fn bench_mrc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let reference = cgauss_vec(&mut rng, 20, 1.0);
    let y: Vec<Complex> = reference.iter().map(|r| *r * Complex::exp_j(0.7)).collect();
    c.bench_function("mrc_symbol_20samples", |b| {
        b.iter(|| backfi_reader::mrc::mrc_symbol(black_box(&y), black_box(&reference), 4, 1e-9))
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_fft, bench_fir, bench_xcorr, bench_viterbi, bench_ls_estimator, bench_mrc
}
criterion_main!(kernels);
