//! Wall-clock benches over the composed pipelines: WiFi TX/RX, the
//! self-interference canceller, and a full BackFi link exchange. Plain
//! `harness = false` timing loops (no external bench framework in the
//! offline build).
//!
//! Every point also lands in `BENCH_pipeline.json` at the repo root via
//! [`BenchReport`] — the machine-readable perf trajectory diffed across PRs.
//! Pass `--short` for the CI smoke run.

use backfi_bench::timing::BenchReport;
use backfi_core::link::{LinkConfig, LinkSimulator};
use backfi_dsp::noise::add_noise;
use backfi_dsp::rng::SplitMix64;
use backfi_wifi::{Mcs, WifiReceiver, WifiTransmitter};
use std::hint::black_box;

/// Scale an iteration count down for `--short` CI smoke runs.
fn iters(full: u32, short: bool) -> u32 {
    if short {
        (full / 10).max(2)
    } else {
        full
    }
}

fn bench_wifi_tx(rep: &mut BenchReport, short: bool) {
    let _ = short; // calibrated points size themselves by wall time
    let tx = WifiTransmitter::new();
    let psdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
    let samples = tx.transmit(&psdu, Mcs::Mbps24, 0x5D).samples.len();
    rep.measure_calibrated("wifi_tx_500B_24mbps", "auto", samples, 0, samples, || {
        black_box(
            tx.transmit(black_box(&psdu), Mcs::Mbps24, 0x5D)
                .samples
                .len(),
        );
    });
}

/// Receive throughput recorded by the batched-Viterbi SoA pipeline
/// (`BENCH_pipeline.json` as committed by PR 5) — the denominator of the
/// asserted speedup gate below. The pre-SoA PR 2 baseline was 789,399.101
/// samples/s; the current gate compounds on the PR 5 number.
const WIFI_RX_BASELINE_SAMPLES_PER_SEC: f64 = 5_681_119.803;

fn bench_wifi_rx(rep: &mut BenchReport, short: bool) {
    let tx = WifiTransmitter::new();
    let rx = WifiReceiver::default();
    let psdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
    let pkt = tx.transmit(&psdu, Mcs::Mbps24, 0x5D);
    let mut buf = pkt.samples.clone();
    let mut rng = SplitMix64::new(1);
    add_noise(&mut rng, &mut buf, 1e-4);
    let n = buf.len();
    // Asserted speedup gate (same contract as the PR 2 kernel gates): the
    // packed-survivor Viterbi + batched FFT/demap receive path must hold a
    // 2x advantage over the recorded PR 5 baseline, or the bench run fails.
    // `--short` smoke runs use a looser floor to absorb CI timer noise.
    let floor = if short { 1.2 } else { 2.0 };
    let gate_ns = n as f64 / (floor * WIFI_RX_BASELINE_SAMPLES_PER_SEC) * 1e9;
    let ns = rep.measure_calibrated_gated("wifi_rx_500B_24mbps", "auto", n, 0, n, gate_ns, || {
        black_box(rx.receive(black_box(&buf)).is_ok());
    });
    let samples_per_sec = n as f64 / (ns * 1e-9);
    assert!(
        samples_per_sec >= floor * WIFI_RX_BASELINE_SAMPLES_PER_SEC,
        "wifi_rx regression: {samples_per_sec:.0} samples/s < {floor}x baseline {WIFI_RX_BASELINE_SAMPLES_PER_SEC:.0}"
    );

    // High-rate point: a full 1500 B MPDU at 54 Mbps (64-QAM, rate 3/4)
    // stresses the fused demapper and depuncturer instead of the rate-1/2
    // Viterbi. Required by the CI bench validator (presence + nonzero
    // samples/s) so the trajectory always carries a 64-QAM receive number.
    let psdu_big: Vec<u8> = (0..1500).map(|i| i as u8).collect();
    let pkt_big = tx.transmit(&psdu_big, Mcs::Mbps54, 0x5D);
    let mut buf_big = pkt_big.samples.clone();
    let mut rng_big = SplitMix64::new(2);
    add_noise(&mut rng_big, &mut buf_big, 1e-5);
    assert!(
        rx.receive(&buf_big).is_ok(),
        "54 Mbps bench packet must decode"
    );
    let n_big = buf_big.len();
    rep.measure_calibrated("wifi_rx_1500B_54mbps", "auto", n_big, 0, n_big, || {
        black_box(rx.receive(black_box(&buf_big)).is_ok());
    });
}

/// Link-exchange throughput recorded by the PR 5 pipeline — denominator of
/// the 1.5x gate on the SIMD-trained exchange below.
const LINK_BASELINE_SAMPLES_PER_SEC: f64 = 2_773_412.296;

fn bench_full_link(rep: &mut BenchReport, short: bool) {
    let mut cfg = LinkConfig::at_distance(1.0);
    cfg.excitation.wifi_payload_bytes = 1200;
    let sim = LinkSimulator::new(cfg);
    // One "iteration" processes the whole excitation capture, so the
    // per-second figure must be charged against its sample count — a zero
    // here used to make the record claim 0 samples/s (and the CI validator
    // now rejects such records outright).
    let n = sim.excitation().samples.len();
    assert!(n > 0, "link excitation produced no samples");
    let mut seed = 0u64;
    // Asserted speedup gate: SIMD-routed training (estimate_fir Gram build,
    // digital canceller inner products, chanest accumulations) plus the
    // planar tag demapper must hold 1.5x over the recorded PR 5 baseline.
    let floor = if short { 1.0 } else { 1.5 };
    let gate_ns = n as f64 / (floor * LINK_BASELINE_SAMPLES_PER_SEC) * 1e9;
    let ns = rep.measure_calibrated_gated(
        "backfi_link_exchange_0p5ms",
        "auto",
        n,
        0,
        n,
        gate_ns,
        || {
            seed += 1;
            black_box(sim.run(seed).success);
        },
    );
    let samples_per_sec = n as f64 / (ns * 1e-9);
    assert!(
        samples_per_sec >= floor * LINK_BASELINE_SAMPLES_PER_SEC,
        "link exchange regression: {samples_per_sec:.0} samples/s < {floor}x baseline {LINK_BASELINE_SAMPLES_PER_SEC:.0}"
    );
}

fn bench_sweep_cache_replay(rep: &mut BenchReport, short: bool) {
    use backfi_core::sweep::{cache::ResultCache, grid_cells, run_grid_indexed_cached, Executor};
    use backfi_tag::config::TagConfig;

    let dir = std::env::temp_dir().join(format!("backfi-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::open(&dir).expect("open bench cache store");
    let mut base = LinkConfig::at_distance(1.0);
    base.excitation.wifi_payload_bytes = 1200;
    let mut cells = grid_cells(&base, &[TagConfig::default()]);
    cells.extend(grid_cells(
        &LinkConfig::at_distance(2.0),
        &[TagConfig::default()],
    ));
    let trials = if short { 2 } else { 4 };
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let exec = Executor::new();
    let jobs = cells.len() * trials;

    // Cold path: re-chill the store inside the closure so every timed
    // iteration (including `time_ns`'s warm-up call) recomputes the grid.
    let cold_ns = rep.measure(
        "sweep_cache_replay",
        "cold",
        jobs,
        0,
        jobs,
        iters(5, short),
        || {
            cache.clear_entries().expect("clear bench cache store");
            black_box(run_grid_indexed_cached(&exec, &cache, &cells, trials, 1000, &bases).len());
        },
    );
    // Warm path: the store is populated (the cold bench's last iteration left
    // it warm); every iteration serves all cells from disk.
    let warm_ns = rep.measure(
        "sweep_cache_replay",
        "warm",
        jobs,
        0,
        jobs,
        iters(20, short),
        || {
            black_box(run_grid_indexed_cached(&exec, &cache, &cells, trials, 1000, &bases).len());
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    // Replay gate: serving from the content-addressed store must beat
    // recomputation by a wide margin, or the cache is pure overhead.
    assert!(
        warm_ns * 2.0 <= cold_ns,
        "sweep cache replay too slow: warm {warm_ns:.0} ns vs cold {cold_ns:.0} ns"
    );
}

fn main() {
    let short = BenchReport::short_mode();
    let mut rep = BenchReport::new("pipeline", if short { "short" } else { "full" });
    bench_wifi_tx(&mut rep, short);
    bench_wifi_rx(&mut rep, short);
    bench_full_link(&mut rep, short);
    bench_sweep_cache_replay(&mut rep, short);
    let path = rep.write();
    println!("wrote {}", path.display());
}
