//! Wall-clock benches over the composed pipelines: WiFi TX/RX, the
//! self-interference canceller, and a full BackFi link exchange. Plain
//! `harness = false` timing loops (no external bench framework in the
//! offline build).

use backfi_bench::timing::bench;
use backfi_core::link::{LinkConfig, LinkSimulator};
use backfi_dsp::noise::add_noise;
use backfi_dsp::rng::SplitMix64;
use backfi_wifi::{Mcs, WifiReceiver, WifiTransmitter};
use std::hint::black_box;

fn bench_wifi_tx() {
    let tx = WifiTransmitter::new();
    let psdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
    bench("wifi_tx_500B_24mbps", 50, || {
        black_box(
            tx.transmit(black_box(&psdu), Mcs::Mbps24, 0x5D)
                .samples
                .len(),
        );
    });
}

fn bench_wifi_rx() {
    let tx = WifiTransmitter::new();
    let rx = WifiReceiver::default();
    let psdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
    let pkt = tx.transmit(&psdu, Mcs::Mbps24, 0x5D);
    let mut buf = pkt.samples.clone();
    let mut rng = SplitMix64::new(1);
    add_noise(&mut rng, &mut buf, 1e-4);
    bench("wifi_rx_500B_24mbps", 20, || {
        black_box(rx.receive(black_box(&buf)).is_ok());
    });
}

fn bench_full_link() {
    let mut cfg = LinkConfig::at_distance(1.0);
    cfg.excitation.wifi_payload_bytes = 1200;
    let sim = LinkSimulator::new(cfg);
    let mut seed = 0u64;
    bench("backfi_link_exchange_0p5ms", 10, || {
        seed += 1;
        black_box(sim.run(seed).success);
    });
}

fn main() {
    bench_wifi_tx();
    bench_wifi_rx();
    bench_full_link();
}
