//! Criterion benches over the composed pipelines: WiFi TX/RX, the
//! self-interference canceller, and a full BackFi link exchange.

use backfi_core::link::{LinkConfig, LinkSimulator};
use backfi_dsp::noise::add_noise;
use backfi_wifi::{Mcs, WifiReceiver, WifiTransmitter};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_wifi_tx(c: &mut Criterion) {
    let tx = WifiTransmitter::new();
    let psdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
    c.bench_function("wifi_tx_500B_24mbps", |b| {
        b.iter(|| black_box(tx.transmit(black_box(&psdu), Mcs::Mbps24, 0x5D)).samples.len())
    });
}

fn bench_wifi_rx(c: &mut Criterion) {
    let tx = WifiTransmitter::new();
    let rx = WifiReceiver::default();
    let psdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
    let pkt = tx.transmit(&psdu, Mcs::Mbps24, 0x5D);
    let mut buf = pkt.samples.clone();
    let mut rng = StdRng::seed_from_u64(1);
    add_noise(&mut rng, &mut buf, 1e-4);
    c.bench_function("wifi_rx_500B_24mbps", |b| {
        b.iter(|| black_box(rx.receive(black_box(&buf))).is_ok())
    });
}

fn bench_full_link(c: &mut Criterion) {
    let mut cfg = LinkConfig::at_distance(1.0);
    cfg.excitation.wifi_payload_bytes = 1200;
    let sim = LinkSimulator::new(cfg);
    c.bench_function("backfi_link_exchange_0p5ms", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(sim.run(seed)).success
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = pipeline;
    config = config();
    targets = bench_wifi_tx, bench_wifi_rx, bench_full_link
}
criterion_main!(pipeline);
