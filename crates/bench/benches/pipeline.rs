//! Wall-clock benches over the composed pipelines: WiFi TX/RX, the
//! self-interference canceller, and a full BackFi link exchange. Plain
//! `harness = false` timing loops (no external bench framework in the
//! offline build).
//!
//! Every point also lands in `BENCH_pipeline.json` at the repo root via
//! [`BenchReport`] — the machine-readable perf trajectory diffed across PRs.
//! Pass `--short` for the CI smoke run.

use backfi_bench::timing::BenchReport;
use backfi_core::link::{LinkConfig, LinkSimulator};
use backfi_dsp::noise::add_noise;
use backfi_dsp::rng::SplitMix64;
use backfi_wifi::{Mcs, WifiReceiver, WifiTransmitter};
use std::hint::black_box;

/// Scale an iteration count down for `--short` CI smoke runs.
fn iters(full: u32, short: bool) -> u32 {
    if short {
        (full / 10).max(2)
    } else {
        full
    }
}

fn bench_wifi_tx(rep: &mut BenchReport, short: bool) {
    let tx = WifiTransmitter::new();
    let psdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
    let samples = tx.transmit(&psdu, Mcs::Mbps24, 0x5D).samples.len();
    rep.measure(
        "wifi_tx_500B_24mbps",
        "auto",
        samples,
        0,
        samples,
        iters(50, short),
        || {
            black_box(
                tx.transmit(black_box(&psdu), Mcs::Mbps24, 0x5D)
                    .samples
                    .len(),
            );
        },
    );
}

fn bench_wifi_rx(rep: &mut BenchReport, short: bool) {
    let tx = WifiTransmitter::new();
    let rx = WifiReceiver::default();
    let psdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
    let pkt = tx.transmit(&psdu, Mcs::Mbps24, 0x5D);
    let mut buf = pkt.samples.clone();
    let mut rng = SplitMix64::new(1);
    add_noise(&mut rng, &mut buf, 1e-4);
    let n = buf.len();
    rep.measure(
        "wifi_rx_500B_24mbps",
        "auto",
        n,
        0,
        n,
        iters(20, short),
        || {
            black_box(rx.receive(black_box(&buf)).is_ok());
        },
    );
}

fn bench_full_link(rep: &mut BenchReport, short: bool) {
    let mut cfg = LinkConfig::at_distance(1.0);
    cfg.excitation.wifi_payload_bytes = 1200;
    let sim = LinkSimulator::new(cfg);
    let mut seed = 0u64;
    rep.measure(
        "backfi_link_exchange_0p5ms",
        "auto",
        0,
        0,
        0,
        iters(10, short),
        || {
            seed += 1;
            black_box(sim.run(seed).success);
        },
    );
}

fn main() {
    let short = BenchReport::short_mode();
    let mut rep = BenchReport::new("pipeline", if short { "short" } else { "full" });
    bench_wifi_tx(&mut rep, short);
    bench_wifi_rx(&mut rep, short);
    bench_full_link(&mut rep, short);
    let path = rep.write();
    println!("wrote {}", path.display());
}
