//! Cross-process telemetry regression tests: a sharded run against real
//! `sweep_worker` subprocesses must land the same counter totals in the
//! coordinator's registry as the equivalent in-process run (the worker-side
//! observability loss fixed by the telemetry blocks in RESULT frames), and
//! with tracing on the merged timeline must carry one lane per worker
//! process.

use backfi_core::sweep::service::{self, WorkerPool};
use backfi_core::sweep::{grid_cells, run_grid_on, Executor};
use backfi_core::LinkConfig;
use backfi_obs as obs;
use backfi_tag::config::TagConfig;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A `sweep_worker` subprocess, killed on drop.
struct Worker {
    child: Child,
    addr: String,
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn the real worker binary on an OS-assigned port and parse the bound
/// address from its stderr announcement.
fn spawn_worker_process() -> Worker {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sweep_worker"))
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sweep_worker");
    let stderr = child.stderr.take().expect("worker stderr piped");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("worker exited before announcing its address")
            .expect("read worker stderr");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after 'listening on'")
                .to_string();
        }
    };
    // Keep draining so the worker never blocks on a full stderr pipe.
    std::thread::spawn(move || for _ in lines {});
    Worker { child, addr }
}

/// Small 4-cell grid (mirrors the core service tests).
fn grid() -> Vec<LinkConfig> {
    let slow = TagConfig::default();
    let fast = TagConfig {
        symbol_rate_hz: 2.5e6,
        ..TagConfig::default()
    };
    let mut cells = Vec::new();
    for &d in &[1.0, 2.5] {
        let mut base = LinkConfig::at_distance(d);
        base.excitation.wifi_payload_bytes = 1200;
        cells.extend(grid_cells(&base, &[slow, fast]));
    }
    cells
}

/// The deterministic per-trial counters: everything the link/reader layers
/// count. Excludes `excitation.cache_*` (thread-scheduling-dependent: racing
/// first-builds each count a miss) and `sweep.*` (topology-dependent by
/// design — cache and service counters describe *where* work ran).
fn trial_counters() -> BTreeMap<String, u64> {
    obs::counter_dump()
        .into_iter()
        .filter(|(n, _)| n.starts_with("link.") || n.starts_with("reader."))
        .collect()
}

#[test]
fn sharded_counter_totals_match_in_process_run() {
    let _g = lock();
    let cells = grid();
    let trials = 2usize;
    let seed0 = 4242u64;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();

    obs::disable();
    obs::reset();
    obs::enable();
    let reference = run_grid_on(&Executor::new(), &cells, trials, seed0);
    let local = trial_counters();
    assert!(
        local.get("link.trials").copied().unwrap_or(0) >= (cells.len() * trials) as u64,
        "in-process run must count its trials: {local:?}"
    );

    let workers = [spawn_worker_process(), spawn_worker_process()];
    obs::reset();
    let pool = WorkerPool::new(workers.iter().map(|w| w.addr.clone()).collect());
    let sharded =
        service::run_sharded(&pool, &cells, trials, seed0, &bases).expect("2-worker sharded run");
    let remote = trial_counters();
    obs::disable();
    obs::reset();

    assert_eq!(sharded.len(), reference.len());
    for (i, (a, b)) in reference.iter().zip(&sharded).enumerate() {
        assert_eq!(
            a.success_rate.to_bits(),
            b.success_rate.to_bits(),
            "stats[{i}] must stay bit-identical with telemetry enabled"
        );
    }
    assert_eq!(
        local, remote,
        "worker telemetry must reproduce in-process counter totals exactly"
    );
}

#[test]
fn sharded_trace_carries_one_lane_per_worker() {
    let _g = lock();
    let cells = grid();
    let trials = 1usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();

    obs::disable();
    obs::reset();
    obs::trace::disable();
    obs::trace::reset();
    obs::trace::enable();

    let workers = [spawn_worker_process(), spawn_worker_process()];
    let pool = WorkerPool::new(workers.iter().map(|w| w.addr.clone()).collect());
    service::run_sharded(&pool, &cells, trials, 911, &bases).expect("2-worker traced run");

    let doc = obs::trace::trace_json("worker_lanes");
    obs::trace::reset();
    obs::trace::disable();

    obs::json::validate(&doc).expect("merged timeline is valid JSON");
    for lane in ["coordinator", "worker 1", "worker 2"] {
        assert!(
            doc.contains(&format!("{{\"name\":\"{lane}\"}}")),
            "timeline must have a {lane} process lane"
        );
    }
    assert!(
        doc.contains("\"name\":\"link.success\"") || doc.contains("\"name\":\"link.fail"),
        "worker lanes must carry real per-trial events"
    );
}
