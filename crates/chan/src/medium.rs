//! The composed backscatter medium — the paper's Eq. 1/3.
//!
//! Everything between the reader's DAC and its ADC input:
//!
//! ```text
//! y(t) = (x(t)+n_tx(t)) ∗ h_env(t)
//!      + [ (x(t) ∗ h_f(t)) · Γ(t) ] ∗ h_b(t)
//!      + n(t)
//! ```
//!
//! where `Γ(t)` is the tag's per-sample reflection coefficient: `0` when the
//! tag absorbs (silent mode) and `e^{jθ(t)}` while modulating. `n_tx` is
//! broadband transmitter noise, present on the self-interference path but not
//! in the canceller's clean reference — the factor that bounds cancellation.
//!
//! The medium also exposes its ground-truth channels, playing the role of the
//! vector network analyzer the paper uses for the Fig. 11a comparison.

use crate::budget::LinkBudget;
use crate::environment::EnvironmentProfile;
use crate::multipath::{cascade, scaled, MultipathProfile};
use backfi_dsp::fir::filter;
use backfi_dsp::noise::{add_noise, cgauss_vec};
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::{stats, Complex};

/// Geometry and propagation profiles of one reader/tag deployment.
#[derive(Clone, Copy, Debug)]
pub struct MediumConfig {
    /// Reader ↔ tag distance in metres.
    pub distance_m: f64,
    /// Multipath profile of the forward (reader→tag) channel.
    pub forward: MultipathProfile,
    /// Multipath profile of the backward (tag→reader) channel.
    pub backward: MultipathProfile,
    /// Environment (self-interference) profile.
    pub environment: EnvironmentProfile,
}

impl MediumConfig {
    /// Typical deployment at `distance_m` with LOS tag channels.
    pub fn at_distance(distance_m: f64) -> Self {
        MediumConfig {
            distance_m,
            forward: MultipathProfile::indoor_los(),
            backward: MultipathProfile::indoor_los(),
            environment: EnvironmentProfile::default(),
        }
    }
}

/// One realized deployment: channels are drawn once (they are "time invariant
/// for the duration of the tag packet", §4.3) and reused for every
/// propagation through this medium.
#[derive(Clone, Debug)]
pub struct BackscatterMedium {
    budget: LinkBudget,
    /// True self-interference response (ground truth for experiments).
    pub h_env: Vec<Complex>,
    /// True forward channel, link-budget-scaled.
    pub h_f: Vec<Complex>,
    /// True backward channel, link-budget-scaled.
    pub h_b: Vec<Complex>,
    rng: SplitMix64,
}

impl BackscatterMedium {
    /// Draw a deployment. The same `seed` reproduces the same channels and
    /// noise sequence.
    pub fn new(budget: LinkBudget, cfg: MediumConfig, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let h_env = cfg.environment.realize(&budget, &mut rng);
        // Split the two-way gain evenly (in dB) between the legs.
        let leg_amp = budget.backscatter_amplitude(cfg.distance_m).sqrt();
        let h_f = scaled(&cfg.forward.realize(&mut rng), leg_amp);
        let h_b = scaled(&cfg.backward.realize(&mut rng), leg_amp);
        BackscatterMedium {
            budget,
            h_env,
            h_f,
            h_b,
            rng,
        }
    }

    /// The combined forward∗backward channel — what a VNA would measure and
    /// what the reader's preamble-based estimator targets (§4.3.1).
    pub fn h_fb_true(&self) -> Vec<Complex> {
        cascade(&self.h_f, &self.h_b)
    }

    /// Ideal post-MRC-input backscatter SNR per sample in dB: received tag
    /// power over the thermal floor, assuming perfect cancellation. This is
    /// the "expected SNR" axis of Fig. 11a.
    pub fn expected_backscatter_snr_db(&self) -> f64 {
        let e_fb: f64 = self.h_fb_true().iter().map(|t| t.norm_sqr()).sum();
        stats::db(self.budget.tx_power() * e_fb / self.budget.noise_power())
    }

    /// Propagate one transmission.
    ///
    /// * `x` — unit-power baseband samples from the WiFi transmitter,
    /// * `gamma` — the tag's reflection coefficient per sample (must be at
    ///   least as long as `x`; zero = absorbing/silent).
    ///
    /// Returns the signal at the reader's receive port (before analog
    /// cancellation and the ADC). Length equals `x.len()` plus the channel
    /// tails.
    ///
    /// # Panics
    /// Panics if `gamma` is shorter than `x`.
    pub fn propagate(&mut self, x: &[Complex], gamma: &[Complex]) -> Vec<Complex> {
        assert!(
            gamma.len() >= x.len(),
            "gamma must cover the whole excitation"
        );
        let a = self.budget.tx_power().sqrt();

        let tail = self.h_env.len().max(self.h_f.len() + self.h_b.len());
        let out_len = x.len() + tail;

        // Self-interference path: (a·x + n_tx) ∗ h_env.
        let tx_noise_power =
            self.budget.tx_power() * crate::budget::dbm_to_lin(self.budget.tx_noise_dbc);
        let mut tx_sig: Vec<Complex> = x.iter().map(|&v| v * a).collect();
        let n_tx = cgauss_vec(&mut self.rng, tx_sig.len(), tx_noise_power);
        for (s, n) in tx_sig.iter_mut().zip(&n_tx) {
            *s += *n;
        }
        tx_sig.resize(out_len, Complex::ZERO);
        let mut y = filter(&self.h_env, &tx_sig);

        // Backscatter path: ((a·x) ∗ h_f) · Γ ∗ h_b.
        let mut x_padded: Vec<Complex> = x.iter().map(|&v| v * a).collect();
        x_padded.resize(out_len, Complex::ZERO);
        let z = filter(&self.h_f, &x_padded);
        let mut modded: Vec<Complex> = z
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i < gamma.len() {
                    v * gamma[i]
                } else {
                    Complex::ZERO
                }
            })
            .collect();
        modded.resize(out_len, Complex::ZERO);
        let back = filter(&self.h_b, &modded);
        for (a, b) in y.iter_mut().zip(&back) {
            *a += *b;
        }

        // Thermal noise.
        add_noise(&mut self.rng, &mut y, self.budget.noise_power());
        y
    }

    /// Propagate with the tag fully absorbing (all-zero Γ) — the environment
    /// alone. Used by ablation experiments.
    pub fn propagate_silent(&mut self, x: &[Complex]) -> Vec<Complex> {
        let gamma = vec![Complex::ZERO; x.len()];
        self.propagate(x, &gamma)
    }

    /// The link budget this medium was built with.
    pub fn budget(&self) -> &LinkBudget {
        &self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic wideband unit-power probe (a tone would fade in
    /// frequency-selective channels and make power checks meaningless).
    fn unit_tone(n: usize) -> Vec<Complex> {
        let mut r = SplitMix64::new(0xFEED);
        (0..n)
            .map(|_| Complex::exp_j(r.next_f64() * std::f64::consts::TAU))
            .collect()
    }

    #[test]
    fn silent_tag_leaves_only_environment() {
        let budget = LinkBudget::default();
        let mut m = BackscatterMedium::new(budget, MediumConfig::at_distance(1.0), 7);
        let x = unit_tone(2000);
        let y = m.propagate_silent(&x);
        // Received power ≈ TX power × |h_env|² (leakage dominates).
        let e_env: f64 = m.h_env.iter().map(|t| t.norm_sqr()).sum();
        let expect = budget.tx_power() * e_env;
        let got = stats::mean_power(&y[..x.len()]);
        let ratio_db = stats::db(got / expect);
        assert!(ratio_db.abs() < 1.0, "ratio {ratio_db} dB");
    }

    #[test]
    fn backscatter_power_matches_budget() {
        let budget = LinkBudget::default();
        let d = 1.0;
        let x = unit_tone(4000);
        let gamma = vec![Complex::ONE; x.len()];
        // Average over deployments: a single channel realization fades.
        let mut acc = 0.0;
        let seeds = 12;
        for seed in 0..seeds {
            let mut m = BackscatterMedium::new(budget, MediumConfig::at_distance(d), seed);
            let with_tag = m.propagate(&x, &gamma);
            // Rebuild the same medium to get identical noise, then subtract.
            let mut m2 = BackscatterMedium::new(budget, MediumConfig::at_distance(d), seed);
            let silent = m2.propagate_silent(&x);
            let tag_only: Vec<Complex> =
                with_tag.iter().zip(&silent).map(|(a, b)| *a - *b).collect();
            acc += stats::mean_power(&tag_only[..x.len()]);
        }
        let expect_db = budget.backscatter_rx_power_dbm(d);
        let got_db = stats::db(acc / seeds as f64);
        assert!(
            (got_db - expect_db).abs() < 2.0,
            "got {got_db} dBm expect {expect_db} dBm"
        );
    }

    #[test]
    fn expected_snr_close_to_budget_snr() {
        let budget = LinkBudget::default();
        for d in [0.5, 1.0, 3.0, 5.0] {
            let m = BackscatterMedium::new(budget, MediumConfig::at_distance(d), 3);
            let got = m.expected_backscatter_snr_db();
            let nominal = budget.backscatter_snr_db(d);
            assert!(
                (got - nominal).abs() < 3.0,
                "d={d}: got {got} nominal {nominal}"
            );
        }
    }

    #[test]
    fn tag_signal_is_buried_under_si() {
        // §3.1: the self-interference "would end up completely drowning the
        // backscatter signal" — verify the simulated medium reproduces that
        // dynamic-range problem.
        let budget = LinkBudget::default();
        let mut m = BackscatterMedium::new(budget, MediumConfig::at_distance(1.0), 5);
        let x = unit_tone(2000);
        let gamma = vec![Complex::ONE; x.len()];
        let y = m.propagate(&x, &gamma);
        let total = stats::mean_power(&y[..x.len()]);
        let tag_dbm = budget.backscatter_rx_power_dbm(1.0);
        assert!(
            stats::db(total) - tag_dbm > 50.0,
            "SI should dominate by >50 dB"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let budget = LinkBudget::default();
        let x = unit_tone(500);
        let gamma = vec![Complex::ONE; x.len()];
        let mut a = BackscatterMedium::new(budget, MediumConfig::at_distance(2.0), 99);
        let mut b = BackscatterMedium::new(budget, MediumConfig::at_distance(2.0), 99);
        assert_eq!(a.propagate(&x, &gamma), b.propagate(&x, &gamma));
    }

    #[test]
    fn gamma_modulation_shows_up_in_output() {
        let budget = LinkBudget::default();
        let x = unit_tone(1000);
        let mut m1 = BackscatterMedium::new(budget, MediumConfig::at_distance(0.5), 11);
        let mut m2 = BackscatterMedium::new(budget, MediumConfig::at_distance(0.5), 11);
        let g1 = vec![Complex::ONE; x.len()];
        let g2: Vec<Complex> = (0..x.len())
            .map(|i| {
                if i % 2 == 0 {
                    Complex::ONE
                } else {
                    -Complex::ONE
                }
            })
            .collect();
        let y1 = m1.propagate(&x, &g1);
        let y2 = m2.propagate(&x, &g2);
        let diff: f64 = y1.iter().zip(&y2).map(|(a, b)| (*a - *b).norm_sqr()).sum();
        assert!(
            diff > 0.0,
            "different tag data must change the received signal"
        );
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_short_gamma() {
        let budget = LinkBudget::default();
        let mut m = BackscatterMedium::new(budget, MediumConfig::at_distance(1.0), 1);
        let x = unit_tone(100);
        let gamma = vec![Complex::ONE; 50];
        m.propagate(&x, &gamma);
    }
}
