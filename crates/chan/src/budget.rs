//! Link budget: the calibrated constants that set absolute scale.
//!
//! The paper's testbed (WARP radios, 3 dBi tag antenna, indoor lab with rich
//! multipath) is replaced by a parametric budget. All powers use the
//! simulator convention **0 dBm ⇔ unit sample power**.
//!
//! ## Calibration (DESIGN.md §6)
//!
//! The *two-way* backscatter path gain is modelled as piecewise log-distance:
//! a gentle near-range slope (strong LOS / antenna coupling, which is what
//! the paper's nearly-flat 0.5–2 m throughput frontier implies) and a steeper
//! far-range slope. The defaults put the per-sample backscatter SNR at
//! ≈ 9.2 dB at 1 m, which reproduces the paper's headline operating points
//! (≈5 Mbps @ 1 m, ≈1 Mbps @ 5 m, collapse near 7 m, 16-PSK 2/3 only inside
//! ≈0.5 m). See EXPERIMENTS.md for measured-vs-paper tables.

/// All link-budget parameters. `Default` gives the calibrated values.
#[derive(Clone, Copy, Debug)]
pub struct LinkBudget {
    /// AP transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Receiver noise floor over 20 MHz in dBm (thermal −101 dBm + NF 6 dB).
    pub noise_floor_dbm: f64,
    /// Two-way backscatter path loss at the 1 m reference, dB
    /// (both legs + tag modulator insertion loss + antenna gains).
    pub bs_pathloss_1m_db: f64,
    /// Two-way path-loss exponent inside [`LinkBudget::knee_m`].
    pub bs_exponent_near: f64,
    /// Two-way path-loss exponent beyond the knee.
    pub bs_exponent_far: f64,
    /// Knee distance in metres separating the two slopes.
    pub knee_m: f64,
    /// Second knee (m): beyond it the link leaves the LOS corridor and decay
    /// steepens sharply — the paper's Fig. 8 collapse between 5 m and 7 m.
    pub knee2_m: f64,
    /// Two-way exponent beyond the second knee.
    pub bs_exponent_beyond: f64,
    /// One-way path loss at 1 m for ordinary (non-backscatter) WiFi links,
    /// dB at 2.4 GHz.
    pub wifi_pathloss_1m_db: f64,
    /// One-way path-loss exponent for WiFi links (indoor multi-wall ≈ 3–3.5).
    pub wifi_exponent: f64,
    /// Direct TX→RX circulator/antenna leakage relative to TX power, dB
    /// (negative).
    pub leakage_db: f64,
    /// Total power of environmental reflections relative to TX power, dB.
    pub reflections_db: f64,
    /// Broadband transmitter noise (DAC/PA phase noise) relative to TX power
    /// over 20 MHz, dBc. This noise rides on the self-interference path but
    /// is **absent** from the canceller's clean reference, so it bounds
    /// cancellation — the mechanism behind the ≈2.3 dB median residual SNR
    /// degradation the paper measures (Fig. 11a) and the 1.7 dB residue its
    /// full-duplex predecessor reports.
    pub tx_noise_dbc: f64,
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget {
            tx_power_dbm: 20.0,
            noise_floor_dbm: -95.0,
            bs_pathloss_1m_db: 105.8,
            bs_exponent_near: 1.3,
            bs_exponent_far: 2.8,
            knee_m: 2.5,
            knee2_m: 5.3,
            bs_exponent_beyond: 8.0,
            wifi_pathloss_1m_db: 46.0,
            wifi_exponent: 3.8,
            leakage_db: -20.0,
            reflections_db: -36.0,
            tx_noise_dbc: -96.0,
        }
    }
}

impl LinkBudget {
    /// Two-way backscatter path *loss* in dB at distance `d_m` ≥ 0.1 m.
    pub fn backscatter_pathloss_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(0.1);
        let at_knee = self.bs_pathloss_1m_db + 10.0 * self.bs_exponent_near * self.knee_m.log10();
        if d <= self.knee_m {
            self.bs_pathloss_1m_db + 10.0 * self.bs_exponent_near * d.log10()
        } else if d <= self.knee2_m {
            at_knee + 10.0 * self.bs_exponent_far * (d / self.knee_m).log10()
        } else {
            at_knee
                + 10.0 * self.bs_exponent_far * (self.knee2_m / self.knee_m).log10()
                + 10.0 * self.bs_exponent_beyond * (d / self.knee2_m).log10()
        }
    }

    /// Received backscatter power at the reader in dBm for a tag at `d_m`.
    pub fn backscatter_rx_power_dbm(&self, d_m: f64) -> f64 {
        self.tx_power_dbm - self.backscatter_pathloss_db(d_m)
    }

    /// Per-sample backscatter SNR in dB against the thermal floor (before any
    /// residual self-interference, which the cancellation stage adds).
    pub fn backscatter_snr_db(&self, d_m: f64) -> f64 {
        self.backscatter_rx_power_dbm(d_m) - self.noise_floor_dbm
    }

    /// One-way WiFi path loss in dB at distance `d_m`.
    pub fn wifi_pathloss_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(0.1);
        self.wifi_pathloss_1m_db + 10.0 * self.wifi_exponent * d.log10()
    }

    /// WiFi received power at a client in dBm.
    pub fn wifi_rx_power_dbm(&self, d_m: f64) -> f64 {
        self.tx_power_dbm - self.wifi_pathloss_db(d_m)
    }

    /// WiFi SNR at a client at distance `d_m`, dB.
    pub fn wifi_snr_db(&self, d_m: f64) -> f64 {
        self.wifi_rx_power_dbm(d_m) - self.noise_floor_dbm
    }

    /// Linear noise power in simulator units (0 dBm ⇔ 1.0).
    pub fn noise_power(&self) -> f64 {
        dbm_to_lin(self.noise_floor_dbm)
    }

    /// Linear TX power in simulator units.
    pub fn tx_power(&self) -> f64 {
        dbm_to_lin(self.tx_power_dbm)
    }

    /// Linear amplitude gain (√power-gain) of the two-way backscatter path.
    pub fn backscatter_amplitude(&self, d_m: f64) -> f64 {
        dbm_to_lin(-self.backscatter_pathloss_db(d_m)).sqrt()
    }

    /// Linear amplitude gain of a one-way WiFi path.
    pub fn wifi_amplitude(&self, d_m: f64) -> f64 {
        dbm_to_lin(-self.wifi_pathloss_db(d_m)).sqrt()
    }

    /// One-way loss of a *tag scattering leg* in dB: free space at 2.4 GHz
    /// (≈40 dB at 1 m) plus modulator insertion / scattering-efficiency losses.
    /// Used for the interference a backscattering tag causes at a bystander
    /// WiFi client (Figs. 12b/13). The reader-side backscatter budget
    /// additionally carries circulator routing and cancellation insertion
    /// losses, which is why [`LinkBudget::backscatter_pathloss_db`] is higher
    /// than two of these legs.
    pub fn tag_scatter_leg_db(&self, d_m: f64) -> f64 {
        52.0 + 20.0 * d_m.max(0.05).log10()
    }

    /// Power (dBm) of the tag's scattered signal arriving at a client, for a
    /// tag at `d_ap_tag` from the AP and `d_tag_client` from the client.
    pub fn tag_interference_dbm(&self, d_ap_tag: f64, d_tag_client: f64) -> f64 {
        self.tx_power_dbm
            - self.tag_scatter_leg_db(d_ap_tag)
            - self.tag_scatter_leg_db(d_tag_client)
    }
}

/// dBm (relative to the simulator's unit power) → linear power.
pub fn dbm_to_lin(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Linear power → dBm.
pub fn lin_to_dbm(lin: f64) -> f64 {
    10.0 * lin.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pathloss_is_continuous_at_knee() {
        let b = LinkBudget::default();
        let eps = 1e-6;
        let below = b.backscatter_pathloss_db(b.knee_m - eps);
        let above = b.backscatter_pathloss_db(b.knee_m + eps);
        assert!((below - above).abs() < 1e-3);
    }

    #[test]
    fn pathloss_monotone_in_distance() {
        let b = LinkBudget::default();
        let mut prev = 0.0;
        for i in 1..100 {
            let d = i as f64 * 0.1;
            let pl = b.backscatter_pathloss_db(d);
            assert!(pl > prev, "d={d}");
            prev = pl;
        }
    }

    #[test]
    fn calibrated_snr_anchors() {
        // The documented calibration: ≈6.5 dB raw per-sample SNR at 1 m,
        // gentle slope to the knee, steeper after.
        let b = LinkBudget::default();
        let at1 = b.backscatter_snr_db(1.0);
        assert!((at1 - 9.2).abs() < 0.1, "1 m snr {at1}");
        let at05 = b.backscatter_snr_db(0.5);
        assert!(
            at05 - at1 > 2.0 && at05 - at1 < 6.0,
            "0.5 m gap {}",
            at05 - at1
        );
        let at5 = b.backscatter_snr_db(5.0);
        assert!(at5 < -2.0 && at5 > -9.0, "5 m snr {at5}");
        let at7 = b.backscatter_snr_db(7.0);
        assert!(at7 < at5 - 3.0, "7 m snr {at7}");
    }

    #[test]
    fn wifi_budget_supports_54mbps_nearby() {
        let b = LinkBudget::default();
        // 54 Mbit/s needs ~24 dB; should hold at several metres.
        assert!(b.wifi_snr_db(3.0) > 24.0);
        // 6 Mbit/s should still work tens of metres away.
        assert!(b.wifi_snr_db(30.0) > 5.0);
    }

    #[test]
    fn lin_dbm_roundtrip() {
        for v in [-100.0, -20.0, 0.0, 20.0] {
            assert!((lin_to_dbm(dbm_to_lin(v)) - v).abs() < 1e-9);
        }
        assert!((dbm_to_lin(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_interference_dwarfs_backscatter() {
        // The premise of the paper: leakage + reflections are tens of dB
        // above the tag signal (§3.1), requiring cancellation.
        let b = LinkBudget::default();
        let si_dbm = b.tx_power_dbm + b.leakage_db;
        let bs_dbm = b.backscatter_rx_power_dbm(1.0);
        assert!(si_dbm - bs_dbm > 60.0, "SI {si_dbm} vs BS {bs_dbm}");
    }
}
