//! Receiver front end: ADC quantization and saturation.
//!
//! The reason BackFi needs an *analog* cancellation stage at all (§4.2) is
//! the ADC: "Analog cancellation is necessary to ensure that the receiver's
//! ADC is not saturated by self-interference which would drown out the weak
//! backscatter signal before being received in baseband." This module models
//! that constraint — a finite-resolution, finite-full-scale converter — so
//! the ablation benches can show what happens without the analog stage.

use backfi_dsp::Complex;

/// A complex ADC pair (I and Q converters).
#[derive(Clone, Copy, Debug)]
pub struct Adc {
    /// Bits of resolution per axis (WARP's AD9963 is 12-bit).
    pub bits: u32,
    /// Full-scale amplitude per axis in simulator units.
    pub full_scale: f64,
}

impl Default for Adc {
    fn default() -> Self {
        // 12-bit converter whose full scale is set so the AGC'd residual
        // after analog cancellation fits comfortably.
        Adc {
            bits: 12,
            full_scale: 1.0e-2,
        }
    }
}

impl Adc {
    /// Quantization step per axis.
    pub fn step(&self) -> f64 {
        2.0 * self.full_scale / (1u64 << self.bits) as f64
    }

    /// Quantization noise power (per complex sample, both axes): `2·Δ²/12`.
    pub fn quantization_noise_power(&self) -> f64 {
        let d = self.step();
        2.0 * d * d / 12.0
    }

    /// Dynamic range in dB (6.02 dB per bit).
    pub fn dynamic_range_db(&self) -> f64 {
        6.02 * self.bits as f64
    }

    /// Convert one sample: clip to full scale, then round to the grid.
    pub fn sample(&self, x: Complex) -> Complex {
        Complex::new(self.axis(x.re), self.axis(x.im))
    }

    /// Convert a block.
    pub fn convert(&self, x: &[Complex]) -> Vec<Complex> {
        x.iter().map(|&v| self.sample(v)).collect()
    }

    /// Fraction of samples in a block that hit the rails (saturation
    /// indicator — a real AGC would watch this).
    pub fn clip_fraction(&self, x: &[Complex]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        let n = x
            .iter()
            .filter(|v| v.re.abs() >= self.full_scale || v.im.abs() >= self.full_scale)
            .count();
        n as f64 / x.len() as f64
    }

    fn axis(&self, v: f64) -> f64 {
        let clipped = v.clamp(-self.full_scale, self.full_scale);
        let d = self.step();
        (clipped / d).round() * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::noise::cgauss_vec;
    use backfi_dsp::rng::SplitMix64;
    use backfi_dsp::stats::mean_power;

    #[test]
    fn small_signals_survive() {
        let adc = Adc {
            bits: 12,
            full_scale: 1.0,
        };
        let x = Complex::new(0.5, -0.25);
        let y = adc.sample(x);
        assert!((x - y).abs() < adc.step());
    }

    #[test]
    fn saturation_clips() {
        let adc = Adc {
            bits: 12,
            full_scale: 1.0,
        };
        let y = adc.sample(Complex::new(5.0, -7.0));
        assert!((y.re - 1.0).abs() < 1e-9);
        assert!((y.im + 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantization_noise_matches_model() {
        let adc = Adc {
            bits: 10,
            full_scale: 1.0,
        };
        let mut rng = SplitMix64::new(1);
        // Uniform-ish complex signal well inside full scale.
        let x = cgauss_vec(&mut rng, 100_000, 0.05);
        let y = adc.convert(&x);
        let err: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a - *b).collect();
        let measured = mean_power(&err);
        let model = adc.quantization_noise_power();
        assert!(
            (measured / model - 1.0).abs() < 0.15,
            "measured {measured:e} model {model:e}"
        );
    }

    #[test]
    fn clip_fraction_detects_overdrive() {
        let adc = Adc {
            bits: 8,
            full_scale: 0.1,
        };
        let quiet = vec![Complex::new(0.01, 0.0); 100];
        assert_eq!(adc.clip_fraction(&quiet), 0.0);
        let loud = vec![Complex::new(1.0, 0.0); 100];
        assert!((adc.clip_fraction(&loud) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncancelled_si_saturates_default_adc() {
        // The paper's premise: without analog cancellation, 0 dBm of leakage
        // saturates a converter scaled for microwatt residues.
        let adc = Adc::default();
        let si = vec![Complex::new(0.7, 0.7); 64]; // ~0 dBm leakage
        assert!(adc.clip_fraction(&si) > 0.99);
    }

    #[test]
    fn dynamic_range() {
        let adc = Adc {
            bits: 12,
            full_scale: 1.0,
        };
        assert!((adc.dynamic_range_db() - 72.24).abs() < 0.01);
    }
}
