//! Deterministic, seeded impairment injection — the off-nominal conditions
//! the paper's clean testbed avoids.
//!
//! Every knob models a failure mode a deployed BackFi link meets in the wild:
//!
//! * **tag clock drift** — the tag's cheap oscillator runs fast/slow, so its
//!   reflection timeline stretches relative to the reader's sample clock,
//! * **timing desync** — a static offset between the tag's notion of
//!   "excitation detected" and the reader's nominal timeline,
//! * **residual CFO** — an uncompensated frequency offset in the reader's
//!   receive chain rotating the whole baseband (SI included, so the
//!   LTI digital canceller degrades too),
//! * **bursty co-channel interference** — other WiFi transmitters keying up
//!   mid-packet,
//! * **ADC saturation transients** — a strong in-band blocker railing the
//!   front end for a few microseconds,
//! * **impulsive noise** — single-sample spikes (relay chatter, ignition),
//! * **truncation** — the sample stream cuts out early (DMA overrun),
//! * **non-finite corruption** — a burst of NaN samples from a flaky
//!   capture chain.
//!
//! All randomness is derived from the per-job seed through per-mode
//! [`SplitMix64`] sub-streams, so impaired waveforms are bit-identical for
//! any worker count and enabling one mode never shifts another mode's draws.
//! The default configuration is **all-off** and [`Impairments::apply_rx`]
//! then returns without touching the buffer or drawing a single random
//! number — existing figure output stays byte-identical.

use backfi_dsp::noise::cgauss;
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::{Complex, SAMPLE_RATE_HZ};
use std::sync::{OnceLock, RwLock};

/// Salt separating impairment streams from the medium's channel/noise
/// streams, which consume the raw job seed.
const IMPAIR_SALT: u64 = 0xC0FF_EE00_BAD5_EED5;

/// One injectable failure mode (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImpairmentMode {
    /// Tag oscillator ppm error stretching the reflection timeline.
    ClockDrift,
    /// Static tag↔reader timeline offset.
    TimingDesync,
    /// Residual receive-chain carrier frequency offset.
    Cfo,
    /// Bursty co-channel WiFi interference.
    Interference,
    /// ADC saturation transient from an in-band blocker.
    Saturation,
    /// Impulsive (single-sample) noise spikes.
    Impulse,
    /// Early truncation of the sample stream.
    Truncate,
    /// A run of non-finite (NaN) samples.
    NonFinite,
}

impl ImpairmentMode {
    /// Every mode, in canonical order (fault matrices iterate this).
    pub const ALL: [ImpairmentMode; 8] = [
        ImpairmentMode::ClockDrift,
        ImpairmentMode::TimingDesync,
        ImpairmentMode::Cfo,
        ImpairmentMode::Interference,
        ImpairmentMode::Saturation,
        ImpairmentMode::Impulse,
        ImpairmentMode::Truncate,
        ImpairmentMode::NonFinite,
    ];

    /// Stable short name (CLI/env spec token and report label).
    pub fn name(self) -> &'static str {
        match self {
            ImpairmentMode::ClockDrift => "drift",
            ImpairmentMode::TimingDesync => "desync",
            ImpairmentMode::Cfo => "cfo",
            ImpairmentMode::Interference => "interference",
            ImpairmentMode::Saturation => "saturation",
            ImpairmentMode::Impulse => "impulse",
            ImpairmentMode::Truncate => "truncate",
            ImpairmentMode::NonFinite => "nonfinite",
        }
    }

    /// Index of this mode's dedicated random sub-stream.
    fn stream(self) -> u64 {
        ImpairmentMode::ALL.iter().position(|&m| m == self).unwrap() as u64
    }
}

/// The per-mode RNG: a pure function of `(job seed, mode)`, decorrelated
/// from the medium's streams by [`IMPAIR_SALT`].
fn mode_rng(seed: u64, mode: ImpairmentMode) -> SplitMix64 {
    SplitMix64::new(SplitMix64::derive(seed ^ IMPAIR_SALT, mode.stream()))
}

/// Uniform draw in `[-1, 1)`.
fn pm1(rng: &mut SplitMix64) -> f64 {
    2.0 * rng.next_f64() - 1.0
}

/// Impairment configuration — every primary knob at `0.0` disables its mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Impairments {
    /// Max |tag clock error| in ppm; the per-trial error is uniform ±.
    pub clock_drift_ppm: f64,
    /// Max |static timeline offset| in µs; per-trial uniform ±.
    pub timing_desync_us: f64,
    /// Max |residual CFO| in Hz; per-trial uniform ±.
    pub cfo_hz: f64,
    /// Interference burst power relative to the thermal floor (linear);
    /// `0.0` disables the interferer.
    pub interference_rel: f64,
    /// Fraction of the packet covered by interference bursts.
    pub interference_duty: f64,
    /// Length of one interference burst, µs.
    pub interference_burst_us: f64,
    /// Probability of one saturation transient per packet.
    pub saturation_prob: f64,
    /// Duration of the saturation transient, µs.
    pub saturation_us: f64,
    /// Blocker amplitude as a multiple of the packet RMS.
    pub saturation_gain: f64,
    /// Expected impulsive-noise spikes per packet.
    pub impulse_per_packet: f64,
    /// Impulse power relative to the thermal floor (linear).
    pub impulse_rel: f64,
    /// Probability the sample stream truncates (tail zeroed).
    pub truncate_prob: f64,
    /// Probability of a short NaN burst in the stream.
    pub nonfinite_prob: f64,
}

impl Default for Impairments {
    fn default() -> Self {
        Impairments::off()
    }
}

impl Impairments {
    /// Everything disabled (the byte-identical baseline).
    pub fn off() -> Self {
        Impairments {
            clock_drift_ppm: 0.0,
            timing_desync_us: 0.0,
            cfo_hz: 0.0,
            interference_rel: 0.0,
            interference_duty: 0.15,
            interference_burst_us: 25.0,
            saturation_prob: 0.0,
            saturation_us: 10.0,
            saturation_gain: 30.0,
            impulse_per_packet: 0.0,
            impulse_rel: 1e5,
            truncate_prob: 0.0,
            nonfinite_prob: 0.0,
        }
    }

    /// `true` when no mode is active; the injection entry points are then
    /// exact no-ops (no draws, no writes).
    pub fn is_off(&self) -> bool {
        self.clock_drift_ppm == 0.0
            && self.timing_desync_us == 0.0
            && self.cfo_hz == 0.0
            && self.interference_rel == 0.0
            && self.saturation_prob == 0.0
            && self.impulse_per_packet == 0.0
            && self.truncate_prob == 0.0
            && self.nonfinite_prob == 0.0
    }

    /// One mode at a canonical `intensity ∈ [0, 1]` scaling (the fault
    /// matrix's x-axis). Intensity `0` is off; `1` is a severe but physically
    /// plausible level for each mode (drift is accelerated so it matters over
    /// sub-millisecond simulated packets).
    pub fn single(mode: ImpairmentMode, intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        let mut imp = Impairments::off();
        match mode {
            ImpairmentMode::ClockDrift => imp.clock_drift_ppm = 2000.0 * i,
            ImpairmentMode::TimingDesync => imp.timing_desync_us = 4.0 * i,
            ImpairmentMode::Cfo => imp.cfo_hz = 2000.0 * i,
            ImpairmentMode::Interference => {
                imp.interference_rel = if i > 0.0 { 10f64.powf(4.0 * i) } else { 0.0 }
            }
            ImpairmentMode::Saturation => imp.saturation_prob = i,
            ImpairmentMode::Impulse => imp.impulse_per_packet = 30.0 * i,
            ImpairmentMode::Truncate => imp.truncate_prob = i,
            ImpairmentMode::NonFinite => imp.nonfinite_prob = i,
        }
        imp
    }

    /// Every mode at once, each at `intensity`.
    pub fn all(intensity: f64) -> Self {
        ImpairmentMode::ALL
            .iter()
            .fold(Impairments::off(), |acc, &m| {
                acc.merge(&Impairments::single(m, intensity))
            })
    }

    /// Field-wise max of two configurations.
    pub fn merge(&self, other: &Impairments) -> Impairments {
        Impairments {
            clock_drift_ppm: self.clock_drift_ppm.max(other.clock_drift_ppm),
            timing_desync_us: self.timing_desync_us.max(other.timing_desync_us),
            cfo_hz: self.cfo_hz.max(other.cfo_hz),
            interference_rel: self.interference_rel.max(other.interference_rel),
            interference_duty: self.interference_duty.max(other.interference_duty),
            interference_burst_us: self.interference_burst_us.max(other.interference_burst_us),
            saturation_prob: self.saturation_prob.max(other.saturation_prob),
            saturation_us: self.saturation_us.max(other.saturation_us),
            saturation_gain: self.saturation_gain.max(other.saturation_gain),
            impulse_per_packet: self.impulse_per_packet.max(other.impulse_per_packet),
            impulse_rel: self.impulse_rel.max(other.impulse_rel),
            truncate_prob: self.truncate_prob.max(other.truncate_prob),
            nonfinite_prob: self.nonfinite_prob.max(other.nonfinite_prob),
        }
    }

    /// Parse a spec like `"cfo:0.5,drift:1"`, `"all:0.25"` or `"off"`.
    ///
    /// Tokens are `mode[:intensity]` with intensity defaulting to `0.5`;
    /// modes merge field-wise. Recognized mode names are the
    /// [`ImpairmentMode::name`] tokens plus `all` and `off`.
    pub fn parse(spec: &str) -> Result<Impairments, String> {
        let mut imp = Impairments::off();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (name, val) = match token.split_once(':') {
                Some((n, v)) => {
                    let i: f64 = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad intensity {v:?} in {token:?}"))?;
                    (n.trim(), i)
                }
                None => (token, 0.5),
            };
            if name == "off" {
                imp = Impairments::off();
                continue;
            }
            if name == "all" {
                imp = imp.merge(&Impairments::all(val));
                continue;
            }
            let mode = ImpairmentMode::ALL
                .iter()
                .find(|m| m.name() == name)
                .ok_or_else(|| format!("unknown impairment mode {name:?}"))?;
            imp = imp.merge(&Impairments::single(*mode, val));
        }
        Ok(imp)
    }

    /// Warp the tag's reflection timeline for clock drift / desync.
    ///
    /// Models the tag switching its reflection coefficient on its *own*
    /// clock: sample `i` of the reader's timeline sees the coefficient the
    /// tag held at `i − desync − drift·i`. Out-of-range indices read as
    /// no-reflection (the tag hasn't started yet / already stopped).
    ///
    /// Returns `None` (no allocation, no draws) when both modes are off.
    pub fn warp_gamma(&self, gamma: &[Complex], seed: u64) -> Option<Vec<Complex>> {
        if self.clock_drift_ppm == 0.0 && self.timing_desync_us == 0.0 {
            return None;
        }
        let desync = if self.timing_desync_us > 0.0 {
            let mut r = mode_rng(seed, ImpairmentMode::TimingDesync);
            pm1(&mut r) * self.timing_desync_us * 1e-6 * SAMPLE_RATE_HZ
        } else {
            0.0
        };
        let drift = if self.clock_drift_ppm > 0.0 {
            let mut r = mode_rng(seed, ImpairmentMode::ClockDrift);
            pm1(&mut r) * self.clock_drift_ppm * 1e-6
        } else {
            0.0
        };
        let n = gamma.len();
        Some(
            (0..n)
                .map(|i| {
                    let src = (i as f64 - desync - drift * i as f64).round();
                    if src < 0.0 || src >= n as f64 {
                        Complex::ZERO
                    } else {
                        gamma[src as usize]
                    }
                })
                .collect(),
        )
    }

    /// Corrupt the received baseband in place. `noise_power` is the thermal
    /// floor the relative interference/impulse powers scale against.
    ///
    /// Returns a summary of what was injected. Exact no-op when
    /// [`Impairments::is_off`] (and for the two timeline modes, which act in
    /// [`Impairments::warp_gamma`] instead).
    pub fn apply_rx(&self, y: &mut [Complex], noise_power: f64, seed: u64) -> Applied {
        let mut applied = Applied::default();
        let n = y.len();
        if self.is_off() || n == 0 {
            return applied;
        }

        // Residual CFO: rotate everything, SI included.
        if self.cfo_hz > 0.0 {
            let mut r = mode_rng(seed, ImpairmentMode::Cfo);
            let f = pm1(&mut r) * self.cfo_hz;
            let w = std::f64::consts::TAU * f / SAMPLE_RATE_HZ;
            for (i, v) in y.iter_mut().enumerate() {
                *v *= Complex::exp_j(w * i as f64);
            }
            applied.cfo_hz = f;
        }

        // Bursty co-channel interference (wideband, OFDM-like).
        if self.interference_rel > 0.0 && self.interference_duty > 0.0 {
            let mut r = mode_rng(seed, ImpairmentMode::Interference);
            let burst = backfi_dsp::us_to_samples(self.interference_burst_us).max(1);
            let bursts =
                ((self.interference_duty * n as f64 / burst as f64).round() as usize).max(1);
            let power = self.interference_rel * noise_power;
            for _ in 0..bursts {
                let start = r.below(n as u64) as usize;
                let end = (start + burst).min(n);
                for v in &mut y[start..end] {
                    *v += cgauss(&mut r, power);
                }
            }
            applied.bursts = bursts;
        }

        // Impulsive noise: isolated single-sample spikes.
        if self.impulse_per_packet > 0.0 {
            let mut r = mode_rng(seed, ImpairmentMode::Impulse);
            let mut count = self.impulse_per_packet.floor() as usize;
            if r.next_f64() < self.impulse_per_packet.fract() {
                count += 1;
            }
            let power = self.impulse_rel * noise_power;
            for _ in 0..count {
                let pos = r.below(n as u64) as usize;
                y[pos] += cgauss(&mut r, power);
            }
            applied.impulses = count;
        }

        // ADC-railing blocker transient: a strong constant-envelope tone.
        if self.saturation_prob > 0.0 {
            let mut r = mode_rng(seed, ImpairmentMode::Saturation);
            if r.next_f64() < self.saturation_prob {
                let rms = backfi_dsp::stats::rms(y).max(1e-30);
                let amp = self.saturation_gain * rms;
                let dur = backfi_dsp::us_to_samples(self.saturation_us).max(1);
                let start = r.below(n as u64) as usize;
                let end = (start + dur).min(n);
                let f = pm1(&mut r) * 2e6;
                let w = std::f64::consts::TAU * f / SAMPLE_RATE_HZ;
                let phi0 = std::f64::consts::TAU * r.next_f64();
                for (i, v) in y[start..end].iter_mut().enumerate() {
                    *v += Complex::exp_j(w * i as f64 + phi0) * amp;
                }
                applied.saturated = true;
            }
        }

        // Stream truncation: the tail reads as zeros (capture stopped).
        if self.truncate_prob > 0.0 {
            let mut r = mode_rng(seed, ImpairmentMode::Truncate);
            if r.next_f64() < self.truncate_prob {
                let keep = n / 2 + r.below((n / 2).max(1) as u64) as usize;
                for v in &mut y[keep.min(n)..] {
                    *v = Complex::ZERO;
                }
                applied.truncated_at = Some(keep.min(n));
            }
        }

        // Non-finite corruption: a short NaN burst in the payload region.
        if self.nonfinite_prob > 0.0 {
            let mut r = mode_rng(seed, ImpairmentMode::NonFinite);
            if r.next_f64() < self.nonfinite_prob {
                let lo = n / 4;
                let span = (n - lo).max(1);
                let pos = lo + r.below(span as u64) as usize;
                let end = (pos + 8).min(n);
                for v in &mut y[pos..end] {
                    *v = Complex::new(f64::NAN, f64::NAN);
                }
                applied.nonfinite = end - pos;
            }
        }

        applied
    }
}

/// What [`Impairments::apply_rx`] actually injected into one packet.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Applied {
    /// The CFO drawn for this packet, Hz (0 when the mode is off).
    pub cfo_hz: f64,
    /// Number of interference bursts injected.
    pub bursts: usize,
    /// Whether a saturation transient fired.
    pub saturated: bool,
    /// Number of impulsive-noise spikes injected.
    pub impulses: usize,
    /// Sample index the stream truncated at, if it did.
    pub truncated_at: Option<usize>,
    /// Number of samples overwritten with NaN.
    pub nonfinite: usize,
}

impl Applied {
    /// Did any receive-path mode fire on this packet?
    pub fn any(&self) -> bool {
        self != &Applied::default()
    }
}

// ------------------------------------------------------- process default ---

fn global_cell() -> &'static RwLock<Impairments> {
    static CELL: OnceLock<RwLock<Impairments>> = OnceLock::new();
    CELL.get_or_init(|| {
        let imp = match std::env::var("BACKFI_IMPAIR") {
            Ok(spec) if !spec.trim().is_empty() => match Impairments::parse(&spec) {
                Ok(imp) => imp,
                Err(e) => {
                    eprintln!("# ignoring bad BACKFI_IMPAIR spec: {e}");
                    Impairments::off()
                }
            },
            _ => Impairments::off(),
        };
        RwLock::new(imp)
    })
}

/// The process-wide default impairment configuration, seeded from the
/// `BACKFI_IMPAIR` env var on first use (`LinkConfig::at_distance` reads it).
pub fn global() -> Impairments {
    *global_cell()
        .read()
        .expect("impairment lock poisoned: a config writer panicked")
}

/// Override the process-wide default (the `--impair` CLI path).
pub fn set_global(imp: Impairments) {
    *global_cell()
        .write()
        .expect("impairment lock poisoned: a config writer panicked") = imp;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(1.0 + i as f64, -(i as f64)))
            .collect()
    }

    #[test]
    fn default_is_off_and_noop() {
        let imp = Impairments::default();
        assert!(imp.is_off());
        let mut y = ramp(64);
        let orig = y.clone();
        let applied = imp.apply_rx(&mut y, 1e-9, 42);
        assert_eq!(applied, Applied::default());
        assert!(!applied.any());
        for (a, b) in y.iter().zip(&orig) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert!(imp.warp_gamma(&orig, 42).is_none());
    }

    #[test]
    fn same_seed_is_bit_identical_per_mode() {
        for &mode in &ImpairmentMode::ALL {
            let imp = Impairments::single(mode, 0.8);
            let mut a = ramp(512);
            let mut b = ramp(512);
            let ra = imp.apply_rx(&mut a, 1e-9, 1234);
            let rb = imp.apply_rx(&mut b, 1e-9, 1234);
            assert_eq!(ra, rb, "{}", mode.name());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "{}", mode.name());
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "{}", mode.name());
            }
            let wa = imp.warp_gamma(&ramp(512), 1234);
            let wb = imp.warp_gamma(&ramp(512), 1234);
            assert_eq!(wa, wb, "{}", mode.name());
        }
    }

    #[test]
    fn cfo_preserves_magnitude() {
        let imp = Impairments::single(ImpairmentMode::Cfo, 1.0);
        let mut y = ramp(256);
        let orig = y.clone();
        let applied = imp.apply_rx(&mut y, 1e-9, 7);
        assert!(applied.cfo_hz.abs() > 0.0);
        for (a, b) in y.iter().zip(&orig) {
            assert!((a.abs() - b.abs()).abs() < 1e-9 * b.abs().max(1.0));
        }
    }

    #[test]
    fn truncate_zeroes_tail() {
        let imp = Impairments::single(ImpairmentMode::Truncate, 1.0);
        let mut y = ramp(400);
        let applied = imp.apply_rx(&mut y, 1e-9, 5);
        let at = applied.truncated_at.expect("prob 1 must truncate");
        assert!((200..400).contains(&at));
        assert!(y[at..].iter().all(|v| v.re == 0.0 && v.im == 0.0));
        assert!(y[..at].iter().all(|v| v.re != 0.0));
    }

    #[test]
    fn nonfinite_injects_nan_burst() {
        let imp = Impairments::single(ImpairmentMode::NonFinite, 1.0);
        let mut y = ramp(400);
        let applied = imp.apply_rx(&mut y, 1e-9, 5);
        assert_eq!(applied.nonfinite, 8);
        let bad = y.iter().filter(|v| !v.re.is_finite()).count();
        assert_eq!(bad, 8);
    }

    #[test]
    fn saturation_raises_peak() {
        let imp = Impairments::single(ImpairmentMode::Saturation, 1.0);
        let mut y: Vec<Complex> = vec![Complex::new(1.0, 0.0); 1000];
        let applied = imp.apply_rx(&mut y, 1e-9, 3);
        assert!(applied.saturated);
        let peak = y.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        assert!(peak > 20.0, "blocker should dominate: peak {peak}");
    }

    #[test]
    fn interference_adds_power() {
        let imp = Impairments::single(ImpairmentMode::Interference, 1.0);
        let mut y = vec![Complex::ZERO; 4000];
        let noise = 1e-9;
        let applied = imp.apply_rx(&mut y, noise, 11);
        assert!(applied.bursts >= 1);
        let p = backfi_dsp::stats::mean_power(&y);
        // +40 dB relative bursts at ~15% duty ⇒ mean power well above floor.
        assert!(p > 100.0 * noise, "burst power {p:e} vs floor {noise:e}");
    }

    #[test]
    fn desync_shifts_timeline_most_seeds() {
        let imp = Impairments::single(ImpairmentMode::TimingDesync, 1.0);
        let gamma = ramp(500);
        let mut moved = 0;
        for seed in 0..20u64 {
            let w = imp.warp_gamma(&gamma, seed).unwrap();
            assert_eq!(w.len(), gamma.len());
            if w != gamma {
                moved += 1;
            }
        }
        // ±4 µs uniform: a draw rounding to a 0-sample shift is ~1% likely.
        assert!(moved >= 18, "only {moved}/20 seeds shifted the timeline");
    }

    #[test]
    fn drift_stretches_timeline() {
        let imp = Impairments::single(ImpairmentMode::ClockDrift, 1.0);
        let gamma = ramp(10_000);
        let w = imp.warp_gamma(&gamma, 9).unwrap();
        // 2000 ppm over 10k samples ⇒ up to ±20 samples of stretch at the
        // end while the start stays aligned.
        assert_eq!(w[0], gamma[0]);
        assert_ne!(w[9_999], gamma[9_999]);
    }

    #[test]
    fn spec_parsing() {
        let imp = Impairments::parse("cfo:0.5,drift:1").unwrap();
        assert_eq!(imp.cfo_hz, 1000.0);
        assert_eq!(imp.clock_drift_ppm, 2000.0);
        assert_eq!(imp.timing_desync_us, 0.0);

        let all = Impairments::parse("all:0.25").unwrap();
        assert!(!all.is_off());
        assert!(all.truncate_prob > 0.0 && all.saturation_prob > 0.0);

        assert!(Impairments::parse("off").unwrap().is_off());
        assert!(Impairments::parse("").unwrap().is_off());
        assert_eq!(
            Impairments::parse("interference").unwrap().interference_rel,
            100.0
        );
        assert!(Impairments::parse("bogus:1").is_err());
        assert!(Impairments::parse("cfo:wat").is_err());
    }

    #[test]
    fn modes_use_independent_streams() {
        // Enabling truncation must not change which samples the NaN burst
        // lands on: each mode draws from its own sub-stream.
        let just_nan = Impairments::single(ImpairmentMode::NonFinite, 1.0);
        let both = just_nan.merge(&Impairments::single(ImpairmentMode::Truncate, 1.0));
        let mut a = ramp(4000);
        let mut b = ramp(4000);
        let ra = just_nan.apply_rx(&mut a, 1e-9, 77);
        let rb = both.apply_rx(&mut b, 1e-9, 77);
        assert_eq!(ra.nonfinite, rb.nonfinite);
        let nan_at = |v: &[Complex]| {
            v.iter()
                .position(|c| !c.re.is_finite())
                .unwrap_or(usize::MAX)
        };
        // NaN injection runs after truncation, so the burst position must
        // agree exactly whether or not the truncate mode is enabled.
        assert!(rb.truncated_at.is_some());
        assert_eq!(nan_at(&a), nan_at(&b));
    }
}
