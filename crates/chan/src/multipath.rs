//! Tapped-delay-line multipath channel realizations.
//!
//! Indoor 2.4 GHz channels have delay spreads of 50–80 ns (§4.3.2 of the
//! paper: "a channel usually lasts for 50−80 ns"), i.e. 1–2 samples at
//! 20 MHz plus a weak tail. We synthesize channels with an exponential power
//! delay profile: a Rician first tap (LOS) followed by Rayleigh taps.

use backfi_dsp::noise::cgauss;
use backfi_dsp::rng::Rng;
use backfi_dsp::Complex;

/// Parameters of a multipath channel realization.
#[derive(Clone, Copy, Debug)]
pub struct MultipathProfile {
    /// Number of taps (at 20 MHz, 50 ns each).
    pub taps: usize,
    /// RMS decay of the exponential power delay profile, in taps.
    pub decay_taps: f64,
    /// Rician K-factor of the first tap in dB (`f64::NEG_INFINITY` for pure
    /// Rayleigh).
    pub rician_k_db: f64,
}

impl MultipathProfile {
    /// Typical indoor LOS profile for the tag link: short, LOS-dominated.
    pub fn indoor_los() -> Self {
        MultipathProfile {
            taps: 2,
            decay_taps: 0.7,
            rician_k_db: 8.0,
        }
    }

    /// Richer non-LOS profile (e.g. reflections off walls).
    pub fn indoor_nlos() -> Self {
        MultipathProfile {
            taps: 4,
            decay_taps: 1.2,
            rician_k_db: f64::NEG_INFINITY,
        }
    }

    /// Draw one unit-energy channel realization.
    ///
    /// The expected (and, after normalization, exact) total energy is 1, so
    /// the link budget's amplitude scaling fully controls received power.
    pub fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Complex> {
        assert!(self.taps >= 1, "need at least one tap");
        let mut h = Vec::with_capacity(self.taps);
        // Per-tap variance from the exponential PDP.
        let weights: Vec<f64> = (0..self.taps)
            .map(|i| (-(i as f64) / self.decay_taps.max(1e-6)).exp())
            .collect();
        let wsum: f64 = weights.iter().sum();
        for (i, w) in weights.iter().enumerate() {
            let var = w / wsum;
            let mut tap = cgauss(rng, var);
            if i == 0 && self.rician_k_db.is_finite() {
                // Rician: deterministic LOS component + scattered component.
                let k = 10f64.powf(self.rician_k_db / 10.0);
                let los = (var * k / (k + 1.0)).sqrt();
                let scatter_scale = (1.0 / (k + 1.0)).sqrt();
                let phase = rng.next_f64() * std::f64::consts::TAU;
                tap = Complex::from_polar(los, phase) + tap.scale(scatter_scale);
            }
            h.push(tap);
        }
        // Normalize to exactly unit energy so experiments are repeatable in
        // power even for short channels.
        let e: f64 = h.iter().map(|t| t.norm_sqr()).sum();
        let s = 1.0 / e.sqrt();
        for t in &mut h {
            *t *= s;
        }
        h
    }
}

/// Scale an impulse response by a linear amplitude (utility for applying a
/// link-budget gain to a unit-energy realization).
pub fn scaled(h: &[Complex], amplitude: f64) -> Vec<Complex> {
    h.iter().map(|t| t.scale(amplitude)).collect()
}

/// Convolve two impulse responses (e.g. `h_f ∗ h_b`, the combined channel the
/// reader estimates in §4.3.1).
pub fn cascade(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    backfi_dsp::fir::convolve(a, b, backfi_dsp::fir::ConvMode::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::rng::SplitMix64;

    #[test]
    fn unit_energy() {
        let mut rng = SplitMix64::new(1);
        for profile in [
            MultipathProfile::indoor_los(),
            MultipathProfile::indoor_nlos(),
        ] {
            for _ in 0..50 {
                let h = profile.realize(&mut rng);
                let e: f64 = h.iter().map(|t| t.norm_sqr()).sum();
                assert!((e - 1.0).abs() < 1e-12);
                assert_eq!(h.len(), profile.taps);
            }
        }
    }

    #[test]
    fn los_tap_dominates_with_high_k() {
        let mut rng = SplitMix64::new(2);
        let p = MultipathProfile {
            taps: 4,
            decay_taps: 1.0,
            rician_k_db: 20.0,
        };
        let mut first_tap_energy = 0.0;
        let n = 200;
        for _ in 0..n {
            let h = p.realize(&mut rng);
            first_tap_energy += h[0].norm_sqr();
        }
        assert!(first_tap_energy / n as f64 > 0.5, "LOS tap should dominate");
    }

    #[test]
    fn rayleigh_taps_vary_between_draws() {
        let mut rng = SplitMix64::new(3);
        let p = MultipathProfile::indoor_nlos();
        let a = p.realize(&mut rng);
        let b = p.realize(&mut rng);
        assert!((a[0] - b[0]).abs() > 1e-6);
    }

    #[test]
    fn cascade_length() {
        let a = vec![Complex::ONE; 3];
        let b = vec![Complex::ONE; 4];
        assert_eq!(cascade(&a, &b).len(), 6);
    }

    #[test]
    fn scaled_energy() {
        let mut rng = SplitMix64::new(4);
        let h = MultipathProfile::indoor_los().realize(&mut rng);
        let s = scaled(&h, 0.1);
        let e: f64 = s.iter().map(|t| t.norm_sqr()).sum();
        assert!((e - 0.01).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = MultipathProfile::indoor_nlos();
        let a = p.realize(&mut SplitMix64::new(9));
        let b = p.realize(&mut SplitMix64::new(9));
        assert_eq!(a, b);
    }
}
