//! # backfi-chan
//!
//! RF channel simulation for the BackFi reproduction: everything between the
//! AP's transmit chain and its receive chain.
//!
//! The medium implements the paper's Eq. 1/3 exactly:
//!
//! ```text
//! y_rx(t) = x(t) ∗ h_env(t) + [ (x(t) ∗ h_f(t)) · e^{jθ(t)} ] ∗ h_b(t) + n(t)
//! ```
//!
//! * [`budget`] — the link-budget constants (documented calibration, see
//!   DESIGN.md §6) and the backscatter path-gain model,
//! * [`multipath`] — tapped-delay-line Rayleigh/Rician channel realizations,
//! * [`environment`] — the self-interference channel `h_env` (circulator
//!   leakage + environmental reflections with a long tail),
//! * [`frontend`] — receiver front end: thermal noise, ADC quantization and
//!   saturation,
//! * [`impair`] — deterministic, seeded off-nominal impairment injection
//!   (clock drift, CFO, interference bursts, saturation transients,
//!   impulsive noise, truncated/corrupted streams), all off by default,
//! * [`medium`] — the composed backscatter medium that the end-to-end link
//!   simulator drives sample by sample.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod budget;
pub mod environment;
pub mod frontend;
pub mod impair;
pub mod medium;
pub mod multipath;

pub use budget::LinkBudget;
pub use medium::BackscatterMedium;
