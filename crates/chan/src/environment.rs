//! The self-interference channel `h_env`.
//!
//! What the reader receives of its **own** transmission (Eq. 1's
//! `x ∗ h_env` term) consists of:
//!
//! 1. direct circulator/antenna leakage — strong (≈ −20 dB of TX power) and
//!    nearly immediate,
//! 2. environmental reflections (walls, furniture) — weaker but spread over
//!    many taps, with a long exponential tail.
//!
//! The tail matters: a digital canceller with `K` taps cannot model energy
//! beyond tap `K`, and that *undermodelling* residue is what leaves the
//! ≈2 dB post-cancellation SNR degradation the paper measures in Fig. 11a.

use crate::budget::{dbm_to_lin, LinkBudget};
use backfi_dsp::noise::cgauss;
use backfi_dsp::rng::Rng;
use backfi_dsp::Complex;

/// Configuration for drawing `h_env` realizations.
#[derive(Clone, Copy, Debug)]
pub struct EnvironmentProfile {
    /// Total number of taps of the true environment response.
    pub taps: usize,
    /// Delay (in taps) of the leakage path.
    pub leakage_delay: usize,
    /// Exponential decay constant (taps) of the reflection tail.
    pub reflection_decay: f64,
    /// First reflection arrival (taps).
    pub reflection_start: usize,
}

impl Default for EnvironmentProfile {
    fn default() -> Self {
        EnvironmentProfile {
            taps: 24,
            leakage_delay: 0,
            reflection_decay: 3.0,
            reflection_start: 1,
        }
    }
}

impl EnvironmentProfile {
    /// Draw a realization of `h_env` scaled according to the link budget:
    /// the leakage tap carries `budget.leakage_db` of the TX power and the
    /// reflection taps collectively carry `budget.reflections_db`.
    pub fn realize<R: Rng + ?Sized>(&self, budget: &LinkBudget, rng: &mut R) -> Vec<Complex> {
        assert!(
            self.leakage_delay < self.taps,
            "leakage beyond channel length"
        );
        let mut h = vec![Complex::ZERO; self.taps];

        // Leakage: fixed power, random phase (cable lengths).
        let leak_amp = dbm_to_lin(budget.leakage_db).sqrt();
        let phase = rng.next_f64() * std::f64::consts::TAU;
        h[self.leakage_delay] = Complex::from_polar(leak_amp, phase);

        // Reflections: Rayleigh taps under an exponential profile, normalized
        // to the budgeted total power.
        let total_refl = dbm_to_lin(budget.reflections_db);
        let weights: Vec<f64> = (self.reflection_start..self.taps)
            .map(|i| (-(i as f64 - self.reflection_start as f64) / self.reflection_decay).exp())
            .collect();
        let wsum: f64 = weights.iter().sum();
        for (j, i) in (self.reflection_start..self.taps).enumerate() {
            let var = total_refl * weights[j] / wsum;
            h[i] += cgauss(rng, var);
        }
        h
    }

    /// The fraction of `h_env` energy beyond the first `k` taps — the
    /// undermodelling floor a `k`-tap canceller cannot remove.
    pub fn tail_energy_fraction(h_env: &[Complex], k: usize) -> f64 {
        let total: f64 = h_env.iter().map(|t| t.norm_sqr()).sum();
        if total == 0.0 || k >= h_env.len() {
            return 0.0;
        }
        let tail: f64 = h_env[k..].iter().map(|t| t.norm_sqr()).sum();
        tail / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::rng::SplitMix64;

    #[test]
    fn leakage_dominates() {
        let mut rng = SplitMix64::new(1);
        let budget = LinkBudget::default();
        let h = EnvironmentProfile::default().realize(&budget, &mut rng);
        let leak = h[0].norm_sqr();
        let rest: f64 = h[1..].iter().map(|t| t.norm_sqr()).sum();
        assert!(leak > rest * 10.0, "leak {leak} rest {rest}");
    }

    #[test]
    fn total_si_power_matches_budget() {
        let mut rng = SplitMix64::new(2);
        let budget = LinkBudget::default();
        let profile = EnvironmentProfile::default();
        let n = 300;
        let mut total = 0.0;
        for _ in 0..n {
            let h = profile.realize(&budget, &mut rng);
            total += h.iter().map(|t| t.norm_sqr()).sum::<f64>();
        }
        let mean = total / n as f64;
        let expect = dbm_to_lin(budget.leakage_db) + dbm_to_lin(budget.reflections_db);
        assert!(
            (mean / expect - 1.0).abs() < 0.1,
            "mean {mean} expect {expect}"
        );
    }

    #[test]
    fn tail_energy_decreases_with_k() {
        let mut rng = SplitMix64::new(3);
        let budget = LinkBudget::default();
        let h = EnvironmentProfile::default().realize(&budget, &mut rng);
        let mut prev = 1.0;
        for k in [1usize, 4, 8, 16, 24] {
            let frac = EnvironmentProfile::tail_energy_fraction(&h, k);
            assert!(frac <= prev + 1e-12, "k={k}");
            prev = frac;
        }
        assert_eq!(EnvironmentProfile::tail_energy_fraction(&h, 24), 0.0);
    }

    #[test]
    fn undermodelled_tail_would_swamp_the_tag() {
        // A canceller that models only half the environment response leaves a
        // residue tens of dB above the noise floor — which is why the digital
        // canceller must span the full delay spread, and why the remaining
        // ≈2 dB degradation comes from transmitter noise instead (see
        // `LinkBudget::tx_noise_dbc`).
        let mut rng = SplitMix64::new(4);
        let budget = LinkBudget::default();
        let profile = EnvironmentProfile::default();
        let mut fracs = Vec::new();
        for _ in 0..100 {
            let h = profile.realize(&budget, &mut rng);
            let tail: f64 = h[12..].iter().map(|t| t.norm_sqr()).sum();
            fracs.push(tail * budget.tx_power());
        }
        let mean_tail = backfi_dsp::stats::mean(&fracs);
        let ratio_db = 10.0 * (mean_tail / budget.noise_power()).log10();
        assert!(ratio_db > 30.0, "tail-to-noise ratio {ratio_db} dB");
    }
}
