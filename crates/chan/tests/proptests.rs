//! Randomized tests over the channel models and link budget.
//!
//! Formerly `proptest`-based; now driven by the in-tree [`SplitMix64`]
//! generator so the suite builds offline and every case is reproducible from
//! its loop index.

use backfi_chan::budget::{dbm_to_lin, lin_to_dbm, LinkBudget};
use backfi_chan::frontend::Adc;
use backfi_chan::multipath::MultipathProfile;
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::Complex;

const CASES: u64 = 64;

fn uniform(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

#[test]
fn pathloss_monotone_and_continuous() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x41_0000 + case);
        let d1 = uniform(&mut rng, 0.2, 10.0);
        let d2 = uniform(&mut rng, 0.2, 10.0);
        let b = LinkBudget::default();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        assert!(b.backscatter_pathloss_db(lo) <= b.backscatter_pathloss_db(hi) + 1e-9);
        assert!(b.wifi_pathloss_db(lo) <= b.wifi_pathloss_db(hi) + 1e-9);
        // local continuity
        let eps = 1e-6;
        let a = b.backscatter_pathloss_db(lo);
        let c = b.backscatter_pathloss_db(lo + eps);
        assert!((a - c).abs() < 1e-3);
    }
}

#[test]
fn budget_identities() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x42_0000 + case);
        let d = uniform(&mut rng, 0.2, 10.0);
        let b = LinkBudget::default();
        assert!(
            (b.backscatter_rx_power_dbm(d) - (b.tx_power_dbm - b.backscatter_pathloss_db(d))).abs()
                < 1e-9
        );
        // amplitude² == linear power gain
        let amp = b.backscatter_amplitude(d);
        let gain_db = lin_to_dbm(amp * amp);
        assert!((gain_db + b.backscatter_pathloss_db(d)).abs() < 1e-6);
    }
}

#[test]
fn dbm_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x43_0000 + case);
        let v = uniform(&mut rng, -150.0, 50.0);
        assert!((lin_to_dbm(dbm_to_lin(v)) - v).abs() < 1e-9);
    }
}

#[test]
fn multipath_always_unit_energy() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x44_0000 + case);
        let taps = 1 + rng.below(7) as usize;
        let decay = uniform(&mut rng, 0.2, 5.0);
        let k_db = uniform(&mut rng, -5.0, 20.0);
        let seed = rng.below(500);
        let p = MultipathProfile {
            taps,
            decay_taps: decay,
            rician_k_db: k_db,
        };
        let mut ch_rng = SplitMix64::new(seed);
        let h = p.realize(&mut ch_rng);
        let e: f64 = h.iter().map(|t| t.norm_sqr()).sum();
        assert!((e - 1.0).abs() < 1e-9);
        assert_eq!(h.len(), taps);
        assert!(h.iter().all(|t| t.is_finite()));
    }
}

#[test]
fn adc_never_amplifies() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x45_0000 + case);
        let re = uniform(&mut rng, -10.0, 10.0);
        let im = uniform(&mut rng, -10.0, 10.0);
        let bits = 4 + rng.below(12) as u32;
        let adc = Adc {
            bits,
            full_scale: 1.0,
        };
        let y = adc.sample(Complex::new(re, im));
        assert!(y.re.abs() <= 1.0 + 1e-12);
        assert!(y.im.abs() <= 1.0 + 1e-12);
        // In-range samples move at most half a step.
        if re.abs() < 1.0 && im.abs() < 1.0 {
            let d = adc.step();
            assert!((y.re - re).abs() <= d / 2.0 + 1e-12);
            assert!((y.im - im).abs() <= d / 2.0 + 1e-12);
        }
    }
}

#[test]
fn tag_interference_decays_with_both_legs() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x46_0000 + case);
        let d1 = uniform(&mut rng, 0.1, 5.0);
        let d2 = uniform(&mut rng, 0.1, 20.0);
        let b = LinkBudget::default();
        let base = b.tag_interference_dbm(d1, d2);
        assert!(b.tag_interference_dbm(d1 * 2.0, d2) < base);
        assert!(b.tag_interference_dbm(d1, d2 * 2.0) < base);
        // symmetric in its legs
        assert!((b.tag_interference_dbm(d1, d2) - b.tag_interference_dbm(d2, d1)).abs() < 1e-9);
    }
}
