//! Property-based tests over the channel models and link budget.

use backfi_chan::budget::{dbm_to_lin, lin_to_dbm, LinkBudget};
use backfi_chan::frontend::Adc;
use backfi_chan::multipath::MultipathProfile;
use backfi_dsp::Complex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pathloss_monotone_and_continuous(d1 in 0.2f64..10.0, d2 in 0.2f64..10.0) {
        let b = LinkBudget::default();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(b.backscatter_pathloss_db(lo) <= b.backscatter_pathloss_db(hi) + 1e-9);
        prop_assert!(b.wifi_pathloss_db(lo) <= b.wifi_pathloss_db(hi) + 1e-9);
        // local continuity
        let eps = 1e-6;
        let a = b.backscatter_pathloss_db(lo);
        let c = b.backscatter_pathloss_db(lo + eps);
        prop_assert!((a - c).abs() < 1e-3);
    }

    #[test]
    fn budget_identities(d in 0.2f64..10.0) {
        let b = LinkBudget::default();
        prop_assert!(
            (b.backscatter_rx_power_dbm(d) - (b.tx_power_dbm - b.backscatter_pathloss_db(d))).abs()
                < 1e-9
        );
        // amplitude² == linear power gain
        let amp = b.backscatter_amplitude(d);
        let gain_db = lin_to_dbm(amp * amp);
        prop_assert!((gain_db + b.backscatter_pathloss_db(d)).abs() < 1e-6);
    }

    #[test]
    fn dbm_roundtrip(v in -150.0f64..50.0) {
        prop_assert!((lin_to_dbm(dbm_to_lin(v)) - v).abs() < 1e-9);
    }

    #[test]
    fn multipath_always_unit_energy(taps in 1usize..8, decay in 0.2f64..5.0,
                                    k_db in -5.0f64..20.0, seed in 0u64..500) {
        let p = MultipathProfile { taps, decay_taps: decay, rician_k_db: k_db };
        let mut rng = StdRng::seed_from_u64(seed);
        let h = p.realize(&mut rng);
        let e: f64 = h.iter().map(|t| t.norm_sqr()).sum();
        prop_assert!((e - 1.0).abs() < 1e-9);
        prop_assert_eq!(h.len(), taps);
        prop_assert!(h.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn adc_never_amplifies(re in -10.0f64..10.0, im in -10.0f64..10.0,
                           bits in 4u32..16) {
        let adc = Adc { bits, full_scale: 1.0 };
        let y = adc.sample(Complex::new(re, im));
        prop_assert!(y.re.abs() <= 1.0 + 1e-12);
        prop_assert!(y.im.abs() <= 1.0 + 1e-12);
        // In-range samples move at most half a step.
        if re.abs() < 1.0 && im.abs() < 1.0 {
            let d = adc.step();
            prop_assert!((y.re - re).abs() <= d / 2.0 + 1e-12);
            prop_assert!((y.im - im).abs() <= d / 2.0 + 1e-12);
        }
    }

    #[test]
    fn tag_interference_decays_with_both_legs(d1 in 0.1f64..5.0, d2 in 0.1f64..20.0) {
        let b = LinkBudget::default();
        let base = b.tag_interference_dbm(d1, d2);
        prop_assert!(b.tag_interference_dbm(d1 * 2.0, d2) < base);
        prop_assert!(b.tag_interference_dbm(d1, d2 * 2.0) < base);
        // symmetric in its legs
        prop_assert!((b.tag_interference_dbm(d1, d2) - b.tag_interference_dbm(d2, d1)).abs() < 1e-9);
    }
}
