//! End-to-end fault-injection properties: deterministic injection, graceful
//! (monotone) degradation under every impairment mode, and a sweep executor
//! that survives a panicking grid cell.

use backfi_chan::impair::{ImpairmentMode, Impairments};
use backfi_core::sweep::{grid_cells, run_grid_on, run_trials_on, Executor};
use backfi_core::LinkConfig;
use backfi_tag::config::TagConfig;

fn base(distance: f64) -> LinkConfig {
    let mut cfg = LinkConfig::at_distance(distance);
    cfg.excitation.wifi_payload_bytes = 1200;
    cfg
}

/// Composite degradation score of one configuration: failed-frame fraction
/// plus the raw symbol-decision BER. Clean links score near 0; a dead link
/// scores near 1.5.
fn degradation(cfg: &LinkConfig, seeds: usize) -> f64 {
    let stats = run_trials_on(&Executor::new(), cfg, seeds, 9000);
    (1.0 - stats.success_rate) + stats.mean_pre_fec_ber
}

/// ROADMAP convention: statistical assertions average ≥20 seeds.
const SEEDS: usize = 20;

#[test]
fn every_mode_degrades_monotonically_and_never_panics() {
    let mut worst = Vec::new();
    for mode in ImpairmentMode::ALL {
        let mut scores = Vec::new();
        for &intensity in &[0.0, 0.5, 1.0] {
            let mut cfg = base(2.0);
            cfg.impair = Impairments::single(mode, intensity);
            scores.push(degradation(&cfg, SEEDS));
        }
        // Monotone within statistical tolerance: turning a fault *up* never
        // makes the link meaningfully better. (Some modes — e.g. a short NaN
        // burst the reader erases — are almost fully absorbed by the
        // degradation ladder, so equality is allowed.)
        assert!(
            scores[1] <= scores[2] + 0.08 && scores[0] <= scores[1] + 0.08,
            "{}: degradation must not decrease with intensity: {scores:?}",
            mode.name()
        );
        assert!(
            scores[0] < 0.4,
            "{}: zero intensity must be a clean link: {scores:?}",
            mode.name()
        );
        worst.push((mode, scores[2]));
    }
    // Full-intensity faults must actually bite somewhere: at least half the
    // modes show clear degradation over the clean link.
    let biting = worst.iter().filter(|(_, s)| *s > 0.3).count();
    assert!(
        biting * 2 >= ImpairmentMode::ALL.len(),
        "full-intensity faults too gentle: {worst:?}"
    );
}

#[test]
fn impaired_sweeps_are_bit_identical_across_worker_counts() {
    // Same seed ⇒ bit-identical aggregates for any worker count, with every
    // impairment mode active: injection draws derive from the job seed, not
    // from thread identity or steal order.
    let mut cfg = base(1.5);
    cfg.impair = Impairments::all(0.4);
    let cells: Vec<LinkConfig> = grid_cells(&cfg, &[TagConfig::default()])
        .into_iter()
        .chain(
            grid_cells(&base(3.0), &[TagConfig::default()])
                .into_iter()
                .map(|mut c| {
                    c.impair = Impairments::all(0.4);
                    c
                }),
        )
        .collect();
    let a = run_grid_on(&Executor::with_threads(1), &cells, 6, 4242);
    let b = run_grid_on(&Executor::with_threads(7), &cells, 6, 4242);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.success_rate.to_bits(), y.success_rate.to_bits());
        assert_eq!(x.mean_snr_db.to_bits(), y.mean_snr_db.to_bits());
        assert_eq!(x.mean_ber.to_bits(), y.mean_ber.to_bits());
        assert_eq!(x.mean_pre_fec_ber.to_bits(), y.mean_pre_fec_ber.to_bits());
        assert_eq!(x.mean_goodput_bps.to_bits(), y.mean_goodput_bps.to_bits());
        assert_eq!(x.panics, y.panics);
    }
}

#[test]
fn executor_completes_a_grid_with_a_panicking_cell() {
    backfi_obs::enable();
    // symbol_rate 10 MHz at a 20 MHz sample rate leaves 2 samples/symbol —
    // below the tag pipeline's minimum, which panics by contract. The sweep
    // must absorb it: the poisoned cell reports failed trials with `panics`
    // attribution while healthy cells are unaffected.
    let poison = TagConfig {
        symbol_rate_hz: 10e6,
        ..TagConfig::default()
    };
    let cells = grid_cells(&base(1.0), &[TagConfig::default(), poison]);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let before = backfi_obs::counter_value("sweep.job_panic");
    let trials = 3;
    let stats = run_grid_on(&Executor::with_threads(4), &cells, trials, 77);
    std::panic::set_hook(hook);
    let after = backfi_obs::counter_value("sweep.job_panic");

    assert_eq!(stats.len(), 2, "grid must complete despite the panics");
    assert_eq!(stats[0].panics, 0);
    assert!(stats[0].success_rate > 0.5, "healthy cell unaffected");
    assert_eq!(stats[1].panics, trials, "every poisoned trial attributed");
    assert_eq!(stats[1].success_rate, 0.0);
    assert_eq!(stats[1].mean_ber, 1.0);
    assert!(
        after >= before + trials as u64,
        "sweep.job_panic must count: {before} -> {after}"
    );
}
