//! End-to-end properties of the persistent sweep result cache: warm reruns
//! recompute nothing and stay bit-identical, racing executors converge,
//! corruption is detected and healed, and a stale code-version salt wipes
//! the store.

use backfi_core::sweep::cache::ResultCache;
use backfi_core::sweep::{
    grid_cells, metrics_snapshot, run_grid_indexed_cached, run_grid_on, Executor, TrialStats,
};
use backfi_core::LinkConfig;
use backfi_tag::config::TagConfig;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// Obs counters and the executor job counter are process-wide; tests that
/// assert on their deltas hold this to keep the deltas attributable.
static METRICS: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    METRICS.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("backfi-sweep-cache-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn small_grid() -> (Vec<LinkConfig>, Vec<u64>, usize, u64) {
    let mut base = LinkConfig::at_distance(1.0);
    base.excitation.wifi_payload_bytes = 1200;
    let mut cells = grid_cells(&base, &[TagConfig::default()]);
    let mut far = LinkConfig::at_distance(2.5);
    far.excitation.wifi_payload_bytes = 1200;
    cells.extend(grid_cells(&far, &[TagConfig::default()]));
    let trials = 3usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    (cells, bases, trials, 4242)
}

fn assert_stats_bits_eq(a: &[TrialStats], b: &[TrialStats], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.success_rate.to_bits(),
            y.success_rate.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(
            x.mean_snr_db.to_bits(),
            y.mean_snr_db.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(x.mean_ber.to_bits(), y.mean_ber.to_bits(), "{what}[{i}]");
        assert_eq!(
            x.mean_pre_fec_ber.to_bits(),
            y.mean_pre_fec_ber.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(
            x.mean_goodput_bps.to_bits(),
            y.mean_goodput_bps.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(x.panics, y.panics, "{what}[{i}]");
    }
}

/// Every `.bfc` entry file under the store.
fn entry_files(cache: &ResultCache) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for shard in fs::read_dir(cache.dir()).unwrap() {
        let shard = shard.unwrap();
        if !shard.file_type().unwrap().is_dir() {
            continue;
        }
        for e in fs::read_dir(shard.path()).unwrap() {
            let p = e.unwrap().path();
            if p.extension().is_some_and(|x| x == "bfc") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn warm_rerun_is_bit_identical_and_recomputes_nothing() {
    let _m = serialize();
    let dir = tmpdir("warm");
    let cache = ResultCache::open(&dir).unwrap();
    let (cells, bases, trials, seed0) = small_grid();
    let exec = Executor::new();

    let plain = run_grid_on(&exec, &cells, trials, seed0);
    let cold = run_grid_indexed_cached(&exec, &cache, &cells, trials, seed0, &bases);
    assert_stats_bits_eq(&plain, &cold, "cold cached vs plain");

    let (jobs_before, _) = metrics_snapshot();
    let warm = run_grid_indexed_cached(&exec, &cache, &cells, trials, seed0, &bases);
    let (jobs_after, _) = metrics_snapshot();
    assert_eq!(
        jobs_after, jobs_before,
        "a fully warm cache must execute zero link trials"
    );
    assert_stats_bits_eq(&cold, &warm, "warm vs cold");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn racing_executors_converge_to_one_valid_entry_per_cell() {
    let _m = serialize();
    let dir = tmpdir("race");
    let cache = ResultCache::open(&dir).unwrap();
    let (cells, bases, trials, seed0) = small_grid();
    let reference = run_grid_on(&Executor::new(), &cells, trials, seed0);

    // Two executors race cold on the same store: both compute every cell and
    // both publish every key via temp-file + rename.
    let results: Vec<Vec<TrialStats>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (cache, cells, bases) = (&cache, &cells, &bases);
                s.spawn(move || {
                    run_grid_indexed_cached(&Executor::new(), cache, cells, trials, seed0, bases)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results {
        assert_stats_bits_eq(&reference, r, "racing writer");
    }
    assert_eq!(
        cache.entry_count().unwrap(),
        cells.len(),
        "exactly one entry per cell survives the race"
    );
    // And each surviving entry is valid: a warm read returns the reference
    // bits without recomputation.
    let warm = run_grid_indexed_cached(&Executor::new(), &cache, &cells, trials, seed0, &bases);
    assert_stats_bits_eq(&reference, &warm, "post-race warm read");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entries_are_rejected_and_recomputed() {
    let _m = serialize();
    backfi_obs::enable();
    let dir = tmpdir("corrupt");
    let cache = ResultCache::open(&dir).unwrap();
    let (cells, bases, trials, seed0) = small_grid();
    let exec = Executor::new();
    let cold = run_grid_indexed_cached(&exec, &cache, &cells, trials, seed0, &bases);

    let files = entry_files(&cache);
    assert_eq!(files.len(), cells.len());
    // Truncate one entry, flip a payload bit in the other.
    let bytes = fs::read(&files[0]).unwrap();
    fs::write(&files[0], &bytes[..bytes.len() / 2]).unwrap();
    let mut bytes = fs::read(&files[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&files[1], &bytes).unwrap();

    let corrupt_before = backfi_obs::counter_value("sweep.cache.corrupt");
    let healed = run_grid_indexed_cached(&exec, &cache, &cells, trials, seed0, &bases);
    let corrupt_after = backfi_obs::counter_value("sweep.cache.corrupt");
    assert_stats_bits_eq(&cold, &healed, "healed rerun");
    assert_eq!(
        corrupt_after - corrupt_before,
        2,
        "both damaged entries must be detected by checksum"
    );
    // The store healed itself: both entries rewritten, next run is all hits.
    assert_eq!(cache.entry_count().unwrap(), cells.len());
    let (jobs_before, _) = metrics_snapshot();
    let warm = run_grid_indexed_cached(&exec, &cache, &cells, trials, seed0, &bases);
    let (jobs_after, _) = metrics_snapshot();
    assert_eq!(jobs_after, jobs_before, "healed store must serve from disk");
    assert_stats_bits_eq(&cold, &warm, "post-heal warm read");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_code_salt_invalidates_the_whole_store() {
    let _m = serialize();
    let dir = tmpdir("salt");
    let cache = ResultCache::open(&dir).unwrap();
    let (cells, bases, trials, seed0) = small_grid();
    run_grid_indexed_cached(&Executor::new(), &cache, &cells, trials, seed0, &bases);
    assert_eq!(cache.entry_count().unwrap(), cells.len());
    drop(cache);

    // A build with a different codec/crate/sim revision stamped this store.
    fs::write(dir.join("CACHE_VERSION"), "00000000deadbeef\n").unwrap();
    let reopened = ResultCache::open(&dir).unwrap();
    assert_eq!(
        reopened.entry_count().unwrap(),
        0,
        "every entry from a stale salt must be evicted on open"
    );
    // The store is usable again afterwards with the current salt.
    let again = run_grid_indexed_cached(&Executor::new(), &reopened, &cells, trials, seed0, &bases);
    assert_eq!(again.len(), cells.len());
    assert_eq!(reopened.entry_count().unwrap(), cells.len());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn panicked_cells_are_never_frozen_into_the_cache() {
    let _m = serialize();
    let dir = tmpdir("panic");
    let cache = ResultCache::open(&dir).unwrap();
    // symbol_rate 10 MHz at 20 MS/s leaves 2 samples/symbol — below the tag
    // pipeline's minimum, which panics by contract.
    let poison = TagConfig {
        symbol_rate_hz: 10e6,
        ..TagConfig::default()
    };
    let mut base = LinkConfig::at_distance(1.0);
    base.excitation.wifi_payload_bytes = 1200;
    let cells = grid_cells(&base, &[TagConfig::default(), poison]);
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();

    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let cold = run_grid_indexed_cached(&Executor::new(), &cache, &cells, trials, 77, &bases);
    assert_eq!(cold[1].panics, trials, "poisoned cell attributed");
    assert_eq!(
        cache.entry_count().unwrap(),
        1,
        "only the healthy cell may be cached"
    );
    // A rerun recomputes exactly the poisoned cell's trials.
    let (jobs_before, _) = metrics_snapshot();
    let warm = run_grid_indexed_cached(&Executor::new(), &cache, &cells, trials, 77, &bases);
    let (jobs_after, _) = metrics_snapshot();
    std::panic::set_hook(hook);
    assert_eq!(
        jobs_after - jobs_before,
        trials as u64,
        "only the uncached (panicking) cell reruns"
    );
    assert_stats_bits_eq(&cold, &warm, "panic cell rerun");
    let _ = fs::remove_dir_all(&dir);
}
