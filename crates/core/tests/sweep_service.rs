//! Loopback integration of the TCP sweep service: a coordinator sharding
//! over 1, 2 and 4 workers must reproduce the in-process `run_grid` result
//! bit-for-bit — including with fault injection active — and must reject
//! workers built from a different code version.

use backfi_chan::impair::{ImpairmentMode, Impairments};
use backfi_core::sweep::cache::code_salt;
use backfi_core::sweep::service::{self, testkit, ServiceConfig, ServiceError, WorkerPool};
use backfi_core::sweep::{grid_cells, run_grid_indexed_on, run_grid_on, Executor, TrialStats};
use backfi_core::LinkConfig;
use backfi_tag::config::TagConfig;
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// The worker-pool global and obs counters are process-wide; serialize the
/// tests that touch them.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Spawn a detached loopback worker serving `conns` connections; returns
/// its address. Detached so an unused worker never blocks test teardown.
fn spawn_worker(conns: usize) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = service::serve(&listener, Some(conns));
    });
    addr
}

/// Spawn a rogue peer: accepts exactly one connection, hands it to `f`,
/// then drops the listener (so retries see connection-refused). Used to
/// model workers that die mid-job, truncate frames, or never speak.
fn spawn_rogue(f: impl FnOnce(&mut TcpStream) + Send + 'static) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            f(&mut stream);
        }
    });
    addr
}

/// Aggressive deadlines/backoffs so fault tests converge in milliseconds
/// instead of the production-scale defaults.
fn fast_config() -> ServiceConfig {
    ServiceConfig {
        shard_deadline: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(2),
        hello_timeout: Duration::from_millis(300),
        max_attempts: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        failure_budget: 3,
        reprobe: Duration::from_millis(50),
    }
}

fn spawn_stale_worker(salt: u64) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = service::serve_with_salt(&listener, salt, Some(1));
    });
    addr
}

/// 4-cell grid: two distances × two tag configurations.
fn grid(impair: Option<Impairments>) -> Vec<LinkConfig> {
    let slow = TagConfig::default();
    let fast = TagConfig {
        symbol_rate_hz: 2.5e6,
        ..TagConfig::default()
    };
    let mut cells = Vec::new();
    for &d in &[1.0, 2.5] {
        let mut base = LinkConfig::at_distance(d);
        base.excitation.wifi_payload_bytes = 1200;
        if let Some(imp) = impair {
            base.impair = imp;
        }
        cells.extend(grid_cells(&base, &[slow, fast]));
    }
    cells
}

fn assert_stats_bits_eq(a: &[TrialStats], b: &[TrialStats], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.success_rate.to_bits(),
            y.success_rate.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(
            x.mean_snr_db.to_bits(),
            y.mean_snr_db.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(x.mean_ber.to_bits(), y.mean_ber.to_bits(), "{what}[{i}]");
        assert_eq!(
            x.mean_pre_fec_ber.to_bits(),
            y.mean_pre_fec_ber.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(
            x.mean_goodput_bps.to_bits(),
            y.mean_goodput_bps.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(x.panics, y.panics, "{what}[{i}]");
    }
}

#[test]
fn sharded_run_is_bit_identical_for_1_2_and_4_workers() {
    let _g = serialize();
    let cells = grid(None);
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 1000);
    for workers in [1usize, 2, 4] {
        let pool = WorkerPool::new((0..workers).map(|_| spawn_worker(1)).collect());
        let sharded = service::run_sharded(&pool, &cells, trials, 1000, &bases)
            .unwrap_or_else(|e| panic!("{workers}-worker run failed: {e}"));
        assert_stats_bits_eq(&reference, &sharded, &format!("{workers} workers"));
    }
}

#[test]
fn sharded_run_is_bit_identical_under_impairment() {
    let _g = serialize();
    // One `--impair` mode active in every cell: injection draws derive from
    // the job seed the coordinator ships, not from which host computes it.
    let cells = grid(Some(Impairments::single(ImpairmentMode::Cfo, 0.5)));
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 7700);
    let pool = WorkerPool::new((0..2).map(|_| spawn_worker(1)).collect());
    let sharded = service::run_sharded(&pool, &cells, trials, 7700, &bases).unwrap();
    assert_stats_bits_eq(&reference, &sharded, "2 workers, cfo impaired");
}

#[test]
fn stale_worker_salt_is_rejected() {
    let _g = serialize();
    let cells = grid(None);
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * 2).collect();
    let pool = WorkerPool::new(vec![spawn_stale_worker(0xdeadbeef)]);
    match service::run_sharded(&pool, &cells, 2, 1000, &bases) {
        Err(ServiceError::Protocol(m)) => {
            assert!(m.contains("salt"), "rejection must name the salt: {m}")
        }
        other => panic!("stale worker must be rejected, got {other:?}"),
    }
}

#[test]
fn dispatch_falls_back_to_local_when_workers_are_dead() {
    let _g = serialize();
    let cells = grid(None);
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 1000);

    // Bind-then-drop guarantees a dead port.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    backfi_obs::enable();
    let before = backfi_obs::counter_value("sweep.service.fallback");
    service::set_global(Some(WorkerPool::new(vec![dead])));
    let via_dispatch = run_grid_indexed_on(&Executor::new(), &cells, trials, 1000, &bases);
    service::set_global(None);
    let after = backfi_obs::counter_value("sweep.service.fallback");
    assert!(after > before, "fallback must be counted");
    assert_stats_bits_eq(&reference, &via_dispatch, "dead-pool fallback");
}

#[test]
fn worker_killed_mid_job_redispatches_bit_identical() {
    let _g = serialize();
    let cells = grid(None);
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 1000);
    backfi_obs::enable();
    let retries0 = backfi_obs::counter_value("sweep.service.retry");
    // A worker that handshakes, accepts a job, then dies without answering.
    let rogue = spawn_rogue(|s| {
        let _ = testkit::write_raw(s, &testkit::frame_bytes(&testkit::hello_body(code_salt())));
        let _ = testkit::read_frame(s); // swallow the JOB, then drop the socket
    });
    let pool = WorkerPool::with_config(vec![rogue, spawn_worker(1)], fast_config());
    let sharded = service::run_sharded(&pool, &cells, trials, 1000, &bases)
        .expect("survivor must absorb the dead worker's shards");
    assert_stats_bits_eq(&reference, &sharded, "worker killed mid-job");
    assert!(
        backfi_obs::counter_value("sweep.service.retry") > retries0,
        "the lost shard must have been retried"
    );
}

#[test]
fn truncated_result_frame_recovers_bit_identical() {
    let _g = serialize();
    let cells = grid(None);
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 1000);
    backfi_obs::enable();
    let retries0 = backfi_obs::counter_value("sweep.service.retry");
    // A worker that answers with half a RESULT frame: valid header, body
    // cut short — the coordinator's read must fail cleanly, not hang or
    // accept garbage.
    let rogue = spawn_rogue(|s| {
        let _ = testkit::write_raw(s, &testkit::frame_bytes(&testkit::hello_body(code_salt())));
        let _ = testkit::read_frame(s);
        let frame = testkit::frame_bytes(&[3u8; 200]);
        let _ = testkit::write_raw(s, &frame[..frame.len() / 2]);
    });
    let pool = WorkerPool::with_config(vec![rogue, spawn_worker(1)], fast_config());
    let sharded = service::run_sharded(&pool, &cells, trials, 1000, &bases)
        .expect("truncated frame must not fail the run");
    assert_stats_bits_eq(&reference, &sharded, "truncated RESULT");
    assert!(backfi_obs::counter_value("sweep.service.retry") > retries0);
}

#[test]
fn stalled_hello_times_out_and_recovers_bit_identical() {
    let _g = serialize();
    let cells = grid(None);
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 1000);
    backfi_obs::enable();
    let timeouts0 = backfi_obs::counter_value("sweep.service.timeout");
    // A worker that accepts and then never says HELLO: only the hello
    // deadline stands between this and an infinite hang.
    let rogue = spawn_rogue(|s| {
        std::thread::sleep(Duration::from_secs(2));
        let _ = s;
    });
    let pool = WorkerPool::with_config(vec![rogue, spawn_worker(1)], fast_config());
    let sharded = service::run_sharded(&pool, &cells, trials, 1000, &bases)
        .expect("stalled HELLO must not fail the run");
    assert_stats_bits_eq(&reference, &sharded, "stalled HELLO");
    assert!(
        backfi_obs::counter_value("sweep.service.timeout") > timeouts0,
        "the stall must surface as a deadline expiry"
    );
}

#[test]
fn stale_salt_worker_in_healthy_pool_is_quarantined_not_fatal() {
    let _g = serialize();
    let cells = grid(None);
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 1000);
    backfi_obs::enable();
    let quarantine0 = backfi_obs::counter_value("sweep.service.quarantine");
    let fallback0 = backfi_obs::counter_value("sweep.service.fallback");
    let pool = WorkerPool::with_config(
        vec![spawn_stale_worker(0xdeadbeef), spawn_worker(1)],
        fast_config(),
    );
    service::set_global(Some(pool));
    let sharded = run_grid_indexed_on(&Executor::new(), &cells, trials, 1000, &bases);
    service::set_global(None);
    assert_stats_bits_eq(&reference, &sharded, "stale worker in healthy pool");
    assert!(
        backfi_obs::counter_value("sweep.service.quarantine") > quarantine0,
        "the stale worker must be quarantined"
    );
    assert_eq!(
        backfi_obs::counter_value("sweep.service.fallback"),
        fallback0,
        "one healthy worker must keep the whole-run fallback at zero"
    );
}

#[test]
fn exhausted_shard_falls_back_locally_not_whole_run() {
    let _g = serialize();
    let cells = grid(None);
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 1000);
    backfi_obs::enable();
    let shard_fb0 = backfi_obs::counter_value("sweep.service.shard_fallback");
    // One attempt only: the first shard the rogue kills is immediately
    // unrecoverable remotely and must be computed locally — just that shard.
    let cfg = ServiceConfig {
        max_attempts: 1,
        ..fast_config()
    };
    let rogue = spawn_rogue(|s| {
        let _ = testkit::write_raw(s, &testkit::frame_bytes(&testkit::hello_body(code_salt())));
        let _ = testkit::read_frame(s);
    });
    let pool = WorkerPool::with_config(vec![rogue, spawn_worker(1)], cfg);
    let sharded = service::run_sharded(&pool, &cells, trials, 1000, &bases)
        .expect("per-shard fallback must keep the run alive");
    assert_stats_bits_eq(&reference, &sharded, "per-shard local fallback");
    assert!(
        backfi_obs::counter_value("sweep.service.shard_fallback") > shard_fb0,
        "the unrecoverable shard must be computed locally"
    );
}

#[test]
fn pool_from_spec_validates_addresses() {
    assert!(service::pool_from_spec("127.0.0.1:7070").is_ok());
    assert_eq!(
        service::pool_from_spec(" a:1 , b:2 ,c:3 ").map(|p| p.len()),
        Ok(3)
    );
    // IPv6 form keeps host:port splitting on the last colon.
    assert!(service::pool_from_spec("[::1]:8080").is_ok());
    for bad in [
        "",
        " , ,",
        "justahost",
        ":7070",
        "host:notaport",
        "host:99999",
        "a:1,a:1",
    ] {
        assert!(
            service::pool_from_spec(bad).is_err(),
            "spec {bad:?} must be rejected"
        );
    }
}

#[test]
fn global_dispatch_through_live_workers_matches_local() {
    let _g = serialize();
    let cells = grid(None);
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 1000);
    service::set_global(Some(WorkerPool::new(
        (0..2).map(|_| spawn_worker(1)).collect(),
    )));
    let sharded = run_grid_indexed_on(&Executor::new(), &cells, trials, 1000, &bases);
    service::set_global(None);
    assert_stats_bits_eq(&reference, &sharded, "global dispatch, 2 workers");
}
