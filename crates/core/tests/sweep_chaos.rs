//! Chaos-transport integration: with seeded fault injection active on the
//! coordinator's wire — dropped connections, stalled reads, truncated and
//! bit-flipped frames — the sharded sweep must still produce bit-identical
//! results via retry, re-dispatch, quarantine and per-shard local fallback.
//! The chaos layer is the proof harness for the failure model in DESIGN.md
//! §14: every recovery path is exercised reproducibly, and byte-identity is
//! the correctness oracle.

use backfi_core::sweep::service::chaos::{self, ChaosMode, ChaosSpec};
use backfi_core::sweep::service::{self, ServiceConfig, WorkerPool};
use backfi_core::sweep::{grid_cells, run_grid_indexed_on, run_grid_on, Executor, TrialStats};
use backfi_core::LinkConfig;
use backfi_tag::config::TagConfig;
use std::net::TcpListener;
use std::sync::Mutex;
use std::time::Duration;

/// Chaos global, worker-pool global and obs counters are process-wide;
/// serialize the tests that touch them.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Uninstalls the chaos spec even when an assertion panics mid-test.
struct ChaosGuard;

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        chaos::set_global(None);
    }
}

fn install(spec: ChaosSpec) -> ChaosGuard {
    chaos::set_global(Some(spec));
    ChaosGuard
}

/// A worker serving connections forever — chaos drops force the coordinator
/// to reconnect many times, so one-shot workers would starve the run.
fn spawn_worker_forever() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = service::serve(&listener, None);
    });
    addr
}

/// Tight deadlines, fast backoff, and a failure budget high enough that
/// healthy workers are never quarantined by injected faults — chaos tests
/// exercise retry/re-dispatch/shard-fallback without pool collapse.
fn chaos_config() -> ServiceConfig {
    ServiceConfig {
        shard_deadline: Duration::from_secs(20),
        connect_timeout: Duration::from_secs(2),
        hello_timeout: Duration::from_secs(2),
        max_attempts: 4,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        failure_budget: 1_000_000,
        reprobe: Duration::from_millis(20),
    }
}

/// 4-cell grid: two distances × two tag configurations.
fn grid() -> Vec<LinkConfig> {
    let slow = TagConfig::default();
    let fast = TagConfig {
        symbol_rate_hz: 2.5e6,
        ..TagConfig::default()
    };
    let mut cells = Vec::new();
    for &d in &[1.0, 2.5] {
        let mut base = LinkConfig::at_distance(d);
        base.excitation.wifi_payload_bytes = 1200;
        cells.extend(grid_cells(&base, &[slow, fast]));
    }
    cells
}

fn assert_stats_bits_eq(a: &[TrialStats], b: &[TrialStats], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.success_rate.to_bits(),
            y.success_rate.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(
            x.mean_snr_db.to_bits(),
            y.mean_snr_db.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(x.mean_ber.to_bits(), y.mean_ber.to_bits(), "{what}[{i}]");
        assert_eq!(
            x.mean_goodput_bps.to_bits(),
            y.mean_goodput_bps.to_bits(),
            "{what}[{i}]"
        );
        assert_eq!(x.panics, y.panics, "{what}[{i}]");
    }
}

fn recovery_total() -> u64 {
    ["sweep.service.retry", "sweep.service.shard_fallback"]
        .iter()
        .map(|c| backfi_obs::counter_value(c))
        .sum()
}

#[test]
fn every_chaos_mode_recovers_bit_identical() {
    let _g = serialize();
    let cells = grid();
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 4242);
    backfi_obs::enable();
    for mode in ChaosMode::ALL {
        let injected = format!("sweep.chaos.{}", mode.name());
        let inj0 = backfi_obs::counter_value(&injected);
        let rec0 = recovery_total();
        let spec = ChaosSpec::parse(&format!("{}:0.5,stall-ms:5", mode.name())).unwrap();
        let _guard = install(spec);
        let pool = WorkerPool::with_config(
            vec![spawn_worker_forever(), spawn_worker_forever()],
            chaos_config(),
        );
        let sharded = service::run_sharded(&pool, &cells, trials, 4242, &bases)
            .unwrap_or_else(|e| panic!("chaos {} must not fail the run: {e}", mode.name()));
        assert_stats_bits_eq(&reference, &sharded, mode.name());
        assert!(
            backfi_obs::counter_value(&injected) > inj0,
            "chaos mode {} must actually fire at p=0.5",
            mode.name()
        );
        assert!(
            recovery_total() > rec0,
            "an injected {} fault must trigger retry or shard fallback",
            mode.name()
        );
    }
}

#[test]
fn all_modes_together_recover_bit_identical() {
    let _g = serialize();
    let cells = grid();
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 7);
    backfi_obs::enable();
    let rec0 = recovery_total();
    let _guard = install(ChaosSpec::parse("all:0.25,stall-ms:5").unwrap());
    let pool = WorkerPool::with_config(
        vec![spawn_worker_forever(), spawn_worker_forever()],
        chaos_config(),
    );
    let sharded = service::run_sharded(&pool, &cells, trials, 7, &bases)
        .expect("combined chaos must not fail the run");
    assert_stats_bits_eq(&reference, &sharded, "all modes at 0.25");
    assert!(recovery_total() > rec0);
}

#[test]
fn chaos_decisions_replay_identically_across_runs() {
    let _g = serialize();
    let cells = grid();
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    backfi_obs::enable();
    // Same spec, same seed, fresh workers: the *results* must match bitwise
    // both times (the injected fault pattern is a pure function of the spec,
    // so recovery work may differ in timing but never in output).
    let mut outputs = Vec::new();
    for _ in 0..2 {
        let _guard = install(ChaosSpec::parse("drop:0.3,seed:99").unwrap());
        let pool = WorkerPool::with_config(
            vec![spawn_worker_forever(), spawn_worker_forever()],
            chaos_config(),
        );
        outputs.push(
            service::run_sharded(&pool, &cells, trials, 31, &bases).expect("chaos replay run"),
        );
    }
    let reference = run_grid_on(&Executor::new(), &cells, trials, 31);
    assert_stats_bits_eq(&outputs[0], &outputs[1], "replay");
    assert_stats_bits_eq(&reference, &outputs[0], "replay vs plain");
}

#[test]
fn dead_worker_under_chaos_is_quarantined_and_survivor_finishes() {
    let _g = serialize();
    let cells = grid();
    let trials = 2usize;
    let bases: Vec<u64> = (0..cells.len() as u64).map(|c| c * trials as u64).collect();
    let reference = run_grid_on(&Executor::new(), &cells, trials, 1000);
    backfi_obs::enable();
    let quarantine0 = backfi_obs::counter_value("sweep.service.quarantine");
    let fallback0 = backfi_obs::counter_value("sweep.service.fallback");
    // Bind-then-drop guarantees a dead port.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    // Real quarantine budget for the dead worker; light chaos on top.
    let cfg = ServiceConfig {
        failure_budget: 3,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        reprobe: Duration::from_millis(20),
        ..chaos_config()
    };
    let _guard = install(ChaosSpec::parse("drop:0.15,seed:5").unwrap());
    let pool = WorkerPool::with_config(vec![dead, spawn_worker_forever()], cfg);
    service::set_global(Some(pool));
    let sharded = run_grid_indexed_on(&Executor::new(), &cells, trials, 1000, &bases);
    service::set_global(None);
    assert_stats_bits_eq(&reference, &sharded, "dead worker under chaos");
    assert!(
        backfi_obs::counter_value("sweep.service.quarantine") > quarantine0,
        "the dead worker must be quarantined"
    );
    assert_eq!(
        backfi_obs::counter_value("sweep.service.fallback"),
        fallback0,
        "a healthy survivor must keep the whole-run fallback at zero"
    );
}
