//! One complete reader ↔ tag exchange.
//!
//! Wires together the excitation builder, the tag state machine, the
//! backscatter medium and the reader, and reports everything the evaluation
//! harnesses need: decode success, goodput, SNRs (measured and "VNA truth"),
//! cancellation quality and tag energy.

use crate::excitation::{Excitation, ExcitationConfig};
use backfi_chan::budget::LinkBudget;
use backfi_chan::impair::Impairments;
use backfi_chan::medium::{BackscatterMedium, MediumConfig};
use backfi_dsp::Complex;
use backfi_reader::reader::{BackscatterReader, ReaderConfig, ReaderError};
use backfi_reader::Timeline;
use backfi_tag::config::TagConfig;
use backfi_tag::energy::epb_pj;
use backfi_tag::framer::TagFrame;
use backfi_tag::state::TagState;
use backfi_tag::Tag;

/// Configuration of one link experiment.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Link budget (calibrated defaults).
    pub budget: LinkBudget,
    /// Reader ↔ tag distance in metres.
    pub distance_m: f64,
    /// Tag communication parameters.
    pub tag: TagConfig,
    /// Excitation parameters.
    pub excitation: ExcitationConfig,
    /// Reader parameters.
    pub reader: ReaderConfig,
    /// Fault-injection impairments (off by default; see
    /// [`backfi_chan::impair`]). When every knob is zero the simulation is
    /// bit-identical to a build without this field.
    pub impair: Impairments,
}

impl LinkConfig {
    /// A deployment at `distance_m` with all defaults. The impairment set is
    /// taken from the process-wide configuration ([`backfi_chan::impair::global`],
    /// seeded from `BACKFI_IMPAIR` / `--impair`), which is off unless
    /// explicitly enabled.
    pub fn at_distance(distance_m: f64) -> Self {
        LinkConfig {
            budget: LinkBudget::default(),
            distance_m,
            tag: TagConfig::default(),
            excitation: ExcitationConfig::default(),
            reader: ReaderConfig::default(),
            impair: backfi_chan::impair::global(),
        }
    }
}

/// Everything one exchange produced.
#[derive(Clone, Debug)]
pub struct LinkReport {
    /// Did the reader recover the exact payload (CRC-verified)?
    pub success: bool,
    /// The payload the tag sent.
    pub sent: Vec<u8>,
    /// BER over the frame's information bits (post-FEC).
    pub ber: f64,
    /// Raw hard-decision bit error rate on the PSK symbols before Viterbi
    /// decoding — the quantity Fig. 11b's waterfalls plot.
    pub pre_fec_ber: f64,
    /// Decision-directed symbol SNR at the reader, dB (Fig. 11a "measured").
    pub measured_snr_db: f64,
    /// Ideal per-sample backscatter SNR from the medium's true channels
    /// (Fig. 11a "expected", the VNA ground truth).
    pub expected_snr_db: f64,
    /// Total self-interference cancellation achieved, dB.
    pub cancellation_db: f64,
    /// Uplink goodput in bit/s over the data-packet airtime (0 on failure).
    pub goodput_bps: f64,
    /// Tag energy for this frame in picojoules (energy model × bits).
    pub tag_energy_pj: f64,
    /// Reader error, if the pipeline failed before producing symbols.
    pub reader_error: Option<ReaderError>,
    /// Whether this trial's job panicked and was caught by the sweep
    /// executor; such reports carry worst-case statistics so aggregates stay
    /// well defined.
    pub panicked: bool,
}

impl LinkReport {
    /// The report recorded for a job that panicked: a counted failure with
    /// worst-case statistics (BER 1, −∞ SNR, zero goodput) so aggregation
    /// over a grid cell never divides by a missing trial.
    pub fn job_failed() -> LinkReport {
        LinkReport {
            success: false,
            sent: Vec::new(),
            ber: 1.0,
            pre_fec_ber: 0.5,
            measured_snr_db: f64::NEG_INFINITY,
            expected_snr_db: f64::NEG_INFINITY,
            cancellation_db: 0.0,
            goodput_bps: 0.0,
            tag_energy_pj: 0.0,
            reader_error: None,
            panicked: true,
        }
    }
}

/// The composed simulator.
///
/// Construction is the expensive part: the WiFi excitation (scrambler →
/// conv-code → interleave → IFFT) is synthesized once here — via the
/// process-wide [`Excitation::cached`] store — and shared immutably by every
/// [`LinkSimulator::run`] call. `run(seed)` itself is pure per-trial work
/// (`&self`, seed-derived state only), so one simulator can serve many sweep
/// worker threads concurrently.
#[derive(Clone)]
pub struct LinkSimulator {
    cfg: LinkConfig,
    exc: std::sync::Arc<Excitation>,
    /// Excitation pre-scaled to the budget's TX amplitude (the canceller's
    /// clean reference), computed once per simulator instead of per trial.
    x_scaled: std::sync::Arc<Vec<Complex>>,
}

impl LinkSimulator {
    /// Create a simulator for the given configuration.
    pub fn new(cfg: LinkConfig) -> Self {
        let exc = Excitation::cached(&cfg.excitation);
        let a = cfg.budget.tx_power().sqrt();
        let x_scaled = std::sync::Arc::new(exc.samples.iter().map(|&v| v * a).collect());
        LinkSimulator { cfg, exc, x_scaled }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// The shared excitation this simulator replays every trial.
    pub fn excitation(&self) -> &Excitation {
        &self.exc
    }

    /// Run one exchange with the given channel/noise/payload seed.
    pub fn run(&self, seed: u64) -> LinkReport {
        let _t_trial = backfi_obs::span("link.trial");
        backfi_obs::counter_add("link.trials", 1);
        let cfg = &self.cfg;
        // --- AP transmission -------------------------------------------
        let exc = &*self.exc;
        let x_scaled: &[Complex] = &self.x_scaled;

        // --- medium and tag ----------------------------------------------
        let _t_medium = backfi_obs::span("link.medium");
        let mut medium =
            BackscatterMedium::new(cfg.budget, MediumConfig::at_distance(cfg.distance_m), seed);
        let expected_snr_db = medium.expected_backscatter_snr_db();
        drop(_t_medium);
        backfi_obs::probe("link.expected_snr_db", expected_snr_db);

        // Size the payload to fill the excitation (§6.1: "The IoT sensor
        // backscatters for the entire duration of the packet"). At very low
        // symbol rates a whole CRC-protected frame cannot fit in one packet
        // (a minimal frame at 10 kSPS spans ~16 ms); the tag then streams the
        // frame across packets, and a single exchange is judged by its raw
        // symbol error rate instead of the end-of-frame CRC — exactly how
        // sub-frame throughput is measured on hardware.
        let airtime = backfi_dsp::samples_to_us(exc.samples.len() - exc.detect_end);
        let max_payload = TagFrame::max_payload_bytes(&cfg.tag, airtime);
        let frame_fits = max_payload >= 1;
        // "A typical backscatter packet will have 1000 bits of information in
        // it" (§5.2.1) — cap the frame near that so the frame-error criterion
        // is comparable across configurations and excitation lengths; fast
        // configurations simply finish early.
        let payload_len = max_payload.clamp(1, 128);
        let sent: Vec<u8> = (0..payload_len)
            .map(|i| (seed as usize + i * 131 + 7) as u8)
            .collect();

        let mut tag = Tag::new(cfg.excitation.tag_id, cfg.tag);
        tag.load_data(&sent);
        let _t_react = backfi_obs::span("link.tag_react");
        let incident = backfi_dsp::fir::filter(&medium.h_f, x_scaled);
        let gamma = tag.react(&incident);
        drop(_t_react);
        // Tag-timeline impairments (clock drift / desync): warp the
        // reflection-coefficient stream. `None` when both knobs are off —
        // the clean path allocates and draws nothing.
        let gamma = match cfg.impair.warp_gamma(&gamma, seed) {
            Some(warped) => {
                backfi_obs::counter_add("link.impair.timeline", 1);
                warped
            }
            None => gamma,
        };

        let energy_bits = (sent.len() * 8) as f64;
        let tag_energy_pj = epb_pj(&cfg.tag) * energy_bits;

        // If the tag never woke up (below sensitivity), the exchange fails.
        if tag.state() == TagState::Listening || tag.state() == TagState::Sleep {
            backfi_obs::counter_add("link.fail.wakeup", 1);
            return LinkReport {
                success: false,
                sent,
                ber: 1.0,
                pre_fec_ber: 0.5,
                measured_snr_db: f64::NEG_INFINITY,
                expected_snr_db,
                cancellation_db: 0.0,
                goodput_bps: 0.0,
                tag_energy_pj,
                reader_error: Some(ReaderError::NoSymbols),
                panicked: false,
            };
        }

        let _t_prop = backfi_obs::span("link.propagate");
        let mut y_full = medium.propagate(&exc.samples, &gamma);
        drop(_t_prop);
        // Receiver-side impairments (CFO, interference bursts, saturation,
        // impulses, truncation, non-finite corruption). A no-op returning a
        // default `Applied` when the set is off.
        if !cfg.impair.is_off() {
            let n = exc.samples.len();
            let applied = cfg
                .impair
                .apply_rx(&mut y_full[..n], cfg.budget.noise_power(), seed);
            if applied.any() {
                backfi_obs::counter_add("link.impair.rx", 1);
                backfi_obs::counter_add("link.impair.bursts", applied.bursts as u64);
                backfi_obs::counter_add("link.impair.impulses", applied.impulses as u64);
                if applied.saturated {
                    backfi_obs::counter_add("link.impair.saturated", 1);
                }
                if applied.truncated_at.is_some() {
                    backfi_obs::counter_add("link.impair.truncated", 1);
                }
                if applied.nonfinite > 0 {
                    backfi_obs::counter_add("link.impair.nonfinite", 1);
                }
            }
        }
        let y = &y_full[..exc.samples.len()];

        // --- reader -------------------------------------------------------
        let timeline = Timeline::nominal(exc.detect_end, exc.samples.len(), &cfg.tag);
        let reader = BackscatterReader::new(cfg.reader);
        let _t_reader = backfi_obs::span("link.reader");
        let decoded = reader.decode(x_scaled, y, &medium.h_env, &timeline, &cfg.tag);
        drop(_t_reader);
        match decoded {
            Ok(res) => {
                if backfi_obs::enabled() {
                    // Channel-estimate fidelity vs the medium's ground truth
                    // (the "VNA view" the paper compares against): MSE of the
                    // reader's h_f∗h_b estimate over the true cascade taps.
                    let truth = medium.h_fb_true();
                    let n = truth.len().max(res.h_fb.len()).max(1);
                    let mse: f64 = (0..n)
                        .map(|i| {
                            let g = res.h_fb.get(i).copied().unwrap_or(Complex::ZERO);
                            let t = truth.get(i).copied().unwrap_or(Complex::ZERO);
                            (g - t).norm_sqr()
                        })
                        .sum::<f64>()
                        / n as f64;
                    backfi_obs::probe("link.chanest_mse", mse);
                }
                let frame_success = res.payload.as_ref().map(|p| p == &sent).unwrap_or(false);
                let ber = backfi_reader::decode::frame_ber(&res.decoded_bits, &sent);
                // Pre-FEC BER: hard-decide each received phasor and compare
                // against the symbols the tag actually modulated.
                let expect_syms = TagFrame::encode(&sent, &cfg.tag);
                let bps = cfg.tag.modulation.bits_per_symbol();
                let mut raw_errs = 0usize;
                let mut raw_bits = 0usize;
                for (i, &idx) in expect_syms.iter().enumerate() {
                    let Some(est) = res.symbols.get(i) else { break };
                    let got = backfi_tag::psk::phase_to_bits(cfg.tag.modulation, est.z.arg());
                    let phase =
                        std::f64::consts::TAU * idx as f64 / cfg.tag.modulation.order() as f64;
                    let want = backfi_tag::psk::phase_to_bits(cfg.tag.modulation, phase);
                    raw_errs += got.iter().zip(&want).filter(|(a, b)| a != b).count();
                    raw_bits += bps;
                }
                let pre_fec_ber = if raw_bits == 0 {
                    0.5
                } else {
                    raw_errs as f64 / raw_bits as f64
                };
                // Probe criterion for frames that span multiple packets: the
                // rate-1/2 K=7 code corrects raw BER up to a few percent, so
                // the link "works" when the symbol stream is that clean.
                let success = if frame_fits {
                    frame_success
                } else {
                    raw_bits >= 12 && pre_fec_ber < 0.02
                };
                backfi_obs::probe("link.measured_snr_db", res.metrics.symbol_snr_db);
                backfi_obs::probe("link.cancellation_db", res.cancellation_db);
                backfi_obs::probe("link.pre_fec_ber", pre_fec_ber);
                if success {
                    backfi_obs::counter_add("link.success", 1);
                    backfi_obs::trace::instant_arg(
                        "link.success",
                        "snr_db",
                        res.metrics.symbol_snr_db,
                    );
                } else if !frame_fits {
                    backfi_obs::counter_add("link.fail.stream_ber", 1);
                    backfi_obs::trace::instant_arg("link.fail", "pre_fec_ber", pre_fec_ber);
                } else if res.payload.is_err() {
                    backfi_obs::counter_add("link.fail.crc", 1);
                    backfi_obs::trace::instant("link.fail.crc");
                } else {
                    // CRC validated but the bytes differ from what the tag
                    // loaded — an undetected-error event worth counting apart.
                    backfi_obs::counter_add("link.fail.payload_mismatch", 1);
                }
                let goodput_bps = if frame_fits && frame_success {
                    // Delivered bits over the time the frame actually
                    // occupied (protocol overhead + symbols); fast
                    // configurations finish early and the link could start
                    // the next frame.
                    let frame_us = TagFrame::symbol_count(sent.len(), &cfg.tag) as f64 * 1e6
                        / cfg.tag.symbol_rate_hz;
                    let overhead_us = 16.0 + 16.0 + cfg.tag.preamble_us;
                    energy_bits / ((frame_us + overhead_us) * 1e-6)
                } else if success {
                    // Streaming regime: steady-state throughput over the
                    // usable payload window.
                    cfg.tag.throughput_bps()
                        * (raw_bits as f64 / cfg.tag.modulation.bits_per_symbol() as f64)
                        * cfg.tag.samples_per_symbol() as f64
                        / exc.samples.len() as f64
                } else {
                    0.0
                };
                LinkReport {
                    success,
                    sent,
                    ber,
                    pre_fec_ber,
                    measured_snr_db: res.metrics.symbol_snr_db,
                    expected_snr_db,
                    cancellation_db: res.cancellation_db,
                    goodput_bps,
                    tag_energy_pj,
                    reader_error: None,
                    panicked: false,
                }
            }
            Err(e) => {
                let stage = match e {
                    ReaderError::CancellationFailed => "link.fail.cancellation",
                    ReaderError::ChannelEstimationFailed => "link.fail.chanest",
                    ReaderError::NoSymbols => "link.fail.no_symbols",
                    ReaderError::InvalidInput => "link.fail.invalid_input",
                };
                backfi_obs::counter_add(stage, 1);
                backfi_obs::trace::instant(stage);
                LinkReport {
                    success: false,
                    sent,
                    ber: 1.0,
                    pre_fec_ber: 0.5,
                    measured_snr_db: f64::NEG_INFINITY,
                    expected_snr_db,
                    cancellation_db: 0.0,
                    goodput_bps: 0.0,
                    tag_energy_pj,
                    reader_error: Some(e),
                    panicked: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_coding::CodeRate;
    use backfi_tag::config::TagModulation;

    fn quick_cfg(distance: f64, tag: TagConfig) -> LinkConfig {
        let mut cfg = LinkConfig::at_distance(distance);
        cfg.tag = tag;
        cfg.excitation.wifi_payload_bytes = 1500; // ≈0.5 ms — keep tests fast
        cfg
    }

    #[test]
    fn qpsk_link_works_at_one_meter() {
        let sim = LinkSimulator::new(quick_cfg(1.0, TagConfig::default()));
        let rep = sim.run(11);
        assert!(rep.success, "error {:?}, ber {}", rep.reader_error, rep.ber);
        assert!(rep.goodput_bps > 2e5, "goodput {}", rep.goodput_bps);
        assert!(rep.cancellation_db > 50.0);
        assert!(rep.tag_energy_pj > 0.0);
    }

    #[test]
    fn headline_16psk_works_close() {
        let tag = TagConfig {
            modulation: TagModulation::Psk16,
            code_rate: CodeRate::Half,
            symbol_rate_hz: 2.5e6,
            preamble_us: 32.0,
        };
        let sim = LinkSimulator::new(quick_cfg(0.5, tag));
        let mut ok = 0;
        for seed in 0..3 {
            if sim.run(seed).success {
                ok += 1;
            }
        }
        assert!(ok >= 2, "16PSK 1/2 @ 2.5 MSPS at 0.5 m: {ok}/3");
    }

    #[test]
    fn distant_16psk_fails() {
        let tag = TagConfig {
            modulation: TagModulation::Psk16,
            code_rate: CodeRate::TwoThirds,
            symbol_rate_hz: 2.5e6,
            preamble_us: 32.0,
        };
        let sim = LinkSimulator::new(quick_cfg(5.0, tag));
        let rep = sim.run(3);
        assert!(!rep.success, "6.67 Mbps must not decode at 5 m");
    }

    /// Mean of a per-seed link statistic over ≥20 seeds (ROADMAP convention:
    /// statistical assertions never ride on one fading draw).
    fn mean_over_seeds(sim: &LinkSimulator, f: impl Fn(&LinkReport) -> f64) -> f64 {
        let n = 20u64;
        (0..n).map(|s| f(&sim.run(s))).sum::<f64>() / n as f64
    }

    #[test]
    fn goodput_reflects_throughput_config() {
        // A faster tag config that decodes yields more goodput, on average
        // over 20 seeds.
        let slow = TagConfig {
            modulation: TagModulation::Bpsk,
            code_rate: CodeRate::Half,
            symbol_rate_hz: 500e3,
            preamble_us: 32.0,
        };
        let fast = TagConfig::default(); // QPSK 1 MSPS
        let sim_s = LinkSimulator::new(quick_cfg(1.0, slow));
        let sim_f = LinkSimulator::new(quick_cfg(1.0, fast));
        let gs = mean_over_seeds(&sim_s, |r| r.goodput_bps);
        let gf = mean_over_seeds(&sim_f, |r| r.goodput_bps);
        assert!(gs > 0.0, "slow config never decoded");
        assert!(gf > gs * 2.0, "fast {gf} vs slow {gs}");
    }

    #[test]
    fn expected_snr_tracks_distance() {
        let sim_near = LinkSimulator::new(quick_cfg(0.5, TagConfig::default()));
        let sim_far = LinkSimulator::new(quick_cfg(4.0, TagConfig::default()));
        let near = mean_over_seeds(&sim_near, |r| r.expected_snr_db);
        let far = mean_over_seeds(&sim_far, |r| r.expected_snr_db);
        assert!(near > far + 5.0, "near {near} dB vs far {far} dB");
    }
}
