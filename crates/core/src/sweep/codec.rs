//! Fixed-width binary codec for sweep configurations and results.
//!
//! One encoder serves two consumers that must agree byte-for-byte:
//!
//! * the **result cache** ([`super::cache`]) hashes the encoded
//!   [`LinkConfig`] bytes into its content address, so two processes that
//!   build the same cell always derive the same key;
//! * the **worker protocol** ([`super::service`]) ships the same bytes over
//!   TCP so a remote worker reconstructs the exact cell the coordinator
//!   sharded out.
//!
//! The format is deliberately dumb: little-endian fixed-width fields in
//! declaration order, `f64` as IEEE-754 bit patterns (`to_bits`), enums as
//! one tag byte. No varints, no compression, no external crates. Field
//! additions bump [`FORMAT_VERSION`], which is folded into the cache salt
//! and the wire handshake, so the two sides can never silently disagree on
//! layout.

use crate::excitation::ExcitationConfig;
use crate::link::LinkConfig;
use crate::sweep::TrialStats;
use backfi_chan::budget::LinkBudget;
use backfi_chan::impair::Impairments;
use backfi_coding::CodeRate;
use backfi_reader::reader::ReaderConfig;
use backfi_sic::analog::AnalogConfig;
use backfi_sic::CancellerConfig;
use backfi_tag::config::{TagConfig, TagModulation};
use backfi_wifi::Mcs;

/// Version of the serialized layout. Bumped whenever a field is added,
/// removed or reordered; folded into [`super::cache::code_salt`] and checked
/// by the [`super::service`] handshake.
pub const FORMAT_VERSION: u32 = 1;

/// Serialized size of one [`TrialStats`] payload, bytes (2 tag bytes,
/// 7 `f64`s, one `u64`).
pub const TRIAL_STATS_LEN: usize = 2 + 7 * 8 + 8;

/// Decode failure: the buffer was truncated or carried an invalid tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the fixed-width layout requires.
    Truncated,
    /// An enum tag byte was out of range for the named field.
    BadTag(&'static str, u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::BadTag(field, v) => write!(f, "invalid tag {v} for {field}"),
        }
    }
}

// ---------------------------------------------------------------- writer ---

/// Append-only little-endian byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A writer with a pre-sized buffer.
    pub fn with_capacity(n: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(n),
        }
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round trip,
    /// including NaN payloads, ±∞ and −0.0).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a `bool` as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append raw bytes verbatim (the wire protocol nests length-prefixed
    /// blobs this way).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

// ---------------------------------------------------------------- reader ---

/// Cursor over a byte slice with fixed-width reads.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool` (any non-zero byte is `true`).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Read `n` raw bytes (inverse of [`Writer::raw`]).
    pub fn slice(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }
}

// ----------------------------------------------------------------- enums ---

fn modulation_tag(m: TagModulation) -> u8 {
    match m {
        TagModulation::Bpsk => 0,
        TagModulation::Qpsk => 1,
        TagModulation::Psk16 => 2,
    }
}

fn modulation_from(tag: u8) -> Result<TagModulation, CodecError> {
    match tag {
        0 => Ok(TagModulation::Bpsk),
        1 => Ok(TagModulation::Qpsk),
        2 => Ok(TagModulation::Psk16),
        v => Err(CodecError::BadTag("TagModulation", v)),
    }
}

fn code_rate_tag(r: CodeRate) -> u8 {
    match r {
        CodeRate::Half => 0,
        CodeRate::TwoThirds => 1,
        CodeRate::ThreeQuarters => 2,
    }
}

fn code_rate_from(tag: u8) -> Result<CodeRate, CodecError> {
    match tag {
        0 => Ok(CodeRate::Half),
        1 => Ok(CodeRate::TwoThirds),
        2 => Ok(CodeRate::ThreeQuarters),
        v => Err(CodecError::BadTag("CodeRate", v)),
    }
}

fn mcs_tag(m: Mcs) -> u8 {
    Mcs::ALL
        .iter()
        .position(|&x| x == m)
        .expect("Mcs::ALL covers every variant") as u8
}

fn mcs_from(tag: u8) -> Result<Mcs, CodecError> {
    Mcs::ALL
        .get(tag as usize)
        .copied()
        .ok_or(CodecError::BadTag("Mcs", tag))
}

// ------------------------------------------------------------ link config ---

fn encode_budget(w: &mut Writer, b: &LinkBudget) {
    w.f64(b.tx_power_dbm);
    w.f64(b.noise_floor_dbm);
    w.f64(b.bs_pathloss_1m_db);
    w.f64(b.bs_exponent_near);
    w.f64(b.bs_exponent_far);
    w.f64(b.knee_m);
    w.f64(b.knee2_m);
    w.f64(b.bs_exponent_beyond);
    w.f64(b.wifi_pathloss_1m_db);
    w.f64(b.wifi_exponent);
    w.f64(b.leakage_db);
    w.f64(b.reflections_db);
    w.f64(b.tx_noise_dbc);
}

fn decode_budget(c: &mut Cursor) -> Result<LinkBudget, CodecError> {
    Ok(LinkBudget {
        tx_power_dbm: c.f64()?,
        noise_floor_dbm: c.f64()?,
        bs_pathloss_1m_db: c.f64()?,
        bs_exponent_near: c.f64()?,
        bs_exponent_far: c.f64()?,
        knee_m: c.f64()?,
        knee2_m: c.f64()?,
        bs_exponent_beyond: c.f64()?,
        wifi_pathloss_1m_db: c.f64()?,
        wifi_exponent: c.f64()?,
        leakage_db: c.f64()?,
        reflections_db: c.f64()?,
        tx_noise_dbc: c.f64()?,
    })
}

fn encode_tag_config(w: &mut Writer, t: &TagConfig) {
    w.u8(modulation_tag(t.modulation));
    w.u8(code_rate_tag(t.code_rate));
    w.f64(t.symbol_rate_hz);
    w.f64(t.preamble_us);
}

fn decode_tag_config(c: &mut Cursor) -> Result<TagConfig, CodecError> {
    Ok(TagConfig {
        modulation: modulation_from(c.u8()?)?,
        code_rate: code_rate_from(c.u8()?)?,
        symbol_rate_hz: c.f64()?,
        preamble_us: c.f64()?,
    })
}

fn encode_excitation(w: &mut Writer, e: &ExcitationConfig) {
    w.u16(e.tag_id);
    w.u8(mcs_tag(e.mcs));
    w.u64(e.wifi_payload_bytes as u64);
    w.u8(e.scrambler_seed);
    w.u64(e.lead_in as u64);
}

fn decode_excitation(c: &mut Cursor) -> Result<ExcitationConfig, CodecError> {
    Ok(ExcitationConfig {
        tag_id: c.u16()?,
        mcs: mcs_from(c.u8()?)?,
        wifi_payload_bytes: c.u64()? as usize,
        scrambler_seed: c.u8()?,
        lead_in: c.u64()? as usize,
    })
}

fn encode_reader(w: &mut Writer, r: &ReaderConfig) {
    let can: &CancellerConfig = &r.canceller;
    let ana: &AnalogConfig = &can.analog;
    w.u64(ana.taps as u64);
    w.u32(ana.control_bits);
    w.u64(can.digital_taps as u64);
    w.f64(can.ridge);
    w.u32(can.adc_bits);
    w.f64(can.agc_headroom_db);
    w.bool(can.analog_enabled);
    w.bool(can.digital_enabled);
    w.u64(r.fb_taps as u64);
    w.f64(r.ridge);
    w.u64(r.timing_span as u64);
    w.bool(r.use_zero_forcing);
}

fn decode_reader(c: &mut Cursor) -> Result<ReaderConfig, CodecError> {
    let analog = AnalogConfig {
        taps: c.u64()? as usize,
        control_bits: c.u32()?,
    };
    let canceller = CancellerConfig {
        analog,
        digital_taps: c.u64()? as usize,
        ridge: c.f64()?,
        adc_bits: c.u32()?,
        agc_headroom_db: c.f64()?,
        analog_enabled: c.bool()?,
        digital_enabled: c.bool()?,
    };
    Ok(ReaderConfig {
        canceller,
        fb_taps: c.u64()? as usize,
        ridge: c.f64()?,
        timing_span: c.u64()? as usize,
        use_zero_forcing: c.bool()?,
    })
}

fn encode_impairments(w: &mut Writer, i: &Impairments) {
    w.f64(i.clock_drift_ppm);
    w.f64(i.timing_desync_us);
    w.f64(i.cfo_hz);
    w.f64(i.interference_rel);
    w.f64(i.interference_duty);
    w.f64(i.interference_burst_us);
    w.f64(i.saturation_prob);
    w.f64(i.saturation_us);
    w.f64(i.saturation_gain);
    w.f64(i.impulse_per_packet);
    w.f64(i.impulse_rel);
    w.f64(i.truncate_prob);
    w.f64(i.nonfinite_prob);
}

fn decode_impairments(c: &mut Cursor) -> Result<Impairments, CodecError> {
    Ok(Impairments {
        clock_drift_ppm: c.f64()?,
        timing_desync_us: c.f64()?,
        cfo_hz: c.f64()?,
        interference_rel: c.f64()?,
        interference_duty: c.f64()?,
        interference_burst_us: c.f64()?,
        saturation_prob: c.f64()?,
        saturation_us: c.f64()?,
        saturation_gain: c.f64()?,
        impulse_per_packet: c.f64()?,
        impulse_rel: c.f64()?,
        truncate_prob: c.f64()?,
        nonfinite_prob: c.f64()?,
    })
}

/// Serialize a [`LinkConfig`] into `w`. Every field of every nested struct,
/// in declaration order — the bytes are the cell's identity for both the
/// cache key and the wire.
pub fn encode_link_config(w: &mut Writer, cfg: &LinkConfig) {
    encode_budget(w, &cfg.budget);
    w.f64(cfg.distance_m);
    encode_tag_config(w, &cfg.tag);
    encode_excitation(w, &cfg.excitation);
    encode_reader(w, &cfg.reader);
    encode_impairments(w, &cfg.impair);
}

/// Serialize a [`LinkConfig`] into a fresh buffer.
pub fn link_config_bytes(cfg: &LinkConfig) -> Vec<u8> {
    let mut w = Writer::with_capacity(320);
    encode_link_config(&mut w, cfg);
    w.into_bytes()
}

/// Deserialize a [`LinkConfig`] (inverse of [`encode_link_config`]).
pub fn decode_link_config(c: &mut Cursor) -> Result<LinkConfig, CodecError> {
    Ok(LinkConfig {
        budget: decode_budget(c)?,
        distance_m: c.f64()?,
        tag: decode_tag_config(c)?,
        excitation: decode_excitation(c)?,
        reader: decode_reader(c)?,
        impair: decode_impairments(c)?,
    })
}

// ------------------------------------------------------------ trial stats ---

/// Serialize a [`TrialStats`] into `w` — exactly [`TRIAL_STATS_LEN`] bytes.
/// Every `f64` travels as its bit pattern, so a decoded copy is bit-identical
/// to the original (the cache's byte-neutrality guarantee rests on this).
pub fn encode_trial_stats(w: &mut Writer, s: &TrialStats) {
    w.u8(modulation_tag(s.config.modulation));
    w.u8(code_rate_tag(s.config.code_rate));
    w.f64(s.config.symbol_rate_hz);
    w.f64(s.config.preamble_us);
    w.f64(s.success_rate);
    w.f64(s.mean_snr_db);
    w.f64(s.mean_ber);
    w.f64(s.mean_pre_fec_ber);
    w.f64(s.mean_goodput_bps);
    w.u64(s.panics as u64);
}

/// Deserialize a [`TrialStats`] (inverse of [`encode_trial_stats`]).
pub fn decode_trial_stats(c: &mut Cursor) -> Result<TrialStats, CodecError> {
    let config = TagConfig {
        modulation: modulation_from(c.u8()?)?,
        code_rate: code_rate_from(c.u8()?)?,
        symbol_rate_hz: c.f64()?,
        preamble_us: c.f64()?,
    };
    Ok(TrialStats {
        config,
        success_rate: c.f64()?,
        mean_snr_db: c.f64()?,
        mean_ber: c.f64()?,
        mean_pre_fec_ber: c.f64()?,
        mean_goodput_bps: c.f64()?,
        panics: c.u64()? as usize,
    })
}

// ------------------------------------------------------------------ hash ---

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// 64-bit FNV-1a over `bytes`, folded onto a caller-chosen starting state —
/// the second, independently-seeded pass behind the 128-bit cache key.
pub fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Plain 64-bit FNV-1a (seed 0 keeps the classic offset basis).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(0, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> LinkConfig {
        let mut cfg = LinkConfig::at_distance(3.25);
        cfg.tag = TagConfig {
            modulation: TagModulation::Psk16,
            code_rate: CodeRate::TwoThirds,
            symbol_rate_hz: 2.5e6,
            preamble_us: 96.0,
        };
        cfg.excitation.wifi_payload_bytes = 2718;
        cfg.excitation.mcs = Mcs::Mbps48;
        cfg.reader.use_zero_forcing = true;
        cfg.impair.cfo_hz = 123.5;
        cfg.impair.truncate_prob = 0.125;
        cfg
    }

    #[test]
    fn link_config_roundtrips_bit_exact() {
        let cfg = sample_config();
        let bytes = link_config_bytes(&cfg);
        let mut c = Cursor::new(&bytes);
        let back = decode_link_config(&mut c).unwrap();
        assert_eq!(c.remaining(), 0, "decoder must consume every byte");
        // Re-encode: identical bytes ⇒ identical cells (covers every field
        // without writing one assert per field).
        assert_eq!(bytes, link_config_bytes(&back));
        assert_eq!(cfg.distance_m.to_bits(), back.distance_m.to_bits());
        assert_eq!(cfg.tag, back.tag);
        assert_eq!(cfg.impair, back.impair);
    }

    #[test]
    fn trial_stats_roundtrip_preserves_nonfinite_bits() {
        let s = TrialStats {
            config: TagConfig::default(),
            success_rate: 0.35,
            mean_snr_db: f64::NEG_INFINITY,
            mean_ber: f64::NAN,
            mean_pre_fec_ber: -0.0,
            mean_goodput_bps: 1.25e6,
            panics: 3,
        };
        let mut w = Writer::default();
        encode_trial_stats(&mut w, &s);
        assert_eq!(w.bytes().len(), TRIAL_STATS_LEN);
        let mut c = Cursor::new(w.bytes());
        let back = decode_trial_stats(&mut c).unwrap();
        assert_eq!(s.success_rate.to_bits(), back.success_rate.to_bits());
        assert_eq!(s.mean_snr_db.to_bits(), back.mean_snr_db.to_bits());
        assert_eq!(s.mean_ber.to_bits(), back.mean_ber.to_bits());
        assert_eq!(
            s.mean_pre_fec_ber.to_bits(),
            back.mean_pre_fec_ber.to_bits()
        );
        assert_eq!(
            s.mean_goodput_bps.to_bits(),
            back.mean_goodput_bps.to_bits()
        );
        assert_eq!(s.panics, back.panics);
    }

    #[test]
    fn distinct_cells_encode_to_distinct_bytes() {
        let a = link_config_bytes(&sample_config());
        let mut other = sample_config();
        other.reader.canceller.ridge *= 1.0000001;
        assert_ne!(a, link_config_bytes(&other));
    }

    #[test]
    fn truncated_buffer_is_an_error_not_a_panic() {
        let bytes = link_config_bytes(&sample_config());
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            let mut c = Cursor::new(&bytes[..cut]);
            assert!(matches!(
                decode_link_config(&mut c),
                Err(CodecError::Truncated)
            ));
        }
    }

    #[test]
    fn bad_enum_tag_is_rejected() {
        let mut bytes = link_config_bytes(&sample_config());
        // The modulation tag sits right after 13 budget f64s + distance.
        let pos = 14 * 8;
        bytes[pos] = 250;
        let mut c = Cursor::new(&bytes);
        assert!(matches!(
            decode_link_config(&mut c),
            Err(CodecError::BadTag("TagModulation", 250))
        ));
    }

    #[test]
    fn seeded_fnv_passes_are_independent() {
        let b = b"same bytes";
        assert_ne!(fnv1a64_seeded(0, b), fnv1a64_seeded(1, b));
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
    }
}
