//! Coordinator/worker sweep sharding over TCP — `std::net` only.
//!
//! A coordinator splits a grid's cells into contiguous shards, ships each
//! shard to a worker process over a checksummed length-prefixed frame
//! protocol (DESIGN.md §12), and merges the returned [`TrialStats`] back in
//! job order. Because every trial's seed is a pure function of
//! `(seed0, bases[cell] + t)` and each worker receives the exact bases its
//! cells had in the full grid, the merged result is **bit-identical to the
//! in-process executor for any shard count** — the same guarantee the
//! executor gives for any thread count.
//!
//! Workers answer jobs with the *cache-aware but service-free* local grid
//! runner, so a worker with a warm [`super::cache`] store skips recompute
//! but can never recursively re-shard.
//!
//! Failure policy: any connection, handshake or protocol error on any shard
//! aborts the remote attempt and the caller falls back to local compute
//! (results are bit-identical either way, so fallback is invisible in the
//! output).

use crate::link::LinkConfig;
use crate::sweep::cache::code_salt;
use crate::sweep::codec::{self, Cursor, Writer, TRIAL_STATS_LEN};
use crate::sweep::{run_grid_indexed_local, Executor, TrialStats};
use backfi_obs::trace;
use backfi_obs::{RawProbe, RawSpanHist};
use std::io::{self, Read, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Wire protocol version; carried in the HELLO frame and bumped with any
/// frame-layout change. v2 added the process nonce to HELLO, the telemetry
/// request flags to JOB and the telemetry block to RESULT (DESIGN.md §13).
pub const PROTO_VERSION: u32 = 2;

/// Frame magic: `b"BFSWEEP1"` little-endian.
pub const FRAME_MAGIC: u64 = u64::from_le_bytes(*b"BFSWEEP1");

/// Message kind tags (first body byte).
const KIND_HELLO: u8 = 1;
const KIND_JOB: u8 = 2;
const KIND_RESULT: u8 = 3;

/// JOB flag: the coordinator's obs recorder is on — ship the job's counter,
/// span-histogram and probe deltas back in the RESULT telemetry block.
pub const FLAG_TELEMETRY: u64 = 1;
/// JOB flag: the coordinator's tracer is on — ship the job's trace events.
pub const FLAG_TRACE: u64 = 2;

/// A nonce identifying this *process* (not this build): lets a coordinator
/// detect a loopback worker running in its own process, where the obs
/// registry is shared and telemetry must not be absorbed twice. Never part
/// of determinism-relevant state.
fn process_nonce() -> u64 {
    static NONCE: OnceLock<u64> = OnceLock::new();
    *NONCE.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut bytes = Vec::with_capacity(12);
        bytes.extend_from_slice(&std::process::id().to_le_bytes());
        bytes.extend_from_slice(&t.to_le_bytes());
        codec::fnv1a64(&bytes)
    })
}

/// Why a sharded run could not complete (the caller falls back to local).
#[derive(Debug)]
pub enum ServiceError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The peer spoke, but not our dialect: bad magic/checksum/kind, or a
    /// version/salt mismatch in the handshake.
    Protocol(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "io: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

// ---------------------------------------------------------------- frames ---

/// Write one frame: `magic u64 | body_len u64 | body | fnv1a64(header+body)`.
fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let mut w = Writer::with_capacity(24 + body.len());
    w.u64(FRAME_MAGIC);
    w.u64(body.len() as u64);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(body);
    let sum = codec::fnv1a64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    stream.write_all(&bytes)
}

/// Largest body a peer may send: a full-budget grid job is well under this.
const MAX_FRAME: u64 = 256 * 1024 * 1024;

/// Read one frame's body. `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, ServiceError> {
    let mut head = [0u8; 16];
    match stream.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let magic = u64::from_le_bytes(head[..8].try_into().unwrap());
    let len = u64::from_le_bytes(head[8..].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(ServiceError::Protocol(format!(
            "bad frame magic {magic:#x}"
        )));
    }
    if len > MAX_FRAME {
        return Err(ServiceError::Protocol(format!(
            "oversized frame ({len} bytes)"
        )));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    let mut sum = [0u8; 8];
    stream.read_exact(&mut sum)?;
    let mut whole = head.to_vec();
    whole.extend_from_slice(&body);
    if codec::fnv1a64(&whole) != u64::from_le_bytes(sum) {
        return Err(ServiceError::Protocol("frame checksum mismatch".into()));
    }
    Ok(Some(body))
}

// -------------------------------------------------------------- messages ---

fn hello_body(salt: u64) -> Vec<u8> {
    let mut w = Writer::with_capacity(24);
    w.u8(KIND_HELLO);
    w.u32(PROTO_VERSION);
    w.u64(salt);
    w.u64(process_nonce());
    w.into_bytes()
}

fn job_body(cells: &[LinkConfig], trials: usize, seed0: u64, bases: &[u64], flags: u64) -> Vec<u8> {
    let mut w = Writer::with_capacity(72 + cells.len() * 352);
    w.u8(KIND_JOB);
    w.u64(flags);
    w.u64(seed0);
    w.u64(trials as u64);
    w.u64(cells.len() as u64);
    for (cfg, &base) in cells.iter().zip(bases) {
        w.u64(base);
        let bytes = codec::link_config_bytes(cfg);
        w.u64(bytes.len() as u64);
        w.raw(&bytes);
    }
    w.into_bytes()
}

// ------------------------------------------------------- shard telemetry ---

/// Everything a worker recorded while computing one shard, shipped back in
/// the RESULT frame so sharded runs lose no observability (counters, span
/// histograms and probes are per-job *deltas*; trace events are the job's
/// own, timestamped against the worker's epoch).
#[derive(Clone, Debug, Default)]
pub struct ShardTelemetry {
    /// Counter deltas, `(name, delta)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Span histogram deltas in raw bucket form.
    pub spans: Vec<RawSpanHist>,
    /// Probe deltas (count/sum are deltas; min/max are the worker's
    /// process-cumulative bounds — a widening approximation).
    pub probes: Vec<RawProbe>,
    /// Trace events the job emitted (empty unless [`FLAG_TRACE`] was set).
    pub events: Vec<trace::Event>,
}

impl ShardTelemetry {
    /// Whether there is nothing to ship.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.spans.is_empty()
            && self.probes.is_empty()
            && self.events.is_empty()
    }
}

fn write_str(w: &mut Writer, s: &str) {
    w.u64(s.len() as u64);
    w.raw(s.as_bytes());
}

fn read_str(c: &mut Cursor) -> Result<String, ServiceError> {
    let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
    let len = c.u64().map_err(p)? as usize;
    let bytes = c.slice(len).map_err(p)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ServiceError::Protocol("non-UTF-8 telemetry name".into()))
}

fn encode_telemetry(w: &mut Writer, t: &ShardTelemetry) {
    w.u64(t.counters.len() as u64);
    for (name, v) in &t.counters {
        write_str(w, name);
        w.u64(*v);
    }
    w.u64(t.spans.len() as u64);
    for s in &t.spans {
        write_str(w, &s.name);
        w.u64(s.count);
        w.u64(s.sum);
        w.u64(s.max);
        w.u64(s.buckets.len() as u64);
        for &(i, c) in &s.buckets {
            w.u8(i);
            w.u64(c);
        }
    }
    w.u64(t.probes.len() as u64);
    for p in &t.probes {
        write_str(w, &p.name);
        w.u64(p.count);
        w.f64(p.sum);
        w.f64(p.min);
        w.f64(p.max);
    }
    w.u64(t.events.len() as u64);
    for ev in &t.events {
        write_str(w, &ev.name);
        w.u8(ev.phase.wire_tag());
        w.u64(ev.ts_ns);
        w.u64(ev.dur_ns);
        w.u32(ev.tid);
        match &ev.arg {
            Some((k, v)) => {
                w.u8(1);
                write_str(w, k);
                w.f64(*v);
            }
            None => w.u8(0),
        }
    }
}

fn decode_telemetry(c: &mut Cursor) -> Result<ShardTelemetry, ServiceError> {
    let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
    let mut t = ShardTelemetry::default();
    let n = c.u64().map_err(p)? as usize;
    for _ in 0..n {
        let name = read_str(c)?;
        let v = c.u64().map_err(p)?;
        t.counters.push((name, v));
    }
    let n = c.u64().map_err(p)? as usize;
    for _ in 0..n {
        let name = read_str(c)?;
        let count = c.u64().map_err(p)?;
        let sum = c.u64().map_err(p)?;
        let max = c.u64().map_err(p)?;
        let nb = c.u64().map_err(p)? as usize;
        let mut buckets = Vec::with_capacity(nb);
        for _ in 0..nb {
            let i = c.u8().map_err(p)?;
            let cnt = c.u64().map_err(p)?;
            buckets.push((i, cnt));
        }
        t.spans.push(RawSpanHist {
            name,
            count,
            sum,
            max,
            buckets,
        });
    }
    let n = c.u64().map_err(p)? as usize;
    for _ in 0..n {
        let name = read_str(c)?;
        let count = c.u64().map_err(p)?;
        let sum = c.f64().map_err(p)?;
        let min = c.f64().map_err(p)?;
        let max = c.f64().map_err(p)?;
        t.probes.push(RawProbe {
            name,
            count,
            sum,
            min,
            max,
        });
    }
    let n = c.u64().map_err(p)? as usize;
    for _ in 0..n {
        let name = read_str(c)?;
        let tag = c.u8().map_err(p)?;
        let phase = trace::Phase::from_wire_tag(tag)
            .ok_or_else(|| ServiceError::Protocol(format!("bad trace phase tag {tag}")))?;
        let ts_ns = c.u64().map_err(p)?;
        let dur_ns = c.u64().map_err(p)?;
        let tid = c.u32().map_err(p)?;
        let arg = if c.u8().map_err(p)? != 0 {
            let k = read_str(c)?;
            let v = c.f64().map_err(p)?;
            Some((k.into(), v))
        } else {
            None
        };
        t.events.push(trace::Event {
            name: name.into(),
            phase,
            ts_ns,
            dur_ns,
            tid,
            arg,
        });
    }
    Ok(t)
}

fn result_body(stats: &[TrialStats], telemetry: &ShardTelemetry) -> Vec<u8> {
    let mut w = Writer::with_capacity(64 + stats.len() * TRIAL_STATS_LEN);
    w.u8(KIND_RESULT);
    w.u64(stats.len() as u64);
    for s in stats {
        codec::encode_trial_stats(&mut w, s);
    }
    encode_telemetry(&mut w, telemetry);
    w.into_bytes()
}

fn parse_result(
    body: &[u8],
    expect: usize,
) -> Result<(Vec<TrialStats>, ShardTelemetry), ServiceError> {
    let mut c = Cursor::new(body);
    let kind = c.u8().map_err(|e| ServiceError::Protocol(e.to_string()))?;
    if kind != KIND_RESULT {
        return Err(ServiceError::Protocol(format!(
            "expected RESULT, got kind {kind}"
        )));
    }
    let n = c.u64().map_err(|e| ServiceError::Protocol(e.to_string()))? as usize;
    if n != expect {
        return Err(ServiceError::Protocol(format!(
            "shard returned {n} cells, expected {expect}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(
            codec::decode_trial_stats(&mut c).map_err(|e| ServiceError::Protocol(e.to_string()))?,
        );
    }
    let telemetry = decode_telemetry(&mut c)?;
    Ok((out, telemetry))
}

// ---------------------------------------------------------------- worker ---

/// Serve sweep jobs on `listener` until `max_conns` connections have been
/// handled (`None` = forever). Each connection may carry any number of
/// sequential jobs; jobs run on the cache-aware local grid runner.
pub fn serve(listener: &TcpListener, max_conns: Option<usize>) -> io::Result<()> {
    serve_with_salt(listener, code_salt(), max_conns)
}

/// [`serve`] announcing an explicit code salt in the handshake. Production
/// workers use [`code_salt`]; tests use this to exercise coordinator-side
/// stale-worker rejection.
pub fn serve_with_salt(
    listener: &TcpListener,
    salt: u64,
    max_conns: Option<usize>,
) -> io::Result<()> {
    for (served, conn) in listener.incoming().enumerate() {
        let mut stream = conn?;
        // A wedged or hostile peer must not hang the worker forever.
        let _ = stream.set_nodelay(true);
        if let Err(e) = handle_conn(&mut stream, salt) {
            eprintln!("[backfi sweep-worker] connection ended: {e}");
        }
        if max_conns.is_some_and(|m| served + 1 >= m) {
            break;
        }
    }
    Ok(())
}

/// The worker-side snapshot of the obs registry taken before a job runs;
/// subtracting it from the post-job state yields the job's own telemetry
/// even though the registry is process-cumulative across jobs.
struct ObsBaseline {
    counters: std::collections::BTreeMap<String, u64>,
    spans: std::collections::BTreeMap<String, RawSpanHist>,
    probes: std::collections::BTreeMap<String, (u64, f64)>,
}

fn obs_baseline() -> ObsBaseline {
    ObsBaseline {
        counters: backfi_obs::counter_dump().into_iter().collect(),
        spans: backfi_obs::span_dump()
            .into_iter()
            .map(|s| (s.name.clone(), s))
            .collect(),
        probes: backfi_obs::probe_dump()
            .into_iter()
            .map(|p| (p.name, (p.count, p.sum)))
            .collect(),
    }
}

/// The job's telemetry delta: counters, span histograms and probe
/// count/sum subtract the baseline exactly; span max and probe min/max are
/// the worker's process-cumulative bounds (a widening approximation that
/// only matters when one worker process serves several jobs).
fn telemetry_since(base: &ObsBaseline) -> ShardTelemetry {
    let counters = backfi_obs::counter_dump()
        .into_iter()
        .filter_map(|(name, v)| {
            let d = v - base.counters.get(&name).copied().unwrap_or(0);
            (d > 0).then_some((name, d))
        })
        .collect();
    let spans = backfi_obs::span_dump()
        .into_iter()
        .filter_map(|s| {
            let (bc, bs, bb): (u64, u64, &[(u8, u64)]) = match base.spans.get(&s.name) {
                Some(b) => (b.count, b.sum, &b.buckets),
                None => (0, 0, &[]),
            };
            let count = s.count - bc;
            if count == 0 {
                return None;
            }
            let buckets = s
                .buckets
                .iter()
                .filter_map(|&(i, c)| {
                    let prev = bb
                        .iter()
                        .find(|&&(bi, _)| bi == i)
                        .map(|&(_, c)| c)
                        .unwrap_or(0);
                    (c > prev).then_some((i, c - prev))
                })
                .collect();
            Some(RawSpanHist {
                name: s.name,
                count,
                sum: s.sum - bs,
                max: s.max,
                buckets,
            })
        })
        .collect();
    let probes = backfi_obs::probe_dump()
        .into_iter()
        .filter_map(|p| {
            let (bc, bs) = base.probes.get(&p.name).copied().unwrap_or((0, 0.0));
            let count = p.count - bc;
            (count > 0).then_some(RawProbe {
                name: p.name,
                count,
                sum: p.sum - bs,
                min: p.min,
                max: p.max,
            })
        })
        .collect();
    ShardTelemetry {
        counters,
        spans,
        probes,
        events: Vec::new(),
    }
}

fn handle_conn(stream: &mut TcpStream, salt: u64) -> Result<(), ServiceError> {
    write_frame(stream, &hello_body(salt))?;
    while let Some(body) = read_frame(stream)? {
        let mut c = Cursor::new(&body);
        let kind = c.u8().map_err(|e| ServiceError::Protocol(e.to_string()))?;
        if kind != KIND_JOB {
            return Err(ServiceError::Protocol(format!(
                "expected JOB, got kind {kind}"
            )));
        }
        let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
        let flags = c.u64().map_err(p)?;
        let seed0 = c.u64().map_err(p)?;
        let trials = c.u64().map_err(p)? as usize;
        let n = c.u64().map_err(p)? as usize;
        let mut cells = Vec::with_capacity(n);
        let mut bases = Vec::with_capacity(n);
        for _ in 0..n {
            bases.push(c.u64().map_err(p)?);
            let len = c.u64().map_err(p)? as usize;
            let blob = c.slice(len).map_err(p)?;
            let mut cc = Cursor::new(blob);
            cells.push(codec::decode_link_config(&mut cc).map_err(p)?);
        }
        // The coordinator's obs/trace state arms the same layers here, so a
        // worker records exactly what an in-process run would have.
        let baseline = (flags & FLAG_TELEMETRY != 0).then(|| {
            backfi_obs::enable();
            obs_baseline()
        });
        if flags & FLAG_TRACE != 0 {
            trace::enable();
            trace::take_local_events(); // discard pre-job leftovers
        }
        let stats = run_grid_indexed_local(&Executor::new(), &cells, trials, seed0, &bases);
        let mut telemetry = baseline.as_ref().map(telemetry_since).unwrap_or_default();
        if flags & FLAG_TRACE != 0 {
            telemetry.events = trace::take_local_events();
        }
        write_frame(stream, &result_body(&stats, &telemetry))?;
    }
    Ok(())
}

// ----------------------------------------------------------- coordinator ---

/// Addresses of the worker fleet a coordinator shards across.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    addrs: Vec<String>,
}

impl WorkerPool {
    /// A pool from worker `host:port` addresses. Empty pools are valid and
    /// simply mean "run locally".
    pub fn new(addrs: Vec<String>) -> Self {
        WorkerPool { addrs }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// One shard conversation: connect, validate HELLO, send the cell slice,
/// collect its stats and telemetry.
fn run_shard(
    addr: &str,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Result<(Vec<TrialStats>, ShardTelemetry), ServiceError> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let hello = read_frame(&mut stream)?
        .ok_or_else(|| ServiceError::Protocol("worker closed before HELLO".into()))?;
    let mut c = Cursor::new(&hello);
    let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
    if c.u8().map_err(p)? != KIND_HELLO {
        return Err(ServiceError::Protocol("expected HELLO".into()));
    }
    let proto = c.u32().map_err(p)?;
    if proto != PROTO_VERSION {
        return Err(ServiceError::Protocol(format!(
            "worker speaks protocol v{proto}, coordinator v{PROTO_VERSION}"
        )));
    }
    let salt = c.u64().map_err(p)?;
    if salt != code_salt() {
        return Err(ServiceError::Protocol(format!(
            "worker code salt {salt:016x} != coordinator {:016x} (stale build?)",
            code_salt()
        )));
    }
    let peer_nonce = c.u64().map_err(p)?;
    // A loopback worker inside this very process records straight into our
    // registry and rings — requesting telemetry would double-count it.
    let mut flags = 0u64;
    if peer_nonce != process_nonce() {
        if backfi_obs::enabled() {
            flags |= FLAG_TELEMETRY;
        }
        if trace::enabled() {
            flags |= FLAG_TRACE;
        }
    }
    write_frame(&mut stream, &job_body(cells, trials, seed0, bases, flags))?;
    let res = read_frame(&mut stream)?
        .ok_or_else(|| ServiceError::Protocol("worker closed before RESULT".into()))?;
    parse_result(&res, cells.len())
}

/// Shard `cells` contiguously across the pool's workers and merge the
/// results in cell order. Errors on any shard abort the whole attempt —
/// the caller falls back to local compute, which is bit-identical.
pub fn run_sharded(
    pool: &WorkerPool,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Result<Vec<TrialStats>, ServiceError> {
    assert_eq!(cells.len(), bases.len(), "one job-index base per cell");
    if pool.is_empty() {
        return Err(ServiceError::Protocol("empty worker pool".into()));
    }
    if cells.is_empty() {
        return Ok(Vec::new());
    }
    // Contiguous shards, at most one per worker, sized ceil(n / workers).
    let n = cells.len();
    let shard = n.div_ceil(pool.len());
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(shard)
        .map(|lo| (lo, (lo + shard).min(n)))
        .collect();
    type ShardOut = Result<(Vec<TrialStats>, ShardTelemetry, u64), ServiceError>;
    let results: Vec<ShardOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .zip(&pool.addrs)
            .map(|(&(lo, hi), addr)| {
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let t0_ns = trace::now_ns();
                    let out = run_shard(addr, &cells[lo..hi], trials, seed0, &bases[lo..hi]);
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    backfi_obs::record_span_ns("sweep.service.shard", elapsed);
                    if trace::enabled() {
                        trace::complete_from("sweep.service.shard", t0, elapsed);
                    }
                    out.map(|(stats, telemetry)| (stats, telemetry, t0_ns))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("shard thread propagates errors, never panics")
            })
            .collect()
    });
    // Merge stats in shard (= cell) order, and absorb each shard's telemetry
    // under a stable per-shard process lane: shard `s` → trace pid `s + 1`
    // (the coordinator itself is pid 0). Shard order is fixed by the cell
    // split, so the merged manifest and timeline are deterministic for a
    // fixed seed and worker count.
    let mut merged = Vec::with_capacity(n);
    for (shard_idx, r) in results.into_iter().enumerate() {
        let (stats, telemetry, t0_ns) = r?;
        merged.extend(stats);
        for (name, delta) in &telemetry.counters {
            backfi_obs::absorb_counter(name, *delta);
        }
        for s in &telemetry.spans {
            backfi_obs::absorb_span_hist(&s.name, s.count, s.sum, s.max, &s.buckets);
        }
        for pr in &telemetry.probes {
            backfi_obs::absorb_probe(&pr.name, pr.count, pr.sum, pr.min, pr.max);
        }
        if !telemetry.events.is_empty() {
            trace::add_remote_events(shard_idx as u32 + 1, t0_ns, telemetry.events);
        }
    }
    Ok(merged)
}

// ---------------------------------------------------------------- global ---

static GLOBAL: Mutex<Option<Arc<WorkerPool>>> = Mutex::new(None);

/// Install (or with `None`, remove) the process-wide worker pool used by
/// the `run_grid*` family. Figure binaries call this from
/// `--workers a:p,b:p` / `BACKFI_WORKERS`; nothing is installed by default.
pub fn set_global(pool: Option<WorkerPool>) {
    *GLOBAL.lock().expect("service global lock poisoned") = pool.map(Arc::new);
}

/// The installed process-wide worker pool, if any.
pub fn global() -> Option<Arc<WorkerPool>> {
    GLOBAL.lock().expect("service global lock poisoned").clone()
}

/// Convenience for the worker binary: bind `addr`, print the bound address
/// on stderr (port 0 resolves here) and serve forever.
pub fn worker_main(addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!(
        "[backfi sweep-worker] listening on {} (salt {:016x}, proto v{PROTO_VERSION})",
        listener.local_addr()?,
        code_salt()
    );
    serve(&listener, None)
}

/// Parse a `--cache`-style worker list `"host:a,host:b"` into a pool.
pub fn pool_from_spec(spec: &str) -> WorkerPool {
    WorkerPool::new(
        spec.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect(),
    )
}
