//! Coordinator/worker sweep sharding over TCP — `std::net` only.
//!
//! A coordinator splits a grid's cells into contiguous shards, ships each
//! shard to a worker process over a checksummed length-prefixed frame
//! protocol (DESIGN.md §12), and merges the returned [`TrialStats`] back in
//! job order. Because every trial's seed is a pure function of
//! `(seed0, bases[cell] + t)` and each worker receives the exact bases its
//! cells had in the full grid, the merged result is **bit-identical to the
//! in-process executor for any shard count** — the same guarantee the
//! executor gives for any thread count.
//!
//! Workers answer jobs with the *cache-aware but service-free* local grid
//! runner, so a worker with a warm [`super::cache`] store skips recompute
//! but can never recursively re-shard.
//!
//! Failure policy: any connection, handshake or protocol error on any shard
//! aborts the remote attempt and the caller falls back to local compute
//! (results are bit-identical either way, so fallback is invisible in the
//! output).

use crate::link::LinkConfig;
use crate::sweep::cache::code_salt;
use crate::sweep::codec::{self, Cursor, Writer, TRIAL_STATS_LEN};
use crate::sweep::{run_grid_indexed_local, Executor, TrialStats};
use std::io::{self, Read, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Wire protocol version; carried in the HELLO frame and bumped with any
/// frame-layout change.
pub const PROTO_VERSION: u32 = 1;

/// Frame magic: `b"BFSWEEP1"` little-endian.
pub const FRAME_MAGIC: u64 = u64::from_le_bytes(*b"BFSWEEP1");

/// Message kind tags (first body byte).
const KIND_HELLO: u8 = 1;
const KIND_JOB: u8 = 2;
const KIND_RESULT: u8 = 3;

/// Why a sharded run could not complete (the caller falls back to local).
#[derive(Debug)]
pub enum ServiceError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The peer spoke, but not our dialect: bad magic/checksum/kind, or a
    /// version/salt mismatch in the handshake.
    Protocol(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "io: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

// ---------------------------------------------------------------- frames ---

/// Write one frame: `magic u64 | body_len u64 | body | fnv1a64(header+body)`.
fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let mut w = Writer::with_capacity(24 + body.len());
    w.u64(FRAME_MAGIC);
    w.u64(body.len() as u64);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(body);
    let sum = codec::fnv1a64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    stream.write_all(&bytes)
}

/// Largest body a peer may send: a full-budget grid job is well under this.
const MAX_FRAME: u64 = 256 * 1024 * 1024;

/// Read one frame's body. `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, ServiceError> {
    let mut head = [0u8; 16];
    match stream.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let magic = u64::from_le_bytes(head[..8].try_into().unwrap());
    let len = u64::from_le_bytes(head[8..].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(ServiceError::Protocol(format!(
            "bad frame magic {magic:#x}"
        )));
    }
    if len > MAX_FRAME {
        return Err(ServiceError::Protocol(format!(
            "oversized frame ({len} bytes)"
        )));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    let mut sum = [0u8; 8];
    stream.read_exact(&mut sum)?;
    let mut whole = head.to_vec();
    whole.extend_from_slice(&body);
    if codec::fnv1a64(&whole) != u64::from_le_bytes(sum) {
        return Err(ServiceError::Protocol("frame checksum mismatch".into()));
    }
    Ok(Some(body))
}

// -------------------------------------------------------------- messages ---

fn hello_body(salt: u64) -> Vec<u8> {
    let mut w = Writer::with_capacity(16);
    w.u8(KIND_HELLO);
    w.u32(PROTO_VERSION);
    w.u64(salt);
    w.into_bytes()
}

fn job_body(cells: &[LinkConfig], trials: usize, seed0: u64, bases: &[u64]) -> Vec<u8> {
    let mut w = Writer::with_capacity(64 + cells.len() * 352);
    w.u8(KIND_JOB);
    w.u64(seed0);
    w.u64(trials as u64);
    w.u64(cells.len() as u64);
    for (cfg, &base) in cells.iter().zip(bases) {
        w.u64(base);
        let bytes = codec::link_config_bytes(cfg);
        w.u64(bytes.len() as u64);
        w.raw(&bytes);
    }
    w.into_bytes()
}

fn result_body(stats: &[TrialStats]) -> Vec<u8> {
    let mut w = Writer::with_capacity(16 + stats.len() * TRIAL_STATS_LEN);
    w.u8(KIND_RESULT);
    w.u64(stats.len() as u64);
    for s in stats {
        codec::encode_trial_stats(&mut w, s);
    }
    w.into_bytes()
}

fn parse_result(body: &[u8], expect: usize) -> Result<Vec<TrialStats>, ServiceError> {
    let mut c = Cursor::new(body);
    let kind = c.u8().map_err(|e| ServiceError::Protocol(e.to_string()))?;
    if kind != KIND_RESULT {
        return Err(ServiceError::Protocol(format!(
            "expected RESULT, got kind {kind}"
        )));
    }
    let n = c.u64().map_err(|e| ServiceError::Protocol(e.to_string()))? as usize;
    if n != expect {
        return Err(ServiceError::Protocol(format!(
            "shard returned {n} cells, expected {expect}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(
            codec::decode_trial_stats(&mut c).map_err(|e| ServiceError::Protocol(e.to_string()))?,
        );
    }
    Ok(out)
}

// ---------------------------------------------------------------- worker ---

/// Serve sweep jobs on `listener` until `max_conns` connections have been
/// handled (`None` = forever). Each connection may carry any number of
/// sequential jobs; jobs run on the cache-aware local grid runner.
pub fn serve(listener: &TcpListener, max_conns: Option<usize>) -> io::Result<()> {
    serve_with_salt(listener, code_salt(), max_conns)
}

/// [`serve`] announcing an explicit code salt in the handshake. Production
/// workers use [`code_salt`]; tests use this to exercise coordinator-side
/// stale-worker rejection.
pub fn serve_with_salt(
    listener: &TcpListener,
    salt: u64,
    max_conns: Option<usize>,
) -> io::Result<()> {
    for (served, conn) in listener.incoming().enumerate() {
        let mut stream = conn?;
        // A wedged or hostile peer must not hang the worker forever.
        let _ = stream.set_nodelay(true);
        if let Err(e) = handle_conn(&mut stream, salt) {
            eprintln!("[backfi sweep-worker] connection ended: {e}");
        }
        if max_conns.is_some_and(|m| served + 1 >= m) {
            break;
        }
    }
    Ok(())
}

fn handle_conn(stream: &mut TcpStream, salt: u64) -> Result<(), ServiceError> {
    write_frame(stream, &hello_body(salt))?;
    while let Some(body) = read_frame(stream)? {
        let mut c = Cursor::new(&body);
        let kind = c.u8().map_err(|e| ServiceError::Protocol(e.to_string()))?;
        if kind != KIND_JOB {
            return Err(ServiceError::Protocol(format!(
                "expected JOB, got kind {kind}"
            )));
        }
        let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
        let seed0 = c.u64().map_err(p)?;
        let trials = c.u64().map_err(p)? as usize;
        let n = c.u64().map_err(p)? as usize;
        let mut cells = Vec::with_capacity(n);
        let mut bases = Vec::with_capacity(n);
        for _ in 0..n {
            bases.push(c.u64().map_err(p)?);
            let len = c.u64().map_err(p)? as usize;
            let blob = c.slice(len).map_err(p)?;
            let mut cc = Cursor::new(blob);
            cells.push(codec::decode_link_config(&mut cc).map_err(p)?);
        }
        let stats = run_grid_indexed_local(&Executor::new(), &cells, trials, seed0, &bases);
        write_frame(stream, &result_body(&stats))?;
    }
    Ok(())
}

// ----------------------------------------------------------- coordinator ---

/// Addresses of the worker fleet a coordinator shards across.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    addrs: Vec<String>,
}

impl WorkerPool {
    /// A pool from worker `host:port` addresses. Empty pools are valid and
    /// simply mean "run locally".
    pub fn new(addrs: Vec<String>) -> Self {
        WorkerPool { addrs }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// One shard conversation: connect, validate HELLO, send the cell slice,
/// collect its stats.
fn run_shard(
    addr: &str,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Result<Vec<TrialStats>, ServiceError> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let hello = read_frame(&mut stream)?
        .ok_or_else(|| ServiceError::Protocol("worker closed before HELLO".into()))?;
    let mut c = Cursor::new(&hello);
    let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
    if c.u8().map_err(p)? != KIND_HELLO {
        return Err(ServiceError::Protocol("expected HELLO".into()));
    }
    let proto = c.u32().map_err(p)?;
    if proto != PROTO_VERSION {
        return Err(ServiceError::Protocol(format!(
            "worker speaks protocol v{proto}, coordinator v{PROTO_VERSION}"
        )));
    }
    let salt = c.u64().map_err(p)?;
    if salt != code_salt() {
        return Err(ServiceError::Protocol(format!(
            "worker code salt {salt:016x} != coordinator {:016x} (stale build?)",
            code_salt()
        )));
    }
    write_frame(&mut stream, &job_body(cells, trials, seed0, bases))?;
    let res = read_frame(&mut stream)?
        .ok_or_else(|| ServiceError::Protocol("worker closed before RESULT".into()))?;
    parse_result(&res, cells.len())
}

/// Shard `cells` contiguously across the pool's workers and merge the
/// results in cell order. Errors on any shard abort the whole attempt —
/// the caller falls back to local compute, which is bit-identical.
pub fn run_sharded(
    pool: &WorkerPool,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Result<Vec<TrialStats>, ServiceError> {
    assert_eq!(cells.len(), bases.len(), "one job-index base per cell");
    if pool.is_empty() {
        return Err(ServiceError::Protocol("empty worker pool".into()));
    }
    if cells.is_empty() {
        return Ok(Vec::new());
    }
    // Contiguous shards, at most one per worker, sized ceil(n / workers).
    let n = cells.len();
    let shard = n.div_ceil(pool.len());
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(shard)
        .map(|lo| (lo, (lo + shard).min(n)))
        .collect();
    let results: Vec<Result<Vec<TrialStats>, ServiceError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .zip(&pool.addrs)
            .map(|(&(lo, hi), addr)| {
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let out = run_shard(addr, &cells[lo..hi], trials, seed0, &bases[lo..hi]);
                    backfi_obs::record_span_ns(
                        "sweep.service.shard",
                        t0.elapsed().as_nanos() as u64,
                    );
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("shard thread propagates errors, never panics")
            })
            .collect()
    });
    let mut merged = Vec::with_capacity(n);
    for r in results {
        merged.extend(r?);
    }
    Ok(merged)
}

// ---------------------------------------------------------------- global ---

static GLOBAL: Mutex<Option<Arc<WorkerPool>>> = Mutex::new(None);

/// Install (or with `None`, remove) the process-wide worker pool used by
/// the `run_grid*` family. Figure binaries call this from
/// `--workers a:p,b:p` / `BACKFI_WORKERS`; nothing is installed by default.
pub fn set_global(pool: Option<WorkerPool>) {
    *GLOBAL.lock().expect("service global lock poisoned") = pool.map(Arc::new);
}

/// The installed process-wide worker pool, if any.
pub fn global() -> Option<Arc<WorkerPool>> {
    GLOBAL.lock().expect("service global lock poisoned").clone()
}

/// Convenience for the worker binary: bind `addr`, print the bound address
/// on stderr (port 0 resolves here) and serve forever.
pub fn worker_main(addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!(
        "[backfi sweep-worker] listening on {} (salt {:016x}, proto v{PROTO_VERSION})",
        listener.local_addr()?,
        code_salt()
    );
    serve(&listener, None)
}

/// Parse a `--cache`-style worker list `"host:a,host:b"` into a pool.
pub fn pool_from_spec(spec: &str) -> WorkerPool {
    WorkerPool::new(
        spec.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect(),
    )
}
