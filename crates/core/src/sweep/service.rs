//! Coordinator/worker sweep sharding over TCP — `std::net` only.
//!
//! A coordinator splits a grid's cells into shards, ships each shard to a
//! worker process over a checksummed length-prefixed frame protocol
//! (DESIGN.md §12), and merges the returned [`TrialStats`] back in job
//! order. Because every trial's seed is a pure function of
//! `(seed0, bases[cell] + t)` and each worker receives the exact bases its
//! cells had in the full grid, the merged result is **bit-identical to the
//! in-process executor for any shard count** — the same guarantee the
//! executor gives for any thread count.
//!
//! Workers answer jobs with the *cache-aware but service-free* local grid
//! runner, so a worker with a warm [`super::cache`] store skips recompute
//! but can never recursively re-shard.
//!
//! Failure policy (DESIGN.md §14): every socket op runs under a per-attempt
//! deadline, a failed shard is retried with seeded backoff and re-dispatched
//! to surviving workers by the work-queue [`dispatch`]er, repeatedly failing
//! workers are quarantined and re-probed, and a shard that exhausts its
//! attempts is computed locally — *only* that shard, never the whole run.
//! `run_sharded` errors only when the pool proved entirely unusable, in
//! which case the caller's whole-run local fallback takes over. All paths
//! are bit-identical in output; the seeded [`chaos`] transport exists to
//! prove it.

pub mod chaos;
mod dispatch;
mod transport;

pub use transport::{Deadline, MAX_FRAME};

use crate::link::LinkConfig;
use crate::sweep::cache::code_salt;
use crate::sweep::codec::{self, Cursor, Writer, TRIAL_STATS_LEN};
use crate::sweep::{run_grid_indexed_local, Executor, TrialStats};
use backfi_obs::trace;
use backfi_obs::{RawProbe, RawSpanHist};
use chaos::ChaosCtx;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Wire protocol version; carried in the HELLO frame and bumped with any
/// frame-layout change. v2 added the process nonce to HELLO, the telemetry
/// request flags to JOB and the telemetry block to RESULT (DESIGN.md §13).
pub const PROTO_VERSION: u32 = 2;

/// Frame magic: `b"BFSWEEP1"` little-endian.
pub const FRAME_MAGIC: u64 = u64::from_le_bytes(*b"BFSWEEP1");

/// Message kind tags (first body byte).
const KIND_HELLO: u8 = 1;
const KIND_JOB: u8 = 2;
const KIND_RESULT: u8 = 3;

/// JOB flag: the coordinator's obs recorder is on — ship the job's counter,
/// span-histogram and probe deltas back in the RESULT telemetry block.
pub const FLAG_TELEMETRY: u64 = 1;
/// JOB flag: the coordinator's tracer is on — ship the job's trace events.
pub const FLAG_TRACE: u64 = 2;

/// Decode-side sanity cap on wire-supplied element counts: used only to
/// bound `Vec::with_capacity` pre-allocation, never to reject — decode of a
/// count beyond the actual body still fails cleanly in the codec.
const MAX_PREALLOC: usize = 4096;

/// A nonce identifying this *process* (not this build): lets a coordinator
/// detect a loopback worker running in its own process, where the obs
/// registry is shared and telemetry must not be absorbed twice. Never part
/// of determinism-relevant state.
fn process_nonce() -> u64 {
    static NONCE: OnceLock<u64> = OnceLock::new();
    *NONCE.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut bytes = Vec::with_capacity(12);
        bytes.extend_from_slice(&std::process::id().to_le_bytes());
        bytes.extend_from_slice(&t.to_le_bytes());
        codec::fnv1a64(&bytes)
    })
}

/// Why a shard attempt (or a whole sharded run) failed.
#[derive(Debug)]
pub enum ServiceError {
    /// Socket-level failure (connect, read, write reset).
    Io(io::Error),
    /// The peer spoke, but not our dialect: bad magic/checksum/kind, or a
    /// version/salt mismatch in the handshake.
    Protocol(String),
    /// A deadline expired: connect, HELLO, or the per-shard budget.
    Timeout(String),
}

impl ServiceError {
    /// Whether this failure was a deadline expiry (directly, or a socket
    /// timeout surfacing through the I/O layer).
    pub fn is_timeout(&self) -> bool {
        match self {
            ServiceError::Timeout(_) => true,
            ServiceError::Io(e) => transport::io_is_timeout(e),
            ServiceError::Protocol(_) => false,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "io: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol: {m}"),
            ServiceError::Timeout(m) => write!(f, "timeout: {m}"),
        }
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

// ---------------------------------------------------------------- config ---

/// Deadlines and retry policy for the coordinator side of the service.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Budget for one complete shard attempt (connect + HELLO + JOB +
    /// RESULT). `--sweep-timeout` / `BACKFI_SWEEP_TIMEOUT_MS`.
    pub shard_deadline: Duration,
    /// Cap on one TCP connect within the attempt.
    pub connect_timeout: Duration,
    /// Cap on waiting for the HELLO frame after connecting.
    pub hello_timeout: Duration,
    /// Attempts per shard before it falls back to local compute.
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt (see `dispatch`).
    pub backoff_base: Duration,
    /// Ceiling on any retry backoff.
    pub backoff_cap: Duration,
    /// Consecutive failures before a worker is quarantined.
    pub failure_budget: u32,
    /// How often a quarantined worker is re-probed.
    pub reprobe: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shard_deadline: Duration::from_secs(600),
            connect_timeout: Duration::from_secs(5),
            hello_timeout: Duration::from_secs(10),
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            failure_budget: 3,
            reprobe: Duration::from_millis(500),
        }
    }
}

impl ServiceConfig {
    /// Defaults, with the shard deadline overridden by
    /// `BACKFI_SWEEP_TIMEOUT_MS` when set (malformed values are ignored —
    /// a typo must not change deadline semantics silently mid-fleet, so the
    /// figure binaries validate the flag form and exit loudly instead).
    pub fn from_env() -> Self {
        let cfg = ServiceConfig::default();
        match std::env::var("BACKFI_SWEEP_TIMEOUT_MS") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(ms) => cfg.with_deadline_ms(ms),
                Err(_) => cfg,
            },
            Err(_) => cfg,
        }
    }

    /// Set the per-shard deadline to `ms` milliseconds (floor 1 ms), pulling
    /// the connect and HELLO caps down under it so no single op can eat the
    /// whole budget.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        let d = Duration::from_millis(ms.max(1));
        self.shard_deadline = d;
        self.connect_timeout = self.connect_timeout.min(d);
        self.hello_timeout = self.hello_timeout.min(d);
        self
    }
}

// ---------------------------------------------------------------- frames ---
// Frame I/O lives in `transport` (deadline-aware, chaos-injectable); the
// message bodies below are pure codec.

// -------------------------------------------------------------- messages ---

fn hello_body(salt: u64) -> Vec<u8> {
    let mut w = Writer::with_capacity(24);
    w.u8(KIND_HELLO);
    w.u32(PROTO_VERSION);
    w.u64(salt);
    w.u64(process_nonce());
    w.into_bytes()
}

fn job_body(cells: &[LinkConfig], trials: usize, seed0: u64, bases: &[u64], flags: u64) -> Vec<u8> {
    let mut w = Writer::with_capacity(72 + cells.len() * 352);
    w.u8(KIND_JOB);
    w.u64(flags);
    w.u64(seed0);
    w.u64(trials as u64);
    w.u64(cells.len() as u64);
    for (cfg, &base) in cells.iter().zip(bases) {
        w.u64(base);
        let bytes = codec::link_config_bytes(cfg);
        w.u64(bytes.len() as u64);
        w.raw(&bytes);
    }
    w.into_bytes()
}

// ------------------------------------------------------- shard telemetry ---

/// Everything a worker recorded while computing one shard, shipped back in
/// the RESULT frame so sharded runs lose no observability (counters, span
/// histograms and probes are per-job *deltas*; trace events are the job's
/// own, timestamped against the worker's epoch).
#[derive(Clone, Debug, Default)]
pub struct ShardTelemetry {
    /// Counter deltas, `(name, delta)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Span histogram deltas in raw bucket form.
    pub spans: Vec<RawSpanHist>,
    /// Probe deltas (count/sum are deltas; min/max are the worker's
    /// process-cumulative bounds — a widening approximation).
    pub probes: Vec<RawProbe>,
    /// Trace events the job emitted (empty unless [`FLAG_TRACE`] was set).
    pub events: Vec<trace::Event>,
}

impl ShardTelemetry {
    /// Whether there is nothing to ship.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.spans.is_empty()
            && self.probes.is_empty()
            && self.events.is_empty()
    }
}

fn write_str(w: &mut Writer, s: &str) {
    w.u64(s.len() as u64);
    w.raw(s.as_bytes());
}

fn read_str(c: &mut Cursor) -> Result<String, ServiceError> {
    let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
    let len = c.u64().map_err(p)? as usize;
    let bytes = c.slice(len).map_err(p)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ServiceError::Protocol("non-UTF-8 telemetry name".into()))
}

fn encode_telemetry(w: &mut Writer, t: &ShardTelemetry) {
    w.u64(t.counters.len() as u64);
    for (name, v) in &t.counters {
        write_str(w, name);
        w.u64(*v);
    }
    w.u64(t.spans.len() as u64);
    for s in &t.spans {
        write_str(w, &s.name);
        w.u64(s.count);
        w.u64(s.sum);
        w.u64(s.max);
        w.u64(s.buckets.len() as u64);
        for &(i, c) in &s.buckets {
            w.u8(i);
            w.u64(c);
        }
    }
    w.u64(t.probes.len() as u64);
    for p in &t.probes {
        write_str(w, &p.name);
        w.u64(p.count);
        w.f64(p.sum);
        w.f64(p.min);
        w.f64(p.max);
    }
    w.u64(t.events.len() as u64);
    for ev in &t.events {
        write_str(w, &ev.name);
        w.u8(ev.phase.wire_tag());
        w.u64(ev.ts_ns);
        w.u64(ev.dur_ns);
        w.u32(ev.tid);
        match &ev.arg {
            Some((k, v)) => {
                w.u8(1);
                write_str(w, k);
                w.f64(*v);
            }
            None => w.u8(0),
        }
    }
}

fn decode_telemetry(c: &mut Cursor) -> Result<ShardTelemetry, ServiceError> {
    let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
    let mut t = ShardTelemetry::default();
    let n = c.u64().map_err(p)? as usize;
    t.counters.reserve(n.min(MAX_PREALLOC));
    for _ in 0..n {
        let name = read_str(c)?;
        let v = c.u64().map_err(p)?;
        t.counters.push((name, v));
    }
    let n = c.u64().map_err(p)? as usize;
    t.spans.reserve(n.min(MAX_PREALLOC));
    for _ in 0..n {
        let name = read_str(c)?;
        let count = c.u64().map_err(p)?;
        let sum = c.u64().map_err(p)?;
        let max = c.u64().map_err(p)?;
        let nb = c.u64().map_err(p)? as usize;
        let mut buckets = Vec::with_capacity(nb.min(MAX_PREALLOC));
        for _ in 0..nb {
            let i = c.u8().map_err(p)?;
            let cnt = c.u64().map_err(p)?;
            buckets.push((i, cnt));
        }
        t.spans.push(RawSpanHist {
            name,
            count,
            sum,
            max,
            buckets,
        });
    }
    let n = c.u64().map_err(p)? as usize;
    t.probes.reserve(n.min(MAX_PREALLOC));
    for _ in 0..n {
        let name = read_str(c)?;
        let count = c.u64().map_err(p)?;
        let sum = c.f64().map_err(p)?;
        let min = c.f64().map_err(p)?;
        let max = c.f64().map_err(p)?;
        t.probes.push(RawProbe {
            name,
            count,
            sum,
            min,
            max,
        });
    }
    let n = c.u64().map_err(p)? as usize;
    t.events.reserve(n.min(MAX_PREALLOC));
    for _ in 0..n {
        let name = read_str(c)?;
        let tag = c.u8().map_err(p)?;
        let phase = trace::Phase::from_wire_tag(tag)
            .ok_or_else(|| ServiceError::Protocol(format!("bad trace phase tag {tag}")))?;
        let ts_ns = c.u64().map_err(p)?;
        let dur_ns = c.u64().map_err(p)?;
        let tid = c.u32().map_err(p)?;
        let arg = if c.u8().map_err(p)? != 0 {
            let k = read_str(c)?;
            let v = c.f64().map_err(p)?;
            Some((k.into(), v))
        } else {
            None
        };
        t.events.push(trace::Event {
            name: name.into(),
            phase,
            ts_ns,
            dur_ns,
            tid,
            arg,
        });
    }
    Ok(t)
}

fn result_body(stats: &[TrialStats], telemetry: &ShardTelemetry) -> Vec<u8> {
    let mut w = Writer::with_capacity(64 + stats.len() * TRIAL_STATS_LEN);
    w.u8(KIND_RESULT);
    w.u64(stats.len() as u64);
    for s in stats {
        codec::encode_trial_stats(&mut w, s);
    }
    encode_telemetry(&mut w, telemetry);
    w.into_bytes()
}

fn parse_result(
    body: &[u8],
    expect: usize,
) -> Result<(Vec<TrialStats>, ShardTelemetry), ServiceError> {
    let mut c = Cursor::new(body);
    let kind = c.u8().map_err(|e| ServiceError::Protocol(e.to_string()))?;
    if kind != KIND_RESULT {
        return Err(ServiceError::Protocol(format!(
            "expected RESULT, got kind {kind}"
        )));
    }
    let n = c.u64().map_err(|e| ServiceError::Protocol(e.to_string()))? as usize;
    if n != expect {
        return Err(ServiceError::Protocol(format!(
            "shard returned {n} cells, expected {expect}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(
            codec::decode_trial_stats(&mut c).map_err(|e| ServiceError::Protocol(e.to_string()))?,
        );
    }
    let telemetry = decode_telemetry(&mut c)?;
    Ok((out, telemetry))
}

// ---------------------------------------------------------------- worker ---

/// Serve sweep jobs on `listener` until `max_conns` connections have been
/// handled (`None` = forever). Each connection may carry any number of
/// sequential jobs; jobs run on the cache-aware local grid runner.
pub fn serve(listener: &TcpListener, max_conns: Option<usize>) -> io::Result<()> {
    serve_with_salt(listener, code_salt(), max_conns)
}

/// [`serve`] announcing an explicit code salt in the handshake. Production
/// workers use [`code_salt`]; tests use this to exercise coordinator-side
/// stale-worker rejection.
///
/// Neither a failed accept (EMFILE, aborted handshake) nor a failed
/// connection handler kills the listener loop — a worker must outlive any
/// one bad peer.
pub fn serve_with_salt(
    listener: &TcpListener,
    salt: u64,
    max_conns: Option<usize>,
) -> io::Result<()> {
    let cfg = ServiceConfig::from_env();
    let mut served = 0usize;
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nodelay(true);
                if let Err(e) = handle_conn(&mut stream, salt, &cfg) {
                    eprintln!("[backfi sweep-worker] connection ended: {e}");
                }
                served += 1;
                if max_conns.is_some_and(|m| served >= m) {
                    return Ok(());
                }
            }
            Err(e) => {
                eprintln!("[backfi sweep-worker] accept failed: {e}; continuing");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// The worker-side snapshot of the obs registry taken before a job runs;
/// subtracting it from the post-job state yields the job's own telemetry
/// even though the registry is process-cumulative across jobs.
struct ObsBaseline {
    counters: std::collections::BTreeMap<String, u64>,
    spans: std::collections::BTreeMap<String, RawSpanHist>,
    probes: std::collections::BTreeMap<String, (u64, f64)>,
}

fn obs_baseline() -> ObsBaseline {
    ObsBaseline {
        counters: backfi_obs::counter_dump().into_iter().collect(),
        spans: backfi_obs::span_dump()
            .into_iter()
            .map(|s| (s.name.clone(), s))
            .collect(),
        probes: backfi_obs::probe_dump()
            .into_iter()
            .map(|p| (p.name, (p.count, p.sum)))
            .collect(),
    }
}

/// The job's telemetry delta: counters, span histograms and probe
/// count/sum subtract the baseline exactly; span max and probe min/max are
/// the worker's process-cumulative bounds (a widening approximation that
/// only matters when one worker process serves several jobs).
fn telemetry_since(base: &ObsBaseline) -> ShardTelemetry {
    let counters = backfi_obs::counter_dump()
        .into_iter()
        .filter_map(|(name, v)| {
            let d = v - base.counters.get(&name).copied().unwrap_or(0);
            (d > 0).then_some((name, d))
        })
        .collect();
    let spans = backfi_obs::span_dump()
        .into_iter()
        .filter_map(|s| {
            let (bc, bs, bb): (u64, u64, &[(u8, u64)]) = match base.spans.get(&s.name) {
                Some(b) => (b.count, b.sum, &b.buckets),
                None => (0, 0, &[]),
            };
            let count = s.count - bc;
            if count == 0 {
                return None;
            }
            let buckets = s
                .buckets
                .iter()
                .filter_map(|&(i, c)| {
                    let prev = bb
                        .iter()
                        .find(|&&(bi, _)| bi == i)
                        .map(|&(_, c)| c)
                        .unwrap_or(0);
                    (c > prev).then_some((i, c - prev))
                })
                .collect();
            Some(RawSpanHist {
                name: s.name,
                count,
                sum: s.sum - bs,
                max: s.max,
                buckets,
            })
        })
        .collect();
    let probes = backfi_obs::probe_dump()
        .into_iter()
        .filter_map(|p| {
            let (bc, bs) = base.probes.get(&p.name).copied().unwrap_or((0, 0.0));
            let count = p.count - bc;
            (count > 0).then_some(RawProbe {
                name: p.name,
                count,
                sum: p.sum - bs,
                min: p.min,
                max: p.max,
            })
        })
        .collect();
    ShardTelemetry {
        counters,
        spans,
        probes,
        events: Vec::new(),
    }
}

fn handle_conn(stream: &mut TcpStream, salt: u64, cfg: &ServiceConfig) -> Result<(), ServiceError> {
    // Worker-side reads are bounded by the shard deadline: an idle
    // persistent connection survives a coordinator's whole dispatch, but a
    // wedged or vanished coordinator cannot pin this handler forever.
    let read_cap = Some(cfg.shard_deadline);
    let no_deadline = Deadline::none();
    transport::write_frame(stream, &hello_body(salt), &no_deadline, None)?;
    while let Some(body) = transport::read_frame(stream, &no_deadline, read_cap, None)? {
        let mut c = Cursor::new(&body);
        let kind = c.u8().map_err(|e| ServiceError::Protocol(e.to_string()))?;
        if kind != KIND_JOB {
            return Err(ServiceError::Protocol(format!(
                "expected JOB, got kind {kind}"
            )));
        }
        let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
        let flags = c.u64().map_err(p)?;
        let seed0 = c.u64().map_err(p)?;
        let trials = c.u64().map_err(p)? as usize;
        let n = c.u64().map_err(p)? as usize;
        let mut cells = Vec::with_capacity(n.min(MAX_PREALLOC));
        let mut bases = Vec::with_capacity(n.min(MAX_PREALLOC));
        for _ in 0..n {
            bases.push(c.u64().map_err(p)?);
            let len = c.u64().map_err(p)? as usize;
            let blob = c.slice(len).map_err(p)?;
            let mut cc = Cursor::new(blob);
            cells.push(codec::decode_link_config(&mut cc).map_err(p)?);
        }
        // The coordinator's obs/trace state arms the same layers here, so a
        // worker records exactly what an in-process run would have.
        let baseline = (flags & FLAG_TELEMETRY != 0).then(|| {
            backfi_obs::enable();
            obs_baseline()
        });
        if flags & FLAG_TRACE != 0 {
            trace::enable();
            trace::take_local_events(); // discard pre-job leftovers
        }
        let stats = run_grid_indexed_local(&Executor::new(), &cells, trials, seed0, &bases);
        let mut telemetry = baseline.as_ref().map(telemetry_since).unwrap_or_default();
        if flags & FLAG_TRACE != 0 {
            telemetry.events = trace::take_local_events();
        }
        transport::write_frame(stream, &result_body(&stats, &telemetry), &no_deadline, None)?;
    }
    Ok(())
}

// ----------------------------------------------------------- coordinator ---

/// Addresses of the worker fleet a coordinator shards across, plus the
/// deadline/retry policy the dispatcher applies to them.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    addrs: Vec<String>,
    config: ServiceConfig,
}

impl WorkerPool {
    /// A pool from worker `host:port` addresses, with the policy from
    /// [`ServiceConfig::from_env`]. Empty pools are valid and simply mean
    /// "run locally".
    pub fn new(addrs: Vec<String>) -> Self {
        WorkerPool {
            addrs,
            config: ServiceConfig::from_env(),
        }
    }

    /// A pool with an explicit deadline/retry policy.
    pub fn with_config(addrs: Vec<String>, config: ServiceConfig) -> Self {
        WorkerPool { addrs, config }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The deadline/retry policy this pool dispatches under.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }
}

/// An established, HELLO-validated worker connection. Kept open across
/// sequential shards; any error poisons it (the dispatcher reconnects).
pub(crate) struct Conn {
    stream: TcpStream,
    peer_nonce: u64,
}

/// Connect and validate the HELLO within `deadline`.
fn connect_and_hello_within(
    addr: &str,
    cfg: &ServiceConfig,
    deadline: &Deadline,
    chaos: Option<&ChaosCtx>,
) -> Result<Conn, ServiceError> {
    let mut stream = transport::connect(addr, cfg.connect_timeout, deadline, chaos)?;
    let hello = transport::read_frame(&mut stream, deadline, Some(cfg.hello_timeout), chaos)?
        .ok_or_else(|| ServiceError::Protocol("worker closed before HELLO".into()))?;
    let mut c = Cursor::new(&hello);
    let p = |e: codec::CodecError| ServiceError::Protocol(e.to_string());
    if c.u8().map_err(p)? != KIND_HELLO {
        return Err(ServiceError::Protocol("expected HELLO".into()));
    }
    let proto = c.u32().map_err(p)?;
    if proto != PROTO_VERSION {
        return Err(ServiceError::Protocol(format!(
            "worker speaks protocol v{proto}, coordinator v{PROTO_VERSION}"
        )));
    }
    let salt = c.u64().map_err(p)?;
    if salt != code_salt() {
        return Err(ServiceError::Protocol(format!(
            "worker code salt {salt:016x} != coordinator {:016x} (stale build?)",
            code_salt()
        )));
    }
    let peer_nonce = c.u64().map_err(p)?;
    Ok(Conn { stream, peer_nonce })
}

/// Connect and validate the HELLO under a standalone budget — the
/// dispatcher's quarantine re-probe.
pub(crate) fn connect_and_hello(
    addr: &str,
    cfg: &ServiceConfig,
    chaos: Option<&ChaosCtx>,
) -> Result<Conn, ServiceError> {
    let deadline = Deadline::after(cfg.connect_timeout + cfg.hello_timeout);
    connect_and_hello_within(addr, cfg, &deadline, chaos)
}

/// One shard attempt on one worker: (re)connect if needed, send the cell
/// slice, collect stats and telemetry — all within one per-attempt deadline.
/// On any error the caller must drop the connection (a half-finished frame
/// exchange cannot be resumed).
#[allow(clippy::too_many_arguments)]
pub(crate) fn attempt_shard(
    conn: &mut Option<Conn>,
    addr: &str,
    cfg: &ServiceConfig,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
    chaos: Option<&ChaosCtx>,
) -> Result<(Vec<TrialStats>, ShardTelemetry), ServiceError> {
    let deadline = Deadline::after(cfg.shard_deadline);
    if conn.is_none() {
        *conn = Some(connect_and_hello_within(addr, cfg, &deadline, chaos)?);
    }
    let c = conn.as_mut().expect("connection established above");
    // A loopback worker inside this very process records straight into our
    // registry and rings — requesting telemetry would double-count it.
    let mut flags = 0u64;
    if c.peer_nonce != process_nonce() {
        if backfi_obs::enabled() {
            flags |= FLAG_TELEMETRY;
        }
        if trace::enabled() {
            flags |= FLAG_TRACE;
        }
    }
    let job = job_body(cells, trials, seed0, bases, flags);
    transport::write_frame(&mut c.stream, &job, &deadline, chaos)?;
    let res = transport::read_frame(&mut c.stream, &deadline, None, chaos)?
        .ok_or_else(|| ServiceError::Protocol("worker closed before RESULT".into()))?;
    parse_result(&res, cells.len())
}

/// Shard `cells` across the pool's workers through the fault-tolerant
/// work-queue dispatcher and merge the results in cell order. A shard whose
/// every attempt failed is computed locally (`sweep.service.shard_fallback`);
/// the call errors only when the pool proved entirely unusable — no worker
/// ever completed a shard and all ended quarantined — in which case the
/// caller's whole-run local fallback takes over. Every path is bit-identical.
pub fn run_sharded(
    pool: &WorkerPool,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Result<Vec<TrialStats>, ServiceError> {
    assert_eq!(cells.len(), bases.len(), "one job-index base per cell");
    if pool.is_empty() {
        return Err(ServiceError::Protocol("empty worker pool".into()));
    }
    if cells.is_empty() {
        return Ok(Vec::new());
    }
    let report = dispatch::run(&pool.addrs, &pool.config, cells, trials, seed0, bases)?;
    // Merge stats in shard (= cell) order, and absorb each shard's telemetry
    // under a stable per-shard process lane: shard `s` → trace pid `s + 1`
    // (the coordinator itself is pid 0). Shard order is fixed by the cell
    // split, so the merged manifest and timeline are deterministic for a
    // fixed seed and worker count — regardless of which worker computed
    // which shard on which attempt.
    let mut merged = Vec::with_capacity(cells.len());
    for (shard_idx, (outcome, &(lo, hi))) in
        report.outcomes.into_iter().zip(&report.ranges).enumerate()
    {
        match outcome {
            dispatch::Outcome::Remote {
                stats,
                telemetry,
                t0_ns,
            } => {
                merged.extend(stats);
                for (name, delta) in &telemetry.counters {
                    backfi_obs::absorb_counter(name, *delta);
                }
                for s in &telemetry.spans {
                    backfi_obs::absorb_span_hist(&s.name, s.count, s.sum, s.max, &s.buckets);
                }
                for pr in &telemetry.probes {
                    backfi_obs::absorb_probe(&pr.name, pr.count, pr.sum, pr.min, pr.max);
                }
                if !telemetry.events.is_empty() {
                    trace::add_remote_events(shard_idx as u32 + 1, t0_ns, telemetry.events);
                }
            }
            dispatch::Outcome::Failed(why) => {
                backfi_obs::counter_add("sweep.service.shard_fallback", 1);
                trace::instant("sweep.service.shard_fallback");
                eprintln!(
                    "[backfi sweep] shard {shard_idx} unrecoverable ({why}); \
                     computing cells {lo}..{hi} locally"
                );
                merged.extend(run_grid_indexed_local(
                    &Executor::new(),
                    &cells[lo..hi],
                    trials,
                    seed0,
                    &bases[lo..hi],
                ));
            }
        }
    }
    Ok(merged)
}

// ---------------------------------------------------------------- global ---

static GLOBAL: Mutex<Option<Arc<WorkerPool>>> = Mutex::new(None);

/// Install (or with `None`, remove) the process-wide worker pool used by
/// the `run_grid*` family. Figure binaries call this from
/// `--workers a:p,b:p` / `BACKFI_WORKERS`; nothing is installed by default.
pub fn set_global(pool: Option<WorkerPool>) {
    // The pool is plain config: a panic elsewhere while the lock was held
    // cannot have corrupted it, so recover rather than poison-cascade.
    *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()) = pool.map(Arc::new);
}

/// The installed process-wide worker pool, if any.
pub fn global() -> Option<Arc<WorkerPool>> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Convenience for the worker binary: bind `addr`, print the bound address
/// on stderr (port 0 resolves here) and serve forever.
pub fn worker_main(addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!(
        "[backfi sweep-worker] listening on {} (salt {:016x}, proto v{PROTO_VERSION})",
        listener.local_addr()?,
        code_salt()
    );
    serve(&listener, None)
}

/// Parse a `--workers`-style list `"host:a,host:b"` into a pool, rejecting
/// syntactically invalid and duplicate entries — a silently broken pool
/// would cost a whole retry/quarantine cycle per bad address on every run.
pub fn pool_from_spec(spec: &str) -> Result<WorkerPool, String> {
    let mut addrs: Vec<String> = Vec::new();
    for token in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (host, port) = token
            .rsplit_once(':')
            .ok_or_else(|| format!("worker address {token:?} is not host:port"))?;
        if host.is_empty() {
            return Err(format!("worker address {token:?} has an empty host"));
        }
        port.parse::<u16>()
            .map_err(|_| format!("worker address {token:?} has a bad port {port:?}"))?;
        if addrs.iter().any(|a| a == token) {
            return Err(format!("duplicate worker address {token:?}"));
        }
        addrs.push(token.to_string());
    }
    if addrs.is_empty() {
        return Err("worker spec names no addresses".into());
    }
    Ok(WorkerPool::new(addrs))
}

// --------------------------------------------------------------- testkit ---

/// Raw protocol pieces for integration tests that play *rogue peers* —
/// servers that die mid-job, truncate frames, or never answer. Not part of
/// the public API surface.
#[doc(hidden)]
pub mod testkit {
    use super::*;
    use std::io::Write as _;

    /// A complete wire frame around `body`.
    pub fn frame_bytes(body: &[u8]) -> Vec<u8> {
        transport::frame_bytes(body)
    }

    /// A HELLO body announcing `salt` (and this process's nonce).
    pub fn hello_body(salt: u64) -> Vec<u8> {
        super::hello_body(salt)
    }

    /// Read one frame with no deadline (rogue servers are loopback-fast).
    pub fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, ServiceError> {
        transport::read_frame(stream, &Deadline::none(), None, None)
    }

    /// Write raw bytes — deliberately *not* a well-formed frame helper, so
    /// tests can send partial or corrupt data.
    pub fn write_raw(stream: &mut TcpStream, bytes: &[u8]) -> io::Result<()> {
        stream.write_all(bytes)
    }
}
