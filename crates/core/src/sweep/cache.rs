//! Persistent content-addressed result cache for sweep grids.
//!
//! Maps a stable 128-bit hash of *(serialized [`LinkConfig`] cell, sweep
//! seed, job-index base, trial count)* to the cell's aggregated
//! [`TrialStats`], stored as fixed-width binary records on disk (DESIGN.md
//! §12). A warm cache lets every figure binary skip cells it has already
//! computed — the incremental mode behind `--cache` / `BACKFI_CACHE`.
//!
//! Guarantees:
//!
//! * **Byte-neutral.** Values round-trip as `f64` bit patterns (the codec
//!   layer), so a cache hit reproduces the cold-run result bit-for-bit and
//!   figure stdout is identical either way.
//! * **Concurrent-writer safe.** Records are written to a unique temp file
//!   and published with `fs::rename`, which is atomic on POSIX: two
//!   executors racing the same key converge to one valid entry, never a
//!   torn one.
//! * **Corruption-tolerant.** Every record ends in an FNV-1a checksum over
//!   the full record body; a truncated or bit-flipped entry is detected,
//!   deleted and transparently recomputed.
//! * **Version-safe.** Records embed a code-version salt
//!   ([`code_salt`]) derived from the codec format version, the crate
//!   version and a manually bumped simulation revision; a store written by
//!   a stale build is wiped wholesale on open.
//!
//! The cache is off unless a directory is configured; default runs never
//! touch the filesystem.

use crate::link::LinkConfig;
use crate::sweep::codec::{self, fnv1a64, fnv1a64_seeded, Cursor, Writer, TRIAL_STATS_LEN};
use crate::sweep::TrialStats;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Record magic: `b"BFCACHE1"` little-endian.
pub const MAGIC: u64 = u64::from_le_bytes(*b"BFCACHE1");

/// Manually bumped whenever simulation *semantics* change in a way that
/// invalidates previously cached results without changing any serialized
/// struct (e.g. a reordered RNG draw or a retuned pipeline constant).
pub const SIM_REV: u64 = 1;

/// On-disk record size: magic + salt + key (hi, lo) + stats payload +
/// checksum.
pub const RECORD_LEN: usize = 8 * 4 + TRIAL_STATS_LEN + 8;

/// Name of the per-store version-salt file.
const VERSION_FILE: &str = "CACHE_VERSION";

/// Independent seeds for the two FNV passes behind the 128-bit key.
const KEY_SEED_HI: u64 = 0x6261_636b_6669_4869; // "backfiHi"
const KEY_SEED_LO: u64 = 0x6261_636b_6669_4c6f; // "backfiLo"

/// The code-version salt embedded in every record and in the store's
/// `CACHE_VERSION` file: hash of codec layout version, crate version and
/// [`SIM_REV`]. Any of the three changing orphans every existing store.
pub fn code_salt() -> u64 {
    let tag = format!(
        "fmt{}:pkg{}:rev{}",
        codec::FORMAT_VERSION,
        env!("CARGO_PKG_VERSION"),
        SIM_REV
    );
    fnv1a64(tag.as_bytes())
}

/// A 128-bit content address: two independently seeded FNV-1a passes over
/// the cell's canonical encoding. Also the entry's file name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// First hash pass (also selects the shard subdirectory).
    pub hi: u64,
    /// Second, independently seeded pass.
    pub lo: u64,
}

/// Compute the cache key for one grid cell: hashes the canonical codec
/// bytes of `cfg` plus the sweep seed, the cell's job-index base and the
/// trial count — everything that determines the cell's [`TrialStats`].
pub fn cell_key(cfg: &LinkConfig, seed0: u64, base: u64, trials: usize) -> CacheKey {
    let mut w = Writer::with_capacity(352);
    codec::encode_link_config(&mut w, cfg);
    w.u64(seed0);
    w.u64(base);
    w.u64(trials as u64);
    let bytes = w.bytes();
    CacheKey {
        hi: fnv1a64_seeded(KEY_SEED_HI, bytes),
        lo: fnv1a64_seeded(KEY_SEED_LO, bytes),
    }
}

fn encode_record(salt: u64, key: CacheKey, stats: &TrialStats) -> Vec<u8> {
    let mut w = Writer::with_capacity(RECORD_LEN);
    w.u64(MAGIC);
    w.u64(salt);
    w.u64(key.hi);
    w.u64(key.lo);
    codec::encode_trial_stats(&mut w, stats);
    let sum = fnv1a64(w.bytes());
    w.u64(sum);
    debug_assert_eq!(w.bytes().len(), RECORD_LEN);
    w.into_bytes()
}

/// Why a read produced no value (drives the obs counters).
enum ReadMiss {
    /// No entry on disk.
    Absent,
    /// Entry present but truncated, bit-flipped, mis-keyed or stale.
    Corrupt,
    /// Filesystem error other than not-found.
    Io,
}

fn decode_record(bytes: &[u8], salt: u64, key: CacheKey) -> Result<TrialStats, ReadMiss> {
    if bytes.len() != RECORD_LEN {
        return Err(ReadMiss::Corrupt);
    }
    let sum = u64::from_le_bytes(bytes[RECORD_LEN - 8..].try_into().unwrap());
    if fnv1a64(&bytes[..RECORD_LEN - 8]) != sum {
        return Err(ReadMiss::Corrupt);
    }
    let mut c = Cursor::new(&bytes[..RECORD_LEN - 8]);
    let (magic, rsalt, hi, lo) = (
        c.u64().unwrap(),
        c.u64().unwrap(),
        c.u64().unwrap(),
        c.u64().unwrap(),
    );
    if magic != MAGIC || rsalt != salt || hi != key.hi || lo != key.lo {
        return Err(ReadMiss::Corrupt);
    }
    codec::decode_trial_stats(&mut c).map_err(|_| ReadMiss::Corrupt)
}

/// Consecutive filesystem errors before the store turns itself off. One-off
/// hiccups (a transient EINTR, one unreadable entry) should not disable a
/// warm cache; a dead mount or full disk will blow past this immediately.
const DISABLE_AFTER: u32 = 8;

/// A content-addressed on-disk store of per-cell sweep results.
pub struct ResultCache {
    dir: PathBuf,
    salt: u64,
    tmp_seq: AtomicU64,
    /// Consecutive I/O failures; reset by any successful disk interaction.
    io_streak: std::sync::atomic::AtomicU32,
    /// Once set, `get`/`put` are pass-through no-ops: an unwritable dir or
    /// ENOSPC degrades the sweep to cold-cache, never to a failure.
    disabled: std::sync::atomic::AtomicBool,
}

impl ResultCache {
    /// Open (creating if needed) a cache store rooted at `dir`.
    ///
    /// If the store was written under a different code-version salt, every
    /// entry is evicted before the store is used — a stale build's results
    /// must never leak into a fresh run.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let cache = ResultCache {
            dir: dir.to_path_buf(),
            salt: code_salt(),
            tmp_seq: AtomicU64::new(0),
            io_streak: std::sync::atomic::AtomicU32::new(0),
            disabled: std::sync::atomic::AtomicBool::new(false),
        };
        fs::create_dir_all(dir)?;
        let vfile = dir.join(VERSION_FILE);
        let want = format!("{:016x}\n", cache.salt);
        match fs::read_to_string(&vfile) {
            Ok(have) if have == want => {}
            Ok(_) => {
                // Stale salt: wipe the whole store, then stamp ours.
                let evicted = cache.clear_entries()?;
                backfi_obs::counter_add("sweep.cache.evict", evicted as u64);
                fs::write(&vfile, &want)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                fs::write(&vfile, &want)?;
            }
            Err(e) => return Err(e),
        }
        Ok(cache)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether the store has degraded to pass-through (test/diagnostic).
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    /// One more filesystem failure; past [`DISABLE_AFTER`] in a row the
    /// store turns itself off with a counter and one stderr warning.
    fn note_io_error(&self) {
        backfi_obs::counter_add("sweep.cache.io_error", 1);
        let streak = self.io_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= DISABLE_AFTER && !self.disabled.swap(true, Ordering::Relaxed) {
            backfi_obs::counter_add("sweep.cache.disabled", 1);
            eprintln!(
                "[backfi cache] {} consecutive I/O errors under {}; disabling cache \
                 (results are unaffected, cells recompute)",
                streak,
                self.dir.display()
            );
        }
    }

    fn note_io_ok(&self) {
        self.io_streak.store(0, Ordering::Relaxed);
    }

    fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir
            .join(format!("{:02x}", (key.hi >> 56) as u8))
            .join(format!("{:016x}{:016x}.bfc", key.hi, key.lo))
    }

    /// Look up a cell result. Returns `None` on absence, corruption (the
    /// entry is deleted so the recomputed value can replace it) or I/O
    /// error — the caller recomputes in every miss case.
    pub fn get(&self, key: CacheKey) -> Option<TrialStats> {
        if self.is_disabled() {
            return None;
        }
        let _t = backfi_obs::span("sweep.cache.get");
        let path = self.entry_path(key);
        let miss = match fs::read(&path) {
            Ok(bytes) => match decode_record(&bytes, self.salt, key) {
                Ok(stats) => {
                    self.note_io_ok();
                    backfi_obs::counter_add("sweep.cache.hit", 1);
                    backfi_obs::trace::instant("sweep.cache.hit");
                    return Some(stats);
                }
                Err(m) => m,
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => ReadMiss::Absent,
            Err(_) => ReadMiss::Io,
        };
        match miss {
            ReadMiss::Absent => self.note_io_ok(),
            ReadMiss::Corrupt => {
                self.note_io_ok();
                backfi_obs::counter_add("sweep.cache.corrupt", 1);
                let _ = fs::remove_file(&path);
            }
            ReadMiss::Io => self.note_io_error(),
        }
        backfi_obs::counter_add("sweep.cache.miss", 1);
        backfi_obs::trace::instant("sweep.cache.miss");
        None
    }

    /// Store a cell result. Best-effort: a full disk or permission error
    /// degrades to "cache stays cold", never to a failed sweep. Writes are
    /// temp-file + atomic rename, so concurrent writers of the same key
    /// each publish a complete record and one of them wins.
    pub fn put(&self, key: CacheKey, stats: &TrialStats) {
        if self.is_disabled() {
            return;
        }
        let _t = backfi_obs::span("sweep.cache.put");
        let record = encode_record(self.salt, key, stats);
        let path = self.entry_path(key);
        let shard = path.parent().expect("entry path always has a shard dir");
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let ok = fs::create_dir_all(shard)
            .and_then(|_| fs::write(&tmp, &record))
            .and_then(|_| fs::rename(&tmp, &path));
        match ok {
            Ok(()) => self.note_io_ok(),
            Err(_) => {
                self.note_io_error();
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    /// Delete every entry (the `CACHE_VERSION` stamp stays). Returns the
    /// number of entries removed. Used by salt invalidation and by the
    /// cold-path replay bench to re-chill the store between iterations.
    pub fn clear_entries(&self) -> io::Result<usize> {
        let mut removed = 0;
        for shard in fs::read_dir(&self.dir)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(shard.path())? {
                let entry = entry?;
                if entry.path().extension().is_some_and(|e| e == "bfc") {
                    fs::remove_file(entry.path())?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }

    /// Number of entries currently on disk (test/diagnostic helper).
    pub fn entry_count(&self) -> io::Result<usize> {
        let mut n = 0;
        for shard in fs::read_dir(&self.dir)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(shard.path())? {
                if entry?.path().extension().is_some_and(|e| e == "bfc") {
                    n += 1;
                }
            }
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------- global ---

static GLOBAL: Mutex<Option<Arc<ResultCache>>> = Mutex::new(None);

/// Install (or with `None`, remove) the process-wide cache used by the
/// `run_grid*` family. Figure binaries call this from `--cache <dir>` /
/// `BACKFI_CACHE=<dir>`; nothing is installed by default.
pub fn set_global(dir: Option<&Path>) -> io::Result<()> {
    let cache = match dir {
        Some(d) => Some(Arc::new(ResultCache::open(d)?)),
        None => None,
    };
    // The cache handle is plain config: a panic elsewhere while the lock
    // was held cannot have corrupted it, so recover rather than cascade.
    *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()) = cache;
    Ok(())
}

/// The installed process-wide cache, if any.
pub fn global() -> Option<Arc<ResultCache>> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::codec::link_config_bytes;
    use backfi_tag::config::TagConfig;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("backfi-cache-unit-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn stats() -> TrialStats {
        TrialStats {
            config: TagConfig::default(),
            success_rate: 0.75,
            mean_snr_db: 12.5,
            mean_ber: 1e-3,
            mean_pre_fec_ber: 2e-2,
            mean_goodput_bps: 3.5e6,
            panics: 0,
        }
    }

    #[test]
    fn put_get_roundtrip_bit_exact() {
        let dir = tmpdir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let cfg = LinkConfig::at_distance(2.0);
        let key = cell_key(&cfg, 1000, 0, 5);
        assert!(cache.get(key).is_none());
        let s = stats();
        cache.put(key, &s);
        let back = cache.get(key).unwrap();
        assert_eq!(
            s.mean_goodput_bps.to_bits(),
            back.mean_goodput_bps.to_bits()
        );
        assert_eq!(s.success_rate.to_bits(), back.success_rate.to_bits());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_depends_on_every_coordinate() {
        let cfg = LinkConfig::at_distance(2.0);
        let k = cell_key(&cfg, 1000, 0, 5);
        assert_ne!(k, cell_key(&cfg, 1001, 0, 5), "seed must matter");
        assert_ne!(k, cell_key(&cfg, 1000, 5, 5), "base must matter");
        assert_ne!(k, cell_key(&cfg, 1000, 0, 6), "trial count must matter");
        let mut other = cfg.clone();
        other.distance_m += 0.5;
        assert_ne!(k, cell_key(&other, 1000, 0, 5), "config must matter");
        // Sanity: the key really is content-addressed on the codec bytes.
        assert_ne!(link_config_bytes(&cfg), link_config_bytes(&other));
    }

    #[test]
    fn record_layout_is_fixed_width() {
        let key = CacheKey { hi: 1, lo: 2 };
        assert_eq!(encode_record(code_salt(), key, &stats()).len(), RECORD_LEN);
    }

    #[test]
    fn repeated_io_errors_degrade_to_pass_through() {
        let dir = tmpdir("degrade");
        let cache = ResultCache::open(&dir).unwrap();
        let cfg = LinkConfig::at_distance(2.0);
        // Yank the store out from under the handle and plant a file where
        // the directory was: every subsequent write hits NotADirectory —
        // the same shape as an unwritable or vanished mount.
        fs::remove_dir_all(&dir).unwrap();
        fs::write(&dir, b"not a directory").unwrap();
        for i in 0..DISABLE_AFTER {
            assert!(!cache.is_disabled(), "must tolerate {i} one-off errors");
            cache.put(cell_key(&cfg, 1000, u64::from(i), 5), &stats());
        }
        assert!(
            cache.is_disabled(),
            "{DISABLE_AFTER} consecutive I/O errors must disable the store"
        );
        // Disabled store is inert: no panics, no results, no further I/O.
        let key = cell_key(&cfg, 1000, 0, 5);
        cache.put(key, &stats());
        assert!(cache.get(key).is_none());
        let _ = fs::remove_file(&dir);
    }
}
