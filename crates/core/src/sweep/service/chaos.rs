//! Deterministic chaos transport — seeded fault injection between the
//! sweep-service codec and the socket.
//!
//! Four failure modes cover every way a worker conversation can go wrong on
//! the wire (`--chaos <spec>` / `BACKFI_CHAOS=<spec>`):
//!
//! * **drop** — the connection dies: connects are refused, reads and writes
//!   hit a reset socket,
//! * **stall** — a read hangs past its deadline (surfaced as a timeout after
//!   a short deterministic sleep, so chaos runs stay fast),
//! * **truncate** — an outbound frame is cut mid-body and the connection
//!   closed, so the peer sees a short read,
//! * **bitflip** — one bit of an outbound frame is flipped, so the peer's
//!   frame checksum rejects it.
//!
//! Like `backfi-chan::impair`, every decision is drawn from a per-mode
//! [`SplitMix64`] sub-stream — here keyed by *(chaos seed, shard index,
//! attempt, transport op)* — so a given spec injects the same faults at the
//! same protocol steps on every run, and enabling one mode never shifts
//! another mode's draws. The recovery machinery (retry, re-dispatch,
//! per-shard fallback) keeps the merged [`TrialStats`](crate::sweep::TrialStats)
//! bit-identical to the plain run no matter what this layer does; chaos only
//! decides *which* recovery paths get exercised.
//!
//! The layer is off unless a spec is installed; default runs never consult
//! it.

use backfi_dsp::rng::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Salt separating chaos streams from the sweep's job-seed streams and the
/// impair layer's sub-streams.
const CHAOS_SALT: u64 = 0x5EED_FA11_C4A0_5BAD;

/// Salt for the quarantine re-probe stream (probes have no shard index).
const PROBE_SALT: u64 = 0x9B0B_E5A1_7000_0000;

/// One injectable wire fault (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosMode {
    /// Connection drops: refused connects, reset reads/writes.
    Drop,
    /// A read stalls past its deadline.
    Stall,
    /// An outbound frame is truncated mid-body.
    Truncate,
    /// One bit of an outbound frame is flipped.
    BitFlip,
}

impl ChaosMode {
    /// Every mode, in canonical order (the chaos matrix iterates this).
    pub const ALL: [ChaosMode; 4] = [
        ChaosMode::Drop,
        ChaosMode::Stall,
        ChaosMode::Truncate,
        ChaosMode::BitFlip,
    ];

    /// Stable short name (CLI/env spec token and report label).
    pub fn name(self) -> &'static str {
        match self {
            ChaosMode::Drop => "drop",
            ChaosMode::Stall => "stall",
            ChaosMode::Truncate => "truncate",
            ChaosMode::BitFlip => "bitflip",
        }
    }

    /// Obs counter bumped each time this mode fires.
    pub(crate) fn counter(self) -> &'static str {
        match self {
            ChaosMode::Drop => "sweep.chaos.drop",
            ChaosMode::Stall => "sweep.chaos.stall",
            ChaosMode::Truncate => "sweep.chaos.truncate",
            ChaosMode::BitFlip => "sweep.chaos.bitflip",
        }
    }

    /// Index of this mode's dedicated random sub-stream.
    fn stream(self) -> u64 {
        ChaosMode::ALL.iter().position(|&m| m == self).unwrap() as u64
    }
}

/// Chaos configuration — every probability at `0.0` disables its mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosSpec {
    /// Per-op probability a connection drops.
    pub drop: f64,
    /// Per-read probability of a stall.
    pub stall: f64,
    /// Per-write probability the frame is truncated.
    pub truncate: f64,
    /// Per-write probability one frame bit is flipped.
    pub bitflip: f64,
    /// How long an injected stall sleeps before surfacing as a timeout, ms.
    pub stall_ms: u64,
    /// Root seed of every chaos stream.
    pub seed: u64,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec::off()
    }
}

impl ChaosSpec {
    /// Everything disabled.
    pub fn off() -> Self {
        ChaosSpec {
            drop: 0.0,
            stall: 0.0,
            truncate: 0.0,
            bitflip: 0.0,
            stall_ms: 30,
            seed: 0xBACC_F1DE,
        }
    }

    /// `true` when no mode can ever fire.
    pub fn is_off(&self) -> bool {
        self.drop == 0.0 && self.stall == 0.0 && self.truncate == 0.0 && self.bitflip == 0.0
    }

    /// The configured probability of one mode.
    pub fn prob(&self, mode: ChaosMode) -> f64 {
        match mode {
            ChaosMode::Drop => self.drop,
            ChaosMode::Stall => self.stall,
            ChaosMode::Truncate => self.truncate,
            ChaosMode::BitFlip => self.bitflip,
        }
    }

    /// One mode at probability `p` (clamped to `[0, 1]`), everything else off.
    pub fn single(mode: ChaosMode, p: f64) -> Self {
        let mut spec = ChaosSpec::off();
        let p = p.clamp(0.0, 1.0);
        match mode {
            ChaosMode::Drop => spec.drop = p,
            ChaosMode::Stall => spec.stall = p,
            ChaosMode::Truncate => spec.truncate = p,
            ChaosMode::BitFlip => spec.bitflip = p,
        }
        spec
    }

    /// Every mode at probability `p`.
    pub fn all(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        ChaosSpec {
            drop: p,
            stall: p,
            truncate: p,
            bitflip: p,
            ..ChaosSpec::off()
        }
    }

    /// Parse a chaos spec: comma-separated `mode[:prob]` tokens plus the
    /// specials `all[:prob]`, `off`, `seed:<u64>` and `stall-ms:<u64>`.
    /// A bare mode name means probability 0.25. Examples: `drop:0.3`,
    /// `all:0.25,seed:7`, `stall:0.5,stall-ms:10`, `off`.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let mut out = ChaosSpec::off();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (name, val) = match token.split_once(':') {
                Some((n, v)) => (n.trim(), Some(v.trim())),
                None => (token, None),
            };
            let prob = |v: Option<&str>| -> Result<f64, String> {
                match v {
                    None => Ok(0.25),
                    Some(v) => {
                        let p: f64 = v
                            .parse()
                            .map_err(|_| format!("bad probability {v:?} in {token:?}"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("probability {p} out of [0,1] in {token:?}"));
                        }
                        Ok(p)
                    }
                }
            };
            let int = |v: Option<&str>| -> Result<u64, String> {
                v.ok_or_else(|| format!("{token:?} needs a value"))?
                    .parse()
                    .map_err(|_| format!("bad integer in {token:?}"))
            };
            match name {
                "off" => out = ChaosSpec::off(),
                "all" => {
                    let p = prob(val)?;
                    out.drop = p;
                    out.stall = p;
                    out.truncate = p;
                    out.bitflip = p;
                }
                "seed" => out.seed = int(val)?,
                "stall-ms" => out.stall_ms = int(val)?.max(1),
                _ => {
                    let mode = ChaosMode::ALL
                        .iter()
                        .find(|m| m.name() == name)
                        .ok_or_else(|| format!("unknown chaos mode {name:?}"))?;
                    let p = prob(val)?;
                    match mode {
                        ChaosMode::Drop => out.drop = p,
                        ChaosMode::Stall => out.stall = p,
                        ChaosMode::Truncate => out.truncate = p,
                        ChaosMode::BitFlip => out.bitflip = p,
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Per-attempt chaos context: all draws for one shard conversation are a
/// pure function of *(spec seed, shard index, attempt, op index)*, so a
/// replayed attempt faults at the same protocol steps.
pub(crate) struct ChaosCtx {
    spec: Arc<ChaosSpec>,
    key: u64,
    op: AtomicU64,
}

impl ChaosCtx {
    /// Context for shard `shard`, attempt `attempt`.
    pub(crate) fn for_shard(spec: Arc<ChaosSpec>, shard: u64, attempt: u64) -> Self {
        let key = SplitMix64::derive(SplitMix64::derive(spec.seed ^ CHAOS_SALT, shard), attempt);
        ChaosCtx {
            spec,
            key,
            op: AtomicU64::new(0),
        }
    }

    /// Context for a quarantine re-probe of worker `worker`, probe `seq`.
    pub(crate) fn for_probe(spec: Arc<ChaosSpec>, worker: u64, seq: u64) -> Self {
        let key = SplitMix64::derive(SplitMix64::derive(spec.seed ^ PROBE_SALT, worker), seq);
        ChaosCtx {
            spec,
            key,
            op: AtomicU64::new(0),
        }
    }

    /// Advance to the next transport op; returns its index.
    pub(crate) fn next_op(&self) -> u64 {
        self.op.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether `mode` fires at op `op`. Each mode draws from its own
    /// sub-stream, so enabling one mode never shifts another's decisions.
    pub(crate) fn fires(&self, mode: ChaosMode, op: u64) -> bool {
        let p = self.spec.prob(mode);
        if p <= 0.0 {
            return false;
        }
        let stream = SplitMix64::derive(self.key, mode.stream());
        let mut rng = SplitMix64::new(SplitMix64::derive(stream, op));
        let fired = rng.next_f64() < p;
        if fired {
            backfi_obs::counter_add(mode.counter(), 1);
            backfi_obs::trace::instant(mode.counter());
        }
        fired
    }

    /// Deterministic byte/bit position for a bitflip at op `op`.
    pub(crate) fn flip_position(&self, op: u64, len: usize) -> (usize, u8) {
        let stream = SplitMix64::derive(self.key, ChaosMode::BitFlip.stream() ^ 0xF11B);
        let mut rng = SplitMix64::new(SplitMix64::derive(stream, op));
        let byte = (rng.next_u64() % len.max(1) as u64) as usize;
        let bit = (rng.next_u64() % 8) as u8;
        (byte, bit)
    }

    /// Deterministic truncation length (at least 1 byte short) at op `op`.
    pub(crate) fn truncate_len(&self, op: u64, len: usize) -> usize {
        let stream = SplitMix64::derive(self.key, ChaosMode::Truncate.stream() ^ 0x7275);
        let mut rng = SplitMix64::new(SplitMix64::derive(stream, op));
        if len <= 1 {
            return 0;
        }
        (rng.next_u64() % (len as u64 - 1)) as usize
    }

    /// How long an injected stall sleeps.
    pub(crate) fn stall_duration(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.spec.stall_ms)
    }
}

// ---------------------------------------------------------------- global ---

static GLOBAL: Mutex<Option<Arc<ChaosSpec>>> = Mutex::new(None);

/// Install (or with `None`, remove) the process-wide chaos spec consulted by
/// the coordinator's transport. Figure binaries call this from
/// `--chaos <spec>` / `BACKFI_CHAOS`; nothing is installed by default.
/// An all-off spec installs nothing.
pub fn set_global(spec: Option<ChaosSpec>) {
    let spec = spec.filter(|s| !s.is_off());
    *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()) = spec.map(Arc::new);
}

/// The installed process-wide chaos spec, if any.
pub fn global() -> Option<Arc<ChaosSpec>> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_modes_and_bare_default() {
        let s = ChaosSpec::parse("drop:0.3").unwrap();
        assert_eq!(s.drop, 0.3);
        assert!(s.stall == 0.0 && s.truncate == 0.0 && s.bitflip == 0.0);
        let s = ChaosSpec::parse("stall").unwrap();
        assert_eq!(s.stall, 0.25);
        let s = ChaosSpec::parse("truncate:1,bitflip:0.5").unwrap();
        assert_eq!((s.truncate, s.bitflip), (1.0, 0.5));
    }

    #[test]
    fn parse_all_seed_stall_ms_off() {
        let s = ChaosSpec::parse("all:0.2,seed:99,stall-ms:7").unwrap();
        assert!(s.drop == 0.2 && s.stall == 0.2 && s.truncate == 0.2 && s.bitflip == 0.2);
        assert_eq!(s.seed, 99);
        assert_eq!(s.stall_ms, 7);
        let s = ChaosSpec::parse("all:0.9,off").unwrap();
        assert!(s.is_off());
        assert!(ChaosSpec::parse("").unwrap().is_off());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChaosSpec::parse("bogus:0.5").is_err());
        assert!(ChaosSpec::parse("drop:nan?").is_err());
        assert!(ChaosSpec::parse("drop:1.5").is_err());
        assert!(ChaosSpec::parse("seed:xyz").is_err());
        assert!(ChaosSpec::parse("seed").is_err());
    }

    #[test]
    fn decisions_are_pure_functions_of_shard_attempt_op() {
        let spec = Arc::new(ChaosSpec::all(0.5));
        let a = ChaosCtx::for_shard(spec.clone(), 3, 1);
        let b = ChaosCtx::for_shard(spec.clone(), 3, 1);
        for op in 0..64 {
            for mode in ChaosMode::ALL {
                assert_eq!(a.fires(mode, op), b.fires(mode, op));
            }
            assert_eq!(a.flip_position(op, 100), b.flip_position(op, 100));
            assert_eq!(a.truncate_len(op, 100), b.truncate_len(op, 100));
        }
        // A different attempt draws a different fault pattern.
        let c = ChaosCtx::for_shard(spec, 3, 2);
        let differs = (0..64).any(|op| {
            ChaosMode::ALL
                .iter()
                .any(|&m| a.fires(m, op) != c.fires(m, op))
        });
        assert!(differs, "attempt must re-key the chaos streams");
    }

    #[test]
    fn mode_probabilities_hold_roughly() {
        let spec = Arc::new(ChaosSpec::single(ChaosMode::Drop, 0.3));
        let ctx = ChaosCtx::for_shard(spec, 0, 0);
        let fired = (0..2000)
            .filter(|&op| ctx.fires(ChaosMode::Drop, op))
            .count();
        assert!((450..750).contains(&fired), "p=0.3 over 2000 ops: {fired}");
        // Other modes never fire at probability zero.
        assert!((0..2000).all(|op| !ctx.fires(ChaosMode::Stall, op)));
    }

    #[test]
    fn truncate_len_always_shortens() {
        let spec = Arc::new(ChaosSpec::single(ChaosMode::Truncate, 1.0));
        let ctx = ChaosCtx::for_shard(spec, 1, 0);
        for op in 0..128 {
            let cut = ctx.truncate_len(op, 64);
            assert!(cut < 64, "truncation must lose at least one byte");
        }
    }

    #[test]
    fn global_install_filters_off_specs() {
        set_global(Some(ChaosSpec::off()));
        assert!(global().is_none(), "all-off spec must not install");
        set_global(Some(ChaosSpec::single(ChaosMode::Stall, 0.1)));
        assert!(global().is_some());
        set_global(None);
        assert!(global().is_none());
    }
}
