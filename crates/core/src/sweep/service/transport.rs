//! Deadline-aware frame transport for the sweep service.
//!
//! Everything that touches a socket lives here: the checksummed
//! length-prefixed frame layout (DESIGN.md §12), connect/read/write with
//! per-op timeouts derived from a per-attempt [`Deadline`], and the
//! coordinator-side [chaos](super::chaos) injection points sitting between
//! the codec and the socket. No failure mode — refused connect, stalled
//! peer, truncated frame, wedged write — can hold a caller past its
//! deadline.

use super::chaos::{ChaosCtx, ChaosMode};
use super::ServiceError;
use crate::sweep::codec;
use std::io::{self, Read, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Largest body a peer may send. A full-budget grid job is a few hundred
/// kilobytes and a RESULT frame with telemetry a few megabytes; a length
/// field beyond this is a corrupt or hostile peer, and is rejected *before*
/// any buffer is sized from it.
pub const MAX_FRAME: u64 = 64 * 1024 * 1024;

/// An absolute per-attempt time budget. `None` = unbounded (worker side).
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + budget),
        }
    }

    /// No deadline (the worker side, which bounds reads with a flat
    /// per-op timeout instead).
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// Time left, or a timeout error when the budget is spent. `cap`
    /// additionally bounds one op (e.g. a connect or HELLO read that should
    /// fail much faster than the whole shard budget).
    fn remaining(
        &self,
        cap: Option<Duration>,
        what: &str,
    ) -> Result<Option<Duration>, ServiceError> {
        let left = match self.at {
            Some(at) => {
                let left = at.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(ServiceError::Timeout(format!(
                        "{what}: shard deadline exceeded"
                    )));
                }
                Some(left)
            }
            None => None,
        };
        Ok(match (left, cap) {
            (Some(l), Some(c)) => Some(l.min(c)),
            (Some(l), None) => Some(l),
            (None, c) => c,
        })
    }
}

/// Whether an I/O error is a socket timeout (platforms disagree on the kind).
pub(super) fn io_is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

fn classify(e: io::Error, what: &str) -> ServiceError {
    if io_is_timeout(&e) {
        ServiceError::Timeout(format!("{what}: {e}"))
    } else {
        ServiceError::Io(e)
    }
}

/// Connect to `addr` within `connect_cap` and the attempt deadline.
pub(super) fn connect(
    addr: &str,
    connect_cap: Duration,
    deadline: &Deadline,
    chaos: Option<&ChaosCtx>,
) -> Result<TcpStream, ServiceError> {
    if let Some(c) = chaos {
        let op = c.next_op();
        if c.fires(ChaosMode::Drop, op) {
            return Err(ServiceError::Io(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "chaos: connection dropped before connect",
            )));
        }
    }
    let budget = deadline
        .remaining(Some(connect_cap), "connect")?
        .expect("connect always has a cap");
    let mut last: Option<io::Error> = None;
    let addrs = addr.to_socket_addrs().map_err(|e| {
        ServiceError::Protocol(format!("unresolvable worker address {addr:?}: {e}"))
    })?;
    for sa in addrs {
        match TcpStream::connect_timeout(&sa, budget) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(classify(
        last.unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no addresses resolved")),
        "connect",
    ))
}

/// One frame on the wire: `magic u64 | body_len u64 | body | fnv1a64(all)`.
pub(super) fn frame_bytes(body: &[u8]) -> Vec<u8> {
    let mut w = codec::Writer::with_capacity(24 + body.len());
    w.u64(super::FRAME_MAGIC);
    w.u64(body.len() as u64);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(body);
    let sum = codec::fnv1a64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Write one frame within the deadline, with chaos between codec and socket.
pub(super) fn write_frame(
    stream: &mut TcpStream,
    body: &[u8],
    deadline: &Deadline,
    chaos: Option<&ChaosCtx>,
) -> Result<(), ServiceError> {
    let mut bytes = frame_bytes(body);
    if let Some(c) = chaos {
        let op = c.next_op();
        if c.fires(ChaosMode::Drop, op) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Err(ServiceError::Io(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection dropped before write",
            )));
        }
        if c.fires(ChaosMode::Truncate, op) {
            let cut = c.truncate_len(op, bytes.len());
            stream
                .set_write_timeout(deadline.remaining(None, "write")?)
                .map_err(ServiceError::Io)?;
            let _ = stream.write_all(&bytes[..cut]);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Err(ServiceError::Io(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("chaos: frame truncated at {cut}/{} bytes", bytes.len()),
            )));
        }
        if c.fires(ChaosMode::BitFlip, op) {
            let (byte, bit) = c.flip_position(op, bytes.len());
            bytes[byte] ^= 1 << bit;
            // Written in full: the peer's checksum rejects it and the
            // conversation dies there — exactly the corruption path a flaky
            // NIC or middlebox produces.
        }
    }
    stream
        .set_write_timeout(deadline.remaining(None, "write")?)
        .map_err(ServiceError::Io)?;
    stream.write_all(&bytes).map_err(|e| classify(e, "write"))
}

/// Read one frame's body within the deadline. `Ok(None)` on clean EOF at a
/// frame boundary. `cap` bounds each socket read on top of the deadline
/// (e.g. a HELLO that should arrive promptly).
pub(super) fn read_frame(
    stream: &mut TcpStream,
    deadline: &Deadline,
    cap: Option<Duration>,
    chaos: Option<&ChaosCtx>,
) -> Result<Option<Vec<u8>>, ServiceError> {
    if let Some(c) = chaos {
        let op = c.next_op();
        if c.fires(ChaosMode::Drop, op) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Err(ServiceError::Io(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection dropped before read",
            )));
        }
        if c.fires(ChaosMode::Stall, op) {
            // A real stall would block until the socket timeout below fires;
            // sleep a short deterministic slice of it so chaos runs stay
            // fast, then surface the same timeout the socket would have.
            let budget = deadline.remaining(cap, "read")?.unwrap_or(Duration::MAX);
            std::thread::sleep(c.stall_duration().min(budget));
            return Err(ServiceError::Timeout("chaos: read stalled".into()));
        }
    }
    fn arm(
        stream: &TcpStream,
        deadline: &Deadline,
        cap: Option<Duration>,
        what: &str,
    ) -> Result<(), ServiceError> {
        stream
            .set_read_timeout(deadline.remaining(cap, what)?)
            .map_err(ServiceError::Io)
    }
    arm(stream, deadline, cap, "read header")?;
    let mut head = [0u8; 16];
    match stream.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(classify(e, "read header")),
    }
    let magic = u64::from_le_bytes(head[..8].try_into().unwrap());
    let len = u64::from_le_bytes(head[8..].try_into().unwrap());
    if magic != super::FRAME_MAGIC {
        return Err(ServiceError::Protocol(format!(
            "bad frame magic {magic:#x}"
        )));
    }
    // The length field comes straight off the wire: reject anything beyond
    // the frame cap *before* sizing a buffer from it.
    if len > MAX_FRAME {
        return Err(ServiceError::Protocol(format!(
            "oversized frame ({len} bytes > {MAX_FRAME} cap)"
        )));
    }
    let mut body = vec![0u8; len as usize];
    arm(stream, deadline, cap, "read body")?;
    stream
        .read_exact(&mut body)
        .map_err(|e| classify(e, "read body"))?;
    let mut sum = [0u8; 8];
    arm(stream, deadline, cap, "read checksum")?;
    stream
        .read_exact(&mut sum)
        .map_err(|e| classify(e, "read checksum"))?;
    let mut whole = head.to_vec();
    whole.extend_from_slice(&body);
    if codec::fnv1a64(&whole) != u64::from_le_bytes(sum) {
        return Err(ServiceError::Protocol("frame checksum mismatch".into()));
    }
    Ok(Some(body))
}
