//! Work-queue shard dispatcher: retry with seeded backoff, re-dispatch to
//! surviving workers, quarantine, and per-shard local fallback.
//!
//! The static one-shard-per-worker split of the original service made any
//! single worker failure abort the whole remote attempt. Here the grid is
//! cut into more shards than workers and every worker thread pulls from a
//! shared queue, so a slow or dead worker simply contributes less:
//!
//! * a failed attempt is **retried** with capped exponential backoff whose
//!   jitter is a pure function of `(seed0, shard, attempt)` — reruns back
//!   off identically;
//! * a retried shard lands on whichever worker is free, which on a multi
//!   worker pool usually means **re-dispatch** away from the failing one;
//! * a worker whose *consecutive* failures exceed the failure budget is
//!   **quarantined** — it stops pulling work and periodically re-probes its
//!   own address (connect + HELLO) until it recovers;
//! * a shard that exhausts its attempts is handed back for **per-shard
//!   local fallback** — the coordinator computes just those cells itself,
//!   never the whole run.
//!
//! Because every trial's seed is a pure function of the grid coordinates
//! shipped with the cell, all four recovery paths produce bit-identical
//! [`TrialStats`]; the queue only decides *where* the arithmetic happens.
//!
//! Obs counters on every recovery action: `sweep.service.retry`,
//! `sweep.service.redispatch`, `sweep.service.timeout`,
//! `sweep.service.quarantine`, `sweep.service.shard_fallback` — plus a
//! matching trace instant for each, so a chaos run's timeline shows the
//! recovery machinery at work.

use super::chaos::{self, ChaosCtx, ChaosSpec};
use super::{Conn, ServiceConfig, ServiceError, ShardTelemetry};
use crate::link::LinkConfig;
use crate::sweep::TrialStats;
use backfi_dsp::rng::SplitMix64;
use backfi_obs::trace;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Salt decorrelating backoff jitter from job seeds and chaos streams.
const BACKOFF_SALT: u64 = 0xBAC0_FF5E_ED15_7A7C;

/// Shards per worker the grid is over-split into: finer shards mean a dead
/// worker forfeits less work and re-dispatch has somewhere to go.
const OVERSPLIT: usize = 4;

/// Contiguous shard ranges over `n` cells for a `workers`-wide pool.
pub(super) fn shard_ranges(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let shard = n.div_ceil(workers.max(1) * OVERSPLIT).max(1);
    (0..n)
        .step_by(shard)
        .map(|lo| (lo, (lo + shard).min(n)))
        .collect()
}

/// Backoff before retry `attempt` (1-based) of `shard`: capped exponential
/// with jitter in `[0.5, 1.5)` drawn from a `SplitMix64` sub-stream keyed by
/// `(seed0, shard, attempt)` — deterministic per rerun, decorrelated across
/// shards so a burst of failures does not retry in lockstep.
pub(super) fn backoff_delay(cfg: &ServiceConfig, seed0: u64, shard: u64, attempt: u32) -> Duration {
    let exp_ms = (cfg.backoff_base.as_millis() as u64)
        .saturating_mul(1u64 << u64::from(attempt.saturating_sub(1)).min(16));
    let exp = Duration::from_millis(exp_ms).min(cfg.backoff_cap);
    let mut rng = SplitMix64::new(SplitMix64::derive(
        SplitMix64::derive(seed0 ^ BACKOFF_SALT, shard),
        attempt as u64,
    ));
    let jitter = 0.5 + rng.next_f64();
    exp.mul_f64(jitter).min(cfg.backoff_cap)
}

/// How one shard ended up.
pub(super) enum Outcome {
    /// A worker computed it; telemetry and the attempt's trace epoch ride
    /// along for deterministic merging.
    Remote {
        stats: Vec<TrialStats>,
        telemetry: ShardTelemetry,
        t0_ns: u64,
    },
    /// Every attempt failed; the coordinator computes these cells locally.
    Failed(String),
}

/// A shard waiting in the queue.
struct Task {
    shard: usize,
    attempt: u32,
    ready_at: Instant,
    last_worker: Option<usize>,
}

#[derive(Clone, Default)]
struct WorkerInfo {
    quarantined: bool,
    last_error: Option<String>,
    /// First/most recent protocol-class error — preferred in the pool
    /// failure summary, since "stale salt" explains more than the
    /// "connection refused" that follows it.
    protocol_error: Option<String>,
}

struct State {
    pending: Vec<Task>,
    results: Vec<Option<Outcome>>,
    /// Shards not yet resolved (pending, or in flight on some worker).
    outstanding: usize,
    live_workers: usize,
    remote_successes: usize,
    workers: Vec<WorkerInfo>,
}

pub(super) struct DispatchReport {
    pub outcomes: Vec<Outcome>,
    pub ranges: Vec<(usize, usize)>,
}

struct Shared<'a> {
    state: Mutex<State>,
    cv: Condvar,
    cfg: &'a ServiceConfig,
    ranges: Vec<(usize, usize)>,
    cells: &'a [LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &'a [u64],
    chaos: Option<Arc<ChaosSpec>>,
}

enum Pop {
    Task(Task),
    Wait(Duration),
    Done,
}

fn pop_ready(st: &mut State, now: Instant) -> Pop {
    if st.outstanding == 0 {
        return Pop::Done;
    }
    // Lowest ready shard first: merge order is fixed by shard index anyway,
    // but finishing early shards first keeps memory and trace lanes tidy.
    let mut best: Option<usize> = None;
    for (i, t) in st.pending.iter().enumerate() {
        if t.ready_at <= now && best.is_none_or(|b| t.shard < st.pending[b].shard) {
            best = Some(i);
        }
    }
    if let Some(i) = best {
        return Pop::Task(st.pending.swap_remove(i));
    }
    match st.pending.iter().map(|t| t.ready_at).min() {
        // Tasks exist but are backing off: wake when the earliest is ready.
        Some(at) => Pop::Wait(
            at.saturating_duration_since(now)
                .max(Duration::from_millis(1)),
        ),
        // Everything unresolved is in flight on other workers; poll in case
        // a failure re-queues it for us.
        None => Pop::Wait(Duration::from_millis(50)),
    }
}

/// Fail every queued (not in-flight) shard — called when the last live
/// worker quarantines itself and nobody is left to serve the queue.
fn drain_pending(st: &mut State, why: &str) {
    for t in st.pending.drain(..) {
        if st.results[t.shard].is_none() {
            st.results[t.shard] = Some(Outcome::Failed(why.to_string()));
            st.outstanding -= 1;
        }
    }
}

fn worker_loop(sh: &Shared<'_>, w: usize, addr: &str) {
    let mut conn: Option<Conn> = None;
    let mut consecutive = 0u32;
    let mut probe_seq = 0u64;
    loop {
        let quarantined = {
            let st = lock(&sh.state);
            if st.outstanding == 0 {
                return;
            }
            st.workers[w].quarantined
        };
        if quarantined {
            std::thread::sleep(sh.cfg.reprobe);
            if lock(&sh.state).outstanding == 0 {
                return;
            }
            probe_seq += 1;
            let chaos_ctx = sh
                .chaos
                .as_ref()
                .map(|s| ChaosCtx::for_probe(s.clone(), w as u64, probe_seq));
            match super::connect_and_hello(addr, sh.cfg, chaos_ctx.as_ref()) {
                Ok(c) => {
                    conn = Some(c);
                    consecutive = 0;
                    let mut st = lock(&sh.state);
                    st.workers[w].quarantined = false;
                    st.live_workers += 1;
                    sh.cv.notify_all();
                    trace::instant("sweep.service.requalify");
                    eprintln!("[backfi sweep] worker {addr} recovered; leaving quarantine");
                }
                Err(e) => {
                    lock(&sh.state).workers[w].record(&e, addr);
                }
            }
            continue;
        }
        let task = {
            let mut st = lock(&sh.state);
            loop {
                match pop_ready(&mut st, Instant::now()) {
                    Pop::Done => return,
                    Pop::Task(t) => break t,
                    Pop::Wait(d) => {
                        st = match sh.cv.wait_timeout(st, d) {
                            Ok((g, _)) => g,
                            Err(e) => e.into_inner().0,
                        };
                    }
                }
            }
        };
        if task.attempt > 0 && task.last_worker.is_some_and(|lw| lw != w) {
            backfi_obs::counter_add("sweep.service.redispatch", 1);
            trace::instant("sweep.service.redispatch");
        }
        let (lo, hi) = sh.ranges[task.shard];
        let chaos_ctx = sh
            .chaos
            .as_ref()
            .map(|s| ChaosCtx::for_shard(s.clone(), task.shard as u64, task.attempt as u64));
        let t0 = Instant::now();
        let t0_ns = trace::now_ns();
        let res = super::attempt_shard(
            &mut conn,
            addr,
            sh.cfg,
            &sh.cells[lo..hi],
            sh.trials,
            sh.seed0,
            &sh.bases[lo..hi],
            chaos_ctx.as_ref(),
        );
        let elapsed = t0.elapsed().as_nanos() as u64;
        backfi_obs::record_span_ns("sweep.service.shard", elapsed);
        if trace::enabled() {
            trace::complete_from("sweep.service.shard", t0, elapsed);
        }
        match res {
            Ok((stats, telemetry)) => {
                consecutive = 0;
                let mut st = lock(&sh.state);
                st.results[task.shard] = Some(Outcome::Remote {
                    stats,
                    telemetry,
                    t0_ns,
                });
                st.outstanding -= 1;
                st.remote_successes += 1;
                sh.cv.notify_all();
            }
            Err(e) => {
                // Any error poisons the connection: a late RESULT arriving on
                // a reused stream would desynchronize the frame protocol.
                conn = None;
                if e.is_timeout() {
                    backfi_obs::counter_add("sweep.service.timeout", 1);
                    trace::instant("sweep.service.timeout");
                }
                consecutive += 1;
                let msg = format!("{addr}: {e}");
                let quarantine_now = consecutive >= sh.cfg.failure_budget;
                let mut st = lock(&sh.state);
                st.workers[w].record(&e, addr);
                if task.attempt + 1 >= sh.cfg.max_attempts {
                    eprintln!(
                        "[backfi sweep] shard {} failed attempt {}/{} ({msg}); giving up",
                        task.shard,
                        task.attempt + 1,
                        sh.cfg.max_attempts
                    );
                    st.results[task.shard] = Some(Outcome::Failed(msg));
                    st.outstanding -= 1;
                } else {
                    let delay =
                        backoff_delay(sh.cfg, sh.seed0, task.shard as u64, task.attempt + 1);
                    backfi_obs::counter_add("sweep.service.retry", 1);
                    trace::instant("sweep.service.retry");
                    eprintln!(
                        "[backfi sweep] shard {} failed attempt {}/{} ({msg}); retrying in {:.0} ms",
                        task.shard,
                        task.attempt + 1,
                        sh.cfg.max_attempts,
                        delay.as_secs_f64() * 1e3
                    );
                    st.pending.push(Task {
                        shard: task.shard,
                        attempt: task.attempt + 1,
                        ready_at: Instant::now() + delay,
                        last_worker: Some(w),
                    });
                }
                if quarantine_now && !st.workers[w].quarantined {
                    st.workers[w].quarantined = true;
                    st.live_workers -= 1;
                    backfi_obs::counter_add("sweep.service.quarantine", 1);
                    trace::instant("sweep.service.quarantine");
                    eprintln!(
                        "[backfi sweep] quarantining worker {addr} after {consecutive} consecutive failures"
                    );
                    if st.live_workers == 0 {
                        drain_pending(&mut st, "all workers quarantined");
                    }
                }
                sh.cv.notify_all();
            }
        }
    }
}

impl WorkerInfo {
    fn record(&mut self, e: &ServiceError, addr: &str) {
        let msg = format!("{addr}: {e}");
        if matches!(e, ServiceError::Protocol(_)) {
            self.protocol_error = Some(msg.clone());
        }
        self.last_error = Some(msg);
    }
}

fn lock<'a>(m: &'a Mutex<State>) -> MutexGuard<'a, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run the whole dispatch: shard the grid, fan worker threads over the
/// queue, and return per-shard outcomes in shard order. Errors only when the
/// pool proved entirely unusable — no worker ever completed a shard and all
/// of them ended quarantined — in which case the caller's whole-run local
/// fallback (bit-identical by construction) takes over.
pub(super) fn run(
    addrs: &[String],
    cfg: &ServiceConfig,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Result<DispatchReport, ServiceError> {
    let ranges = shard_ranges(cells.len(), addrs.len());
    let now = Instant::now();
    let state = State {
        pending: (0..ranges.len())
            .map(|shard| Task {
                shard,
                attempt: 0,
                ready_at: now,
                last_worker: None,
            })
            .collect(),
        results: (0..ranges.len()).map(|_| None).collect(),
        outstanding: ranges.len(),
        live_workers: addrs.len(),
        remote_successes: 0,
        workers: vec![WorkerInfo::default(); addrs.len()],
    };
    let shared = Shared {
        state: Mutex::new(state),
        cv: Condvar::new(),
        cfg,
        ranges,
        cells,
        trials,
        seed0,
        bases,
        chaos: chaos::global(),
    };
    std::thread::scope(|scope| {
        for (w, addr) in addrs.iter().enumerate() {
            let sh = &shared;
            scope.spawn(move || worker_loop(sh, w, addr));
        }
    });
    let st = shared.state.into_inner().unwrap_or_else(|e| e.into_inner());
    if st.remote_successes == 0 && st.workers.iter().all(|wk| wk.quarantined) {
        let summary: Vec<String> = st
            .workers
            .iter()
            .map(|wk| {
                wk.protocol_error
                    .clone()
                    .or_else(|| wk.last_error.clone())
                    .unwrap_or_else(|| "no attempt recorded".into())
            })
            .collect();
        return Err(ServiceError::Protocol(format!(
            "no usable worker in pool: {}",
            summary.join("; ")
        )));
    }
    Ok(DispatchReport {
        outcomes: st
            .results
            .into_iter()
            .map(|r| r.expect("dispatch resolves every shard"))
            .collect(),
        ranges: shared.ranges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_contiguously() {
        for (n, workers) in [(1usize, 1usize), (4, 2), (7, 3), (100, 4), (3, 8)] {
            let ranges = shard_ranges(n, workers);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "shards must tile {n}/{workers}");
            }
            assert!(ranges.len() <= workers * OVERSPLIT + 1);
        }
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let cfg = ServiceConfig::default();
        let a = backoff_delay(&cfg, 7, 3, 1);
        let b = backoff_delay(&cfg, 7, 3, 1);
        assert_eq!(a, b, "same (seed0, shard, attempt) ⇒ same delay");
        assert_ne!(
            backoff_delay(&cfg, 7, 3, 1),
            backoff_delay(&cfg, 7, 4, 1),
            "shards must not retry in lockstep"
        );
        // Attempt 1 sits in [0.5, 1.5) × base.
        assert!(a >= cfg.backoff_base.mul_f64(0.5));
        assert!(a < cfg.backoff_base.mul_f64(1.5));
        // High attempts saturate at the cap.
        for attempt in [8u32, 20, 60] {
            assert!(backoff_delay(&cfg, 7, 0, attempt) <= cfg.backoff_cap);
        }
    }
}
