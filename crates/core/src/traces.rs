//! Loaded-AP airtime traces and their replay (Fig. 12a).
//!
//! The paper replays real traces [24, 47, 41] "captured for a wide variety of
//! scenarios for heavily loaded networks", filtered to AP transmissions, and
//! activates the tag only while the AP transmits. No such traces ship with
//! this reproduction, so we synthesize the *transmit-opportunity process*
//! with a two-state (busy/idle) Markov burst model calibrated to heavily
//! loaded hotspots: AP airtime shares of roughly 0.55–0.95 with bursty
//! packet trains — the only statistics the experiment actually consumes.

use backfi_dsp::rng::SplitMix64;
// rng trait methods are inherent on SplitMix64

/// One AP transmission in a trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// Start time, µs.
    pub start_us: f64,
    /// Packet airtime, µs.
    pub duration_us: f64,
}

/// A synthetic loaded-AP trace.
#[derive(Clone, Debug)]
pub struct ApTrace {
    /// The AP's transmissions, in time order.
    pub entries: Vec<TraceEntry>,
    /// Total trace duration, µs.
    pub total_us: f64,
}

/// Burst-model parameters.
#[derive(Clone, Copy, Debug)]
pub struct TraceModel {
    /// Mean packets per busy burst.
    pub mean_burst_packets: f64,
    /// Mean idle gap between bursts, µs.
    pub mean_idle_us: f64,
    /// Packet airtime range (µs): the AP sends 1–4 ms excitations.
    pub packet_us: (f64, f64),
    /// Inter-frame spacing inside a burst, µs (SIFS+ACK+DIFS ≈ 100 µs).
    pub intra_gap_us: f64,
}

impl Default for TraceModel {
    fn default() -> Self {
        TraceModel {
            mean_burst_packets: 8.0,
            mean_idle_us: 1200.0,
            packet_us: (1000.0, 4000.0),
            intra_gap_us: 100.0,
        }
    }
}

impl ApTrace {
    /// Generate a trace of `total_us` using the burst model. Different seeds
    /// give APs with different loads (idle gaps scale with a per-AP factor).
    pub fn generate(model: &TraceModel, total_us: f64, seed: u64) -> ApTrace {
        let mut rng = SplitMix64::new(seed);
        // Per-AP load factor: scales the idle time 0.25×–3×.
        let load_factor = 0.25 + rng.next_f64() * 2.75;
        let mut entries = Vec::new();
        let mut t = rng.next_f64() * model.mean_idle_us;
        while t < total_us {
            // Geometric burst length ≥ 1.
            let burst = 1
                + (-rng.next_f64().max(1e-12).ln() * (model.mean_burst_packets - 1.0)).round()
                    as usize;
            for _ in 0..burst {
                if t >= total_us {
                    break;
                }
                let dur =
                    model.packet_us.0 + rng.next_f64() * (model.packet_us.1 - model.packet_us.0);
                let dur = dur.min(total_us - t);
                entries.push(TraceEntry {
                    start_us: t,
                    duration_us: dur,
                });
                t += dur + model.intra_gap_us;
            }
            // Exponential idle gap.
            t += -rng.next_f64().max(1e-12).ln() * model.mean_idle_us * load_factor;
        }
        ApTrace { entries, total_us }
    }

    /// Fraction of time the AP is transmitting.
    pub fn airtime_share(&self) -> f64 {
        let busy: f64 = self.entries.iter().map(|e| e.duration_us).sum();
        busy / self.total_us
    }

    /// Replay the trace for a BackFi link whose steady-state goodput while
    /// the AP transmits is `active_goodput_bps`, accounting for the per-
    /// packet protocol overhead (16 µs detection + 16 µs silence + preamble).
    ///
    /// Returns the average backscatter throughput over the whole trace
    /// (bit/s) — the quantity whose CDF Fig. 12a plots.
    pub fn replay_throughput_bps(&self, active_goodput_bps: f64, overhead_us: f64) -> f64 {
        let bits: f64 = self
            .entries
            .iter()
            .map(|e| (e.duration_us - overhead_us).max(0.0) * 1e-6 * active_goodput_bps)
            .sum();
        bits / (self.total_us * 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_loaded() {
        // "The traces are captured … for heavily loaded networks."
        let model = TraceModel::default();
        let shares: Vec<f64> = (0..20)
            .map(|s| ApTrace::generate(&model, 2_000_000.0, s).airtime_share())
            .collect();
        let med = backfi_dsp::stats::median(&shares);
        assert!(med > 0.5 && med < 0.98, "median share {med}");
        // and they differ across APs
        let spread = shares.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - shares.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.1, "spread {spread}");
    }

    #[test]
    fn entries_do_not_overlap() {
        let t = ApTrace::generate(&TraceModel::default(), 500_000.0, 3);
        for w in t.entries.windows(2) {
            assert!(w[1].start_us >= w[0].start_us + w[0].duration_us - 1e-9);
        }
        for e in &t.entries {
            assert!(e.start_us + e.duration_us <= t.total_us + 1e-6);
        }
    }

    #[test]
    fn replay_scales_with_airtime() {
        let t = ApTrace::generate(&TraceModel::default(), 1_000_000.0, 5);
        let thr = t.replay_throughput_bps(5e6, 64.0);
        let share = t.airtime_share();
        // Throughput ≈ share × 5 Mbps, minus overhead.
        assert!(thr < share * 5e6 + 1.0);
        assert!(thr > share * 5e6 * 0.8, "thr {thr} share {share}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ApTrace::generate(&TraceModel::default(), 100_000.0, 9);
        let b = ApTrace::generate(&TraceModel::default(), 100_000.0, 9);
        assert_eq!(a.entries.len(), b.entries.len());
        assert!((a.airtime_share() - b.airtime_share()).abs() < 1e-12);
    }

    #[test]
    fn overhead_reduces_throughput() {
        let t = ApTrace::generate(&TraceModel::default(), 1_000_000.0, 7);
        let lean = t.replay_throughput_bps(1e6, 0.0);
        let heavy = t.replay_throughput_bps(1e6, 500.0);
        assert!(heavy < lean);
    }
}
