//! The prior WiFi-backscatter system [27, 25] — the headline comparator.
//!
//! §2: the Wi-Fi Backscatter design encodes tag data "in binary decisions of
//! whether or not to backscatter the received packet transmission which is
//! detected as changes in RSSI/CSI at a nearby helper WiFi device… Since
//! information is encoded in binary decisions that span an entire packet, the
//! information rate is only 1 bit per WiFi packet. The range is also low
//! (less than a meter) because the helper needs the IoT sensors to be close
//! to detect changes in RSSI/CSI" — the AP's strong transmission acts as
//! interference to the tiny RSSI perturbation.
//!
//! This module models that system at its published operating point so the
//! `headline_comparison` bench can regenerate the 10³×-throughput / 10×-range
//! claims.

/// Parameters of the prior Wi-Fi Backscatter system.
#[derive(Clone, Copy, Debug)]
pub struct PriorWifiBackscatter {
    /// WiFi packets per second usable as symbols (limited by the helper's
    /// packet rate; [27] reports a few hundred per second).
    pub packets_per_second: f64,
    /// Minimum detectable RSSI perturbation at the helper, dB.
    pub detection_threshold_db: f64,
    /// The helper's distance to the AP, m (the ambient signal strength that
    /// masks the tag's perturbation).
    pub helper_ap_distance_m: f64,
}

impl Default for PriorWifiBackscatter {
    fn default() -> Self {
        PriorWifiBackscatter {
            packets_per_second: 500.0,
            detection_threshold_db: 0.45,
            helper_ap_distance_m: 2.0,
        }
    }
}

impl PriorWifiBackscatter {
    /// One-way scattering leg of the prior system's tag, dB. Its tag is a
    /// plain antenna-switch (no PSK tree), so the leg is free-space-like with
    /// strong near-field coupling at sub-metre range — ~12 dB stronger than
    /// the BackFi modulator's leg.
    fn leg_db(d_m: f64) -> f64 {
        34.0 + 20.0 * d_m.max(0.05).log10()
    }

    /// RSSI perturbation (dB) the tag induces at a helper `d_tag_helper`
    /// metres away: the tag's scattered power against the direct AP signal.
    pub fn rssi_delta_db(
        &self,
        budget: &backfi_chan::budget::LinkBudget,
        d_tag_helper: f64,
    ) -> f64 {
        let direct_dbm = budget.wifi_rx_power_dbm(self.helper_ap_distance_m);
        // The tag sits near the helper; its scattering path is AP→tag→helper.
        let d_ap_tag = (self.helper_ap_distance_m - d_tag_helper).abs().max(0.1);
        let scattered_dbm =
            budget.tx_power_dbm - Self::leg_db(d_ap_tag) - Self::leg_db(d_tag_helper);
        let direct = backfi_chan::budget::dbm_to_lin(direct_dbm);
        let scattered = backfi_chan::budget::dbm_to_lin(scattered_dbm);
        10.0 * ((direct + scattered) / direct).log10()
    }

    /// Whether the helper can decode the tag at this distance.
    pub fn decodable(&self, budget: &backfi_chan::budget::LinkBudget, d_tag_helper: f64) -> bool {
        self.rssi_delta_db(budget, d_tag_helper) >= self.detection_threshold_db
    }

    /// Uplink throughput in bit/s: one bit per packet when decodable
    /// ([27] reports ≤1 kbit/s), zero beyond range.
    pub fn throughput_bps(
        &self,
        budget: &backfi_chan::budget::LinkBudget,
        d_tag_helper: f64,
    ) -> f64 {
        if self.decodable(budget, d_tag_helper) {
            self.packets_per_second
        } else {
            0.0
        }
    }

    /// Maximum range (m) at which the tag remains decodable.
    pub fn max_range_m(&self, budget: &backfi_chan::budget::LinkBudget) -> f64 {
        let mut d = 0.1;
        while d < 10.0 && self.decodable(budget, d) {
            d += 0.05;
        }
        d - 0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_chan::budget::LinkBudget;

    #[test]
    fn throughput_is_sub_kbps() {
        let sys = PriorWifiBackscatter::default();
        let b = LinkBudget::default();
        let t = sys.throughput_bps(&b, 0.3);
        assert!(t > 0.0 && t <= 1000.0, "prior system throughput {t}");
    }

    #[test]
    fn range_is_under_two_meters() {
        // §2: "the range is also low (less than a meter)". Our budget model
        // should put it around a metre.
        let sys = PriorWifiBackscatter::default();
        let b = LinkBudget::default();
        let r = sys.max_range_m(&b);
        assert!(r > 0.2 && r < 2.0, "prior system range {r} m");
    }

    #[test]
    fn rssi_delta_shrinks_with_distance() {
        let sys = PriorWifiBackscatter::default();
        let b = LinkBudget::default();
        let near = sys.rssi_delta_db(&b, 0.2);
        let far = sys.rssi_delta_db(&b, 1.5);
        assert!(near > far);
        assert!(far >= 0.0);
    }

    #[test]
    fn beyond_range_zero_throughput() {
        let sys = PriorWifiBackscatter::default();
        let b = LinkBudget::default();
        assert_eq!(sys.throughput_bps(&b, 5.0), 0.0);
    }
}
