//! CRC-failure retry with rate fallback — the graceful-degradation policy
//! on top of [`crate::link`].
//!
//! §6.1's rate adaptation picks one configuration per range; a real
//! deployment must also survive the packets that configuration *loses*
//! (fading dips, interference bursts, injected faults). This module retries
//! a failed exchange at the next-lower rung of the fallback ladder
//! ([`backfi_reader::rate_adapt::fallback_ladder`]) and scores the whole
//! episode by **goodput**: delivered bits over the airtime of *every*
//! attempt, failed ones included — retries are never free.

use crate::link::{LinkConfig, LinkReport, LinkSimulator};
use crate::sweep::{Executor, TrialStats};
use backfi_dsp::rng::SplitMix64;
use backfi_reader::rate_adapt::{fallback_ladder, next_lower};
use backfi_tag::config::TagConfig;

/// Retry policy for one exchange episode.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, the initial transmission included (≥ 1).
    pub max_attempts: usize,
    /// Idle backoff between attempts, as a fraction of one excitation
    /// packet's airtime (models the reader re-polling the tag).
    pub backoff_packets: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_packets: 0.5,
        }
    }
}

/// Outcome of one retry episode.
#[derive(Clone, Debug)]
pub struct EpisodeReport {
    /// The per-attempt link reports, in transmission order.
    pub attempts: Vec<LinkReport>,
    /// Tag configuration of each attempt (the fallback trace).
    pub configs: Vec<TagConfig>,
    /// Whether any attempt delivered the frame.
    pub success: bool,
    /// Delivered information bits (0 when every attempt failed).
    pub delivered_bits: f64,
    /// Total airtime spent, µs: every attempt's excitation packet plus the
    /// inter-attempt backoff.
    pub airtime_us: f64,
    /// Episode goodput: delivered bits over total spent airtime, bit/s.
    pub goodput_bps: f64,
}

/// Run one exchange with CRC-failure retries stepping down the fallback
/// ladder built from `candidates`.
///
/// Attempt `k` uses seed `SplitMix64::derive(seed, k)` — a fresh fading and
/// noise draw per attempt (the tag re-transmits into a new channel
/// realization), deterministic in `(seed, k)` regardless of scheduling.
/// Attempt 0 runs `base.tag`; each retry switches to the next configuration
/// strictly below the current one in throughput, staying put when the ladder
/// is exhausted.
pub fn run_with_fallback(
    base: &LinkConfig,
    candidates: &[TagConfig],
    policy: RetryPolicy,
    seed: u64,
) -> EpisodeReport {
    let ladder = fallback_ladder(candidates);
    let mut cfg = base.clone();
    let mut attempts = Vec::new();
    let mut configs = Vec::new();
    let mut airtime_us = 0.0;
    let mut delivered_bits = 0.0;
    let mut success = false;
    for k in 0..policy.max_attempts.max(1) {
        if k > 0 {
            // Fall back one rung (CRC failed on the previous attempt).
            if let Some(lower) = next_lower(&ladder, &cfg.tag) {
                backfi_obs::counter_add("link.rate_fallback", 1);
                cfg.tag = lower;
            }
            airtime_us += policy.backoff_packets.max(0.0) * packet_airtime_us(&cfg);
        }
        let sim = LinkSimulator::new(cfg.clone());
        let rep = sim.run(SplitMix64::derive(seed, k as u64));
        airtime_us += packet_airtime_us(&cfg);
        configs.push(cfg.tag);
        let ok = rep.success;
        let bits = (rep.sent.len() * 8) as f64;
        attempts.push(rep);
        if ok {
            success = true;
            delivered_bits = bits;
            break;
        }
    }
    let goodput_bps = if airtime_us > 0.0 {
        delivered_bits / (airtime_us * 1e-6)
    } else {
        0.0
    };
    EpisodeReport {
        attempts,
        configs,
        success,
        delivered_bits,
        airtime_us,
        goodput_bps,
    }
}

/// Aggregate retry-episode statistics over many seeds.
#[derive(Clone, Debug)]
pub struct EpisodeStats {
    /// Fraction of episodes that eventually delivered the frame.
    pub delivery_rate: f64,
    /// Fraction of episodes whose *first* attempt delivered.
    pub first_attempt_rate: f64,
    /// Mean attempts per episode.
    pub mean_attempts: f64,
    /// Mean episode goodput (failed airtime charged), bit/s.
    pub mean_goodput_bps: f64,
}

/// Run `episodes` retry episodes in parallel (panic-isolated, like every
/// sweep) and aggregate. Episode `e` uses seed `SplitMix64::derive(seed0, e)`.
pub fn episode_stats(
    exec: &Executor,
    base: &LinkConfig,
    candidates: &[TagConfig],
    policy: RetryPolicy,
    episodes: usize,
    seed0: u64,
) -> EpisodeStats {
    let seeds: Vec<u64> = (0..episodes.max(1) as u64)
        .map(|e| SplitMix64::derive(seed0, e))
        .collect();
    let reports: Vec<EpisodeReport> = exec
        .run_caught(&seeds, |_, &s| {
            run_with_fallback(base, candidates, policy, s)
        })
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|_| EpisodeReport {
                attempts: vec![LinkReport::job_failed()],
                configs: vec![base.tag],
                success: false,
                delivered_bits: 0.0,
                airtime_us: packet_airtime_us(base),
                goodput_bps: 0.0,
            })
        })
        .collect();
    let n = reports.len() as f64;
    EpisodeStats {
        delivery_rate: reports.iter().filter(|r| r.success).count() as f64 / n,
        first_attempt_rate: reports
            .iter()
            .filter(|r| r.attempts.first().map(|a| a.success).unwrap_or(false))
            .count() as f64
            / n,
        mean_attempts: reports.iter().map(|r| r.attempts.len() as f64).sum::<f64>() / n,
        mean_goodput_bps: reports.iter().map(|r| r.goodput_bps).sum::<f64>() / n,
    }
}

/// Per-trial stats of the *fallback-capable* link, shaped like
/// [`TrialStats`] so figure harnesses can swap it in: the episode counts as
/// decoded when any attempt delivered, and goodput charges retry airtime.
pub fn resilient_trials(
    exec: &Executor,
    base: &LinkConfig,
    candidates: &[TagConfig],
    policy: RetryPolicy,
    episodes: usize,
    seed0: u64,
) -> TrialStats {
    let stats = episode_stats(exec, base, candidates, policy, episodes, seed0);
    TrialStats {
        config: base.tag,
        success_rate: stats.delivery_rate,
        mean_snr_db: f64::NAN,
        mean_ber: 1.0 - stats.delivery_rate,
        mean_pre_fec_ber: f64::NAN,
        mean_goodput_bps: stats.mean_goodput_bps,
        panics: 0,
    }
}

/// Airtime of one excitation packet under `cfg`, µs.
fn packet_airtime_us(cfg: &LinkConfig) -> f64 {
    crate::excitation::Excitation::cached(&cfg.excitation).airtime_us()
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_coding::CodeRate;
    use backfi_tag::config::TagModulation;

    fn candidates() -> Vec<TagConfig> {
        vec![
            TagConfig {
                modulation: TagModulation::Psk16,
                code_rate: CodeRate::TwoThirds,
                symbol_rate_hz: 2.5e6,
                preamble_us: 32.0,
            },
            TagConfig::default(), // QPSK 1/2 @ 1 MSPS
            TagConfig {
                modulation: TagModulation::Bpsk,
                code_rate: CodeRate::Half,
                symbol_rate_hz: 500e3,
                preamble_us: 32.0,
            },
        ]
    }

    fn base(distance: f64, tag: TagConfig) -> LinkConfig {
        let mut cfg = LinkConfig::at_distance(distance);
        cfg.tag = tag;
        cfg.excitation.wifi_payload_bytes = 1500;
        cfg
    }

    #[test]
    fn first_attempt_success_never_retries() {
        let rep = run_with_fallback(
            &base(1.0, TagConfig::default()),
            &candidates(),
            RetryPolicy::default(),
            11,
        );
        assert!(rep.success);
        assert_eq!(rep.attempts.len(), 1);
        assert!(rep.goodput_bps > 0.0);
        assert!(rep.airtime_us > 0.0);
    }

    #[test]
    fn crc_failure_steps_down_the_ladder() {
        // 16PSK 2/3 @ 2.5 MSPS cannot decode at 4 m; the episode must fall
        // back to strictly lower-throughput rungs and charge the airtime.
        let aggressive = candidates()[0];
        let rep = run_with_fallback(
            &base(4.0, aggressive),
            &candidates(),
            RetryPolicy::default(),
            3,
        );
        assert!(rep.attempts.len() > 1, "aggressive config must fail at 4 m");
        for w in rep.configs.windows(2) {
            assert!(
                w[1].throughput_bps() < w[0].throughput_bps(),
                "fallback must descend: {:?}",
                rep.configs
            );
        }
        // Retry airtime is charged even when the episode fails.
        let single = run_with_fallback(
            &base(1.0, TagConfig::default()),
            &candidates(),
            RetryPolicy::default(),
            11,
        );
        assert!(rep.airtime_us > single.airtime_us * 1.9);
    }

    #[test]
    fn episode_stats_aggregate_over_seeds() {
        // ≥20 seeds (ROADMAP convention). At 1 m with fallback available the
        // delivery rate should beat the first-attempt rate of an aggressive
        // starting configuration — that is the whole point of the ladder.
        let aggressive = candidates()[0];
        let stats = episode_stats(
            &Executor::new(),
            &base(2.0, aggressive),
            &candidates(),
            RetryPolicy::default(),
            20,
            77,
        );
        assert!(stats.delivery_rate >= stats.first_attempt_rate);
        assert!(
            stats.delivery_rate > stats.first_attempt_rate + 0.2,
            "fallback should rescue episodes: first {} vs final {}",
            stats.first_attempt_rate,
            stats.delivery_rate
        );
        assert!(stats.mean_attempts >= 1.0);
        let trials = resilient_trials(
            &Executor::new(),
            &base(2.0, aggressive),
            &candidates(),
            RetryPolicy::default(),
            20,
            77,
        );
        assert!((trials.success_rate - stats.delivery_rate).abs() < 1e-12);
    }
}
