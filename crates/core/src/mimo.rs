//! Multi-antenna BackFi AP (§7, future work made real).
//!
//! "BackFi's range and throughput can be enhanced further with the use of
//! multiple antennas at the WiFi APs since multiple antennas at the AP
//! provides additional diversity combining gain. … We can then perform MRC
//! combining for the signals received across space, providing BackFi with
//! better SNR."
//!
//! Each receive antenna sees its own backward channel and its own
//! self-interference environment; cancellation and channel estimation run
//! per branch, and the per-symbol estimates are combined across space in the
//! reader's [`decode_mimo`](backfi_reader::reader::BackscatterReader::decode_mimo).

use crate::excitation::Excitation;
use crate::link::LinkConfig;
use backfi_chan::environment::EnvironmentProfile;
use backfi_chan::multipath::scaled;
use backfi_dsp::fir::filter;
use backfi_dsp::noise::{add_noise, cgauss_vec};
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::Complex;
use backfi_reader::reader::BackscatterReader;
use backfi_reader::Timeline;
use backfi_tag::framer::TagFrame;
use backfi_tag::Tag;

/// Outcome of one multi-antenna exchange.
#[derive(Clone, Debug)]
pub struct MimoReport {
    /// Whether the combined decode recovered the payload.
    pub success: bool,
    /// Combined decision-directed symbol SNR, dB.
    pub snr_db: f64,
    /// Number of antennas that produced a usable branch.
    pub antennas: usize,
}

/// A reader with `n_antennas` receive chains.
pub struct MimoLinkSimulator {
    cfg: LinkConfig,
    n_antennas: usize,
}

impl MimoLinkSimulator {
    /// Create a simulator; `n_antennas ≥ 1`.
    pub fn new(cfg: LinkConfig, n_antennas: usize) -> Self {
        assert!(n_antennas >= 1, "need at least one antenna");
        MimoLinkSimulator { cfg, n_antennas }
    }

    /// Run one exchange.
    pub fn run(&self, seed: u64) -> MimoReport {
        let cfg = &self.cfg;
        let exc = Excitation::build(cfg.excitation.clone());
        let a = cfg.budget.tx_power().sqrt();
        let xs: Vec<Complex> = exc.samples.iter().map(|&v| v * a).collect();

        let mut rng = SplitMix64::new(seed);

        // Shared forward channel (one TX antenna), split two-way gain.
        let leg_amp = cfg.budget.backscatter_amplitude(cfg.distance_m).sqrt();
        let h_f = scaled(
            &backfi_chan::multipath::MultipathProfile::indoor_los().realize(&mut rng),
            leg_amp,
        );

        // Tag reacts once to the forward signal.
        let airtime = backfi_dsp::samples_to_us(exc.samples.len() - exc.detect_end);
        let len = TagFrame::max_payload_bytes(&cfg.tag, airtime).clamp(1, 128);
        let sent: Vec<u8> = (0..len).map(|i| (seed as usize + i * 7) as u8).collect();
        let mut tag = Tag::new(cfg.excitation.tag_id, cfg.tag);
        tag.load_data(&sent);
        let incident = filter(&h_f, &xs);
        let gamma = tag.react(&incident);

        // Per-antenna: independent backward channel + environment + noise.
        let env_profile = EnvironmentProfile::default();
        let tx_noise_power =
            cfg.budget.tx_power() * backfi_chan::budget::dbm_to_lin(cfg.budget.tx_noise_dbc);
        let modded: Vec<Complex> = filter(&h_f, &xs)
            .iter()
            .zip(&gamma)
            .map(|(v, g)| *v * *g)
            .collect();

        let mut ys: Vec<Vec<Complex>> = Vec::with_capacity(self.n_antennas);
        let mut h_envs: Vec<Vec<Complex>> = Vec::with_capacity(self.n_antennas);
        for _ in 0..self.n_antennas {
            let h_env = env_profile.realize(&cfg.budget, &mut rng);
            let h_b = scaled(
                &backfi_chan::multipath::MultipathProfile::indoor_los().realize(&mut rng),
                leg_amp,
            );
            // SI path with uncancellable transmitter noise.
            let mut tx_sig: Vec<Complex> = xs.clone();
            let n_tx = cgauss_vec(&mut rng, tx_sig.len(), tx_noise_power);
            for (s, n) in tx_sig.iter_mut().zip(&n_tx) {
                *s += *n;
            }
            let mut y = filter(&h_env, &tx_sig);
            let back = filter(&h_b, &modded);
            for (p, q) in y.iter_mut().zip(&back) {
                *p += *q;
            }
            add_noise(&mut rng, &mut y, cfg.budget.noise_power());
            ys.push(y);
            h_envs.push(h_env);
        }

        let timeline = Timeline::nominal(exc.detect_end, exc.samples.len(), &cfg.tag);
        let reader = BackscatterReader::new(cfg.reader);
        let pairs: Vec<(&[Complex], &[Complex])> = ys
            .iter()
            .zip(&h_envs)
            .map(|(y, h)| (&y[..], &h[..]))
            .collect();
        match reader.decode_mimo(&xs, &pairs, &timeline, &cfg.tag) {
            Ok(res) => MimoReport {
                success: res.payload.map(|p| p == sent).unwrap_or(false),
                snr_db: res.metrics.symbol_snr_db,
                antennas: self.n_antennas,
            },
            Err(_) => MimoReport {
                success: false,
                snr_db: f64::NEG_INFINITY,
                antennas: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(distance: f64) -> LinkConfig {
        let mut c = LinkConfig::at_distance(distance);
        c.excitation.wifi_payload_bytes = 1200;
        c
    }

    #[test]
    fn single_antenna_matches_siso_behaviour() {
        let rep = MimoLinkSimulator::new(cfg(1.0), 1).run(5);
        assert!(rep.success, "1-antenna MIMO should decode at 1 m");
    }

    #[test]
    fn more_antennas_more_snr() {
        // Average over a few seeds: 4 antennas should clearly beat 1.
        let mut snr1 = 0.0;
        let mut snr4 = 0.0;
        let n = 3;
        for seed in 0..n {
            snr1 += MimoLinkSimulator::new(cfg(2.0), 1).run(seed).snr_db;
            snr4 += MimoLinkSimulator::new(cfg(2.0), 4).run(seed).snr_db;
        }
        let gain = (snr4 - snr1) / n as f64;
        assert!(
            gain > 2.0,
            "expected several dB of spatial MRC gain, got {gain:.1} dB"
        );
    }

    #[test]
    fn mimo_extends_range() {
        // A configuration that fails on one antenna at long range should
        // succeed with four.
        let mut c = cfg(5.0);
        c.tag.symbol_rate_hz = 2e6;
        c.tag.modulation = backfi_tag::TagModulation::Qpsk;
        let mut one = 0;
        let mut four = 0;
        for seed in 0..4 {
            if MimoLinkSimulator::new(c.clone(), 1).run(seed).success {
                one += 1;
            }
            if MimoLinkSimulator::new(c.clone(), 4).run(seed).success {
                four += 1;
            }
        }
        assert!(
            four > one,
            "4-antenna ({four}/4) should beat 1-antenna ({one}/4)"
        );
    }
}
