//! One data-generating function per figure/table of the paper's evaluation.
//!
//! Each function returns plain data; the `backfi-bench` binaries print it in
//! the paper's format and EXPERIMENTS.md records paper-vs-measured values.
//! A [`FigureBudget`] controls how many trials each point gets so the same
//! code serves quick CI checks and full reproduction runs.

use crate::baseline::PriorWifiBackscatter;
use crate::link::{LinkConfig, LinkSimulator};
use crate::network::{ClientPhyExperiment, ClientPhyResult, NetworkModel};
use crate::sweep::{
    grid_cells, max_throughput_bps, run_grid, run_grid_indexed, Executor, TrialStats,
};
use crate::traces::{ApTrace, TraceModel};
use backfi_chan::budget::LinkBudget;
use backfi_coding::CodeRate;
use backfi_dsp::stats::Ecdf;
use backfi_reader::rate_adapt;
use backfi_tag::config::{TagConfig, TagModulation};
use backfi_tag::energy::{fig7_table, repb, Fig7Row};
use backfi_wifi::Mcs;

/// How much work each figure point gets.
#[derive(Clone, Copy, Debug)]
pub struct FigureBudget {
    /// Trials per (distance, configuration) point.
    pub trials: usize,
    /// WiFi payload bytes per excitation (sets packet length, 1–4 ms in the
    /// paper).
    pub wifi_payload_bytes: usize,
    /// Packets per point in the client-PHY experiment.
    pub client_packets: usize,
    /// Random configurations in the network experiments.
    pub network_configs: usize,
}

impl FigureBudget {
    /// Fast settings for tests and smoke runs.
    pub fn quick() -> Self {
        FigureBudget {
            trials: 2,
            wifi_payload_bytes: 1200,
            client_packets: 3,
            network_configs: 5,
        }
    }

    /// Full reproduction settings (matches the paper's 20 trials/point).
    pub fn paper() -> Self {
        FigureBudget {
            trials: 10,
            wifi_payload_bytes: 3000,
            client_packets: 10,
            network_configs: 30,
        }
    }
}

/// NaN-safe "bigger is better" key: NaN sorts below `-∞` so it can never win
/// a `max_by` under `total_cmp` (identical ordering to `partial_cmp` on real
/// values — figure output bytes are unchanged).
fn nan_loses(v: f64) -> f64 {
    if v.is_nan() {
        f64::NEG_INFINITY
    } else {
        v
    }
}

fn base_link(distance: f64, budget: &FigureBudget) -> LinkConfig {
    let mut cfg = LinkConfig::at_distance(distance);
    cfg.excitation.wifi_payload_bytes = budget.wifi_payload_bytes;
    // Full reproduction runs use the paper's long (≈4 ms) excitations so the
    // low symbol rates get enough symbols per packet; a 3000-byte frame at
    // the 6 Mbit/s base rate lasts 4.02 ms.
    if budget.wifi_payload_bytes >= 2500 {
        cfg.excitation.mcs = Mcs::Mbps6;
    }
    cfg
}

// ---------------------------------------------------------------- Fig. 7 --

/// Fig. 7: the REPB/throughput table. Pure energy-model computation.
pub fn fig7() -> Vec<Fig7Row> {
    fig7_table()
}

// ---------------------------------------------------------------- Fig. 8 --

/// One point of the throughput-vs-range frontier.
#[derive(Clone, Debug)]
pub struct Fig8Point {
    /// Tag preamble duration, µs.
    pub preamble_us: f64,
    /// Reader ↔ tag distance, m.
    pub distance_m: f64,
    /// Maximum decodable throughput, bit/s (0 when nothing decodes).
    pub max_throughput_bps: f64,
    /// The winning configuration, if any.
    pub best: Option<TagConfig>,
}

/// Fig. 8: max throughput vs range for 32 µs and 96 µs preambles.
///
/// The whole (preamble × distance × config × trial) grid is one flat job
/// list: every trial of every point runs in parallel rather than one
/// configuration at a time.
pub fn fig8(distances: &[f64], preambles: &[f64], budget: &FigureBudget) -> Vec<Fig8Point> {
    let mut cells = Vec::new();
    let mut spans = Vec::new();
    for &preamble_us in preambles {
        let candidates = TagConfig::all_combinations(preamble_us);
        for &distance_m in distances {
            let base = base_link(distance_m, budget);
            spans.push((preamble_us, distance_m, cells.len(), candidates.len()));
            cells.extend(grid_cells(&base, &candidates));
        }
    }
    let stats = run_grid(&cells, budget.trials, 1000);
    spans
        .into_iter()
        .map(|(preamble_us, distance_m, start, len)| {
            let window = &stats[start..start + len];
            let best = window
                .iter()
                .filter(|s| s.decoded())
                .max_by(|a, b| {
                    nan_loses(a.config.throughput_bps())
                        .total_cmp(&nan_loses(b.config.throughput_bps()))
                })
                .map(|s| s.config);
            Fig8Point {
                preamble_us,
                distance_m,
                max_throughput_bps: max_throughput_bps(window),
                best,
            }
        })
        .collect()
}

/// Frontier-pruned [`fig8`]: same figure, fewer link trials.
///
/// Exploits the monotonicity of the throughput-vs-range frontier: a
/// configuration that failed to decode at a *nearer* distance only loses SNR
/// farther out, so any candidate whose throughput exceeds the previous
/// (nearer) distance's frontier value cannot join the frontier and is
/// skipped. Distances are processed nearest-first per preamble; the first
/// distance always evaluates the full candidate grid.
///
/// Every trial that *does* run reuses the job index it had in the full
/// [`fig8`] grid (via [`run_grid_indexed`]), so evaluated cells see exactly
/// the seeds the full sweep would have given them — on grids where the
/// monotonicity assumption holds, the reported frontier is bit-identical to
/// the full sweep's, just cheaper.
pub fn fig8_pruned(distances: &[f64], preambles: &[f64], budget: &FigureBudget) -> Vec<Fig8Point> {
    let trials = budget.trials.max(1) as u64;
    let mut points = Vec::new();
    // Cell offset of each (preamble, distance) block in the full fig8 grid.
    let mut block_start = 0u64;
    for &preamble_us in preambles {
        let candidates = TagConfig::all_combinations(preamble_us);
        let starts: Vec<u64> = (0..distances.len() as u64)
            .map(|i| block_start + i * candidates.len() as u64)
            .collect();
        block_start += (distances.len() * candidates.len()) as u64;

        // Nearest-first order; the caller's distance order is restored below
        // by pushing points in evaluation order and sorting at the end.
        let mut order: Vec<usize> = (0..distances.len()).collect();
        order.sort_by(|&a, &b| distances[a].total_cmp(&distances[b]));

        let mut frontier = f64::INFINITY;
        let mut per_distance: Vec<Option<Fig8Point>> = vec![None; distances.len()];
        for &di in &order {
            let distance_m = distances[di];
            let base = base_link(distance_m, budget);
            let mut cells = Vec::new();
            let mut bases = Vec::new();
            for (ci, cell) in grid_cells(&base, &candidates).into_iter().enumerate() {
                if cell.tag.throughput_bps() > frontier {
                    continue; // couldn't decode nearer in — can't out here
                }
                cells.push(cell);
                bases.push((starts[di] + ci as u64) * trials);
            }
            let stats = run_grid_indexed(&cells, budget.trials, 1000, &bases);
            let best = stats
                .iter()
                .filter(|s| s.decoded())
                .max_by(|a, b| {
                    nan_loses(a.config.throughput_bps())
                        .total_cmp(&nan_loses(b.config.throughput_bps()))
                })
                .map(|s| s.config);
            let max = max_throughput_bps(&stats);
            frontier = max;
            per_distance[di] = Some(Fig8Point {
                preamble_us,
                distance_m,
                max_throughput_bps: max,
                best,
            });
        }
        points.extend(per_distance.into_iter().flatten());
    }
    points
}

// ------------------------------------------------------------- Figs. 9/10 --

/// Fig. 9: the (throughput, min-REPB) frontier per range.
pub fn fig9(distances: &[f64], budget: &FigureBudget) -> Vec<(f64, Vec<(f64, f64)>)> {
    let candidates = TagConfig::all_combinations(32.0);
    let cells: Vec<LinkConfig> = distances
        .iter()
        .flat_map(|&d| grid_cells(&base_link(d, budget), &candidates))
        .collect();
    let stats = run_grid(&cells, budget.trials, 2000);
    distances
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let window = &stats[i * candidates.len()..(i + 1) * candidates.len()];
            let outcomes: Vec<_> = window.iter().map(TrialStats::outcome).collect();
            (d, rate_adapt::energy_frontier(&outcomes))
        })
        .collect()
}

/// Per-distance Fig. 10 row: `(distance, per-target winner)` where each entry
/// is the cheapest configuration reaching that target and its REPB.
pub type Fig10Row = (f64, Vec<Option<(TagConfig, f64)>>);

/// Fig. 10: min REPB achieving a fixed throughput, per range. `None` entries
/// mean the target is unreachable at that range.
pub fn fig10(distances: &[f64], targets_bps: &[f64], budget: &FigureBudget) -> Vec<Fig10Row> {
    let candidates = TagConfig::all_combinations(32.0);
    let cells: Vec<LinkConfig> = distances
        .iter()
        .flat_map(|&d| grid_cells(&base_link(d, budget), &candidates))
        .collect();
    let stats = run_grid(&cells, budget.trials, 3000);
    distances
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let window = &stats[i * candidates.len()..(i + 1) * candidates.len()];
            let outcomes: Vec<_> = window.iter().map(TrialStats::outcome).collect();
            let per_target = targets_bps
                .iter()
                .map(|&t| {
                    rate_adapt::min_repb_at_throughput(&outcomes, t).map(|cfg| (cfg, repb(&cfg)))
                })
                .collect();
            (d, per_target)
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 11 --

/// One Fig. 11a scatter point: expected (ground-truth-channel) vs measured
/// post-cancellation SNR.
#[derive(Clone, Copy, Debug)]
pub struct Fig11aPoint {
    /// Expected per-symbol SNR from the true channels ("VNA"), dB.
    pub expected_db: f64,
    /// Measured decision-directed symbol SNR, dB.
    pub measured_db: f64,
}

/// Fig. 11a: SNR scatter over `locations × runs`, plus the median
/// degradation (paper: ≈2.3 dB).
pub fn fig11a(locations: usize, runs: usize, budget: &FigureBudget) -> (Vec<Fig11aPoint>, f64) {
    // Random distances 0.5–3 m across "locations in the testbed".
    let cfgs: Vec<LinkConfig> = (0..locations)
        .map(|loc| {
            let d = 0.5 + 2.5 * (loc as f64 * 0.37).fract();
            let mut cfg = base_link(d, budget);
            cfg.tag.symbol_rate_hz = 1e6;
            cfg
        })
        .collect();
    let sims: Vec<LinkSimulator> = cfgs.iter().map(|c| LinkSimulator::new(c.clone())).collect();
    // One flat (location × run) job list; seeds stay `loc*1000 + run`.
    let jobs: Vec<(usize, u64)> = (0..locations * runs.max(1))
        .map(|j| {
            (
                j / runs.max(1),
                ((j / runs.max(1)) * 1000 + j % runs.max(1)) as u64,
            )
        })
        .collect();
    let reports = Executor::new().run(&jobs, |_, &(loc, seed)| sims[loc].run(seed));

    let mut pts = Vec::new();
    let mut degradations = Vec::new();
    for (&(loc, _), rep) in jobs.iter().zip(&reports) {
        if !rep.measured_snr_db.is_finite() {
            continue;
        }
        // Expected symbol SNR = per-sample SNR + MRC gain over the
        // effective samples per symbol.
        let cfg = &cfgs[loc];
        let guard = cfg.reader.fb_taps as f64;
        let n_eff = (cfg.tag.samples_per_symbol() as f64 - guard).max(1.0);
        let expected_db = rep.expected_snr_db + 10.0 * n_eff.log10();
        pts.push(Fig11aPoint {
            expected_db,
            measured_db: rep.measured_snr_db,
        });
        degradations.push(expected_db - rep.measured_snr_db);
    }
    (pts, backfi_dsp::stats::median(&degradations))
}

/// One Fig. 11b waterfall point.
#[derive(Clone, Copy, Debug)]
pub struct Fig11bPoint {
    /// Modulation evaluated (rate 1/2 coding throughout).
    pub modulation: TagModulation,
    /// Tag symbol rate, Hz.
    pub symbol_rate_hz: f64,
    /// Raw (pre-FEC) BER.
    pub ber: f64,
}

/// Fig. 11b: BER vs tag symbol rate for BPSK and QPSK at rate 1/2, fixed
/// placement — the MRC time-diversity waterfall.
pub fn fig11b(distance_m: f64, symbol_rates: &[f64], budget: &FigureBudget) -> Vec<Fig11bPoint> {
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for &m in &[TagModulation::Bpsk, TagModulation::Qpsk] {
        for &f in symbol_rates {
            let mut cfg = base_link(distance_m, budget);
            cfg.tag = TagConfig {
                modulation: m,
                code_rate: CodeRate::Half,
                symbol_rate_hz: f,
                preamble_us: 32.0,
            };
            cells.push(cfg);
            labels.push((m, f));
        }
    }
    let stats = run_grid(&cells, budget.trials, 4000);
    labels
        .into_iter()
        .zip(&stats)
        .map(|((modulation, symbol_rate_hz), s)| Fig11bPoint {
            modulation,
            symbol_rate_hz,
            ber: s.mean_pre_fec_ber,
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 12 --

/// Fig. 12a: the CDF of BackFi throughput under loaded-AP traces. The active
/// goodput is measured sample-level at `distance_m`, then each of
/// `n_traces` synthetic APs is replayed.
pub fn fig12a(distance_m: f64, n_traces: usize, budget: &FigureBudget) -> (Ecdf, f64) {
    // Measure the steady-state goodput at this range with the best config.
    let base = base_link(distance_m, budget);
    let candidates = TagConfig::all_combinations(32.0);
    let stats = run_grid(&grid_cells(&base, &candidates), budget.trials, 5000);
    let active = stats
        .iter()
        .filter(|s| s.decoded())
        .map(|s| s.config.throughput_bps())
        .fold(0.0, f64::max);

    let overhead_us = 16.0 + 16.0 + 32.0; // detection + silence + preamble
    let model = TraceModel::default();
    let throughputs: Vec<f64> = (0..n_traces as u64)
        .map(|seed| {
            ApTrace::generate(&model, 5_000_000.0, seed).replay_throughput_bps(active, overhead_us)
        })
        .collect();
    (Ecdf::new(throughputs), active)
}

/// One Fig. 12b point: average network throughput with/without the tag at a
/// given tag–AP distance.
#[derive(Clone, Copy, Debug)]
pub struct Fig12bPoint {
    /// Tag ↔ AP distance, m.
    pub tag_distance_m: f64,
    /// Average client throughput without the tag, Mbit/s.
    pub off_mbps: f64,
    /// Average client throughput with the tag, Mbit/s.
    pub on_mbps: f64,
}

/// Fig. 12b: network impact vs tag distance, over random configurations of
/// ten clients.
pub fn fig12b(tag_distances: &[f64], budget: &FigureBudget) -> Vec<Fig12bPoint> {
    let model = NetworkModel::default();
    let k = budget.network_configs.max(1);
    // Flat (distance × random-configuration) job list, seeds 7000.. as before.
    let jobs: Vec<(usize, u64)> = (0..tag_distances.len() * k)
        .map(|j| (j / k, 7000 + (j % k) as u64))
        .collect();
    let results = Executor::new().run(&jobs, |_, &(di, seed)| {
        let outcomes = model.run_config(10, 10.0, tag_distances[di], seed);
        NetworkModel::average_throughput(&outcomes)
    });
    tag_distances
        .iter()
        .enumerate()
        .map(|(di, &d)| {
            let window = &results[di * k..(di + 1) * k];
            let off: f64 = window.iter().map(|(o, _)| o).sum();
            let on: f64 = window.iter().map(|(_, n)| n).sum();
            Fig12bPoint {
                tag_distance_m: d,
                off_mbps: off / k as f64,
                on_mbps: on / k as f64,
            }
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 13 --

/// Fig. 13: per-bitrate client PHY success and SNR with the tag at 0.25 m.
pub fn fig13(rates: &[Mcs], budget: &FigureBudget) -> Vec<ClientPhyResult> {
    let exp = ClientPhyExperiment {
        budget: LinkBudget::default(),
        tag_distance_m: 0.25,
        tag_cfg: crate::network::fig13_tag_config(),
    };
    Executor::new().run(rates, |i, &m| {
        exp.run(m, budget.client_packets, 400, 9000 + i as u64)
    })
}

// -------------------------------------------------------------- headline --

/// The §6 headline comparison against prior WiFi backscatter.
#[derive(Clone, Debug)]
pub struct HeadlineComparison {
    /// BackFi throughput at 1 m, bit/s.
    pub backfi_1m_bps: f64,
    /// BackFi throughput at 5 m, bit/s.
    pub backfi_5m_bps: f64,
    /// Prior system's throughput at its best, bit/s.
    pub prior_bps: f64,
    /// Prior system's maximum range, m.
    pub prior_range_m: f64,
    /// Throughput ratio at 1 m.
    pub throughput_gain: f64,
}

/// Compute the headline comparison.
pub fn headline(budget: &FigureBudget) -> HeadlineComparison {
    let pts = fig8(&[1.0, 5.0], &[32.0], budget);
    let backfi_1m = pts
        .iter()
        .find(|p| p.distance_m == 1.0)
        .map(|p| p.max_throughput_bps)
        .unwrap_or(0.0);
    let backfi_5m = pts
        .iter()
        .find(|p| p.distance_m == 5.0)
        .map(|p| p.max_throughput_bps)
        .unwrap_or(0.0);
    let prior = PriorWifiBackscatter::default();
    let b = LinkBudget::default();
    let prior_bps = prior.throughput_bps(&b, 0.3);
    HeadlineComparison {
        backfi_1m_bps: backfi_1m,
        backfi_5m_bps: backfi_5m,
        prior_bps,
        prior_range_m: prior.max_range_m(&b),
        throughput_gain: backfi_1m / prior_bps.max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_has_36_entries() {
        let t = fig7();
        assert_eq!(t.len(), 6);
        assert!(t.iter().all(|r| r.columns.len() == 6));
    }

    #[test]
    fn fig8_pruned_matches_full_sweep() {
        // Small grid spanning decodable (0.5 m, 1 m) and marginal (5 m)
        // ranges: the pruned sweep must report the same frontier — same max
        // throughput bits, same winning configuration — as the full grid.
        let budget = FigureBudget::quick();
        let distances = [0.5, 1.0, 5.0];
        let preambles = [32.0];
        let full = fig8(&distances, &preambles, &budget);
        let pruned = fig8_pruned(&distances, &preambles, &budget);
        assert_eq!(full.len(), pruned.len());
        for (f, p) in full.iter().zip(&pruned) {
            assert_eq!(f.preamble_us, p.preamble_us);
            assert_eq!(f.distance_m, p.distance_m);
            assert_eq!(
                f.max_throughput_bps.to_bits(),
                p.max_throughput_bps.to_bits(),
                "frontier mismatch at {} m: full {} vs pruned {}",
                f.distance_m,
                f.max_throughput_bps,
                p.max_throughput_bps
            );
            assert_eq!(
                f.best, p.best,
                "winning config mismatch at {} m",
                f.distance_m
            );
        }
    }

    #[test]
    fn fig12b_far_tag_harmless() {
        let pts = fig12b(&[4.0], &FigureBudget::quick());
        assert_eq!(pts.len(), 1);
        let drop = (pts[0].off_mbps - pts[0].on_mbps) / pts[0].off_mbps;
        assert!(drop < 0.05, "drop {drop}");
    }

    #[test]
    fn fig12a_trace_cdf_is_sane() {
        let (cdf, active) = fig12a(2.0, 10, &FigureBudget::quick());
        assert!(active > 0.0, "active goodput {active}");
        assert_eq!(cdf.len(), 10);
        // Throughput under duty cycling is below the optimum.
        assert!(cdf.quantile(0.5) < active);
        assert!(cdf.quantile(0.5) > 0.3 * active);
    }

    #[test]
    fn headline_orders_of_magnitude() {
        let h = headline(&FigureBudget::quick());
        assert!(h.backfi_1m_bps >= 1e6, "BackFi @1m {}", h.backfi_1m_bps);
        assert!(h.prior_bps <= 1e3);
        assert!(h.throughput_gain > 500.0, "gain {}", h.throughput_gain);
        assert!(h.prior_range_m < 2.0);
    }
}
