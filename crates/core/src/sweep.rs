//! Trial and parameter sweeps — the §6.1 methodology.
//!
//! "For each distance, we cycle the IoT sensor through all combinations of
//! symbol switching rates and modulations, and then calculate throughput for
//! combinations that can be decoded at the reader."
//!
//! Sweeps run on [`Executor`], a work-stealing pool of `std::thread::scope`
//! workers that fans out over a **flat job list** — every (cell × trial) of a
//! grid at once, not just the trials of one configuration. Each job's seed is
//! a pure function of `(seed0, job index)` via [`SplitMix64::derive`], so
//! results are bit-identical for any worker count (on a single-core host the
//! jobs simply run sequentially).

pub mod cache;
pub mod codec;
pub mod service;

use crate::link::{LinkConfig, LinkReport, LinkSimulator};
use backfi_dsp::rng::SplitMix64;
use backfi_reader::rate_adapt::TrialOutcome;
use backfi_tag::config::TagConfig;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Aggregate outcome of several trials of one configuration.
#[derive(Clone, Debug)]
pub struct TrialStats {
    /// The evaluated tag configuration.
    pub config: TagConfig,
    /// Fraction of trials that decoded.
    pub success_rate: f64,
    /// Mean measured symbol SNR over trials that produced symbols, dB.
    pub mean_snr_db: f64,
    /// Mean post-FEC BER over all trials.
    pub mean_ber: f64,
    /// Mean raw (pre-FEC) symbol-decision BER over all trials.
    pub mean_pre_fec_ber: f64,
    /// Mean goodput over all trials, bit/s.
    pub mean_goodput_bps: f64,
    /// Number of trials whose job panicked and was caught by the executor
    /// (each counted as a worst-case failure in every mean above).
    pub panics: usize,
}

impl TrialStats {
    /// A configuration "can be decoded" when a clear majority of trials
    /// succeed (the paper repeats each point 20×; we use the same idea).
    pub fn decoded(&self) -> bool {
        self.success_rate >= 0.5
    }

    /// View as a rate-adaptation outcome.
    pub fn outcome(&self) -> TrialOutcome {
        TrialOutcome {
            config: self.config,
            decoded: self.decoded(),
            symbol_snr_db: self.mean_snr_db,
        }
    }

    /// Fold per-trial reports into the aggregate the figures consume.
    pub fn aggregate(config: TagConfig, reports: &[LinkReport]) -> TrialStats {
        let n = reports.len().max(1) as f64;
        let successes = reports.iter().filter(|r| r.success).count();
        let snrs: Vec<f64> = reports
            .iter()
            .filter(|r| r.measured_snr_db.is_finite())
            .map(|r| r.measured_snr_db)
            .collect();
        TrialStats {
            config,
            success_rate: successes as f64 / n,
            mean_snr_db: backfi_dsp::stats::mean(&snrs),
            mean_ber: reports.iter().map(|r| r.ber).sum::<f64>() / n,
            mean_pre_fec_ber: reports.iter().map(|r| r.pre_fec_ber).sum::<f64>() / n,
            mean_goodput_bps: reports.iter().map(|r| r.goodput_bps).sum::<f64>() / n,
            panics: reports.iter().filter(|r| r.panicked).count(),
        }
    }
}

// ------------------------------------------------------------- executor ---

/// Process-wide sweep counters, so harness binaries can report trials/sec
/// without threading a metrics handle through every figure function.
static JOBS_RUN: AtomicU64 = AtomicU64::new(0);
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide sweep counters: `(jobs, busy_seconds)`.
///
/// `jobs` counts link trials executed by [`Executor`] since process start;
/// `busy_seconds` is the summed wall time of the executor passes that ran
/// them (not per-worker CPU time). Diff two snapshots around a figure
/// computation to report its trials/sec.
pub fn metrics_snapshot() -> (u64, f64) {
    (
        JOBS_RUN.load(Ordering::Relaxed),
        BUSY_NANOS.load(Ordering::Relaxed) as f64 * 1e-9,
    )
}

/// Rate-limited sweep progress on stderr (never stdout — figure output must
/// stay byte-identical with observability on). Built only when the obs layer
/// is enabled, so the default path pays one branch per executor pass.
struct Progress {
    t0: Instant,
    total: usize,
    done: AtomicUsize,
    /// Elapsed ms at the last line printed (CAS-guarded so only one worker
    /// prints per interval).
    last_ms: AtomicU64,
}

impl Progress {
    const INTERVAL_MS: u64 = 500;

    fn new(total: usize) -> Option<Self> {
        (backfi_obs::enabled() && total > 1).then(|| Progress {
            t0: Instant::now(),
            total,
            done: AtomicUsize::new(0),
            last_ms: AtomicU64::new(0),
        })
    }

    fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = self.t0.elapsed();
        let ms = elapsed.as_millis() as u64;
        let last = self.last_ms.load(Ordering::Relaxed);
        let finished = done == self.total;
        if !finished && ms < last.saturating_add(Self::INTERVAL_MS) {
            return;
        }
        // One worker wins the interval; the final job always prints.
        if self
            .last_ms
            .compare_exchange(last, ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
            && !finished
        {
            return;
        }
        let secs = elapsed.as_secs_f64();
        let rate = done as f64 / secs.max(1e-9);
        let eta = (self.total - done) as f64 / rate.max(1e-9);
        eprintln!(
            "# sweep progress {done}/{} ({:.0}%) elapsed={secs:.1}s rate={rate:.1} jobs/s eta={eta:.1}s",
            self.total,
            100.0 * done as f64 / self.total as f64,
        );
    }
}

/// A work-stealing executor over flat job lists.
///
/// Workers are `std::thread::scope` threads pulling job indices from a shared
/// atomic counter, so long jobs (near distances that decode and run the full
/// Viterbi chain) don't stall a statically chunked partner. Results are
/// reassembled in job order, and job seeds come from the caller as pure
/// functions of the job index — output is therefore independent of both the
/// thread count and the steal schedule.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// An executor sized to the host (`available_parallelism`).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Executor { threads }
    }

    /// An executor with an explicit worker count (mainly for determinism
    /// tests; `0` is clamped to 1).
    pub fn with_threads(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The worker count this executor fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items`, in parallel, preserving order.
    ///
    /// `f` receives `(job_index, &item)`; derive any per-job randomness from
    /// the index (e.g. [`SplitMix64::derive`]) — never from thread identity.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let n = items.len();
        let t0 = Instant::now();
        let _t_pass = backfi_obs::span("sweep.pass");
        let threads = self.threads.min(n.max(1));
        let progress = Progress::new(n);
        let run_job = |i: usize, item: &I| {
            let _t = backfi_obs::span("sweep.job");
            let out = f(i, item);
            if let Some(p) = &progress {
                p.tick();
            }
            out
        };
        let out = if threads <= 1 {
            items
                .iter()
                .enumerate()
                .map(|(i, item)| run_job(i, item))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let shards: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                local.push((i, run_job(i, &items[i])));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            });
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for shard in shards {
                for (i, v) in shard {
                    slots[i] = Some(v);
                }
            }
            slots
                .into_iter()
                .map(|s| s.expect("every job index filled"))
                .collect()
        };
        JOBS_RUN.fetch_add(n as u64, Ordering::Relaxed);
        BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// [`Executor::run`] with per-job panic isolation: a job that panics
    /// yields `Err(JobPanic)` in its slot instead of tearing down the worker
    /// (and with it every job the worker had left to steal). The panic is
    /// counted (`sweep.job_panic`), attributed on stderr, and the pass
    /// completes every remaining job.
    pub fn run_caught<I, T, F>(&self, items: &[I], f: F) -> Vec<Result<T, JobPanic>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.run(items, |i, item| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item))).map_err(
                |payload| {
                    let message = panic_message(&*payload);
                    backfi_obs::counter_add("sweep.job_panic", 1);
                    eprintln!("# sweep job {i} panicked: {message}");
                    JobPanic { index: i, message }
                },
            )
        })
    }
}

/// A job that panicked during an [`Executor::run_caught`] pass.
#[derive(Clone, Debug)]
pub struct JobPanic {
    /// Index of the job in the submitted list.
    pub index: usize,
    /// The panic payload rendered as text.
    pub message: String,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ----------------------------------------------------------------- grids ---

/// Evaluate every cell of a sweep grid, `trials` exchanges each, fanning the
/// **whole** (cell × trial) job list across the executor at once.
///
/// Cell `c`, trial `t` runs with seed `SplitMix64::derive(seed0, c*trials+t)`
/// — a pure function of grid position, so the returned stats are identical
/// for any worker count. Returns one [`TrialStats`] per cell, in order.
pub fn run_grid(cells: &[LinkConfig], trials: usize, seed0: u64) -> Vec<TrialStats> {
    run_grid_on(&Executor::new(), cells, trials, seed0)
}

/// [`run_grid`] on a caller-supplied executor (determinism tests pin the
/// worker count through this).
pub fn run_grid_on(
    exec: &Executor,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
) -> Vec<TrialStats> {
    let bases: Vec<u64> = (0..cells.len() as u64)
        .map(|c| c * trials.max(1) as u64)
        .collect();
    run_grid_indexed_on(exec, cells, trials, seed0, &bases)
}

/// [`run_grid`] where each cell carries its own job-index base: cell `i`,
/// trial `t` runs with seed `SplitMix64::derive(seed0, bases[i] + t)`.
///
/// This is how pruned sweeps stay bit-aligned with their full counterparts:
/// evaluate any *subset* of a full grid's cells while passing the job-index
/// bases those cells had in the full grid, and every evaluated trial sees
/// exactly the seed the full sweep would have given it.
pub fn run_grid_indexed(
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Vec<TrialStats> {
    run_grid_indexed_on(&Executor::new(), cells, trials, seed0, bases)
}

/// [`run_grid_indexed`] on a caller-supplied executor.
///
/// This is the dispatch point for the sweep service: if a worker pool is
/// installed ([`service::set_global`]) the grid is sharded over TCP, and if
/// a result cache is installed ([`cache::set_global`]) cells it already
/// holds are not recomputed. Both layers are opt-in, and both are
/// bit-identical to the plain in-process path, so default runs are
/// untouched.
pub fn run_grid_indexed_on(
    exec: &Executor,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Vec<TrialStats> {
    assert_eq!(cells.len(), bases.len(), "one job-index base per cell");
    if let Some(pool) = service::global() {
        match service::run_sharded(&pool, cells, trials, seed0, bases) {
            Ok(stats) => return stats,
            Err(e) => {
                // Results are bit-identical either way, so a dead or stale
                // worker degrades to local compute instead of failing the run.
                backfi_obs::counter_add("sweep.service.fallback", 1);
                eprintln!("[backfi sweep] worker pool unavailable ({e}); computing locally");
            }
        }
    }
    run_grid_indexed_local(exec, cells, trials, seed0, bases)
}

/// Cache-aware but service-free grid runner: what a sharded worker answers
/// jobs with (a worker must never recursively re-shard), and what the
/// coordinator falls back to.
pub(crate) fn run_grid_indexed_local(
    exec: &Executor,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Vec<TrialStats> {
    match cache::global() {
        Some(c) => run_grid_indexed_cached(exec, &c, cells, trials, seed0, bases),
        None => run_grid_indexed_plain(exec, cells, trials, seed0, bases),
    }
}

/// [`run_grid_indexed_on`] against an explicit result cache: cells whose
/// key is already stored are returned from disk (bit-identical by the codec
/// round-trip guarantee); only the misses are computed — with the exact
/// job-index bases they had in the full grid, so their seeds are unchanged
/// — and then stored for the next run. Cells whose stats recorded a caught
/// panic are *not* stored: a transient failure must not be frozen into the
/// cache.
pub fn run_grid_indexed_cached(
    exec: &Executor,
    cache: &cache::ResultCache,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Vec<TrialStats> {
    assert_eq!(cells.len(), bases.len(), "one job-index base per cell");
    let keys: Vec<cache::CacheKey> = cells
        .iter()
        .zip(bases)
        .map(|(cfg, &b)| cache::cell_key(cfg, seed0, b, trials.max(1)))
        .collect();
    let mut out: Vec<Option<TrialStats>> = keys.iter().map(|&k| cache.get(k)).collect();
    let miss: Vec<usize> = (0..cells.len()).filter(|&i| out[i].is_none()).collect();
    if !miss.is_empty() {
        let miss_cells: Vec<LinkConfig> = miss.iter().map(|&i| cells[i].clone()).collect();
        let miss_bases: Vec<u64> = miss.iter().map(|&i| bases[i]).collect();
        let computed = run_grid_indexed_plain(exec, &miss_cells, trials, seed0, &miss_bases);
        for (&i, s) in miss.iter().zip(computed) {
            if s.panics == 0 {
                cache.put(keys[i], &s);
            }
            out[i] = Some(s);
        }
    }
    out.into_iter()
        .map(|s| s.expect("every cell is either a hit or was just computed"))
        .collect()
}

/// The original in-process path: every (cell × trial) job computed here.
fn run_grid_indexed_plain(
    exec: &Executor,
    cells: &[LinkConfig],
    trials: usize,
    seed0: u64,
    bases: &[u64],
) -> Vec<TrialStats> {
    assert_eq!(cells.len(), bases.len(), "one job-index base per cell");
    // Build one simulator per cell up front: excitation synthesis is cached
    // and shared, and `run` takes `&self`, so workers share them freely.
    let sims: Vec<LinkSimulator> = cells
        .iter()
        .map(|c| LinkSimulator::new(c.clone()))
        .collect();
    let trials = trials.max(1);
    let jobs: Vec<(usize, u64)> = (0..cells.len() * trials)
        .map(|j| {
            let cell = j / trials;
            let t = (j % trials) as u64;
            (cell, SplitMix64::derive(seed0, bases[cell] + t))
        })
        .collect();
    // Panic-isolated: a single poisonous (cell, seed) records a failed trial
    // instead of killing the whole sweep.
    let reports: Vec<LinkReport> = exec
        .run_caught(&jobs, |_, &(cell, seed)| sims[cell].run(seed))
        .into_iter()
        .map(|r| r.unwrap_or_else(|_| LinkReport::job_failed()))
        .collect();
    reports
        .chunks(trials)
        .zip(cells)
        .map(|(chunk, cell)| TrialStats::aggregate(cell.tag, chunk))
        .collect()
}

/// Expand `(base distance-config) × candidates` into grid cells: one
/// [`LinkConfig`] per candidate tag configuration.
pub fn grid_cells(base: &LinkConfig, candidates: &[TagConfig]) -> Vec<LinkConfig> {
    candidates
        .iter()
        .map(|&tag| {
            let mut cfg = base.clone();
            cfg.tag = tag;
            cfg
        })
        .collect()
}

// ---------------------------------------------------------------- trials ---

/// Run `trials` exchanges of one configuration (seeds `seed0..seed0+trials`),
/// in parallel across available cores.
pub fn run_trials(cfg: &LinkConfig, trials: usize, seed0: u64) -> TrialStats {
    run_trials_on(&Executor::new(), cfg, trials, seed0)
}

/// [`run_trials`] on a caller-supplied executor.
pub fn run_trials_on(exec: &Executor, cfg: &LinkConfig, trials: usize, seed0: u64) -> TrialStats {
    let sim = LinkSimulator::new(cfg.clone());
    let seeds: Vec<u64> = (0..trials as u64).map(|i| seed0 + i).collect();
    let reports: Vec<LinkReport> = exec
        .run_caught(&seeds, |_, &s| sim.run(s))
        .into_iter()
        .map(|r| r.unwrap_or_else(|_| LinkReport::job_failed()))
        .collect();
    TrialStats::aggregate(cfg.tag, &reports)
}

/// Cycle through candidate tag configurations at one distance, most
/// aggressive first, and report per-config stats. With `early_exit`, stops
/// evaluating slower configurations once one decodes *and* every remaining
/// candidate has lower throughput (the Fig. 8 frontier only needs the max);
/// without it, the whole candidate grid is evaluated in one parallel pass.
pub fn cycle_configs(
    base: &LinkConfig,
    candidates: &[TagConfig],
    trials: usize,
    seed0: u64,
    early_exit: bool,
) -> Vec<TrialStats> {
    // Sort by throughput descending; NaN throughput sorts last instead of
    // panicking the comparator (same order as `partial_cmp` on real values).
    let mut sorted = candidates.to_vec();
    let desc_key = |c: &TagConfig| {
        let t = c.throughput_bps();
        if t.is_nan() {
            f64::NEG_INFINITY
        } else {
            t
        }
    };
    sorted.sort_by(|a, b| desc_key(b).total_cmp(&desc_key(a)));

    if !early_exit {
        return run_grid(&grid_cells(base, &sorted), trials, seed0);
    }

    let mut out = Vec::new();
    let mut best_decoded: Option<f64> = None;
    for tag in sorted {
        if let Some(t) = best_decoded {
            if tag.throughput_bps() < t {
                break;
            }
        }
        let mut cfg = base.clone();
        cfg.tag = tag;
        let stats = run_trials(&cfg, trials, seed0);
        if stats.decoded() && best_decoded.is_none() {
            best_decoded = Some(tag.throughput_bps());
        }
        out.push(stats);
    }
    out
}

/// Max decodable throughput at a distance (bit/s), or 0 when nothing decodes.
pub fn max_throughput_bps(stats: &[TrialStats]) -> f64 {
    stats
        .iter()
        .filter(|s| s.decoded())
        .map(|s| s.config.throughput_bps())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_coding::CodeRate;
    use backfi_tag::config::TagModulation;

    fn base(distance: f64) -> LinkConfig {
        let mut cfg = LinkConfig::at_distance(distance);
        cfg.excitation.wifi_payload_bytes = 1200;
        cfg
    }

    #[test]
    fn trials_aggregate() {
        // 20 trials so the success-rate assertion reflects the configuration,
        // not a couple of lucky seeds (ROADMAP statistical-test convention).
        let stats = run_trials(&base(1.0), 20, 100);
        assert!(stats.success_rate > 0.6, "{}", stats.success_rate);
        assert!(stats.decoded());
        assert!(stats.mean_goodput_bps > 0.0);
        assert!(stats.outcome().decoded);
    }

    #[test]
    fn cycle_early_exit_stops_after_first_decodable_tier() {
        let candidates = vec![
            TagConfig {
                modulation: TagModulation::Qpsk,
                code_rate: CodeRate::Half,
                symbol_rate_hz: 1e6,
                preamble_us: 32.0,
            },
            TagConfig {
                modulation: TagModulation::Bpsk,
                code_rate: CodeRate::Half,
                symbol_rate_hz: 100e3,
                preamble_us: 32.0,
            },
        ];
        let stats = cycle_configs(&base(0.5), &candidates, 2, 7, true);
        // The QPSK config decodes at 0.5 m, so the slower BPSK one is skipped.
        assert_eq!(stats.len(), 1);
        assert!(stats[0].decoded());
        assert!(max_throughput_bps(&stats) > 9e5);
    }

    #[test]
    fn run_trials_identical_across_worker_counts() {
        let cfg = base(1.0);
        let one = run_trials_on(&Executor::with_threads(1), &cfg, 4, 50);
        let many = run_trials_on(&Executor::with_threads(8), &cfg, 4, 50);
        assert_eq!(one.success_rate.to_bits(), many.success_rate.to_bits());
        assert_eq!(one.mean_snr_db.to_bits(), many.mean_snr_db.to_bits());
        assert_eq!(one.mean_ber.to_bits(), many.mean_ber.to_bits());
        assert_eq!(
            one.mean_pre_fec_ber.to_bits(),
            many.mean_pre_fec_ber.to_bits()
        );
        assert_eq!(
            one.mean_goodput_bps.to_bits(),
            many.mean_goodput_bps.to_bits()
        );
    }

    #[test]
    fn grid_identical_across_worker_counts() {
        let candidates = vec![
            TagConfig::default(),
            TagConfig {
                modulation: TagModulation::Bpsk,
                code_rate: CodeRate::Half,
                symbol_rate_hz: 500e3,
                preamble_us: 32.0,
            },
        ];
        let cells: Vec<LinkConfig> = [0.5, 2.0]
            .iter()
            .flat_map(|&d| grid_cells(&base(d), &candidates))
            .collect();
        let a = run_grid_on(&Executor::with_threads(1), &cells, 3, 99);
        let b = run_grid_on(&Executor::with_threads(7), &cells, 3, 99);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.success_rate.to_bits(), y.success_rate.to_bits());
            assert_eq!(x.mean_snr_db.to_bits(), y.mean_snr_db.to_bits());
            assert_eq!(x.mean_goodput_bps.to_bits(), y.mean_goodput_bps.to_bits());
        }
    }

    #[test]
    fn executor_preserves_job_order() {
        let items: Vec<usize> = (0..101).collect();
        let out = Executor::with_threads(5).run(&items, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out, (0..101).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn executor_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(Executor::new().run(&empty, |_, &v| v).is_empty());
        assert_eq!(Executor::new().run(&[7u32], |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn run_caught_isolates_panicking_jobs() {
        backfi_obs::enable();
        // Suppress the default panic hook's backtrace spam for the
        // deliberate panics below; restore it afterwards.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let before = backfi_obs::counter_value("sweep.job_panic");
        let items: Vec<u32> = (0..50).collect();
        let out = Executor::with_threads(4).run_caught(&items, |_, &v| {
            assert!(!v.is_multiple_of(13), "poison {v}");
            v * 2
        });
        std::panic::set_hook(hook);
        assert_eq!(out.len(), 50);
        for (i, r) in out.iter().enumerate() {
            if i % 13 == 0 {
                let e = r.as_ref().expect_err("multiples of 13 must panic");
                assert_eq!(e.index, i);
                assert!(e.message.contains("poison"), "{}", e.message);
            } else {
                assert_eq!(*r.as_ref().unwrap(), 2 * i as u32);
            }
        }
        let after = backfi_obs::counter_value("sweep.job_panic");
        assert!(after >= before + 4, "4 poisoned jobs: {before} -> {after}");
    }

    #[test]
    fn run_caught_is_deterministic_across_worker_counts() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u32> = (0..40).collect();
        let job = |_: usize, v: &u32| {
            assert!(*v != 17, "boom");
            *v + 1
        };
        let a = Executor::with_threads(1).run_caught(&items, job);
        let b = Executor::with_threads(6).run_caught(&items, job);
        std::panic::set_hook(hook);
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Ok(p), Ok(q)) => assert_eq!(p, q),
                (Err(p), Err(q)) => assert_eq!(p.index, q.index),
                other => panic!("worker count changed outcomes: {other:?}"),
            }
        }
    }

    #[test]
    fn nan_throughput_candidate_does_not_panic_cycle() {
        let candidates = vec![
            TagConfig::default(),
            TagConfig {
                modulation: TagModulation::Bpsk,
                code_rate: CodeRate::Half,
                symbol_rate_hz: f64::NAN,
                preamble_us: 32.0,
            },
        ];
        // NaN sorts last; with early exit the decodable QPSK tier wins and
        // the NaN config is never simulated.
        let stats = cycle_configs(&base(0.5), &candidates, 2, 7, true);
        assert!(!stats.is_empty());
        assert!(stats[0].config.symbol_rate_hz.is_finite());
    }

    #[test]
    fn metrics_count_jobs() {
        let (jobs0, _) = metrics_snapshot();
        let items: Vec<u64> = (0..10).collect();
        Executor::with_threads(2).run(&items, |_, &v| v);
        let (jobs1, _) = metrics_snapshot();
        assert!(jobs1 >= jobs0 + 10);
    }
}
