//! Trial and parameter sweeps — the §6.1 methodology.
//!
//! "For each distance, we cycle the IoT sensor through all combinations of
//! symbol switching rates and modulations, and then calculate throughput for
//! combinations that can be decoded at the reader." Sweeps parallelize over
//! trials with crossbeam scoped threads (on a single-core host they simply
//! run sequentially).

use crate::link::{LinkConfig, LinkSimulator};
use backfi_reader::rate_adapt::TrialOutcome;
use backfi_tag::config::TagConfig;

/// Aggregate outcome of several trials of one configuration.
#[derive(Clone, Debug)]
pub struct TrialStats {
    /// The evaluated tag configuration.
    pub config: TagConfig,
    /// Fraction of trials that decoded.
    pub success_rate: f64,
    /// Mean measured symbol SNR over trials that produced symbols, dB.
    pub mean_snr_db: f64,
    /// Mean post-FEC BER over all trials.
    pub mean_ber: f64,
    /// Mean raw (pre-FEC) symbol-decision BER over all trials.
    pub mean_pre_fec_ber: f64,
    /// Mean goodput over all trials, bit/s.
    pub mean_goodput_bps: f64,
}

impl TrialStats {
    /// A configuration "can be decoded" when a clear majority of trials
    /// succeed (the paper repeats each point 20×; we use the same idea).
    pub fn decoded(&self) -> bool {
        self.success_rate >= 0.5
    }

    /// View as a rate-adaptation outcome.
    pub fn outcome(&self) -> TrialOutcome {
        TrialOutcome {
            config: self.config,
            decoded: self.decoded(),
            symbol_snr_db: self.mean_snr_db,
        }
    }
}

/// Run `trials` exchanges of one configuration (seeds `seed0..seed0+trials`),
/// in parallel across available cores.
pub fn run_trials(cfg: &LinkConfig, trials: usize, seed0: u64) -> TrialStats {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(trials.max(1));
    let seeds: Vec<u64> = (0..trials as u64).map(|i| seed0 + i).collect();
    let mut reports = Vec::with_capacity(trials);
    if threads <= 1 {
        let sim = LinkSimulator::new(cfg.clone());
        for &s in &seeds {
            reports.push(sim.run(s));
        }
    } else {
        let chunks: Vec<&[u64]> = seeds.chunks(seeds.len().div_ceil(threads)).collect();
        let results: Vec<Vec<crate::link::LinkReport>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let cfg = cfg.clone();
                    scope.spawn(move |_| {
                        let sim = LinkSimulator::new(cfg);
                        chunk.iter().map(|&s| sim.run(s)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("sweep threads panicked");
        for mut r in results {
            reports.append(&mut r);
        }
    }

    let n = reports.len().max(1) as f64;
    let successes = reports.iter().filter(|r| r.success).count();
    let snrs: Vec<f64> = reports
        .iter()
        .filter(|r| r.measured_snr_db.is_finite())
        .map(|r| r.measured_snr_db)
        .collect();
    TrialStats {
        config: cfg.tag,
        success_rate: successes as f64 / n,
        mean_snr_db: backfi_dsp::stats::mean(&snrs),
        mean_ber: reports.iter().map(|r| r.ber).sum::<f64>() / n,
        mean_pre_fec_ber: reports.iter().map(|r| r.pre_fec_ber).sum::<f64>() / n,
        mean_goodput_bps: reports.iter().map(|r| r.goodput_bps).sum::<f64>() / n,
    }
}

/// Cycle through candidate tag configurations at one distance, most
/// aggressive first, and report per-config stats. With `early_exit`, stops
/// evaluating slower configurations once one decodes *and* every remaining
/// candidate has lower throughput (the Fig. 8 frontier only needs the max).
pub fn cycle_configs(
    base: &LinkConfig,
    candidates: &[TagConfig],
    trials: usize,
    seed0: u64,
    early_exit: bool,
) -> Vec<TrialStats> {
    // Sort by throughput descending.
    let mut sorted = candidates.to_vec();
    sorted.sort_by(|a, b| b.throughput_bps().partial_cmp(&a.throughput_bps()).unwrap());

    let mut out = Vec::new();
    let mut best_decoded: Option<f64> = None;
    for tag in sorted {
        if early_exit {
            if let Some(t) = best_decoded {
                if tag.throughput_bps() < t {
                    break;
                }
            }
        }
        let mut cfg = base.clone();
        cfg.tag = tag;
        let stats = run_trials(&cfg, trials, seed0);
        if stats.decoded() && best_decoded.is_none() {
            best_decoded = Some(tag.throughput_bps());
        }
        out.push(stats);
    }
    out
}

/// Max decodable throughput at a distance (bit/s), or 0 when nothing decodes.
pub fn max_throughput_bps(stats: &[TrialStats]) -> f64 {
    stats
        .iter()
        .filter(|s| s.decoded())
        .map(|s| s.config.throughput_bps())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_coding::CodeRate;
    use backfi_tag::config::TagModulation;

    fn base(distance: f64) -> LinkConfig {
        let mut cfg = LinkConfig::at_distance(distance);
        cfg.excitation.wifi_payload_bytes = 1200;
        cfg
    }

    #[test]
    fn trials_aggregate() {
        let stats = run_trials(&base(1.0), 3, 100);
        assert!(stats.success_rate > 0.6, "{}", stats.success_rate);
        assert!(stats.decoded());
        assert!(stats.mean_goodput_bps > 0.0);
        assert!(stats.outcome().decoded);
    }

    #[test]
    fn cycle_early_exit_stops_after_first_decodable_tier() {
        let candidates = vec![
            TagConfig {
                modulation: TagModulation::Qpsk,
                code_rate: CodeRate::Half,
                symbol_rate_hz: 1e6,
                preamble_us: 32.0,
            },
            TagConfig {
                modulation: TagModulation::Bpsk,
                code_rate: CodeRate::Half,
                symbol_rate_hz: 100e3,
                preamble_us: 32.0,
            },
        ];
        let stats = cycle_configs(&base(0.5), &candidates, 2, 7, true);
        // The QPSK config decodes at 0.5 m, so the slower BPSK one is skipped.
        assert_eq!(stats.len(), 1);
        assert!(stats[0].decoded());
        assert!(max_throughput_bps(&stats) > 9e5);
    }
}
