//! Multiple tags on one AP (§7: "designing protocols to manage a network of
//! BackFi tags connected to an AP" — sketched here as the natural
//! preamble-addressed round-robin the paper's §4.1 addressing enables).
//!
//! Each tag has a unique 16-bit wake-up preamble; the AP polls them one per
//! excitation. The module also demonstrates *why* scheduling is needed: two
//! tags answering the same excitation collide and neither decodes.

use crate::excitation::ExcitationConfig;
use crate::link::LinkConfig;
use backfi_chan::medium::{BackscatterMedium, MediumConfig};
use backfi_dsp::fir::filter;
use backfi_dsp::Complex;
use backfi_reader::reader::BackscatterReader;
use backfi_reader::Timeline;
use backfi_tag::framer::TagFrame;
use backfi_tag::Tag;

/// One deployed tag in the network.
#[derive(Clone, Debug)]
pub struct TagNode {
    /// Tag identifier (drives its wake-up preamble).
    pub id: u16,
    /// Distance from the AP, m.
    pub distance_m: f64,
    /// Pending payload to upload.
    pub payload: Vec<u8>,
}

/// Result of polling one tag.
#[derive(Clone, Debug)]
pub struct PollOutcome {
    /// The polled tag.
    pub tag_id: u16,
    /// Whether its frame decoded.
    pub success: bool,
}

/// Poll each node in round-robin order, one excitation per node; optionally
/// force every tag to answer every excitation (`collide = true`) to
/// demonstrate the collision failure mode.
pub fn round_robin(
    base: &LinkConfig,
    nodes: &[TagNode],
    seed: u64,
    collide: bool,
) -> Vec<PollOutcome> {
    let mut outcomes = Vec::new();
    for (slot, node) in nodes.iter().enumerate() {
        let exc = crate::excitation::Excitation::build(ExcitationConfig {
            tag_id: node.id,
            ..base.excitation.clone()
        });
        let a = base.budget.tx_power().sqrt();
        let xs: Vec<Complex> = exc.samples.iter().map(|&v| v * a).collect();

        // Every tag listens; the addressed one (or, under collision, all of
        // them with a forced match) reflects.
        let mut media = Vec::new();
        let mut answered = Vec::new();
        for (i, other) in nodes.iter().enumerate() {
            let medium = BackscatterMedium::new(
                base.budget,
                MediumConfig::at_distance(other.distance_m),
                seed * 101 + i as u64,
            );
            let airtime = backfi_dsp::samples_to_us(exc.samples.len() - exc.detect_end);
            let len = TagFrame::max_payload_bytes(&base.tag, airtime).clamp(1, 64);
            let mut tag = Tag::new(if collide { node.id } else { other.id }, base.tag);
            let payload: Vec<u8> = other.payload.iter().cycle().take(len).copied().collect();
            tag.load_data(&payload);
            let incident = filter(&medium.h_f, &xs);
            let gamma = tag.react(&incident);
            if gamma.iter().any(|g| g.abs() > 0.0) {
                answered.push((i, payload.clone()));
            }
            media.push((medium, gamma, payload));
        }

        // Superpose every tag's backscatter through its own channels plus one
        // environment + noise realization (take the first medium's SI/noise;
        // the others contribute only their tag paths).
        let mut y: Option<Vec<Complex>> = None;
        for (k, (medium, gamma, _)) in media.iter_mut().enumerate() {
            if k == 0 {
                y = Some(medium.propagate(&exc.samples, gamma));
            } else {
                // Add only the backscatter component of this tag.
                let z = filter(&medium.h_f, &xs);
                let modded: Vec<Complex> =
                    z.iter().zip(gamma.iter()).map(|(v, g)| *v * *g).collect();
                let back = filter(&medium.h_b, &modded);
                let buf = y
                    .as_mut()
                    .expect("k > 0 iterations follow the k == 0 initialization");
                for (p, q) in buf.iter_mut().zip(&back) {
                    *p += *q;
                }
            }
        }
        let y = y.expect("at least one tag slot populated the buffer");

        let timeline = Timeline::nominal(exc.detect_end, exc.samples.len(), &base.tag);
        let reader = BackscatterReader::new(base.reader);
        let expected = &media[slot % media.len()].2;
        let h_env = media[0].0.h_env.clone();
        let success = reader
            .decode(&xs, &y[..xs.len()], &h_env, &timeline, &base.tag)
            .map(|r| r.payload.as_ref() == Ok(expected))
            .unwrap_or(false);
        outcomes.push(PollOutcome {
            tag_id: node.id,
            success,
        });
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network() -> (LinkConfig, Vec<TagNode>) {
        let mut base = LinkConfig::at_distance(1.0);
        base.excitation.wifi_payload_bytes = 1200;
        let nodes = vec![
            TagNode {
                id: 1,
                distance_m: 0.8,
                payload: vec![0x11; 32],
            },
            TagNode {
                id: 2,
                distance_m: 1.2,
                payload: vec![0x22; 32],
            },
            TagNode {
                id: 3,
                distance_m: 1.6,
                payload: vec![0x33; 32],
            },
        ];
        (base, nodes)
    }

    #[test]
    fn round_robin_services_every_tag() {
        let (base, nodes) = network();
        let outcomes = round_robin(&base, &nodes, 7, false);
        assert_eq!(outcomes.len(), 3);
        let ok = outcomes.iter().filter(|o| o.success).count();
        assert!(ok >= 2, "round robin should service most tags: {ok}/3");
    }

    #[test]
    fn simultaneous_answers_collide() {
        let (base, nodes) = network();
        let clean = round_robin(&base, &nodes, 9, false);
        let collided = round_robin(&base, &nodes, 9, true);
        let ok_clean = clean.iter().filter(|o| o.success).count();
        let ok_coll = collided.iter().filter(|o| o.success).count();
        assert!(
            ok_coll < ok_clean,
            "collisions should hurt: {ok_coll} vs {ok_clean}"
        );
    }
}
