//! The AP's transmission — protocol prologue plus the WiFi excitation packet.
//!
//! §4.1: "Whenever a BackFi AP transmits, if it is willing to receive
//! backscatter communication … it transmits a CTS_to_SELF packet to force
//! other WiFi devices to keep silent. Next it transmits a series of short
//! pulses to encode a pseudo-random preamble sequence. … The preamble is 16
//! bits long and each bit period lasts for 1 µs." The WiFi data packet that
//! follows is simultaneously a normal downlink frame to a client and the
//! tag's excitation signal.

use backfi_coding::prbs::tag_preamble;
use backfi_dsp::{us_to_samples, Complex};
use backfi_tag::detector::SAMPLES_PER_BIT;
use backfi_wifi::mac::{Frame, MacAddr};
use backfi_wifi::{Mcs, WifiTransmitter};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Parameters of one excitation transmission.
#[derive(Clone, Debug)]
pub struct ExcitationConfig {
    /// Which tag to address (selects the pulse preamble).
    pub tag_id: u16,
    /// MCS of the WiFi data packet (the paper transmits at 24 Mbit/s).
    pub mcs: Mcs,
    /// WiFi payload length in bytes (sets the excitation duration,
    /// 1–4 ms in the paper's experiments).
    pub wifi_payload_bytes: usize,
    /// Scrambler seed for the data packet (vary per packet).
    pub scrambler_seed: u8,
    /// Idle gap before the CTS (samples of silence).
    pub lead_in: usize,
}

impl Default for ExcitationConfig {
    fn default() -> Self {
        ExcitationConfig {
            tag_id: 1,
            mcs: Mcs::Mbps24,
            wifi_payload_bytes: 3000, // ≈1 ms at 24 Mbit/s
            scrambler_seed: 0x5D,
            lead_in: 100,
        }
    }
}

/// A generated excitation with its protocol landmarks.
#[derive(Clone, Debug)]
pub struct Excitation {
    /// Unit-power baseband samples of the whole transmission.
    pub samples: Vec<Complex>,
    /// Sample index where the 16-bit pulse preamble ends (the tag's silent
    /// period starts here).
    pub detect_end: usize,
    /// Sample range of the WiFi data packet.
    pub data_span: std::ops::Range<usize>,
    /// The WiFi PSDU carried to the client (for client-side verification).
    pub wifi_psdu: Vec<u8>,
    /// The configuration used.
    pub config: ExcitationConfig,
}

/// The excitation is a pure function of its config (no per-trial randomness:
/// payload, scrambler seed and preamble are all fixed by `ExcitationConfig`),
/// so sweeps share one synthesis per distinct config instead of re-running
/// the scrambler → conv-code → interleave → IFFT chain for every trial.
type ExcitationKey = (u16, Mcs, usize, u8, usize);

impl ExcitationConfig {
    fn cache_key(&self) -> ExcitationKey {
        (
            self.tag_id,
            self.mcs,
            self.wifi_payload_bytes,
            self.scrambler_seed,
            self.lead_in,
        )
    }
}

/// Keep the cache small: figure harnesses only ever use a handful of
/// distinct excitation configs at a time.
const CACHE_CAP: usize = 32;

fn cache() -> &'static Mutex<HashMap<ExcitationKey, Arc<Excitation>>> {
    static CACHE: OnceLock<Mutex<HashMap<ExcitationKey, Arc<Excitation>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Excitation {
    /// Build the transmission for `cfg`, sharing one synthesis per distinct
    /// config across the process (and across sweep worker threads).
    ///
    /// The returned value is sample-identical to `Excitation::build(cfg)`;
    /// only the synthesis cost is amortized.
    pub fn cached(cfg: &ExcitationConfig) -> Arc<Excitation> {
        let _t = backfi_obs::span("excitation.fetch");
        let key = cfg.cache_key();
        if let Some(hit) = cache().lock().expect("excitation cache poisoned").get(&key) {
            backfi_obs::counter_add("excitation.cache_hit", 1);
            return hit.clone();
        }
        backfi_obs::counter_add("excitation.cache_miss", 1);
        backfi_obs::trace::instant("excitation.build");
        // Build outside the lock so a long synthesis doesn't block lookups
        // of other configs; concurrent first-builds of the same config both
        // compute, which is deterministic and rare.
        let built = Arc::new(Excitation::build(cfg.clone()));
        let mut map = cache().lock().expect("excitation cache poisoned");
        if map.len() >= CACHE_CAP {
            map.clear();
        }
        map.entry(key).or_insert_with(|| built.clone()).clone()
    }

    /// Build the transmission.
    pub fn build(cfg: ExcitationConfig) -> Excitation {
        let tx = WifiTransmitter::new();
        let mut samples = vec![Complex::ZERO; cfg.lead_in];

        // CTS-to-self at the 6 Mbit/s base rate. NAV duration covers the
        // pulse preamble + data packet (µs, clamped to the field width).
        let data_frame = Frame::Data {
            dst: MacAddr::local(100),
            src: MacAddr::local(0),
            seq: 1,
            payload: vec![0xD5u8; cfg.wifi_payload_bytes],
        };
        let wifi_psdu = data_frame.to_psdu();
        let nav_us = 16.0 + cfg.mcs.packet_airtime_us(wifi_psdu.len()) + 16.0;
        let cts = Frame::CtsToSelf {
            addr: MacAddr::local(0),
            duration_us: nav_us.min(u16::MAX as f64) as u16,
        };
        let cts_pkt = tx.transmit(&cts.to_psdu(), Mcs::Mbps6, cfg.scrambler_seed ^ 0x2A);
        samples.extend_from_slice(&cts_pkt.samples);
        // SIFS gap.
        samples.extend(std::iter::repeat_n(Complex::ZERO, us_to_samples(16.0)));

        // Align the pulse preamble to the tag's 1 µs comparator grid so bit
        // decisions land cleanly (the hardware AP does the same by design).
        let pad = (SAMPLES_PER_BIT - samples.len() % SAMPLES_PER_BIT) % SAMPLES_PER_BIT;
        samples.extend(std::iter::repeat_n(Complex::ZERO, pad));

        // 16-bit wake-up/identification pulse preamble, 1 µs per bit. The
        // pulses are constant-envelope, so the PA can drive them at its peak
        // power — +6 dB over the OFDM average — which keeps them above the
        // tag's peak-hold threshold even right after a high-PAPR WiFi burst.
        const PULSE_AMPLITUDE: f64 = 2.0;
        for (i, &b) in tag_preamble(cfg.tag_id).iter().enumerate() {
            if b {
                samples.extend((0..SAMPLES_PER_BIT).map(|k| {
                    Complex::from_polar(PULSE_AMPLITUDE, 0.9 * (i * SAMPLES_PER_BIT + k) as f64)
                }));
            } else {
                samples.extend(std::iter::repeat_n(Complex::ZERO, SAMPLES_PER_BIT));
            }
        }
        let detect_end = samples.len();

        // The WiFi data packet (the actual excitation).
        let data_pkt = tx.transmit(&wifi_psdu, cfg.mcs, cfg.scrambler_seed);
        let data_start = samples.len();
        samples.extend_from_slice(&data_pkt.samples);
        let data_span = data_start..samples.len();

        Excitation {
            samples,
            detect_end,
            data_span,
            wifi_psdu,
            config: cfg,
        }
    }

    /// Total airtime of the transmission in µs.
    pub fn airtime_us(&self) -> f64 {
        backfi_dsp::samples_to_us(self.samples.len())
    }

    /// Airtime of the data (excitation) portion available for backscatter.
    pub fn data_airtime_us(&self) -> f64 {
        backfi_dsp::samples_to_us(self.data_span.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn landmarks_are_consistent() {
        let e = Excitation::build(ExcitationConfig::default());
        assert!(e.detect_end < e.data_span.start + 1);
        assert_eq!(e.data_span.end, e.samples.len());
        // Pulse preamble: 16 µs of alternating pulses right before data.
        let pre = &e.samples[e.detect_end - 16 * SAMPLES_PER_BIT..e.detect_end];
        assert_eq!(pre.len(), 320);
    }

    #[test]
    fn preamble_pulses_match_tag_pattern() {
        let cfg = ExcitationConfig {
            tag_id: 7,
            ..Default::default()
        };
        let e = Excitation::build(cfg);
        let pattern = tag_preamble(7);
        let pre_start = e.detect_end - 16 * SAMPLES_PER_BIT;
        for (i, &b) in pattern.iter().enumerate() {
            let blk =
                &e.samples[pre_start + i * SAMPLES_PER_BIT..pre_start + (i + 1) * SAMPLES_PER_BIT];
            let p: f64 = blk.iter().map(|v| v.norm_sqr()).sum();
            if b {
                assert!(p > 10.0, "bit {i} should be a pulse");
            } else {
                assert!(p < 1e-12, "bit {i} should be silent");
            }
        }
    }

    #[test]
    fn data_duration_tracks_payload() {
        let short = Excitation::build(ExcitationConfig {
            wifi_payload_bytes: 500,
            ..Default::default()
        });
        let long = Excitation::build(ExcitationConfig {
            wifi_payload_bytes: 3900,
            ..Default::default()
        });
        assert!(long.data_airtime_us() > 3.0 * short.data_airtime_us());
        // ~1 ms for the default 3000 bytes at 24 Mbit/s
        let default = Excitation::build(ExcitationConfig::default());
        assert!(
            (default.data_airtime_us() - 1030.0).abs() < 60.0,
            "{}",
            default.data_airtime_us()
        );
    }

    #[test]
    fn wifi_psdu_is_a_valid_frame() {
        let e = Excitation::build(ExcitationConfig::default());
        assert!(backfi_wifi::mac::check_fcs(&e.wifi_psdu));
        match Frame::from_psdu(&e.wifi_psdu) {
            Some(Frame::Data { payload, .. }) => assert_eq!(payload.len(), 3000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cached_is_sample_identical_to_fresh_build() {
        let cfg = ExcitationConfig {
            tag_id: 3,
            wifi_payload_bytes: 700,
            ..Default::default()
        };
        let cached = Excitation::cached(&cfg);
        let fresh = Excitation::build(cfg.clone());
        assert_eq!(cached.samples, fresh.samples);
        assert_eq!(cached.detect_end, fresh.detect_end);
        assert_eq!(cached.data_span, fresh.data_span);
        assert_eq!(cached.wifi_psdu, fresh.wifi_psdu);
    }

    #[test]
    fn cache_shares_one_allocation_per_config() {
        let cfg = ExcitationConfig {
            tag_id: 4,
            wifi_payload_bytes: 600,
            ..Default::default()
        };
        let a = Excitation::cached(&cfg);
        let b = Excitation::cached(&cfg);
        assert!(Arc::ptr_eq(&a, &b));
        // A different config must not alias.
        let other = ExcitationConfig {
            tag_id: 5,
            wifi_payload_bytes: 600,
            ..Default::default()
        };
        let c = Excitation::cached(&other);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn detect_end_is_microsecond_aligned() {
        for id in [1u16, 5, 9] {
            let e = Excitation::build(ExcitationConfig {
                tag_id: id,
                ..Default::default()
            });
            assert_eq!(e.detect_end % SAMPLES_PER_BIT, 0);
        }
    }
}
