//! WiFi-network coexistence (Figs. 12b and 13).
//!
//! Does a backscattering tag hurt the WiFi network it piggybacks on? Two
//! harnesses answer that at two fidelities:
//!
//! * [`NetworkModel`] — a link-budget-level simulator for fleets of clients
//!   (Fig. 12b: 30 random configurations × 10 clients): SINR → rate
//!   adaptation → per-client throughput, with log-normal shadowing.
//! * [`ClientPhyExperiment`] — a sample-level experiment for a single client
//!   (Fig. 13): real OFDM packets, the tag's actual reflected waveform added
//!   at the client, decoded by the full `backfi-wifi` receiver.

use backfi_chan::budget::{dbm_to_lin, LinkBudget};
use backfi_chan::multipath::MultipathProfile;
use backfi_dsp::noise::{add_noise, gauss};
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::{stats, Complex};
use backfi_tag::config::TagConfig;
use backfi_tag::framer::TagFrame;
use backfi_wifi::{Mcs, WifiReceiver, WifiTransmitter};
// rng trait methods are inherent on SplitMix64

/// Pick the fastest MCS whose SNR requirement is met (with `margin_db` of
/// headroom), or `None` when even 6 Mbit/s won't work.
pub fn select_mcs(snr_db: f64, margin_db: f64) -> Option<Mcs> {
    Mcs::ALL
        .into_iter()
        .rev()
        .find(|m| snr_db >= m.required_snr_db() + margin_db)
}

/// Model-level network simulator.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// Link budget in use.
    pub budget: LinkBudget,
    /// Log-normal shadowing standard deviation per link, dB.
    pub shadowing_db: f64,
    /// Rate-selection SNR margin, dB.
    pub margin_db: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            budget: LinkBudget::default(),
            shadowing_db: 6.0,
            margin_db: 1.0,
        }
    }
}

/// One client's outcome in a network realization.
#[derive(Clone, Copy, Debug)]
pub struct ClientOutcome {
    /// AP ↔ client distance, m.
    pub distance_m: f64,
    /// SNR without the tag, dB.
    pub snr_db: f64,
    /// SINR with the tag active, dB.
    pub sinr_db: f64,
    /// PHY throughput without the tag, Mbit/s (0 when unreachable).
    pub throughput_off_mbps: f64,
    /// PHY throughput with the tag active, Mbit/s.
    pub throughput_on_mbps: f64,
}

impl NetworkModel {
    /// Simulate one random configuration: `n_clients` placed uniformly in a
    /// disc of `radius_m` around the AP, a tag at `tag_distance_m` from the
    /// AP. Returns each client's with/without-tag outcome.
    pub fn run_config(
        &self,
        n_clients: usize,
        radius_m: f64,
        tag_distance_m: f64,
        seed: u64,
    ) -> Vec<ClientOutcome> {
        let mut rng = SplitMix64::new(seed);
        let noise = self.budget.noise_power();
        (0..n_clients)
            .map(|_| {
                // Uniform in the disc (area-uniform radius), at least 1 m out.
                let d: f64 = (radius_m * rng.next_f64().sqrt()).max(1.0);
                let angle = rng.next_f64() * std::f64::consts::TAU;
                let shadow = self.shadowing_db * gauss(&mut rng);
                let snr_db = self.budget.wifi_snr_db(d) - shadow.abs();

                // Tag → client distance from the geometry (tag on the x-axis).
                let cx = d * angle.cos();
                let cy = d * angle.sin();
                let d_tc = ((cx - tag_distance_m).powi(2) + cy * cy).sqrt().max(0.1);
                let interference =
                    dbm_to_lin(self.budget.tag_interference_dbm(tag_distance_m, d_tc));
                let rx = dbm_to_lin(self.budget.wifi_rx_power_dbm(d) - shadow.abs());
                let sinr_db = stats::db(rx / (noise + interference));

                ClientOutcome {
                    distance_m: d,
                    snr_db,
                    sinr_db,
                    throughput_off_mbps: select_mcs(snr_db, self.margin_db)
                        .map(|m| m.mbps())
                        .unwrap_or(0.0),
                    throughput_on_mbps: select_mcs(sinr_db, self.margin_db)
                        .map(|m| m.mbps())
                        .unwrap_or(0.0),
                }
            })
            .collect()
    }

    /// Average network throughputs (off, on) over a configuration.
    pub fn average_throughput(outcomes: &[ClientOutcome]) -> (f64, f64) {
        let n = outcomes.len().max(1) as f64;
        (
            outcomes.iter().map(|o| o.throughput_off_mbps).sum::<f64>() / n,
            outcomes.iter().map(|o| o.throughput_on_mbps).sum::<f64>() / n,
        )
    }
}

/// Sample-level single-client experiment (Fig. 13).
pub struct ClientPhyExperiment {
    /// Link budget.
    pub budget: LinkBudget,
    /// Tag ↔ AP distance (0.25 m in the paper's worst case).
    pub tag_distance_m: f64,
    /// The tag's communication parameters.
    pub tag_cfg: TagConfig,
}

/// Per-bitrate result of the client experiment.
#[derive(Clone, Debug)]
pub struct ClientPhyResult {
    /// WiFi bitrate evaluated.
    pub mcs: Mcs,
    /// AP ↔ client distance chosen so this rate is ~3 dB above threshold.
    pub client_distance_m: f64,
    /// Packet success rate with the tag off.
    pub success_off: f64,
    /// Packet success rate with the tag on.
    pub success_on: f64,
    /// Mean client SNR with the tag off, dB.
    pub snr_off_db: f64,
    /// Mean client SNR (really SINR) with the tag on, dB.
    pub snr_on_db: f64,
}

impl ClientPhyExperiment {
    /// Distance at which a client sees `mcs`'s requirement + `margin` dB.
    pub fn distance_for(&self, mcs: Mcs, margin_db: f64) -> f64 {
        let target = mcs.required_snr_db() + margin_db;
        let pl = self.budget.tx_power_dbm - self.budget.noise_floor_dbm - target;
        10f64
            .powf((pl - self.budget.wifi_pathloss_1m_db) / (10.0 * self.budget.wifi_exponent))
            .max(1.0)
    }

    /// Run `packets` packets at `mcs` and measure success with the tag off
    /// and on.
    pub fn run(
        &self,
        mcs: Mcs,
        packets: usize,
        payload_bytes: usize,
        seed: u64,
    ) -> ClientPhyResult {
        let client_distance_m = self.distance_for(mcs, 3.0);
        let d_tc = (client_distance_m - self.tag_distance_m).abs().max(0.1);

        let tx = WifiTransmitter::new();
        let rx = WifiReceiver::default();
        let mut rng = SplitMix64::new(seed);

        let mut ok_off = 0usize;
        let mut ok_on = 0usize;
        let mut snr_off = Vec::new();
        let mut snr_on = Vec::new();

        // Channel amplitudes.
        let a_c = self.budget.wifi_amplitude(client_distance_m) * self.budget.tx_power().sqrt();
        let leg = |d: f64| dbm_to_lin(-self.budget.tag_scatter_leg_db(d)).sqrt();
        let a_tag = leg(self.tag_distance_m) * leg(d_tc) * self.budget.tx_power().sqrt();
        let noise = self.budget.noise_power();

        for p in 0..packets {
            let psdu: Vec<u8> = (0..payload_bytes).map(|i| (i + p) as u8).collect();
            let pkt = tx.transmit(&psdu, mcs, (0x30 + (p as u8 & 0x3F)) | 1);

            // Client channel: short multipath.
            let h_c = backfi_chan::multipath::scaled(
                &MultipathProfile::indoor_los().realize(&mut rng),
                a_c,
            );
            let direct = backfi_dsp::fir::filter(&h_c, &pkt.samples);

            for (tag_on, ok, snrs) in [
                (false, &mut ok_off, &mut snr_off),
                (true, &mut ok_on, &mut snr_on),
            ] {
                let mut y = direct.clone();
                if tag_on {
                    // The tag's reflected waveform as seen by the client:
                    // ((x∗h_f)·Γ)∗h_tc with per-symbol random PSK phases.
                    let h_f = MultipathProfile::indoor_los().realize(&mut rng);
                    let h_tc = MultipathProfile::indoor_nlos().realize(&mut rng);
                    let z = backfi_dsp::fir::filter(&h_f, &pkt.samples);
                    let sps = self.tag_cfg.samples_per_symbol();
                    let order = self.tag_cfg.modulation.order();
                    let modded: Vec<Complex> = z
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            let idx = ((i / sps) * 7 + 3) % order;
                            v * Complex::exp_j(std::f64::consts::TAU * idx as f64 / order as f64)
                        })
                        .collect();
                    let scattered = backfi_dsp::fir::filter(&h_tc, &modded);
                    for (a, b) in y.iter_mut().zip(&scattered) {
                        *a += b.scale(a_tag);
                    }
                }
                add_noise(&mut rng, &mut y, noise);
                match rx.receive(&y) {
                    Ok(got) => {
                        snrs.push(got.snr_db);
                        if got.psdu == psdu {
                            *ok += 1;
                        }
                    }
                    Err(_) => snrs.push(f64::NEG_INFINITY),
                }
            }
        }

        let finite_mean = |v: &[f64]| {
            let f: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
            stats::mean(&f)
        };
        ClientPhyResult {
            mcs,
            client_distance_m,
            success_off: ok_off as f64 / packets.max(1) as f64,
            success_on: ok_on as f64 / packets.max(1) as f64,
            snr_off_db: finite_mean(&snr_off),
            snr_on_db: finite_mean(&snr_on),
        }
    }
}

/// Convenience: the tag configuration the Fig. 13 experiment uses (fast
/// QPSK so the interference is as wideband as possible).
pub fn fig13_tag_config() -> TagConfig {
    TagConfig {
        symbol_rate_hz: 2.5e6,
        ..TagConfig::default()
    }
}

/// Check a tag frame fits the interference window (helper for tests).
pub fn tag_frame_fits(cfg: &TagConfig, airtime_us: f64) -> bool {
    TagFrame::max_payload_bytes(cfg, airtime_us) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcs_selection_is_monotone() {
        assert_eq!(select_mcs(40.0, 1.0), Some(Mcs::Mbps54));
        assert_eq!(select_mcs(10.0, 1.0), Some(Mcs::Mbps12)); // needs 8 + 1 dB
        assert_eq!(select_mcs(8.5, 1.0), Some(Mcs::Mbps9));
        assert_eq!(select_mcs(3.0, 1.0), None);
        let mut prev = 0.0;
        for snr in [6.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
            let m = select_mcs(snr, 1.0).map(|m| m.mbps()).unwrap_or(0.0);
            assert!(m >= prev);
            prev = m;
        }
    }

    #[test]
    fn faraway_tag_has_no_model_impact() {
        let model = NetworkModel::default();
        let outcomes = model.run_config(10, 10.0, 4.0, 3);
        let (off, on) = NetworkModel::average_throughput(&outcomes);
        assert!(off > 0.0);
        assert!((off - on) / off < 0.05, "off {off} on {on}");
    }

    #[test]
    fn very_close_tag_hurts_more_than_far_tag() {
        let model = NetworkModel::default();
        let mut drop_close = 0.0;
        let mut drop_far = 0.0;
        for seed in 0..20 {
            let near = model.run_config(10, 10.0, 0.25, seed);
            let (off_n, on_n) = NetworkModel::average_throughput(&near);
            drop_close += (off_n - on_n) / off_n.max(1e-9);
            let far = model.run_config(10, 10.0, 3.0, seed);
            let (off_f, on_f) = NetworkModel::average_throughput(&far);
            drop_far += (off_f - on_f) / off_f.max(1e-9);
        }
        assert!(
            drop_close > drop_far,
            "close {drop_close} should exceed far {drop_far}"
        );
        assert!(drop_close / 20.0 < 0.25, "impact should stay moderate");
    }

    #[test]
    fn client_distance_ordering() {
        let exp = ClientPhyExperiment {
            budget: LinkBudget::default(),
            tag_distance_m: 0.25,
            tag_cfg: fig13_tag_config(),
        };
        // Lower rates tolerate longer distances.
        let d6 = exp.distance_for(Mcs::Mbps6, 3.0);
        let d54 = exp.distance_for(Mcs::Mbps54, 3.0);
        assert!(d6 > d54 * 2.0, "6 Mbps at {d6} m vs 54 Mbps at {d54} m");
    }

    #[test]
    fn client_phy_mostly_succeeds_without_tag() {
        let exp = ClientPhyExperiment {
            budget: LinkBudget::default(),
            tag_distance_m: 0.25,
            tag_cfg: fig13_tag_config(),
        };
        let res = exp.run(Mcs::Mbps6, 4, 200, 9);
        assert!(res.success_off >= 0.75, "success {}", res.success_off);
        assert!(res.snr_off_db > 5.0);
    }
}
