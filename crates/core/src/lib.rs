//! # backfi-core
//!
//! The end-to-end BackFi system simulator: everything in Figs. 1, 4 and 5 of
//! the paper wired together, plus the experiment harnesses behind every
//! figure of the evaluation (§6).
//!
//! * [`excitation`] — the AP's transmission: CTS-to-self, 16-bit wake-up
//!   pulse preamble, then the WiFi data packet that doubles as the
//!   backscatter excitation,
//! * [`link`] — one reader ↔ tag exchange over the simulated medium,
//! * [`sweep`] — trial/parameter sweeps (rate cycling like §6.1's
//!   methodology),
//! * [`network`] — WiFi coexistence: client throughput with/without an
//!   active tag (Figs. 12b, 13),
//! * [`traces`] — loaded-AP airtime traces and replay (Fig. 12a),
//! * [`baseline`] — the prior WiFi-backscatter system [27, 25] as the
//!   headline comparator,
//! * [`mimo`] — the §7 multi-antenna AP extension (spatial MRC),
//! * [`multitag`] — preamble-addressed polling of several tags and the
//!   collision failure mode that motivates it,
//! * [`resilient`] — CRC-failure retry with rate fallback (graceful
//!   degradation on a lossy or fault-injected link),
//! * [`figures`] — one data-generating function per paper figure/table.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod baseline;
pub mod excitation;
pub mod figures;
pub mod link;
pub mod mimo;
pub mod multitag;
pub mod network;
pub mod resilient;
pub mod sweep;
pub mod traces;

pub use excitation::{Excitation, ExcitationConfig};
pub use link::{LinkConfig, LinkReport, LinkSimulator};
