//! The analog RF cancellation stage.
//!
//! A bank of fixed-delay lines with tunable attenuators/phase shifters
//! ("implemented using a combination of RF FIR filters and couplers", §4.2).
//! Its sole job is to bring the self-interference inside the ADC's dynamic
//! range; precision is limited by the control DACs, so it "cannot completely
//! eliminate self-interference due to the imprecision of analog components".
//!
//! We model a converged tuning loop: the canceller taps equal the first
//! `taps` of the true environment response, quantized to `control_bits` of
//! amplitude/phase resolution — which caps its cancellation depth at roughly
//! `6·control_bits` dB.

use backfi_dsp::Complex;

/// The analog canceller.
#[derive(Clone, Debug)]
pub struct AnalogCanceller {
    taps: Vec<Complex>,
}

/// Configuration of the analog stage.
#[derive(Clone, Copy, Debug)]
pub struct AnalogConfig {
    /// Number of RF delay taps (boards typically have 8–16).
    pub taps: usize,
    /// Control-DAC resolution in bits for each of I and Q per tap.
    pub control_bits: u32,
}

impl Default for AnalogConfig {
    fn default() -> Self {
        // 16 taps like the SIGCOMM'13 analog board [12]: enough delay span
        // to cover the bulk of the reflection tail, so the post-analog
        // residual fits a 12-bit ADC without its quantization noise raising
        // the post-digital floor.
        AnalogConfig {
            taps: 16,
            control_bits: 8,
        }
    }
}

impl AnalogCanceller {
    /// Tune against a known environment response (represents the converged
    /// state of the board's tuning algorithm). Taps beyond `cfg.taps` are
    /// left for the digital stage.
    pub fn tuned(h_env: &[Complex], cfg: AnalogConfig) -> Self {
        let n = cfg.taps.min(h_env.len());
        // Quantization grid scaled to the largest tap.
        let max_mag = h_env[..n]
            .iter()
            .map(|t| t.re.abs().max(t.im.abs()))
            .fold(0.0, f64::max)
            .max(1e-30);
        let step = max_mag / (1u64 << cfg.control_bits) as f64;
        let taps = h_env[..n]
            .iter()
            .map(|t| Complex::new((t.re / step).round() * step, (t.im / step).round() * step))
            .collect();
        AnalogCanceller { taps }
    }

    /// A disabled canceller (all-zero taps) for ablation experiments.
    pub fn disabled() -> Self {
        AnalogCanceller {
            taps: vec![Complex::ZERO],
        }
    }

    /// The canceller's FIR taps.
    pub fn taps(&self) -> &[Complex] {
        &self.taps
    }

    /// Subtract the canceller's reconstruction of the self-interference from
    /// the received signal. `x_clean` is the transmitted baseband (the RF
    /// coupler's copy); both slices must be the same length.
    pub fn cancel(&self, x_clean: &[Complex], y_rx: &[Complex]) -> Vec<Complex> {
        assert_eq!(x_clean.len(), y_rx.len(), "length mismatch");
        let _t = backfi_obs::span("sic.analog.fir");
        let model = backfi_dsp::fir::filter(&self.taps, x_clean);
        y_rx.iter().zip(&model).map(|(y, m)| *y - *m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::fir::filter;
    use backfi_dsp::noise::cgauss_vec;
    use backfi_dsp::rng::SplitMix64;
    use backfi_dsp::stats::{db, mean_power};

    fn env_channel() -> Vec<Complex> {
        vec![
            Complex::new(0.09, -0.03), // leakage ~ -20 dB
            Complex::new(0.004, 0.002),
            Complex::new(-0.002, 0.003),
            Complex::new(0.001, -0.001),
        ]
    }

    #[test]
    fn cancellation_depth_limited_by_control_bits() {
        let h = env_channel();
        let mut rng = SplitMix64::new(1);
        let x = cgauss_vec(&mut rng, 5000, 1.0);
        let y = filter(&h, &x);
        for (bits, min_db, max_db) in [(6u32, 25.0, 50.0), (8, 38.0, 62.0), (10, 50.0, 75.0)] {
            let c = AnalogCanceller::tuned(
                &h,
                AnalogConfig {
                    taps: 8,
                    control_bits: bits,
                },
            );
            let out = c.cancel(&x, &y);
            let depth = db(mean_power(&y) / mean_power(&out));
            assert!(
                depth > min_db && depth < max_db,
                "{bits} bits: depth {depth} dB"
            );
        }
    }

    #[test]
    fn more_bits_cancel_deeper() {
        let h = env_channel();
        let mut rng = SplitMix64::new(2);
        let x = cgauss_vec(&mut rng, 5000, 1.0);
        let y = filter(&h, &x);
        let mut prev = 0.0;
        for bits in [4u32, 6, 8, 10] {
            let c = AnalogCanceller::tuned(
                &h,
                AnalogConfig {
                    taps: 8,
                    control_bits: bits,
                },
            );
            let out = c.cancel(&x, &y);
            let depth = db(mean_power(&y) / mean_power(&out));
            assert!(depth > prev, "bits {bits}: {depth} <= {prev}");
            prev = depth;
        }
    }

    #[test]
    fn disabled_is_identity() {
        let mut rng = SplitMix64::new(3);
        let x = cgauss_vec(&mut rng, 100, 1.0);
        let y = cgauss_vec(&mut rng, 100, 1.0);
        let c = AnalogCanceller::disabled();
        let out = c.cancel(&x, &y);
        for (a, b) in out.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-15);
        }
    }

    #[test]
    fn leaves_late_taps_alone() {
        // Taps beyond the analog board's reach stay for the digital stage.
        let mut h = vec![Complex::ZERO; 12];
        h[0] = Complex::new(0.1, 0.0);
        h[10] = Complex::new(0.01, 0.01); // beyond this board's 8 taps
        let cfg = AnalogConfig {
            taps: 8,
            control_bits: 8,
        };
        let c = AnalogCanceller::tuned(&h, cfg);
        assert_eq!(c.taps().len(), 8);
        let mut rng = SplitMix64::new(4);
        let x = cgauss_vec(&mut rng, 3000, 1.0);
        let y = filter(&h, &x);
        let out = c.cancel(&x, &y);
        // Residual dominated by the late tap's power (~1e-4·2)
        let res = mean_power(&out);
        assert!(res > 1e-4, "late tap should survive analog stage: {res:e}");
    }
}
