//! The composed two-stage cancellation pipeline, including the ADC.
//!
//! RF chain: `y_rx → (− analog reconstruction) → AGC+ADC → (− digital
//! reconstruction) → clean baseband`. The digital stage trains on the
//! protocol's silent window.

use crate::analog::{AnalogCanceller, AnalogConfig};
use crate::digital::DigitalCanceller;
use backfi_dsp::{stats, Complex};

/// Full canceller configuration.
#[derive(Clone, Copy, Debug)]
pub struct CancellerConfig {
    /// Analog stage settings.
    pub analog: AnalogConfig,
    /// Digital FIR length (must cover the environment delay spread).
    pub digital_taps: usize,
    /// LS regularization for digital training.
    pub ridge: f64,
    /// ADC resolution in bits.
    pub adc_bits: u32,
    /// AGC headroom in dB above the RMS of the post-analog signal.
    pub agc_headroom_db: f64,
    /// Set `false` to bypass the analog stage (ablation).
    pub analog_enabled: bool,
    /// Set `false` to bypass the digital stage (ablation).
    pub digital_enabled: bool,
}

impl Default for CancellerConfig {
    fn default() -> Self {
        CancellerConfig {
            analog: AnalogConfig::default(),
            digital_taps: 28,
            ridge: 1e-7,
            adc_bits: 12,
            agc_headroom_db: 12.0,
            analog_enabled: true,
            digital_enabled: true,
        }
    }
}

/// Outcome of one cancellation run.
#[derive(Clone, Debug)]
pub struct CancellerReport {
    /// Cleaned baseband samples (same length as the input).
    pub samples: Vec<Complex>,
    /// Input self-interference power (dB, simulator units) over the silent
    /// window.
    pub input_si_db: f64,
    /// Residual power over the silent window after both stages.
    pub residual_db: f64,
    /// Total cancellation achieved (dB).
    pub cancellation_db: f64,
    /// Fraction of post-analog samples that clipped in the ADC.
    pub adc_clip_fraction: f64,
    /// Maximal runs of consecutive clipped samples (sorted, disjoint).
    /// Saturation transients show up here as long runs; the reader marks
    /// heavily clipped symbol windows as erasures.
    pub clip_ranges: Vec<std::ops::Range<usize>>,
}

/// The reader's self-interference canceller.
#[derive(Clone, Debug)]
pub struct SelfInterferenceCanceller {
    cfg: CancellerConfig,
    analog: AnalogCanceller,
}

impl SelfInterferenceCanceller {
    /// Build with the analog stage tuned against the (converged-tuning view
    /// of the) environment response.
    pub fn new(cfg: CancellerConfig, h_env: &[Complex]) -> Self {
        let analog = if cfg.analog_enabled {
            AnalogCanceller::tuned(h_env, cfg.analog)
        } else {
            AnalogCanceller::disabled()
        };
        SelfInterferenceCanceller { cfg, analog }
    }

    /// Run cancellation over a packet.
    ///
    /// * `x_clean` — transmitted baseband (with TX power applied),
    /// * `y_rx` — received samples (same length),
    /// * `silent` — sample range within which the tag is known silent
    ///   (used to train the digital stage and to report residuals).
    ///
    /// Returns `None` when digital training fails (window too short).
    pub fn process(
        &self,
        x_clean: &[Complex],
        y_rx: &[Complex],
        silent: std::ops::Range<usize>,
    ) -> Option<CancellerReport> {
        assert_eq!(x_clean.len(), y_rx.len(), "length mismatch");
        assert!(silent.end <= y_rx.len(), "silent window out of range");
        // Silent windows are ~320 samples — far below `SIMD_MIN_REDUCE` — so
        // the `_auto` reduction stays on the ordered, bit-exact path while
        // still letting oversized windows (fault-injection sweeps) use the
        // wide backend.
        let input_si_db = stats::db(backfi_dsp::simd::mean_power_auto(&y_rx[silent.clone()]));

        // Stage 1: analog subtraction.
        let after_analog = {
            let _t = backfi_obs::span("sic.analog");
            self.analog.cancel(x_clean, y_rx)
        };
        if backfi_obs::enabled() {
            // Residual power after the analog stage alone — the Fig. 11a
            // attribution probe (how much work is left for the ADC+digital
            // chain). Measured over the silent window, obs-gated because it
            // is an extra pass the pipeline itself never needs.
            backfi_obs::probe(
                "sic.after_analog_db",
                stats::db(backfi_dsp::simd::mean_power_auto(
                    &after_analog[silent.clone()],
                )),
            );
            backfi_obs::probe("sic.input_si_db", input_si_db);
        }

        // AGC + ADC.
        let digitized = {
            let _t = backfi_obs::span("sic.adc");
            // Whole-packet scan (tens of thousands of samples): deliberately
            // NOT routed through the `_auto` reduction — it would cross the
            // `SIMD_MIN_REDUCE` floor and reassociate the sum, perturbing the
            // AGC full-scale bits that downstream figures depend on.
            let rms = stats::rms(&after_analog);
            let full_scale = rms * 10f64.powf(self.cfg.agc_headroom_db / 20.0);
            let adc = backfi_chan_adc(self.cfg.adc_bits, full_scale.max(1e-30));
            let (adc_clip_fraction, clip_ranges) = adc.clip_scan(&after_analog);
            backfi_obs::probe("sic.adc_clip_fraction", adc_clip_fraction);
            (adc.convert(&after_analog), adc_clip_fraction, clip_ranges)
        };
        let (digitized, adc_clip_fraction, clip_ranges) = digitized;

        // Stage 2: digital subtraction, trained on the silent window.
        let samples = if self.cfg.digital_enabled {
            let _t = backfi_obs::span("sic.digital");
            let dig = {
                let _t = backfi_obs::span("sic.digital.train");
                DigitalCanceller::train(
                    &x_clean[silent.clone()],
                    &digitized[silent.clone()],
                    self.cfg.digital_taps,
                    self.cfg.ridge,
                )?
            };
            let _t = backfi_obs::span("sic.digital.apply");
            dig.cancel(x_clean, &digitized)
        } else {
            digitized
        };

        let residual_db = stats::db(backfi_dsp::simd::mean_power_auto(
            &samples[trim(&silent, self.cfg.digital_taps)],
        ));
        backfi_obs::probe("sic.residual_db", residual_db);
        Some(CancellerReport {
            cancellation_db: input_si_db - residual_db,
            input_si_db,
            residual_db,
            adc_clip_fraction,
            clip_ranges,
            samples,
        })
    }
}

/// Skip the filter-settling prefix of the silent window when measuring
/// residuals.
fn trim(silent: &std::ops::Range<usize>, taps: usize) -> std::ops::Range<usize> {
    let start = (silent.start + taps).min(silent.end);
    start..silent.end
}

/// Local ADC constructor (thin wrapper to avoid a circular dependency on
/// `backfi-chan`; the model is identical).
fn backfi_chan_adc(bits: u32, full_scale: f64) -> AdcModel {
    AdcModel { bits, full_scale }
}

/// Minimal ADC model (mirrors `backfi_chan::frontend::Adc`).
#[derive(Clone, Copy, Debug)]
struct AdcModel {
    bits: u32,
    full_scale: f64,
}

impl AdcModel {
    fn step(&self) -> f64 {
        2.0 * self.full_scale / (1u64 << self.bits) as f64
    }
    fn convert(&self, x: &[Complex]) -> Vec<Complex> {
        let d = self.step();
        x.iter()
            .map(|v| {
                Complex::new(
                    (v.re.clamp(-self.full_scale, self.full_scale) / d).round() * d,
                    (v.im.clamp(-self.full_scale, self.full_scale) / d).round() * d,
                )
            })
            .collect()
    }
    /// One pass over the samples: the clipped fraction plus the maximal runs
    /// of consecutive clipped samples.
    fn clip_scan(&self, x: &[Complex]) -> (f64, Vec<std::ops::Range<usize>>) {
        if x.is_empty() {
            return (0.0, Vec::new());
        }
        let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
        let mut clipped = 0usize;
        for (i, v) in x.iter().enumerate() {
            if v.re.abs() >= self.full_scale || v.im.abs() >= self.full_scale {
                clipped += 1;
                match ranges.last_mut() {
                    Some(r) if r.end == i => r.end = i + 1,
                    _ => ranges.push(i..i + 1),
                }
            }
        }
        (clipped as f64 / x.len() as f64, ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::fir::filter;
    use backfi_dsp::noise::{add_noise, cgauss_vec};
    use backfi_dsp::rng::SplitMix64;
    use backfi_dsp::stats::{db, mean_power};

    /// Build a synthetic scene: strong SI channel + noise, no tag.
    fn scene(seed: u64, n: usize, noise: f64) -> (Vec<Complex>, Vec<Complex>, Vec<Complex>) {
        let mut rng = SplitMix64::new(seed);
        let x = cgauss_vec(&mut rng, n, 10.0); // ~10 dBm
        let mut h_env = vec![Complex::ZERO; 20];
        h_env[0] = Complex::new(0.08, -0.05); // leakage
        for (i, t) in h_env.iter_mut().enumerate().skip(1) {
            let a = 0.004 * (-(i as f64) / 5.0).exp();
            *t = Complex::new(a, -a * 0.5);
        }
        let mut y = filter(&h_env, &x);
        add_noise(&mut rng, &mut y, noise);
        (x, y, h_env)
    }

    #[test]
    fn two_stage_reaches_near_noise_floor() {
        let noise = 1e-9; // -90 dBm
        let (x, y, h_env) = scene(1, 4000, noise);
        let c = SelfInterferenceCanceller::new(CancellerConfig::default(), &h_env);
        let rep = c.process(&x, &y, 0..320).unwrap();
        assert!(
            rep.adc_clip_fraction < 0.01,
            "clip {}",
            rep.adc_clip_fraction
        );
        let excess = rep.residual_db - db(noise);
        assert!(
            excess < 3.0,
            "residual {} dB vs floor {} dB",
            rep.residual_db,
            db(noise)
        );
        assert!(rep.cancellation_db > 55.0, "total {}", rep.cancellation_db);
    }

    #[test]
    fn without_analog_stage_adc_saturates() {
        let noise = 1e-9;
        let (x, y, h_env) = scene(2, 4000, noise);
        let cfg = CancellerConfig {
            analog_enabled: false,
            ..Default::default()
        };
        let c = SelfInterferenceCanceller::new(cfg, &h_env);
        let rep = c.process(&x, &y, 0..320).unwrap();
        // AGC scales to the huge SI, so quantization noise swamps everything:
        // residual sits far above the thermal floor.
        let excess = rep.residual_db - db(noise);
        assert!(excess > 10.0, "expected degraded floor, excess {excess} dB");
    }

    #[test]
    fn without_digital_stage_residual_is_large() {
        let noise = 1e-9;
        let (x, y, h_env) = scene(3, 4000, noise);
        let cfg = CancellerConfig {
            digital_enabled: false,
            ..Default::default()
        };
        let c = SelfInterferenceCanceller::new(cfg, &h_env);
        let rep = c.process(&x, &y, 0..320).unwrap();
        let excess = rep.residual_db - db(noise);
        assert!(
            excess > 20.0,
            "analog alone should leave residue: {excess} dB"
        );
    }

    #[test]
    fn preserves_a_backscatter_signal_outside_the_silent_window() {
        let noise = 1e-12;
        let (x, mut y, h_env) = scene(4, 6000, noise);
        // Inject a BPSK-modulated tag signal after sample 1000.
        let h_fb = vec![Complex::new(3e-5, 1e-5)];
        let tag_in = filter(&h_fb, &x);
        let tag: Vec<Complex> = tag_in
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if i < 1000 {
                    Complex::ZERO
                } else if (i / 40) % 2 == 0 {
                    *v
                } else {
                    -*v
                }
            })
            .collect();
        for (a, b) in y.iter_mut().zip(&tag) {
            *a += *b;
        }
        let c = SelfInterferenceCanceller::new(CancellerConfig::default(), &h_env);
        let rep = c.process(&x, &y, 0..900).unwrap();
        let out_power = mean_power(&rep.samples[1000..]);
        let tag_power = mean_power(&tag[1000..]);
        // The cleaned signal should be tag-dominated (within ~3 dB).
        assert!(
            db(out_power / tag_power).abs() < 3.0,
            "out {out_power:e} tag {tag_power:e}"
        );
    }

    #[test]
    fn clip_ranges_account_for_every_clipped_sample() {
        // A blocker transient far above the stream rms rails the ADC (the
        // AGC tracks the whole-packet rms, not the burst). The reported runs
        // must cover exactly the clipped fraction and be maximal (sorted,
        // with a gap between consecutive runs) and include the burst span.
        let (x, mut y, h_env) = scene(6, 4000, 1e-9);
        let burst = 2000..2040;
        let amp = 1e3 * stats::rms(&y);
        for v in &mut y[burst.clone()] {
            *v = Complex::new(amp, -amp);
        }
        let cfg = CancellerConfig {
            analog_enabled: false,
            ..Default::default()
        };
        let c = SelfInterferenceCanceller::new(cfg, &h_env);
        let rep = c.process(&x, &y, 0..320).unwrap();
        let total: usize = rep.clip_ranges.iter().map(|r| r.len()).sum();
        assert!(total >= burst.len(), "burst should saturate: {total}");
        assert!((total as f64 / rep.samples.len() as f64 - rep.adc_clip_fraction).abs() < 1e-12);
        for w in rep.clip_ranges.windows(2) {
            assert!(w[0].end < w[1].start, "runs must be maximal and sorted");
        }
        assert!(
            rep.clip_ranges
                .iter()
                .any(|r| r.start <= burst.start && r.end >= burst.end),
            "one maximal run must cover the burst: {:?}",
            rep.clip_ranges
        );
    }

    #[test]
    fn report_powers_are_consistent() {
        let (x, y, h_env) = scene(5, 3000, 1e-9);
        let c = SelfInterferenceCanceller::new(CancellerConfig::default(), &h_env);
        let rep = c.process(&x, &y, 0..320).unwrap();
        assert!((rep.cancellation_db - (rep.input_si_db - rep.residual_db)).abs() < 1e-9);
        assert_eq!(rep.samples.len(), y.len());
    }
}
