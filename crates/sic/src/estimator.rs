//! Regularized least-squares FIR channel estimation.
//!
//! Given a known input `x` and an observation `y ≈ x ∗ h + w`, estimate the
//! `taps`-long impulse response `h`. Used twice in the reader:
//!
//! 1. during the tag's silent period, with `x` = the clean transmitted WiFi
//!    samples, to estimate the residual self-interference channel;
//! 2. during the tag's preamble, with `x` = (transmitted WiFi × known PN
//!    chips), to estimate the combined forward∗backward channel `h_f ∗ h_b`
//!    (§4.3.1 — "this becomes a standard channel estimation problem").
//!
//! Solved via the ridge-regularized normal equations
//! `(XᴴX + λI) h = Xᴴ y`, built directly from correlations so no large
//! convolution matrix is materialized.

use crate::linalg::{solve, CMat};
use backfi_dsp::Complex;

/// Build the ridge-free normal equations `A`, `b` over the observation-index
/// `runs` (half-open, every index `i` satisfying `i ≥ taps−1`), plus the
/// total input power and observation count over those runs.
///
/// The Gram matrix is near-Toeplitz: `A[j][k] = Σ_i conj(x[i−j])·x[i−k]`
/// depends on the lag `ℓ = k−j` except for which window of the lag product
/// `g_ℓ[m] = conj(x[m])·x[m−ℓ]` is summed. So instead of the direct
/// O(N·taps²) triple loop, we compute one prefix-sum sequence of `g_ℓ` per
/// lag — O(N·taps) total — and read every `A[j][j+ℓ]` off it as an exact
/// windowed difference (the "edge corrections" per entry are the two prefix
/// lookups per run). The input-power sum falls out of the lag-0 diagonal for
/// free, so no separate mean-power pass is needed.
/// Fill `prefix[k][m+1]` for `m ∈ [lag0+k, n)` with the sequential lag-product
/// prefix sums `Σ conj(x[m])·x[m−(lag0+k)]` for `G` consecutive lags, plus
/// zeros below each lag's start. One fused pass runs the `G` chains
/// interleaved: each chain is a serial float-add dependency (4–5 cycles per
/// sample on its own), so overlapping independent chains recovers ~`G`× of
/// throughput. The **per-lag addition order — the bit-pinned quantity that
/// the canceller taps, and through them the figure tables, depend on — is
/// unchanged**: lane `k` performs exactly the adds of the old
/// one-lag-at-a-time loop, in the same order, against its own accumulator.
fn lag_prefix_group<const G: usize>(x: &[Complex], lag0: usize, prefix: &mut [Vec<Complex>]) {
    let n = x.len();
    let lmax = (lag0 + G - 1).min(n);
    let mut acc = [Complex::ZERO; G];
    // Ragged heads: lanes with smaller lags start earlier; the prefix is
    // zero at and below each lane's lag.
    for k in 0..G {
        let lag = lag0 + k;
        for v in prefix[k].iter_mut().take(lag.min(n) + 1) {
            *v = Complex::ZERO;
        }
        for m in lag..lmax {
            acc[k] += x[m].conj() * x[m - lag];
            prefix[k][m + 1] = acc[k];
        }
    }
    // Steady state: all G chains advance together.
    for m in lmax..n {
        for k in 0..G {
            acc[k] += x[m].conj() * x[m - (lag0 + k)];
            prefix[k][m + 1] = acc[k];
        }
    }
}

fn normal_equations(
    x: &[Complex],
    y: &[Complex],
    taps: usize,
    runs: &[(usize, usize)],
) -> (CMat, Vec<Complex>, f64, usize) {
    let n = x.len();
    let mut a = CMat::zeros(taps, taps);
    let mut b = vec![Complex::ZERO; taps];

    // Gram matrix from per-lag prefix sums, four lag chains per pass.
    let mut prefix: Vec<Vec<Complex>> = (0..4.min(taps))
        .map(|_| vec![Complex::ZERO; n + 1])
        .collect();
    let mut lag0 = 0usize;
    while lag0 < taps {
        let group = (taps - lag0).min(4);
        match group {
            4 => lag_prefix_group::<4>(x, lag0, &mut prefix),
            3 => lag_prefix_group::<3>(x, lag0, &mut prefix),
            2 => lag_prefix_group::<2>(x, lag0, &mut prefix),
            _ => lag_prefix_group::<1>(x, lag0, &mut prefix),
        }
        for (lane, pref) in prefix.iter().enumerate().take(group) {
            let lag = lag0 + lane;
            for j in 0..taps - lag {
                let k = j + lag;
                // Observation i sums g_lag[i−j]; run [lo, hi) maps to the
                // prefix window [lo−j, hi−j) (lo ≥ taps−1 ≥ j keeps it
                // valid).
                let mut acc = Complex::ZERO;
                for &(lo, hi) in runs {
                    acc += pref[hi - j] - pref[lo - j];
                }
                a[(j, k)] = acc;
                if lag != 0 {
                    a[(k, j)] = acc.conj();
                }
            }
        }
        lag0 += group;
    }

    // Cross-correlation vector, O(obs·taps) — already the lower bound.
    //
    // Single-run case (unmasked estimation, e.g. the canceller's silent
    // window): each b[j] is one contiguous conjugate dot product, so route
    // it through the SIMD reduction kernel. Bitwise identity with the
    // scalar loop holds because complex multiplication commutes bitwise
    // (`y·conj(x) == conj(x)·y`) and the kernel folds in observation order
    // below `SIMD_MIN_REDUCE` — pipeline-sized windows never leave the
    // bit-exact path (pinned by the `_equiv` tests). Multi-run masked
    // estimation keeps the per-run nested fold: splitting each b[j] into
    // per-run kernel calls would regroup the FP additions across runs.
    if let [(lo, hi)] = *runs {
        for (j, bj) in b.iter_mut().enumerate() {
            *bj = backfi_dsp::simd::dot_conj_energy_auto(&y[lo..hi], &x[lo - j..hi - j]).0;
        }
    } else {
        for (j, bj) in b.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for &(lo, hi) in runs {
                for i in lo..hi {
                    acc += x[i - j].conj() * y[i];
                }
            }
            *bj = acc;
        }
    }

    // conj(x)·x has exactly zero imaginary part, so the lag-0 diagonal
    // entry IS the input-power sum over the observation window.
    let power_sum = a[(0, 0)].re;
    let count = runs.iter().map(|&(lo, hi)| hi - lo).sum();
    (a, b, power_sum, count)
}

/// Estimate a `taps`-long FIR `h` from input `x` and output `y` (same
/// indexing: `y[n] = Σ_k h[k]·x[n−k]`). Only output samples `n ≥ taps−1`
/// (full history available) contribute.
///
/// `ridge` is the regularization λ relative to the average input power
/// (1e−6…1e−3 typical; guards against ill-conditioning when `x` has little
/// energy in some delay bins).
///
/// The normal equations are built in O(N·taps) by exploiting their
/// near-Toeplitz structure (see [`estimate_fir_direct`] for the reference
/// O(N·taps²) form, equivalent within float rounding).
///
/// Returns `None` when the system is singular even after regularization or
/// there are fewer observations than taps.
pub fn estimate_fir(x: &[Complex], y: &[Complex], taps: usize, ridge: f64) -> Option<Vec<Complex>> {
    assert_eq!(x.len(), y.len(), "estimate_fir: length mismatch");
    assert!(taps >= 1, "estimate_fir: need at least one tap");
    let _t = backfi_obs::span("sic.ls.estimate_fir");
    let n = x.len();
    if n < taps * 2 {
        return None;
    }
    let (mut a, b, power_sum, _) = normal_equations(x, y, taps, &[(taps - 1, n)]);
    a.add_diag(ridge * power_sum);
    solve(&a, &b)
}

/// The direct O(N·taps²) normal-equation build behind [`estimate_fir`],
/// bypassing the Toeplitz fast path. Reference implementation for the
/// equivalence tests and the before/after kernel benches.
///
/// # Panics
/// Panics on length mismatch or `taps == 0`.
pub fn estimate_fir_direct(
    x: &[Complex],
    y: &[Complex],
    taps: usize,
    ridge: f64,
) -> Option<Vec<Complex>> {
    assert_eq!(x.len(), y.len(), "estimate_fir: length mismatch");
    assert!(taps >= 1, "estimate_fir: need at least one tap");
    let n = x.len();
    if n < taps * 2 {
        return None;
    }

    // Normal equations: A[j][k] = Σ_n conj(x[n−j])·x[n−k],
    //                   b[j]    = Σ_n conj(x[n−j])·y[n],  n from taps−1.
    let mut a = CMat::zeros(taps, taps);
    let mut b = vec![Complex::ZERO; taps];
    let mut mean_power = 0.0;
    for xv in x.iter().take(n).skip(taps - 1) {
        mean_power += xv.norm_sqr();
    }
    mean_power /= (n - taps + 1) as f64;

    for j in 0..taps {
        for k in j..taps {
            let mut acc = Complex::ZERO;
            for n_i in taps - 1..n {
                acc += x[n_i - j].conj() * x[n_i - k];
            }
            a[(j, k)] = acc;
            if k != j {
                a[(k, j)] = acc.conj();
            }
        }
        let mut acc = Complex::ZERO;
        for n_i in taps - 1..n {
            acc += x[n_i - j].conj() * y[n_i];
        }
        b[j] = acc;
    }
    a.add_diag(ridge * mean_power * (n - taps + 1) as f64);
    solve(&a, &b)
}

/// Masked variant of [`estimate_fir`]: only output indices `n` with
/// `mask[n] == true` contribute observations.
///
/// The reader uses this for the forward∗backward channel (§4.3.1): the model
/// `y = (x·c) ∗ h_fb` is exact only when the whole length-`taps` history of a
/// sample lies inside one PN chip, so samples spanning a chip transition are
/// masked out.
pub fn estimate_fir_masked(
    x: &[Complex],
    y: &[Complex],
    taps: usize,
    ridge: f64,
    mask: &[bool],
) -> Option<Vec<Complex>> {
    assert_eq!(x.len(), y.len(), "estimate_fir_masked: length mismatch");
    assert_eq!(
        mask.len(),
        y.len(),
        "estimate_fir_masked: mask length mismatch"
    );
    assert!(taps >= 1, "estimate_fir_masked: need at least one tap");
    let _t = backfi_obs::span("sic.ls.estimate_fir_masked");
    let n = x.len();
    // Collapse the mask into contiguous observation runs: chip-transition
    // masks keep long true stretches, so the per-(j,k) cost of the
    // prefix-sum Gram build is two lookups per run instead of one
    // multiply-accumulate per observation.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut count = 0usize;
    let mut i = taps - 1;
    while i < n {
        if mask[i] {
            let lo = i;
            while i < n && mask[i] {
                i += 1;
            }
            runs.push((lo, i));
            count += i - lo;
        } else {
            i += 1;
        }
    }
    if count < taps * 2 {
        return None;
    }
    let (mut a, b, power_sum, obs) = normal_equations(x, y, taps, &runs);
    debug_assert_eq!(obs, count);
    a.add_diag(ridge * power_sum);
    solve(&a, &b)
}

/// The direct per-observation build behind [`estimate_fir_masked`],
/// bypassing the run-structured fast path. Reference implementation for the
/// equivalence tests and benches.
///
/// # Panics
/// Panics on length mismatch or `taps == 0`.
pub fn estimate_fir_masked_direct(
    x: &[Complex],
    y: &[Complex],
    taps: usize,
    ridge: f64,
    mask: &[bool],
) -> Option<Vec<Complex>> {
    assert_eq!(x.len(), y.len(), "estimate_fir_masked: length mismatch");
    assert_eq!(
        mask.len(),
        y.len(),
        "estimate_fir_masked: mask length mismatch"
    );
    assert!(taps >= 1, "estimate_fir_masked: need at least one tap");
    let n = x.len();
    let idx: Vec<usize> = (taps - 1..n).filter(|&i| mask[i]).collect();
    if idx.len() < taps * 2 {
        return None;
    }
    let mut a = CMat::zeros(taps, taps);
    let mut b = vec![Complex::ZERO; taps];
    let mut mean_power = 0.0;
    for &i in &idx {
        mean_power += x[i].norm_sqr();
    }
    mean_power /= idx.len() as f64;
    for j in 0..taps {
        for k in j..taps {
            let mut acc = Complex::ZERO;
            for &i in &idx {
                acc += x[i - j].conj() * x[i - k];
            }
            a[(j, k)] = acc;
            if k != j {
                a[(k, j)] = acc.conj();
            }
        }
        let mut acc = Complex::ZERO;
        for &i in &idx {
            acc += x[i - j].conj() * y[i];
        }
        b[j] = acc;
    }
    a.add_diag(ridge * mean_power * idx.len() as f64);
    solve(&a, &b)
}

/// Residual power after subtracting `x ∗ h` from `y` over the region where
/// the convolution is fully formed.
pub fn residual_power(x: &[Complex], y: &[Complex], h: &[Complex]) -> f64 {
    let model = backfi_dsp::fir::filter(h, x);
    let start = h.len().saturating_sub(1);
    let mut acc = 0.0;
    let mut cnt = 0usize;
    for i in start..y.len().min(model.len()) {
        acc += (y[i] - model[i]).norm_sqr();
        cnt += 1;
    }
    if cnt == 0 {
        0.0
    } else {
        acc / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::fir::filter;
    use backfi_dsp::noise::{add_noise, cgauss_vec};
    use backfi_dsp::rng::SplitMix64;

    fn probe(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = SplitMix64::new(seed);
        cgauss_vec(&mut rng, n, 1.0)
    }

    #[test]
    fn recovers_exact_channel_noiseless() {
        let x = probe(500, 1);
        let h_true = vec![
            Complex::new(0.8, -0.1),
            Complex::new(0.0, 0.3),
            Complex::new(-0.05, 0.02),
        ];
        let y = filter(&h_true, &x);
        let h = estimate_fir(&x, &y, 3, 1e-9).unwrap();
        for (g, t) in h.iter().zip(&h_true) {
            assert!((*g - *t).abs() < 1e-9, "{g:?} vs {t:?}");
        }
    }

    #[test]
    fn overmodelling_finds_zero_extra_taps() {
        let x = probe(800, 2);
        let h_true = vec![Complex::ONE, Complex::new(0.2, 0.2)];
        let y = filter(&h_true, &x);
        let h = estimate_fir(&x, &y, 6, 1e-9).unwrap();
        for t in &h[2..] {
            assert!(t.abs() < 1e-8, "spurious tap {t:?}");
        }
    }

    #[test]
    fn estimation_error_scales_with_noise_and_length() {
        // Error variance per tap ≈ σ²/(N·Px): quadrupling N halves the error.
        let h_true = vec![Complex::ONE, Complex::new(-0.3, 0.4)];
        let mut errs = Vec::new();
        for &n in &[400usize, 1600] {
            let x = probe(n, 3);
            let mut y = filter(&h_true, &x);
            let mut rng = SplitMix64::new(99);
            add_noise(&mut rng, &mut y, 0.01);
            let h = estimate_fir(&x, &y, 2, 1e-9).unwrap();
            let err: f64 = h
                .iter()
                .zip(&h_true)
                .map(|(g, t)| (*g - *t).norm_sqr())
                .sum();
            errs.push(err);
        }
        assert!(errs[1] < errs[0], "more data must reduce error: {errs:?}");
    }

    #[test]
    fn residual_reaches_noise_floor() {
        let x = probe(1000, 4);
        let h_true = vec![
            Complex::new(0.5, 0.5),
            Complex::new(0.1, -0.2),
            Complex::new(0.01, 0.0),
        ];
        let mut y = filter(&h_true, &x);
        let noise = 1e-4;
        let mut rng = SplitMix64::new(7);
        add_noise(&mut rng, &mut y, noise);
        let h = estimate_fir(&x, &y, 3, 1e-9).unwrap();
        let res = residual_power(&x, &y, &h);
        assert!(res < noise * 1.2, "residual {res:e} vs noise {noise:e}");
    }

    #[test]
    fn too_few_samples_returns_none() {
        let x = probe(10, 5);
        let y = x.clone();
        assert!(estimate_fir(&x, &y, 8, 1e-6).is_none());
    }

    #[test]
    fn masked_estimation_ignores_corrupted_samples() {
        let x = probe(1000, 8);
        let h_true = vec![Complex::new(0.4, -0.2), Complex::new(0.1, 0.1)];
        let mut y = filter(&h_true, &x);
        // Corrupt every 10th sample badly; mask them out.
        let mut mask = vec![true; y.len()];
        for i in (0..y.len()).step_by(10) {
            y[i] += Complex::new(5.0, -5.0);
            mask[i] = false;
        }
        let h = estimate_fir_masked(&x, &y, 2, 1e-9, &mask).unwrap();
        for (g, t) in h.iter().zip(&h_true) {
            assert!((*g - *t).abs() < 1e-9, "{g:?} vs {t:?}");
        }
        // Unmasked estimation would be destroyed by the outliers.
        let h_bad = estimate_fir(&x, &y, 2, 1e-9).unwrap();
        let err: f64 = h_bad
            .iter()
            .zip(&h_true)
            .map(|(g, t)| (*g - *t).norm_sqr())
            .sum();
        assert!(err > 1e-3, "outliers should hurt: {err:e}");
    }

    #[test]
    fn masked_with_all_true_matches_unmasked() {
        let x = probe(400, 9);
        let h_true = vec![Complex::new(0.2, 0.7)];
        let y = filter(&h_true, &x);
        let mask = vec![true; y.len()];
        let a = estimate_fir(&x, &y, 1, 1e-9).unwrap();
        let b = estimate_fir_masked(&x, &y, 1, 1e-9, &mask).unwrap();
        assert!((a[0] - b[0]).abs() < 1e-12);
    }

    #[test]
    fn works_with_modulated_reference() {
        // The h_fb estimation case: x is WiFi × PN chips.
        let wifi = probe(600, 6);
        let chips: Vec<f64> = (0..600)
            .map(|i| if (i / 20) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let u: Vec<Complex> = wifi.iter().zip(&chips).map(|(w, c)| w.scale(*c)).collect();
        let h_true = vec![Complex::new(0.3, 0.1), Complex::new(-0.1, 0.05)];
        let y = filter(&h_true, &u);
        let h = estimate_fir(&u, &y, 2, 1e-9).unwrap();
        for (g, t) in h.iter().zip(&h_true) {
            assert!((*g - *t).abs() < 1e-9);
        }
    }
}
