//! The digital cancellation stage.
//!
//! After the ADC, a FIR filter estimated by least squares removes the
//! residual self-interference. BackFi's twist on standard full-duplex
//! digital cancellation (§4.2): the filter is trained **only on the tag's
//! silent period**, so the backscatter signal — which is correlated with the
//! transmitted signal — can never leak into the estimate and get cancelled
//! along with the interference.

use crate::estimator::estimate_fir;
use backfi_dsp::Complex;

/// A trained digital canceller.
#[derive(Clone, Debug)]
pub struct DigitalCanceller {
    taps: Vec<Complex>,
}

impl DigitalCanceller {
    /// Train on a window where the tag is known to be silent.
    ///
    /// * `x_clean` — transmitted baseband over the window,
    /// * `y` — post-ADC received samples over the same window,
    /// * `taps` — filter length (should cover the full environment delay
    ///   spread; see `backfi-chan::environment`),
    /// * `ridge` — LS regularization.
    ///
    /// Returns `None` if the window is too short for the requested length.
    pub fn train(x_clean: &[Complex], y: &[Complex], taps: usize, ridge: f64) -> Option<Self> {
        let _t = backfi_obs::span("sic.digital.train");
        let h = estimate_fir(x_clean, y, taps, ridge)?;
        Some(DigitalCanceller { taps: h })
    }

    /// The estimated residual-interference response.
    pub fn taps(&self) -> &[Complex] {
        &self.taps
    }

    /// Subtract the reconstructed interference from `y` over the whole
    /// packet.
    pub fn cancel(&self, x_clean: &[Complex], y: &[Complex]) -> Vec<Complex> {
        assert_eq!(x_clean.len(), y.len(), "length mismatch");
        let _t = backfi_obs::span("sic.digital.cancel");
        let model = backfi_dsp::fir::filter(&self.taps, x_clean);
        y.iter().zip(&model).map(|(a, b)| *a - *b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::fir::filter;
    use backfi_dsp::noise::{add_noise, cgauss_vec};
    use backfi_dsp::rng::SplitMix64;
    use backfi_dsp::stats::{db, mean_power};

    #[test]
    fn cancels_to_near_noise_floor() {
        let mut rng = SplitMix64::new(1);
        let x = cgauss_vec(&mut rng, 2000, 1.0);
        let h = vec![
            Complex::new(0.01, 0.005),
            Complex::new(-0.002, 0.001),
            Complex::new(0.0005, -0.0002),
        ];
        let noise = 1e-9;
        let mut y = filter(&h, &x);
        add_noise(&mut rng, &mut y, noise);
        let c = DigitalCanceller::train(&x[..400], &y[..400], 8, 1e-8).unwrap();
        let out = c.cancel(&x, &y);
        let res = mean_power(&out[8..]);
        assert!(db(res / noise) < 1.0, "residual {res:e} vs noise {noise:e}");
    }

    #[test]
    fn training_on_silent_period_spares_the_tag_signal() {
        // The paper's central protocol argument: train during silence, and
        // the backscatter survives cancellation untouched.
        let mut rng = SplitMix64::new(2);
        let n = 4000;
        let silent = 400usize;
        let x = cgauss_vec(&mut rng, n, 1.0);
        let h_env = vec![Complex::new(0.02, -0.01), Complex::new(0.003, 0.001)];
        let h_fb = vec![Complex::new(1e-4, 5e-5)];
        // Tag modulates BPSK after the silent period.
        let gamma: Vec<Complex> = (0..n)
            .map(|i| {
                if i < silent {
                    Complex::ZERO
                } else if (i / 20) % 2 == 0 {
                    Complex::ONE
                } else {
                    -Complex::ONE
                }
            })
            .collect();
        let si = filter(&h_env, &x);
        let tag_in = filter(&h_fb, &x);
        let tag: Vec<Complex> = tag_in.iter().zip(&gamma).map(|(a, g)| *a * *g).collect();
        let mut y: Vec<Complex> = si.iter().zip(&tag).map(|(a, b)| *a + *b).collect();
        add_noise(&mut rng, &mut y, 1e-12);

        let c = DigitalCanceller::train(&x[..silent], &y[..silent], 4, 1e-9).unwrap();
        let out = c.cancel(&x, &y);
        // After cancellation, the remaining signal in the data region should
        // be ≈ the tag signal.
        let tag_power = mean_power(&tag[silent..]);
        let out_power = mean_power(&out[silent..]);
        assert!(
            db(out_power / tag_power).abs() < 1.0,
            "tag preserved: out {out_power:e} vs tag {tag_power:e}"
        );
    }

    #[test]
    fn naive_training_on_modulated_region_cancels_the_tag() {
        // Ablation (DESIGN.md §5): train on a window where the tag is
        // backscattering a CONSTANT phase — the estimator then absorbs the
        // tag path into its interference model and cancels it.
        let mut rng = SplitMix64::new(3);
        let n = 3000;
        let x = cgauss_vec(&mut rng, n, 1.0);
        let h_env = vec![Complex::new(0.02, -0.01)];
        let h_fb = vec![Complex::new(2e-4, 1e-4)];
        let si = filter(&h_env, &x);
        let tag_in = filter(&h_fb, &x);
        // Tag reflects constantly (e.g. preamble) during training.
        let mut y: Vec<Complex> = si.iter().zip(&tag_in).map(|(a, b)| *a + *b).collect();
        add_noise(&mut rng, &mut y, 1e-14);
        let c = DigitalCanceller::train(&x[..600], &y[..600], 4, 1e-9).unwrap();
        let out = c.cancel(&x, &y);
        let tag_power = mean_power(&tag_in);
        let out_power = mean_power(&out[4..]);
        assert!(
            out_power < tag_power * 0.01,
            "tag should be (wrongly) cancelled: {out_power:e} vs {tag_power:e}"
        );
    }

    #[test]
    fn short_window_returns_none() {
        let x = vec![Complex::ONE; 10];
        let y = vec![Complex::ONE; 10];
        assert!(DigitalCanceller::train(&x, &y, 16, 1e-6).is_none());
    }
}
