//! # backfi-sic
//!
//! Self-interference cancellation for the BackFi reader (§4.2).
//!
//! The reader receives its own WiFi transmission ~70–90 dB stronger than the
//! tag's backscatter. Cancellation runs in two stages, mirroring the
//! full-duplex radio designs the paper builds on:
//!
//! * [`analog`] — an RF canceller with a few quantized taps whose job is to
//!   knock the self-interference down below the ADC's saturation point,
//! * [`digital`] — a least-squares FIR estimated **during the tag's 16 µs
//!   silent period** (the paper's key protocol trick: with no backscatter
//!   present, the estimate cannot capture — and therefore cannot cancel —
//!   the tag signal) and subtracted in baseband,
//! * [`estimator`] — the shared regularized least-squares FIR estimator
//!   (also used by the reader for the forward∗backward channel),
//! * [`linalg`] — small dense complex linear algebra (the `nalgebra`/`faer`
//!   crates are not on the offline allowlist),
//! * [`canceller`] — the composed two-stage pipeline including the ADC.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod analog;
pub mod canceller;
pub mod digital;
pub mod estimator;
pub mod linalg;

pub use canceller::{CancellerConfig, CancellerReport, SelfInterferenceCanceller};
pub use estimator::{estimate_fir, estimate_fir_masked};
