//! Small dense complex linear algebra.
//!
//! Just enough for regularized least squares on FIR channel estimation
//! problems (matrix sizes ≤ ~64). Gaussian elimination with partial pivoting
//! on the (Hermitian, ridge-regularized) normal equations is numerically
//! adequate at these sizes and condition numbers.

use backfi_dsp::Complex;

/// A dense row-major complex matrix.
#[derive(Clone, Debug)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| *a * *b).sum()
            })
            .collect()
    }

    /// Add `lambda` to the diagonal (ridge regularization).
    pub fn add_diag(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += Complex::real(lambda);
        }
    }
}

impl std::ops::Index<(usize, usize)> for CMat {
    type Output = Complex;
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        &mut self.data[r * self.cols + c]
    }
}

/// Solve the square system `A·x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` when the matrix is numerically singular, or when
/// any input entry is non-finite — a NaN/∞ observation window must surface
/// as an estimation failure, not propagate silently into canceller taps.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn solve(a: &CMat, b: &[Complex]) -> Option<Vec<Complex>> {
    assert_eq!(a.rows, a.cols, "solve needs a square matrix");
    assert_eq!(b.len(), a.rows, "rhs dimension mismatch");
    if !a.data.iter().all(|v| v.is_finite()) || !b.iter().all(|v| v.is_finite()) {
        return None;
    }
    let n = a.rows;
    // Augmented working copy.
    let mut m = a.data.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Pivot: largest magnitude in this column at/below the diagonal.
        let mut pivot = col;
        let mut best = m[col * n + col].norm_sqr();
        for r in col + 1..n {
            let v = m[r * n + col].norm_sqr();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if pivot != col {
            for c in 0..n {
                m.swap(col * n + c, pivot * n + c);
            }
            rhs.swap(col, pivot);
        }
        let diag = m[col * n + col];
        let inv = diag.recip();
        for r in col + 1..n {
            let factor = m[r * n + col] * inv;
            if factor == Complex::ZERO {
                continue;
            }
            for c in col..n {
                let v = m[col * n + c];
                m[r * n + c] -= factor * v;
            }
            let v = rhs[col];
            rhs[r] -= factor * v;
        }
    }
    // Back substitution.
    let mut x = vec![Complex::ZERO; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for c in row + 1..n {
            acc -= m[row * n + c] * x[c];
        }
        x[row] = acc * m[row * n + row].recip();
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_solve() {
        let a = CMat::eye(4);
        let b: Vec<Complex> = (0..4).map(|i| c(i as f64, -(i as f64))).collect();
        assert_eq!(solve(&a, &b).unwrap(), b);
    }

    #[test]
    fn known_2x2() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 0)] = c(2.0, 0.0);
        a[(0, 1)] = c(0.0, 1.0);
        a[(1, 0)] = c(0.0, -1.0);
        a[(1, 1)] = c(3.0, 0.0);
        let x_true = vec![c(1.0, 1.0), c(-2.0, 0.5)];
        let b = a.mul_vec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (g, t) in x.iter().zip(&x_true) {
            assert!((*g - *t).abs() < 1e-12);
        }
    }

    #[test]
    fn random_system_roundtrip() {
        // Deterministic pseudo-random well-conditioned system.
        let n = 16;
        let mut a = CMat::zeros(n, n);
        let mut s = 0xABCDEFu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        for r in 0..n {
            for col in 0..n {
                a[(r, col)] = c(next(), next());
            }
            a[(r, r)] += Complex::real(4.0); // diagonal dominance
        }
        let x_true: Vec<Complex> = (0..n)
            .map(|i| c(i as f64 * 0.3, 1.0 - i as f64 * 0.1))
            .collect();
        let b = a.mul_vec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (g, t) in x.iter().zip(&x_true) {
            assert!((*g - *t).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_returns_none() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 0)] = c(1.0, 0.0);
        a[(0, 1)] = c(2.0, 0.0);
        a[(1, 0)] = c(2.0, 0.0);
        a[(1, 1)] = c(4.0, 0.0);
        assert!(solve(&a, &[Complex::ONE, Complex::ONE]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 0)] = Complex::ZERO;
        a[(0, 1)] = c(1.0, 0.0);
        a[(1, 0)] = c(1.0, 0.0);
        a[(1, 1)] = Complex::ZERO;
        let x = solve(&a, &[c(3.0, 0.0), c(5.0, 0.0)]).unwrap();
        assert!((x[0] - c(5.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn ridge_makes_singular_solvable() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 0)] = c(1.0, 0.0);
        a[(0, 1)] = c(1.0, 0.0);
        a[(1, 0)] = c(1.0, 0.0);
        a[(1, 1)] = c(1.0, 0.0);
        a.add_diag(0.1);
        assert!(solve(&a, &[Complex::ONE, Complex::ONE]).is_some());
    }
}
