//! Old-vs-new equivalence for the Toeplitz-structured normal-equation build.
//!
//! `estimate_fir` / `estimate_fir_masked` now assemble the Gram matrix from
//! per-lag prefix sums in O(N·taps); the `_direct` forms keep the original
//! O(N·taps²) triple loop. Over ≥20 seeds the solved taps must agree to
//! better than 1e-9 relative (per-element, relative to the largest tap).

use backfi_dsp::fir::filter;
use backfi_dsp::noise::{add_noise, cgauss_vec};
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::Complex;
use backfi_sic::estimator::{
    estimate_fir, estimate_fir_direct, estimate_fir_masked, estimate_fir_masked_direct,
};

fn assert_taps_equiv(new: &[Complex], old: &[Complex], what: &str) {
    assert_eq!(new.len(), old.len(), "{what}: tap count mismatch");
    let scale = old
        .iter()
        .map(|t| t.abs())
        .fold(0.0f64, f64::max)
        .max(1e-300);
    for (i, (a, b)) in new.iter().zip(old).enumerate() {
        let err = (*a - *b).abs() / scale;
        assert!(err < 1e-9, "{what}: tap {i} relative error {err:e}");
    }
}

/// A deterministic per-seed scenario: random channel, noisy observation.
fn scenario(seed: u64, n: usize, true_taps: usize) -> (Vec<Complex>, Vec<Complex>) {
    let mut rng = SplitMix64::new(seed);
    let x = cgauss_vec(&mut rng, n, 1.0);
    let h = cgauss_vec(&mut rng, true_taps, 0.3);
    let mut y = filter(&h, &x);
    add_noise(&mut rng, &mut y, 1e-4);
    (x, y)
}

#[test]
fn estimate_fir_matches_direct_over_seeds() {
    for seed in 1..=25u64 {
        // Vary problem size with the seed so the suite covers short/long
        // windows and small/large tap counts.
        let n = 400 + (seed as usize % 5) * 700;
        let taps = 2 + (seed as usize % 4) * 9; // 2, 11, 20, 29
        let (x, y) = scenario(seed, n, 3);
        let new = estimate_fir(&x, &y, taps, 1e-8).expect("fast estimate failed");
        let old = estimate_fir_direct(&x, &y, taps, 1e-8).expect("direct estimate failed");
        assert_taps_equiv(&new, &old, &format!("seed {seed} n={n} taps={taps}"));
    }
}

#[test]
fn estimate_fir_masked_matches_direct_over_seeds() {
    for seed in 1..=25u64 {
        let n = 600 + (seed as usize % 4) * 500;
        let taps = 2 + (seed as usize % 3) * 3; // 2, 5, 8
        let (x, y) = scenario(seed.wrapping_mul(31).wrapping_add(7), n, 2);
        // Chip-transition-style mask: drop the first taps−1 samples of every
        // 20-sample chip, like the reader's h_fb estimation window.
        let mask: Vec<bool> = (0..n).map(|i| i % 20 >= taps - 1).collect();
        let new = estimate_fir_masked(&x, &y, taps, 1e-8, &mask).expect("fast masked failed");
        let old =
            estimate_fir_masked_direct(&x, &y, taps, 1e-8, &mask).expect("direct masked failed");
        assert_taps_equiv(&new, &old, &format!("masked seed {seed} n={n} taps={taps}"));
    }
}

#[test]
fn masked_with_sparse_irregular_mask_matches_direct() {
    // Irregular runs (not chip-periodic) exercise the run-collapsing logic.
    let (x, y) = scenario(99, 2000, 3);
    let mask: Vec<bool> = (0..2000)
        .map(|i| !(i * 2654435761usize).is_multiple_of(7) && !(500..530).contains(&i))
        .collect();
    let new = estimate_fir_masked(&x, &y, 6, 1e-8, &mask).unwrap();
    let old = estimate_fir_masked_direct(&x, &y, 6, 1e-8, &mask).unwrap();
    assert_taps_equiv(&new, &old, "irregular mask");
}

#[test]
fn fast_and_direct_agree_on_none_cases() {
    let x = vec![Complex::ONE; 10];
    let y = vec![Complex::ONE; 10];
    assert!(estimate_fir(&x, &y, 8, 1e-6).is_none());
    assert!(estimate_fir_direct(&x, &y, 8, 1e-6).is_none());
    let mask = vec![false; 10];
    assert!(estimate_fir_masked(&x, &y, 2, 1e-6, &mask).is_none());
    assert!(estimate_fir_masked_direct(&x, &y, 2, 1e-6, &mask).is_none());
}

#[test]
fn b_vector_kernel_is_bitwise_the_scalar_loop_below_floor() {
    // The single-run cross-correlation vector now routes through
    // `dot_conj_energy_auto`. Below `SIMD_MIN_REDUCE` that kernel folds in
    // observation order, and complex multiplication commutes bitwise, so
    // `Σ y[i]·conj(x[i])` must equal the historical `Σ conj(x[i])·y[i]`
    // loop bit-for-bit — the pipeline's 320-sample silent window sits on
    // this path.
    for seed in 1..=20u64 {
        let (x, y) = scenario(seed, 300, 3);
        for j in 0..8usize {
            let lo = 7; // taps − 1 for an 8-tap estimate
            let window_y = &y[lo..];
            let window_x = &x[lo - j..x.len() - j];
            let kernel = backfi_dsp::simd::dot_conj_energy_auto(window_y, window_x).0;
            let mut scalar = Complex::ZERO;
            for i in lo..x.len() {
                scalar += x[i - j].conj() * y[i];
            }
            assert_eq!(
                kernel.re.to_bits(),
                scalar.re.to_bits(),
                "seed {seed} lag {j}: re differs"
            );
            assert_eq!(
                kernel.im.to_bits(),
                scalar.im.to_bits(),
                "seed {seed} lag {j}: im differs"
            );
        }
    }
}

#[test]
fn estimate_fir_is_backend_invariant_above_floor() {
    // Above `SIMD_MIN_REDUCE` the routed b-vector uses the 4-way lane
    // split, which is defined to produce identical bits on the scalar and
    // AVX2 backends — estimate_fir's taps must not depend on the machine.
    let (x, y) = scenario(42, 8192, 4);
    backfi_dsp::simd::force_scalar(true);
    let scalar = estimate_fir(&x, &y, 12, 1e-8).expect("scalar estimate failed");
    backfi_dsp::simd::force_scalar(false);
    let native = estimate_fir(&x, &y, 12, 1e-8).expect("native estimate failed");
    for (i, (a, b)) in scalar.iter().zip(&native).enumerate() {
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "tap {i}: re differs");
        assert_eq!(a.im.to_bits(), b.im.to_bits(), "tap {i}: im differs");
    }
}

#[test]
fn non_finite_observations_yield_none_not_nan_taps() {
    // The `solve` guard: a NaN in the observation window must surface as an
    // estimation failure instead of silently poisoning the canceller taps.
    let (x, mut y) = scenario(7, 800, 3);
    y[400] = Complex::new(f64::NAN, 0.0);
    assert!(estimate_fir(&x, &y, 4, 1e-8).is_none());
    let mut x_bad = x;
    x_bad[10] = Complex::new(f64::INFINITY, 1.0);
    let y_ok = vec![Complex::ONE; 800];
    assert!(estimate_fir(&x_bad, &y_ok, 4, 1e-8).is_none());
}
