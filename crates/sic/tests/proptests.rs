//! Property-based tests of the linear algebra and channel estimation in the
//! cancellation stack.

use backfi_dsp::fir::filter;
use backfi_dsp::Complex;
use backfi_sic::estimator::{estimate_fir, residual_power};
use backfi_sic::linalg::{solve, CMat};
use proptest::prelude::*;

fn small_complex() -> impl Strategy<Value = Complex> {
    (-5.0f64..5.0, -5.0f64..5.0).prop_map(|(re, im)| Complex::new(re, im))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn solve_recovers_solution_of_dd_system(
        entries in proptest::collection::vec(small_complex(), 16..17),
        x_true in proptest::collection::vec(small_complex(), 4..5),
    ) {
        // Build a 4×4 diagonally dominant (hence well-conditioned) matrix.
        let mut a = CMat::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                a[(r, c)] = entries[r * 4 + c];
            }
            a[(r, r)] += Complex::real(25.0);
        }
        let b = a.mul_vec(&x_true);
        let x = solve(&a, &b).expect("dd system is solvable");
        for (g, t) in x.iter().zip(&x_true) {
            prop_assert!((*g - *t).abs() < 1e-7, "{:?} vs {:?}", g, t);
        }
    }

    #[test]
    fn identity_times_anything(v in proptest::collection::vec(small_complex(), 6..7)) {
        let a = CMat::eye(6);
        prop_assert_eq!(a.mul_vec(&v), v.clone());
        let x = solve(&a, &v).unwrap();
        for (g, t) in x.iter().zip(&v) {
            prop_assert!((*g - *t).abs() < 1e-12);
        }
    }

    #[test]
    fn ls_recovers_arbitrary_short_channels(
        h_true in proptest::collection::vec(small_complex(), 1..5),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = backfi_dsp::noise::cgauss_vec(&mut rng, 300, 1.0);
        let y = filter(&h_true, &x);
        let h = estimate_fir(&x, &y, h_true.len(), 1e-10).expect("solvable");
        for (g, t) in h.iter().zip(&h_true) {
            prop_assert!((*g - *t).abs() < 1e-6, "{:?} vs {:?}", g, t);
        }
        prop_assert!(residual_power(&x, &y, &h) < 1e-10);
    }

    #[test]
    fn ls_overmodelling_is_harmless(
        h_true in proptest::collection::vec(small_complex(), 1..3),
        extra in 1usize..5, seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = backfi_dsp::noise::cgauss_vec(&mut rng, 400, 1.0);
        let y = filter(&h_true, &x);
        let h = estimate_fir(&x, &y, h_true.len() + extra, 1e-10).expect("solvable");
        for t in &h[h_true.len()..] {
            prop_assert!(t.abs() < 1e-6, "spurious tap {:?}", t);
        }
    }
}
