//! Randomized tests of the linear algebra and channel estimation in the
//! cancellation stack.
//!
//! Formerly `proptest`-based; now driven by the in-tree [`SplitMix64`]
//! generator so the suite builds offline and every case is reproducible from
//! its loop index.

use backfi_dsp::fir::filter;
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::Complex;
use backfi_sic::estimator::{estimate_fir, residual_power};
use backfi_sic::linalg::{solve, CMat};

const CASES: u64 = 32;

fn small_complex(rng: &mut SplitMix64) -> Complex {
    Complex::new(-5.0 + 10.0 * rng.next_f64(), -5.0 + 10.0 * rng.next_f64())
}

fn small_complex_vec(rng: &mut SplitMix64, len: usize) -> Vec<Complex> {
    (0..len).map(|_| small_complex(rng)).collect()
}

#[test]
fn solve_recovers_solution_of_dd_system() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x51_0000 + case);
        let entries = small_complex_vec(&mut rng, 16);
        let x_true = small_complex_vec(&mut rng, 4);
        // Build a 4×4 diagonally dominant (hence well-conditioned) matrix.
        let mut a = CMat::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                a[(r, c)] = entries[r * 4 + c];
            }
            a[(r, r)] += Complex::real(25.0);
        }
        let b = a.mul_vec(&x_true);
        let x = solve(&a, &b).expect("dd system is solvable");
        for (g, t) in x.iter().zip(&x_true) {
            assert!((*g - *t).abs() < 1e-7, "{g:?} vs {t:?}");
        }
    }
}

#[test]
fn identity_times_anything() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x52_0000 + case);
        let v = small_complex_vec(&mut rng, 6);
        let a = CMat::eye(6);
        assert_eq!(a.mul_vec(&v), v.clone());
        let x = solve(&a, &v).unwrap();
        for (g, t) in x.iter().zip(&v) {
            assert!((*g - *t).abs() < 1e-12);
        }
    }
}

#[test]
fn ls_recovers_arbitrary_short_channels() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x53_0000 + case);
        let n = 1 + rng.below(4) as usize;
        let h_true = small_complex_vec(&mut rng, n);
        let x = backfi_dsp::noise::cgauss_vec(&mut rng, 300, 1.0);
        let y = filter(&h_true, &x);
        let h = estimate_fir(&x, &y, h_true.len(), 1e-10).expect("solvable");
        for (g, t) in h.iter().zip(&h_true) {
            assert!((*g - *t).abs() < 1e-6, "{g:?} vs {t:?}");
        }
        assert!(residual_power(&x, &y, &h) < 1e-10);
    }
}

#[test]
fn ls_overmodelling_is_harmless() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x54_0000 + case);
        let n = 1 + rng.below(2) as usize;
        let h_true = small_complex_vec(&mut rng, n);
        let extra = 1 + rng.below(4) as usize;
        let x = backfi_dsp::noise::cgauss_vec(&mut rng, 400, 1.0);
        let y = filter(&h_true, &x);
        let h = estimate_fir(&x, &y, h_true.len() + extra, 1e-10).expect("solvable");
        for t in &h[h_true.len()..] {
            assert!(t.abs() < 1e-6, "spurious tap {t:?}");
        }
    }
}
