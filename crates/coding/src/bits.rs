//! Bit/byte packing helpers.
//!
//! Both PHYs in this workspace operate on `Vec<bool>` bit streams between the
//! coding stages; frames at the MAC boundary are byte-oriented. 802.11
//! transmits each byte LSB-first, and the tag link uses the same convention
//! for consistency.

/// Unpack bytes to bits, LSB of each byte first (the 802.11 convention).
pub fn bytes_to_bits_lsb(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

/// Pack bits (LSB-first per byte) back into bytes. The bit length must be a
/// multiple of 8.
///
/// # Panics
/// Panics if `bits.len() % 8 != 0`.
pub fn bits_to_bytes_lsb(bits: &[bool]) -> Vec<u8> {
    assert_eq!(bits.len() % 8, 0, "bit count must be a multiple of 8");
    bits.chunks_exact(8)
        .map(|c| {
            c.iter()
                .enumerate()
                .fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i))
        })
        .collect()
}

/// Unpack a `u32` into `n` bits, LSB first.
pub fn u32_to_bits_lsb(v: u32, n: usize) -> Vec<bool> {
    (0..n).map(|i| (v >> i) & 1 == 1).collect()
}

/// Pack up to 32 bits (LSB first) into a `u32`.
///
/// # Panics
/// Panics if more than 32 bits are supplied.
pub fn bits_to_u32_lsb(bits: &[bool]) -> u32 {
    assert!(bits.len() <= 32, "too many bits for u32");
    bits.iter()
        .enumerate()
        .fold(0u32, |acc, (i, &b)| acc | ((b as u32) << i))
}

/// Count positions where two bit slices differ (Hamming distance).
///
/// # Panics
/// Panics if lengths differ.
pub fn hamming_distance(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming_distance: length mismatch");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Bit error rate between a transmitted and received bit stream, comparing
/// the overlapping prefix. Returns `None` when either stream is empty.
pub fn bit_error_rate(tx: &[bool], rx: &[bool]) -> Option<f64> {
    let n = tx.len().min(rx.len());
    if n == 0 {
        return None;
    }
    // Bits the receiver never produced count as errors.
    let missing = tx.len().saturating_sub(rx.len());
    let errs = hamming_distance(&tx[..n], &rx[..n]) + missing;
    Some(errs as f64 / tx.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let bytes = vec![0x00, 0xFF, 0xA5, 0x3C, 0x01];
        assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(&bytes)), bytes);
    }

    #[test]
    fn lsb_first_ordering() {
        let bits = bytes_to_bits_lsb(&[0b0000_0001]);
        assert!(bits[0]);
        assert!(bits[1..].iter().all(|b| !b));
    }

    #[test]
    fn u32_roundtrip() {
        for v in [0u32, 1, 0xDEAD, 0xFFFF_FFFF] {
            assert_eq!(bits_to_u32_lsb(&u32_to_bits_lsb(v, 32)), v);
        }
        assert_eq!(bits_to_u32_lsb(&u32_to_bits_lsb(0b101, 3)), 5);
    }

    #[test]
    fn hamming() {
        let a = [true, false, true];
        let b = [true, true, false];
        assert_eq!(hamming_distance(&a, &b), 2);
        assert_eq!(hamming_distance(&a, &a), 0);
    }

    #[test]
    fn ber() {
        let tx = vec![true; 10];
        let mut rx = tx.clone();
        rx[0] = false;
        assert!((bit_error_rate(&tx, &rx).unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(bit_error_rate(&[], &rx), None);
        // truncated rx counts missing bits as errors
        assert!((bit_error_rate(&tx, &tx[..5]).unwrap() - 0.5).abs() < 1e-12);
    }
}
