//! Convolutional encoding.
//!
//! The industry-standard K=7 code with generator polynomials 133/171 (octal)
//! is used by 802.11a/g and by the BackFi tag (§4.1). The encoder is exactly
//! the "6 shift registers and 8 XOR gates" circuit the paper describes; the
//! [`crate::viterbi`] module decodes it.

/// Constraint length of the standard 802.11 / BackFi code.
pub const CONSTRAINT_LENGTH: usize = 7;
/// Generator polynomial g0 = 133 octal (0b1011011).
pub const G0: u32 = 0o133;
/// Generator polynomial g1 = 171 octal (0b1111001).
pub const G1: u32 = 0o171;

/// A rate-1/2 convolutional encoder with configurable constraint length and
/// two generator polynomials. State is kept across calls so a frame can be
/// encoded in pieces; call [`ConvEncoder::reset`] between frames.
#[derive(Clone, Debug)]
pub struct ConvEncoder {
    k: usize,
    g0: u32,
    g1: u32,
    state: u32,
}

impl Default for ConvEncoder {
    fn default() -> Self {
        Self::ieee80211()
    }
}

impl ConvEncoder {
    /// The standard K=7, (133, 171) encoder.
    pub fn ieee80211() -> Self {
        Self::new(CONSTRAINT_LENGTH, G0, G1)
    }

    /// Custom code. `k` is the constraint length (number of taps including the
    /// current input); polynomials are given with the conventional bit order
    /// where the MSB (bit `k−1`) multiplies the newest input bit.
    ///
    /// # Panics
    /// Panics if `k` is 0 or greater than 16.
    pub fn new(k: usize, g0: u32, g1: u32) -> Self {
        assert!(k > 0 && k <= 16, "constraint length must be in 1..=16");
        ConvEncoder {
            k,
            g0,
            g1,
            state: 0,
        }
    }

    /// Constraint length.
    pub fn constraint_length(&self) -> usize {
        self.k
    }

    /// Number of memory bits (`k − 1`).
    pub fn memory(&self) -> usize {
        self.k - 1
    }

    /// Zero the shift register.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Encode one input bit to two output bits `(b0, b1)` — the outputs of
    /// the g0 and g1 XOR trees.
    #[inline]
    pub fn push(&mut self, bit: bool) -> (bool, bool) {
        // Shift register: newest bit in the MSB position (bit k-1).
        self.state = ((self.state >> 1) | ((bit as u32) << (self.k - 1))) & ((1 << self.k) - 1);
        let b0 = (self.state & self.g0).count_ones() & 1 == 1;
        let b1 = (self.state & self.g1).count_ones() & 1 == 1;
        (b0, b1)
    }

    /// Encode a block of bits. Output has `2 × input.len()` bits, interleaved
    /// as `b0, b1, b0, b1, …`. Does **not** reset or flush — see
    /// [`ConvEncoder::encode_terminated`] for the framed variant.
    pub fn encode(&mut self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(bits.len() * 2);
        for &b in bits {
            let (b0, b1) = self.push(b);
            out.push(b0);
            out.push(b1);
        }
        out
    }

    /// Encode a whole frame from the zero state and append `k − 1` zero tail
    /// bits so the trellis terminates at state 0 (this is what both 802.11 and
    /// the tag do; it lets the Viterbi decoder anchor the traceback).
    pub fn encode_terminated(&mut self, bits: &[bool]) -> Vec<bool> {
        self.reset();
        let mut out = self.encode(bits);
        for _ in 0..self.memory() {
            let (b0, b1) = self.push(false);
            out.push(b0);
            out.push(b1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vector_all_zeros() {
        let mut enc = ConvEncoder::ieee80211();
        let out = enc.encode_terminated(&[false; 8]);
        assert_eq!(out.len(), (8 + 6) * 2);
        assert!(out.iter().all(|b| !b));
    }

    #[test]
    fn impulse_response_matches_polynomials() {
        // A single 1 followed by zeros walks the 1 across the register; the
        // g0 output sequence equals the binary expansion of G0 (MSB first,
        // since the newest bit occupies the MSB).
        let mut enc = ConvEncoder::ieee80211();
        let mut input = vec![true];
        input.extend(std::iter::repeat_n(false, 6));
        let out = enc.encode_terminated(&input);
        let g0_bits: Vec<bool> = (0..7).rev().map(|i| (G0 >> i) & 1 == 1).collect();
        let g1_bits: Vec<bool> = (0..7).rev().map(|i| (G1 >> i) & 1 == 1).collect();
        for i in 0..7 {
            assert_eq!(out[2 * i], g0_bits[i], "g0 bit {i}");
            assert_eq!(out[2 * i + 1], g1_bits[i], "g1 bit {i}");
        }
    }

    #[test]
    fn linearity_over_gf2() {
        // conv codes are linear: enc(a ^ b) == enc(a) ^ enc(b)
        let a: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..32).map(|i| i % 5 == 1).collect();
        let xor: Vec<bool> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let mut enc = ConvEncoder::ieee80211();
        let ea = enc.encode_terminated(&a);
        let eb = enc.encode_terminated(&b);
        let exor = enc.encode_terminated(&xor);
        for i in 0..ea.len() {
            assert_eq!(exor[i], ea[i] ^ eb[i], "bit {i}");
        }
    }

    #[test]
    fn stateful_encoding_matches_block() {
        let bits: Vec<bool> = (0..40).map(|i| (i * 7) % 11 < 5).collect();
        let mut enc = ConvEncoder::ieee80211();
        enc.reset();
        let mut chunked = enc.encode(&bits[..13]);
        chunked.extend(enc.encode(&bits[13..]));
        let mut enc2 = ConvEncoder::ieee80211();
        enc2.reset();
        let block = enc2.encode(&bits);
        assert_eq!(chunked, block);
    }

    #[test]
    fn terminated_frame_ends_in_zero_state() {
        let bits: Vec<bool> = (0..25).map(|i| i % 2 == 0).collect();
        let mut enc = ConvEncoder::ieee80211();
        enc.encode_terminated(&bits);
        // The forward-going memory is state >> 1; the tail must have flushed it.
        assert_eq!(enc.state >> 1, 0, "memory bits must be zero after tail");
    }

    #[test]
    fn time_invariance() {
        // Shifting the input by k-1 zeros shifts the output by 2(k-1) bits.
        let bits: Vec<bool> = (0..16).map(|i| (i * 5) % 7 < 3).collect();
        let mut enc = ConvEncoder::ieee80211();
        enc.reset();
        let direct = enc.encode(&bits);
        let mut padded = vec![false; 6];
        padded.extend_from_slice(&bits);
        enc.reset();
        let shifted = enc.encode(&padded);
        assert_eq!(&shifted[12..], &direct[..]);
    }
}
