//! Puncturing of the rate-1/2 mother code.
//!
//! 802.11a/g derives rates 2/3 and 3/4 from the K=7 rate-1/2 code by deleting
//! coded bits in a fixed pattern; the receiver re-inserts erasures before
//! Viterbi decoding. The BackFi tag uses rates 1/2 and 2/3 (Fig. 7 of the
//! paper), and the energy model charges the tag for the post-puncturing
//! on-air bit count.

/// Code rate of the (possibly punctured) K=7 convolutional code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodeRate {
    /// Unpunctured mother code, rate 1/2.
    Half,
    /// Punctured to rate 2/3.
    TwoThirds,
    /// Punctured to rate 3/4.
    ThreeQuarters,
}

impl CodeRate {
    /// Numerator of the rate fraction (information bits per puncturing period).
    pub fn k(self) -> usize {
        match self {
            CodeRate::Half => 1,
            CodeRate::TwoThirds => 2,
            CodeRate::ThreeQuarters => 3,
        }
    }

    /// Denominator of the rate fraction (transmitted bits per puncturing period).
    pub fn n(self) -> usize {
        match self {
            CodeRate::Half => 2,
            CodeRate::TwoThirds => 3,
            CodeRate::ThreeQuarters => 4,
        }
    }

    /// The rate as a float (`k/n`).
    pub fn as_f64(self) -> f64 {
        self.k() as f64 / self.n() as f64
    }

    /// Human-readable label, e.g. `"1/2"`.
    pub fn label(self) -> &'static str {
        match self {
            CodeRate::Half => "1/2",
            CodeRate::TwoThirds => "2/3",
            CodeRate::ThreeQuarters => "3/4",
        }
    }

    /// The 802.11 puncturing pattern over one period of mother-code output
    /// bits: `true` = transmit, `false` = delete. Period length is `2·k()`.
    pub fn pattern(self) -> &'static [bool] {
        match self {
            // transmit everything
            CodeRate::Half => &[true, true],
            // A1 B1 A2 (B2 stolen)
            CodeRate::TwoThirds => &[true, true, true, false],
            // A1 B1 A2 B3 (B2, A3 stolen)
            CodeRate::ThreeQuarters => &[true, true, true, false, false, true],
        }
    }

    /// Number of on-air coded bits produced for `info_bits` information bits
    /// (excluding any tail).
    pub fn coded_len(self, info_bits: usize) -> usize {
        // ceil(info_bits * n / k)
        (info_bits * self.n()).div_ceil(self.k())
    }
}

/// Delete bits from a rate-1/2 coded stream according to the rate's pattern.
pub fn puncture(coded: &[bool], rate: CodeRate) -> Vec<bool> {
    let pat = rate.pattern();
    coded
        .iter()
        .enumerate()
        .filter(|(i, _)| pat[i % pat.len()])
        .map(|(_, &b)| b)
        .collect()
}

/// Re-insert erasures into a punctured **soft** stream so the Viterbi decoder
/// sees one metric per mother-code bit. Soft values follow the convention
/// `>0 ⇒ bit 1 likely`, `<0 ⇒ bit 0 likely`; erasures become exactly `0.0`
/// (no information).
///
/// `mother_len` is the length of the original unpunctured stream (must be
/// consistent with the pattern and input length).
///
/// # Panics
/// Panics if `punctured` has more bits than the pattern allows for
/// `mother_len`.
pub fn depuncture_soft(punctured: &[f64], rate: CodeRate, mother_len: usize) -> Vec<f64> {
    if rate == CodeRate::Half {
        // Rate 1/2 transmits every mother bit — depuncturing is a copy.
        assert!(punctured.len() >= mother_len, "punctured stream too short");
        assert!(
            punctured.len() <= mother_len,
            "punctured stream too long for mother_len"
        );
        return punctured.to_vec();
    }
    let pat = rate.pattern();
    let mut out = Vec::with_capacity(mother_len);
    let mut src = punctured.iter();
    for i in 0..mother_len {
        if pat[i % pat.len()] {
            out.push(*src.next().expect("punctured stream too short"));
        } else {
            out.push(0.0);
        }
    }
    assert!(
        src.next().is_none(),
        "punctured stream too long for mother_len"
    );
    out
}

/// Hard-decision counterpart of [`depuncture_soft`]: erasures are returned as
/// `None`.
pub fn depuncture_hard(punctured: &[bool], rate: CodeRate, mother_len: usize) -> Vec<Option<bool>> {
    let pat = rate.pattern();
    let mut out = Vec::with_capacity(mother_len);
    let mut src = punctured.iter();
    for i in 0..mother_len {
        if pat[i % pat.len()] {
            out.push(Some(*src.next().expect("punctured stream too short")));
        } else {
            out.push(None);
        }
    }
    assert!(
        src.next().is_none(),
        "punctured stream too long for mother_len"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_fractions() {
        assert!((CodeRate::Half.as_f64() - 0.5).abs() < 1e-12);
        assert!((CodeRate::TwoThirds.as_f64() - 2.0 / 3.0).abs() < 1e-12);
        assert!((CodeRate::ThreeQuarters.as_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn puncture_lengths() {
        // 12 mother bits = 6 info bits
        let coded = vec![true; 12];
        assert_eq!(puncture(&coded, CodeRate::Half).len(), 12);
        assert_eq!(puncture(&coded, CodeRate::TwoThirds).len(), 9);
        assert_eq!(puncture(&coded, CodeRate::ThreeQuarters).len(), 8);
    }

    #[test]
    fn coded_len_consistency() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            // pick info lengths divisible by the period
            let info = 12;
            let mother = vec![false; info * 2];
            assert_eq!(puncture(&mother, rate).len(), rate.coded_len(info));
        }
    }

    #[test]
    fn depuncture_restores_positions() {
        let mother: Vec<bool> = (0..24).map(|i| i % 3 == 0).collect();
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let tx = puncture(&mother, rate);
            let soft_tx: Vec<f64> = tx.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
            let back = depuncture_soft(&soft_tx, rate, mother.len());
            assert_eq!(back.len(), mother.len());
            let pat = rate.pattern();
            for (i, v) in back.iter().enumerate() {
                if pat[i % pat.len()] {
                    assert_eq!(*v > 0.0, mother[i], "bit {i}");
                } else {
                    assert_eq!(*v, 0.0, "erasure {i}");
                }
            }
        }
    }

    #[test]
    fn depuncture_hard_matches_soft() {
        let mother: Vec<bool> = (0..12).map(|i| i % 2 == 0).collect();
        let tx = puncture(&mother, CodeRate::TwoThirds);
        let hard = depuncture_hard(&tx, CodeRate::TwoThirds, 12);
        assert_eq!(hard.iter().filter(|v| v.is_none()).count(), 3);
        for (i, v) in hard.iter().enumerate() {
            if let Some(b) = v {
                assert_eq!(*b, mother[i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn depuncture_rejects_short_stream() {
        depuncture_soft(&[1.0], CodeRate::Half, 4);
    }
}
