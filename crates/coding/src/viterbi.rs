//! Viterbi decoding of the rate-1/2 convolutional code (optionally punctured).
//!
//! The BackFi reader runs this after MRC demodulation ("decoded using a
//! standard Viterbi decoder", §4.3.2), and the WiFi client receiver runs it on
//! every packet. Supports both hard decisions and soft metrics; erasures from
//! depuncturing carry zero metric and cost nothing either way.

use crate::puncture::{depuncture_soft, CodeRate};

/// Precomputed trellis for a rate-1/2 code.
#[derive(Clone, Debug)]
struct Trellis {
    /// Number of states = 2^(k−1).
    states: usize,
    /// next_state[s][input] — state after shifting `input` into state `s`.
    next: Vec<[u32; 2]>,
    /// out[s][input] — the two coded bits (b0, b1) packed as `b0 | b1<<1`.
    out: Vec<[u8; 2]>,
}

impl Trellis {
    fn new(k: usize, g0: u32, g1: u32) -> Self {
        let states = 1usize << (k - 1);
        let mut next = vec![[0u32; 2]; states];
        let mut out = vec![[0u8; 2]; states];
        for s in 0..states {
            for (input, slot) in [(false, 0usize), (true, 1usize)] {
                // Trellis state = the (k−1)-bit memory (the most recent k−1
                // inputs, newest in the MSB, bit k−2). The full k-bit register
                // seen by the generator taps when `input` is shifted in has
                // the new bit at the MSB (bit k−1) — mirroring
                // `ConvEncoder::push`.
                let mem = s as u32;
                let register = ((input as u32) << (k - 1)) | mem;
                let b0 = ((register & g0).count_ones() & 1) as u8;
                let b1 = ((register & g1).count_ones() & 1) as u8;
                out[s][slot] = b0 | (b1 << 1);
                // New memory: drop the oldest bit (LSB), newest input enters
                // at the MSB of the memory (bit k−2).
                let new_mem = (mem >> 1) | ((input as u32) << (k - 2));
                next[s][slot] = new_mem;
            }
        }
        Trellis { states, next, out }
    }
}

/// Butterfly form of a rate-1/2 trellis for the batched add-compare-select.
///
/// For any feedforward rate-1/2 code built like [`Trellis::new`], next-state
/// `j` (input 0) and `j + half` (input 1) are both fed by predecessors `2j`
/// and `2j+1`. When both generators tap the newest (bit `k−1`) and oldest
/// (bit `0`) register bits — true for the K=7 (133, 171) code and every
/// code with free-distance-optimal generators — the four branch outputs of
/// the butterfly collapse to one value `a = out[2j][0]` and its complement
/// `a^3`, so the four branch metrics are `±v_j` with
/// `v_j = s0[j]·m0 + s1[j]·m1`. That removes the per-edge table lookups and
/// makes the ACS loop branchless and lane-parallel across `j`.
///
/// Construction verifies the butterfly relations structurally and returns
/// `None` when they don't hold, falling back to the direct path.
#[derive(Clone, Debug)]
struct BatchedTrellis {
    /// Sign of `m0` in `v_j` (+1 when branch output bit 0 is 1).
    s0: Vec<f64>,
    /// Sign of `m1` in `v_j` (+1 when branch output bit 1 is 1).
    s1: Vec<f64>,
    /// `s0` as IEEE sign masks (`-0.0` where `s0[j] < 0`, `+0.0` elsewhere):
    /// for finite `m`, `s·m` equals `m XOR mask` bitwise (multiplying by
    /// exactly ±1.0 only flips the sign bit), letting the AVX2 fast path
    /// trade two multiplies for two 1-cycle XORs per lane group.
    sm0: Vec<f64>,
    /// `s1` as IEEE sign masks.
    sm1: Vec<f64>,
}

impl BatchedTrellis {
    fn build(trellis: &Trellis) -> Option<Self> {
        let ns = trellis.states;
        if ns < 2 {
            return None;
        }
        let half = ns / 2;
        let mut s0 = Vec::with_capacity(half);
        let mut s1 = Vec::with_capacity(half);
        for j in 0..half {
            let a = trellis.out[2 * j][0];
            let butterfly_codes = trellis.out[2 * j + 1][0] == a ^ 3
                && trellis.out[2 * j][1] == a ^ 3
                && trellis.out[2 * j + 1][1] == a;
            let butterfly_edges = trellis.next[2 * j][0] == j as u32
                && trellis.next[2 * j + 1][0] == j as u32
                && trellis.next[2 * j][1] == (j + half) as u32
                && trellis.next[2 * j + 1][1] == (j + half) as u32;
            if !butterfly_codes || !butterfly_edges {
                return None;
            }
            s0.push(if a & 1 == 1 { 1.0 } else { -1.0 });
            s1.push(if a & 2 == 2 { 1.0 } else { -1.0 });
        }
        let mask = |s: &[f64]| {
            s.iter()
                .map(|&v| if v < 0.0 { -0.0 } else { 0.0 })
                .collect()
        };
        let (sm0, sm1) = (mask(&s0), mask(&s1));
        Some(BatchedTrellis { s0, s1, sm0, sm1 })
    }
}

/// A Viterbi decoder for the K=7 (133, 171) code, shared by the WiFi receiver
/// and the BackFi reader.
#[derive(Clone, Debug)]
pub struct ViterbiDecoder {
    trellis: Trellis,
    k: usize,
    /// Butterfly ACS tables when the code's structure admits them.
    batched: Option<BatchedTrellis>,
    /// `with_simd(false)`: pin [`Self::run`] to the direct reference path.
    force_direct: bool,
}

impl Default for ViterbiDecoder {
    fn default() -> Self {
        Self::ieee80211()
    }
}

impl ViterbiDecoder {
    /// Decoder for the standard K=7 (133, 171) code.
    pub fn ieee80211() -> Self {
        Self::new(
            crate::conv::CONSTRAINT_LENGTH,
            crate::conv::G0,
            crate::conv::G1,
        )
    }

    /// Decoder for a custom rate-1/2 code matching
    /// [`ConvEncoder::new`](crate::conv::ConvEncoder::new).
    pub fn new(k: usize, g0: u32, g1: u32) -> Self {
        assert!((2..=16).contains(&k), "constraint length must be in 2..=16");
        let trellis = Trellis::new(k, g0, g1);
        let batched = BatchedTrellis::build(&trellis);
        ViterbiDecoder {
            trellis,
            k,
            batched,
            force_direct: false,
        }
    }

    /// Builder: enable (`true`, the default) or disable the batched
    /// vectorization-friendly ACS path. With `false`, every decode runs the
    /// direct reference loop — used by the scalar-fallback tests. The two
    /// paths produce identical bits for all inputs (including NaN/±∞
    /// metrics), so this only changes speed.
    pub fn with_simd(mut self, on: bool) -> Self {
        self.force_direct = !on;
        self
    }

    /// Soft-decision decode of a **terminated** frame.
    ///
    /// `soft` holds one metric per mother-code bit (`> 0` means bit 1 is
    /// likely; magnitude is confidence; `0.0` is an erasure). Its length must
    /// be even; the frame is assumed to start and end in state 0 (the encoder
    /// appended `k−1` zero tail bits, which are stripped from the output).
    ///
    /// Returns the decoded information bits (length `soft.len()/2 − (k−1)`).
    ///
    /// # Panics
    /// Panics if `soft.len()` is odd or shorter than the tail.
    pub fn decode_soft_terminated(&self, soft: &[f64]) -> Vec<bool> {
        assert_eq!(soft.len() % 2, 0, "soft stream must have even length");
        let steps = soft.len() / 2;
        let tail = self.k - 1;
        assert!(steps >= tail, "frame shorter than the code tail");
        let decided = self.run(soft, steps, true);
        decided[..steps - tail].to_vec()
    }

    /// Soft-decision decode without termination assumption (traceback from
    /// the best end state). Used for streams that were truncated.
    pub fn decode_soft_truncated(&self, soft: &[f64]) -> Vec<bool> {
        assert_eq!(soft.len() % 2, 0, "soft stream must have even length");
        let steps = soft.len() / 2;
        self.run(soft, steps, false)
    }

    /// Reference form of [`Self::decode_soft_terminated`] that always runs
    /// the direct (state-by-state, branchy) ACS loop, bypassing the batched
    /// dispatch. Pinned against the fast path by the `_equiv` tests.
    ///
    /// # Panics
    /// Panics if `soft.len()` is odd or shorter than the tail.
    pub fn decode_soft_terminated_direct(&self, soft: &[f64]) -> Vec<bool> {
        assert_eq!(soft.len() % 2, 0, "soft stream must have even length");
        let steps = soft.len() / 2;
        let tail = self.k - 1;
        assert!(steps >= tail, "frame shorter than the code tail");
        let decided = self.run_direct(soft, steps, true);
        decided[..steps - tail].to_vec()
    }

    /// Reference form of [`Self::decode_soft_truncated`] that always runs
    /// the direct ACS loop, bypassing the batched dispatch.
    ///
    /// # Panics
    /// Panics if `soft.len()` is odd.
    pub fn decode_soft_truncated_direct(&self, soft: &[f64]) -> Vec<bool> {
        assert_eq!(soft.len() % 2, 0, "soft stream must have even length");
        let steps = soft.len() / 2;
        self.run_direct(soft, steps, false)
    }

    /// Hard-decision decode of a terminated frame: bits are mapped to ±1
    /// metrics internally.
    pub fn decode_hard_terminated(&self, bits: &[bool]) -> Vec<bool> {
        let soft: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        self.decode_soft_terminated(&soft)
    }

    /// Convenience: depuncture a soft stream at `rate` and decode the
    /// terminated frame. `info_bits` is the number of information bits
    /// (excluding the `k−1` tail the encoder appended).
    pub fn decode_punctured_soft(
        &self,
        punctured_soft: &[f64],
        rate: CodeRate,
        info_bits: usize,
    ) -> Vec<bool> {
        let mother_len = (info_bits + self.k - 1) * 2;
        let soft = depuncture_soft(punctured_soft, rate, mother_len);
        self.decode_soft_terminated(&soft)
    }

    /// Dispatch: batched butterfly ACS when the code admits it and SIMD
    /// hasn't been disabled, else the direct reference loop. Both produce
    /// identical bits for every input.
    fn run(&self, soft: &[f64], steps: usize, terminated: bool) -> Vec<bool> {
        match &self.batched {
            Some(b) if !self.force_direct && !simd_env_disabled() => {
                self.run_batched(b, soft, steps, terminated)
            }
            _ => self.run_direct(soft, steps, terminated),
        }
    }

    /// Direct add-compare-select: state-by-state with per-edge table lookups
    /// and a data-dependent compare branch. Reference implementation.
    fn run_direct(&self, soft: &[f64], steps: usize, terminated: bool) -> Vec<bool> {
        let ns = self.trellis.states;
        const NEG: f64 = f64::NEG_INFINITY;
        let mut metric = vec![NEG; ns];
        metric[0] = 0.0; // encoder starts from state 0
        let mut metric_next = vec![NEG; ns];
        // survivor[t][s] packs (prev_state, input) — input in bit 31.
        let mut survivor = vec![0u32; steps * ns];

        for t in 0..steps {
            let m0 = soft[2 * t];
            let m1 = soft[2 * t + 1];
            metric_next.iter_mut().for_each(|m| *m = NEG);
            let surv = &mut survivor[t * ns..(t + 1) * ns];
            #[allow(clippy::needless_range_loop)] // s is the state label, not just an index
            for s in 0..ns {
                let pm = metric[s];
                if pm == NEG {
                    continue;
                }
                for input in 0..2usize {
                    let nsid = self.trellis.next[s][input] as usize;
                    let out = self.trellis.out[s][input];
                    // Correlation metric: +m when coded bit is 1, −m when 0.
                    let bm = (if out & 1 == 1 { m0 } else { -m0 })
                        + (if out & 2 == 2 { m1 } else { -m1 });
                    let cand = pm + bm;
                    if cand > metric_next[nsid] {
                        metric_next[nsid] = cand;
                        surv[nsid] = s as u32 | ((input as u32) << 31);
                    }
                }
            }
            std::mem::swap(&mut metric, &mut metric_next);
        }

        traceback(&survivor, &metric, ns, steps, terminated)
    }

    /// Batched butterfly ACS: per butterfly `j`, the four edge metrics are
    /// `±v_j`, and the two winners are picked branchlessly — no per-edge
    /// lookups, no data-dependent branches (the direct loop's compare branch
    /// is ~random on real LLRs and its mispredicts dominate decode time).
    ///
    /// Survivors are stored **bit-packed**: one decision bit per state per
    /// step (`ns/64` words per step instead of `ns` u32 lanes), because the
    /// predecessor is recoverable from the state label alone —
    /// `prev = ((s mod half)·2) | d` and the emitted bit is `s ≥ half`.
    /// For the K=7 code that shrinks survivor memory 32× (one u64 per step),
    /// keeping the whole store L1-resident for full-packet decodes.
    ///
    /// Produces bit-identical decisions to [`Self::run_direct`]:
    /// * `s·m` with `s = ±1.0` equals `±m` bitwise, so `v_j` equals the
    ///   direct loop's branch metric, and `pm − v` ≡ `pm + (−v)` in IEEE;
    /// * a predecessor at `−∞` (unreachable) yields a candidate of `−∞` (or
    ///   NaN when `v = ±∞`, sanitized to `−∞`), which loses every strict
    ///   comparison — exactly like the direct loop's skip;
    /// * NaN candidates are sanitized to `−∞`, matching `NaN > x == false`;
    /// * ties keep the even predecessor, matching the direct loop's strict
    ///   `>` update with ascending state order;
    /// * the direct loop's "survivor 0 for unreachable states" convention is
    ///   reproduced exactly: a `−∞` winner always stores decision bit 0
    ///   (`−∞ > −∞` is false), traceback from a finite-metric state never
    ///   visits a `−∞`-metric one (a finite winner implies a finite
    ///   predecessor), and the single remaining case — *starting* traceback
    ///   on a `−∞` state — is handled explicitly in
    ///   [`traceback_packed`].
    fn run_batched(
        &self,
        b: &BatchedTrellis,
        soft: &[f64],
        steps: usize,
        terminated: bool,
    ) -> Vec<bool> {
        let ns = self.trellis.states;
        const NEG: f64 = f64::NEG_INFINITY;
        let mut metric = vec![NEG; ns];
        metric[0] = 0.0; // encoder starts from state 0
        let mut metric_next = vec![NEG; ns];
        // Packed decision bits: words_per_step words, state s's bit at
        // word s/64, position s%64.
        let wps = ns.div_ceil(64);
        let mut words = vec![0u64; steps * wps];

        #[cfg(target_arch = "x86_64")]
        let avx2 = std::arch::is_x86_feature_detected!("avx2") && ns <= 64;

        for t in 0..steps {
            let m0 = soft[2 * t];
            let m1 = soft[2 * t + 1];
            #[cfg(target_arch = "x86_64")]
            if avx2 {
                // SAFETY: AVX2 presence established by runtime detection.
                words[t] = unsafe { acs_step_avx2(b, m0, m1, &metric, &mut metric_next) };
                std::mem::swap(&mut metric, &mut metric_next);
                continue;
            }
            acs_step(
                &b.s0,
                &b.s1,
                m0,
                m1,
                &metric,
                &mut metric_next,
                &mut words[t * wps..(t + 1) * wps],
            );
            std::mem::swap(&mut metric, &mut metric_next);
        }

        traceback_packed(&words, wps, &metric, ns, steps, terminated)
    }
}

/// `BACKFI_SIMD=off|0|scalar` pins the decoder to the direct reference loop
/// (same convention as `backfi_dsp::simd`; this crate has no dsp dependency,
/// so the check is duplicated here).
fn simd_env_disabled() -> bool {
    use std::sync::OnceLock;
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| {
        matches!(
            std::env::var("BACKFI_SIMD").as_deref(),
            Ok("off") | Ok("0") | Ok("scalar")
        )
    })
}

/// One trellis step of the butterfly ACS (see
/// [`ViterbiDecoder::run_batched`] for the equivalence argument).
/// `metric_next` is fully overwritten; `row` receives the packed decision
/// bits for this step (state `s`'s bit at word `s/64`, position `s%64`).
#[inline(always)]
fn acs_step(
    s0: &[f64],
    s1: &[f64],
    m0: f64,
    m1: f64,
    metric: &[f64],
    metric_next: &mut [f64],
    row: &mut [u64],
) {
    const NEG: f64 = f64::NEG_INFINITY;
    let half = s0.len();
    let (lo, hi) = metric_next.split_at_mut(half);
    row.iter_mut().for_each(|w| *w = 0);
    for j in 0..half {
        let vj = s0[j] * m0 + s1[j] * m1;
        let pm0 = metric[2 * j];
        let pm1 = metric[2 * j + 1];
        // input 0 → state j: candidates pm0 + v (from 2j), pm1 − v (from 2j+1)
        let c0 = pm0 + vj;
        let c1 = pm1 - vj;
        let k0 = if c0.is_nan() { NEG } else { c0 };
        let k1 = if c1.is_nan() { NEG } else { c1 };
        let take1 = k1 > k0;
        lo[j] = if take1 { k1 } else { k0 };
        row[j >> 6] |= (take1 as u64) << (j & 63);
        // input 1 → state j+half: candidates pm0 − v, pm1 + v
        let d0 = pm0 - vj;
        let d1 = pm1 + vj;
        let q0 = if d0.is_nan() { NEG } else { d0 };
        let q1 = if d1.is_nan() { NEG } else { d1 };
        let t1 = q1 > q0;
        hi[j] = if t1 { q1 } else { q0 };
        let hj = half + j;
        row[hj >> 6] |= (t1 as u64) << (hj & 63);
    }
}

/// Hand-vectorized AVX2 instantiation of [`acs_step`]: four butterflies per
/// iteration, decision bits harvested straight from the compare masks with
/// `movemask` (no survivor-index arithmetic or stores at all). Returns the
/// packed decision word for this step; the caller guarantees `ns ≤ 64` so
/// one u64 holds every state's bit.
///
/// Bit-identical to the portable body — every lane performs the same IEEE
/// add/sub/mul and the same compare/select sequence (no FMA contraction).
/// When both step metrics are finite, no candidate can be NaN (path metrics
/// are finite or −∞, and finite ± finite / −∞ ± finite never produce NaN),
/// so the NaN-sanitizing compare+blend pair is skipped on that fast path:
/// the sanitize is the identity there, so results are unchanged bitwise.
/// The compare masks themselves already encode the "−∞ winner stores
/// decision 0" convention (`−∞ > −∞` and `NaN > x` are both false).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn acs_step_avx2(
    b: &BatchedTrellis,
    m0: f64,
    m1: f64,
    metric: &[f64],
    metric_next: &mut [f64],
) -> u64 {
    use std::arch::x86_64::*;
    const NEG: f64 = f64::NEG_INFINITY;
    let (s0, s1) = (&b.s0[..], &b.s1[..]);
    let half = s0.len();
    let (lo, hi) = metric_next.split_at_mut(half);
    let m0v = _mm256_set1_pd(m0);
    let m1v = _mm256_set1_pd(m1);
    let negv = _mm256_set1_pd(NEG);
    let mut lo_acc: u64 = 0;
    let mut hi_acc: u64 = 0;
    let mut j = 0usize;
    if m0.is_finite() && m1.is_finite() {
        // Fast path: no NaN candidates possible — skip the sanitize ops,
        // and apply the ±1 signs as sign-bit XORs (bit-identical to the
        // multiply for finite metrics; see `BatchedTrellis::sm0`).
        while j + 4 <= half {
            let sm0v = _mm256_loadu_pd(b.sm0.as_ptr().add(j));
            let sm1v = _mm256_loadu_pd(b.sm1.as_ptr().add(j));
            let vv = _mm256_add_pd(_mm256_xor_pd(m0v, sm0v), _mm256_xor_pd(m1v, sm1v));
            // Deinterleave metric[2j..2j+8] into pm0 (even) / pm1 (odd) lanes.
            let a = _mm256_loadu_pd(metric.as_ptr().add(2 * j));
            let b = _mm256_loadu_pd(metric.as_ptr().add(2 * j + 4));
            let t0 = _mm256_permute2f128_pd(a, b, 0x20);
            let t1 = _mm256_permute2f128_pd(a, b, 0x31);
            let pm0 = _mm256_unpacklo_pd(t0, t1);
            let pm1 = _mm256_unpackhi_pd(t0, t1);
            // input 0 → states j..j+4: candidates pm0 + v, pm1 − v.
            let c0 = _mm256_add_pd(pm0, vv);
            let c1 = _mm256_sub_pd(pm1, vv);
            let gt = _mm256_cmp_pd(c1, c0, _CMP_GT_OQ);
            let m = _mm256_blendv_pd(c0, c1, gt);
            _mm256_storeu_pd(lo.as_mut_ptr().add(j), m);
            lo_acc |= (_mm256_movemask_pd(gt) as u64) << j;
            // input 1 → states j+half..j+half+4: candidates pm0 − v, pm1 + v.
            let d0 = _mm256_sub_pd(pm0, vv);
            let d1 = _mm256_add_pd(pm1, vv);
            let gt2 = _mm256_cmp_pd(d1, d0, _CMP_GT_OQ);
            let q = _mm256_blendv_pd(d0, d1, gt2);
            _mm256_storeu_pd(hi.as_mut_ptr().add(j), q);
            hi_acc |= (_mm256_movemask_pd(gt2) as u64) << j;
            j += 4;
        }
    } else {
        // Hostile metrics (±∞ / NaN LLRs): sanitize NaN candidates to −∞
        // exactly like the scalar `is_nan` select.
        while j + 4 <= half {
            let s0v = _mm256_loadu_pd(s0.as_ptr().add(j));
            let s1v = _mm256_loadu_pd(s1.as_ptr().add(j));
            let vv = _mm256_add_pd(_mm256_mul_pd(s0v, m0v), _mm256_mul_pd(s1v, m1v));
            let a = _mm256_loadu_pd(metric.as_ptr().add(2 * j));
            let b = _mm256_loadu_pd(metric.as_ptr().add(2 * j + 4));
            let t0 = _mm256_permute2f128_pd(a, b, 0x20);
            let t1 = _mm256_permute2f128_pd(a, b, 0x31);
            let pm0 = _mm256_unpacklo_pd(t0, t1);
            let pm1 = _mm256_unpackhi_pd(t0, t1);
            let c0 = _mm256_add_pd(pm0, vv);
            let c1 = _mm256_sub_pd(pm1, vv);
            let k0 = _mm256_blendv_pd(c0, negv, _mm256_cmp_pd(c0, c0, _CMP_UNORD_Q));
            let k1 = _mm256_blendv_pd(c1, negv, _mm256_cmp_pd(c1, c1, _CMP_UNORD_Q));
            let gt = _mm256_cmp_pd(k1, k0, _CMP_GT_OQ);
            let m = _mm256_blendv_pd(k0, k1, gt);
            _mm256_storeu_pd(lo.as_mut_ptr().add(j), m);
            lo_acc |= (_mm256_movemask_pd(gt) as u64) << j;
            let d0 = _mm256_sub_pd(pm0, vv);
            let d1 = _mm256_add_pd(pm1, vv);
            let q0 = _mm256_blendv_pd(d0, negv, _mm256_cmp_pd(d0, d0, _CMP_UNORD_Q));
            let q1 = _mm256_blendv_pd(d1, negv, _mm256_cmp_pd(d1, d1, _CMP_UNORD_Q));
            let gt2 = _mm256_cmp_pd(q1, q0, _CMP_GT_OQ);
            let q = _mm256_blendv_pd(q0, q1, gt2);
            _mm256_storeu_pd(hi.as_mut_ptr().add(j), q);
            hi_acc |= (_mm256_movemask_pd(gt2) as u64) << j;
            j += 4;
        }
    }
    // Scalar tail for trellises whose half-size is not a multiple of 4
    // (e.g. the K=3 test code, half = 2) — same body as `acs_step`.
    while j < half {
        let vj = s0[j] * m0 + s1[j] * m1;
        let pm0 = metric[2 * j];
        let pm1 = metric[2 * j + 1];
        let c0 = pm0 + vj;
        let c1 = pm1 - vj;
        let k0 = if c0.is_nan() { NEG } else { c0 };
        let k1 = if c1.is_nan() { NEG } else { c1 };
        let take1 = k1 > k0;
        lo[j] = if take1 { k1 } else { k0 };
        lo_acc |= (take1 as u64) << j;
        let d0 = pm0 - vj;
        let d1 = pm1 + vj;
        let q0 = if d0.is_nan() { NEG } else { d0 };
        let q1 = if d1.is_nan() { NEG } else { d1 };
        let t1 = q1 > q0;
        hi[j] = if t1 { q1 } else { q0 };
        hi_acc |= (t1 as u64) << j;
        j += 1;
    }
    lo_acc | (hi_acc << half)
}

/// Shared traceback over the direct path's u32 survivor memory.
fn traceback(
    survivor: &[u32],
    metric: &[f64],
    ns: usize,
    steps: usize,
    terminated: bool,
) -> Vec<bool> {
    let mut state = if terminated {
        0usize
    } else {
        // NaN-poisoned path metrics (corrupted LLR inputs) must lose the
        // comparison, not panic it: map NaN below -inf, then total order.
        let key = |m: &f64| if m.is_nan() { f64::NEG_INFINITY } else { *m };
        metric
            .iter()
            .enumerate()
            .max_by(|a, b| key(a.1).total_cmp(&key(b.1)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    let mut bits = vec![false; steps];
    for t in (0..steps).rev() {
        let packed = survivor[t * ns + state];
        bits[t] = packed >> 31 == 1;
        state = (packed & 0x7FFF_FFFF) as usize;
    }
    bits
}

/// Branchless traceback over the packed decision bits.
///
/// The butterfly structure makes the predecessor recoverable from the state
/// label and its one decision bit: entry into state `s` used input
/// `s ≥ half`, from predecessor `((s mod half)·2) | d`. Equivalence with
/// [`traceback`]'s u32 walk:
/// * starting from a finite-metric state, every state visited has a finite
///   metric at its time (a finite winner implies a finite predecessor
///   candidate, which implies a finite predecessor metric), so the u32 walk
///   never reads a zeroed "unreachable" entry — both walks follow the same
///   decisions;
/// * starting from a `−∞`-metric state (all-`−∞` final metrics, or a
///   terminated frame whose state 0 ended unreachable), the u32 walk reads
///   survivor 0 — bit `false`, state 0. The explicit first-step special case
///   below reproduces that jump; from then on, while state 0's metric stays
///   `−∞` its packed decision bit is 0 (`−∞ > −∞` is false), so the packed
///   walk also emits (`false`, state 0), and once state 0's metric turns
///   finite both walks follow identical real survivors.
fn traceback_packed(
    words: &[u64],
    wps: usize,
    metric: &[f64],
    ns: usize,
    steps: usize,
    terminated: bool,
) -> Vec<bool> {
    let half = ns / 2;
    let mut state = if terminated {
        0usize
    } else {
        let key = |m: &f64| if m.is_nan() { f64::NEG_INFINITY } else { *m };
        metric
            .iter()
            .enumerate()
            .max_by(|a, b| key(a.1).total_cmp(&key(b.1)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    let mut bits = vec![false; steps];
    let mut t = steps;
    if t > 0 && metric[state] == f64::NEG_INFINITY {
        // Unreachable start: the u32 store holds 0 here (bit false, state 0).
        t -= 1;
        state = 0;
    }
    while t > 0 {
        t -= 1;
        let row = &words[t * wps..];
        let d = (row[state >> 6] >> (state & 63)) & 1;
        bits[t] = state >= half;
        state = ((state & (half - 1)) << 1) | d as usize;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvEncoder;
    use crate::puncture::puncture;

    fn roundtrip(bits: &[bool]) -> Vec<bool> {
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(bits);
        ViterbiDecoder::ieee80211().decode_hard_terminated(&coded)
    }

    #[test]
    fn clean_roundtrip() {
        let bits: Vec<bool> = (0..64).map(|i| (i * 31) % 7 > 2).collect();
        assert_eq!(roundtrip(&bits), bits);
    }

    #[test]
    fn clean_roundtrip_all_lengths() {
        for n in 1..40 {
            let bits: Vec<bool> = (0..n).map(|i| (i * 13) % 5 < 2).collect();
            assert_eq!(roundtrip(&bits), bits, "length {n}");
        }
    }

    #[test]
    fn corrects_scattered_errors() {
        let bits: Vec<bool> = (0..100).map(|i| (i * 17) % 13 > 6).collect();
        let mut enc = ConvEncoder::ieee80211();
        let mut coded = enc.encode_terminated(&bits);
        // Flip well-separated bits — the free distance 10 code fixes these.
        for idx in [3usize, 40, 80, 120, 160] {
            coded[idx] = !coded[idx];
        }
        let dec = ViterbiDecoder::ieee80211().decode_hard_terminated(&coded);
        assert_eq!(dec, bits);
    }

    #[test]
    fn soft_beats_hard_with_confidence() {
        // A bit flipped with tiny confidence should be shrugged off.
        let bits: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(&bits);
        let mut soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        // Weak wrong values at several places
        for idx in [2usize, 11, 30, 31, 50] {
            soft[idx] = -soft[idx] * 0.05;
        }
        let dec = ViterbiDecoder::ieee80211().decode_soft_terminated(&soft);
        assert_eq!(dec, bits);
    }

    #[test]
    fn erasures_are_neutral() {
        let bits: Vec<bool> = (0..30).map(|i| (i * 7) % 4 == 1).collect();
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(&bits);
        let mut soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        // Erase a quarter of the bits.
        for i in (0..soft.len()).step_by(4) {
            soft[i] = 0.0;
        }
        let dec = ViterbiDecoder::ieee80211().decode_soft_terminated(&soft);
        assert_eq!(dec, bits);
    }

    #[test]
    fn punctured_roundtrip_all_rates() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            // info length chosen so (info + 6) mother bits align with the
            // puncturing period
            let info = 54;
            let bits: Vec<bool> = (0..info).map(|i| (i * 29) % 11 < 5).collect();
            let mut enc = ConvEncoder::ieee80211();
            let mother = enc.encode_terminated(&bits);
            let tx = puncture(&mother, rate);
            let soft: Vec<f64> = tx.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
            let dec = ViterbiDecoder::ieee80211().decode_punctured_soft(&soft, rate, info);
            assert_eq!(dec, bits, "rate {}", rate.label());
        }
    }

    #[test]
    fn punctured_with_errors() {
        let info = 96;
        let bits: Vec<bool> = (0..info).map(|i| (i * 3) % 7 == 1).collect();
        let mut enc = ConvEncoder::ieee80211();
        let mother = enc.encode_terminated(&bits);
        let mut tx = puncture(&mother, CodeRate::TwoThirds);
        for idx in [10usize, 70, 130] {
            tx[idx] = !tx[idx];
        }
        let soft: Vec<f64> = tx.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let dec =
            ViterbiDecoder::ieee80211().decode_punctured_soft(&soft, CodeRate::TwoThirds, info);
        assert_eq!(dec, bits);
    }

    #[test]
    fn truncated_decode_recovers_most_bits() {
        let bits: Vec<bool> = (0..80).map(|i| (i * 19) % 6 < 3).collect();
        let mut enc = ConvEncoder::ieee80211();
        enc.reset();
        let coded = enc.encode(&bits); // no termination
        let soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let dec = ViterbiDecoder::ieee80211().decode_soft_truncated(&soft);
        assert_eq!(dec.len(), bits.len());
        // all but perhaps the last few bits must match
        assert_eq!(&dec[..70], &bits[..70]);
    }

    /// SplitMix64 step (local copy — this crate deliberately has no
    /// backfi-dsp dependency).
    fn next_u64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn rand_llrs(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| (next_u64(&mut s) as f64 / u64::MAX as f64) * 4.0 - 2.0)
            .collect()
    }

    #[test]
    fn batched_equivalent_to_direct_random_llrs() {
        let dec = ViterbiDecoder::ieee80211();
        for seed in 0..8u64 {
            let n = 2 * (20 + (seed as usize * 37) % 200);
            let soft = rand_llrs(seed, n);
            assert_eq!(
                dec.decode_soft_truncated(&soft),
                dec.decode_soft_truncated_direct(&soft),
                "truncated seed {seed}"
            );
            if n / 2 >= 6 {
                assert_eq!(
                    dec.decode_soft_terminated(&soft),
                    dec.decode_soft_terminated_direct(&soft),
                    "terminated seed {seed}"
                );
            }
        }
    }

    #[test]
    fn batched_equivalent_to_direct_hostile_llrs() {
        // NaN, ±∞, erasures, and denormals sprinkled into real LLRs must
        // produce the same decisions on both paths (neither panics).
        let dec = ViterbiDecoder::ieee80211();
        for seed in 0..4u64 {
            let mut soft = rand_llrs(100 + seed, 120);
            soft[3] = f64::NAN;
            soft[10] = f64::INFINITY;
            soft[11] = f64::NEG_INFINITY;
            soft[20] = 0.0;
            soft[21] = -0.0;
            soft[30] = 5e-324;
            soft[31] = f64::NAN;
            assert_eq!(
                dec.decode_soft_truncated(&soft),
                dec.decode_soft_truncated_direct(&soft),
                "seed {seed}"
            );
            assert_eq!(
                dec.decode_soft_terminated(&soft),
                dec.decode_soft_terminated_direct(&soft),
                "terminated seed {seed}"
            );
        }
    }

    #[test]
    fn batched_equivalent_to_direct_degenerate_llrs() {
        // Degenerate whole-stream cases: all-negative, all-zero (every
        // branch ties — the tie-break must resolve identically on both
        // paths), and all −∞ (every path metric saturates). These stress
        // the packed survivor words where every bit in a word is equal.
        let dec = ViterbiDecoder::ieee80211();
        for soft in [
            vec![-1.5f64; 96],
            vec![0.0f64; 96],
            vec![f64::NEG_INFINITY; 96],
        ] {
            assert_eq!(
                dec.decode_soft_truncated(&soft),
                dec.decode_soft_truncated_direct(&soft)
            );
            assert_eq!(
                dec.decode_soft_terminated(&soft),
                dec.decode_soft_terminated_direct(&soft)
            );
        }
    }

    #[test]
    fn k3_batched_matches_direct_on_hostile_llrs() {
        // 4-state code: the packed survivor traceback stores 4 decisions per
        // word slot — the narrowest layout — and must still agree with the
        // direct u32 path under NaN/∞ contamination.
        let dec = ViterbiDecoder::new(3, 0b111, 0b101);
        assert!(dec.batched.is_some());
        let mut soft = rand_llrs(42, 80);
        soft[0] = f64::NAN;
        soft[9] = f64::INFINITY;
        soft[10] = f64::NEG_INFINITY;
        soft[11] = -0.0;
        assert_eq!(
            dec.decode_soft_truncated(&soft),
            dec.decode_soft_truncated_direct(&soft)
        );
        assert_eq!(
            dec.decode_soft_terminated(&soft),
            dec.decode_soft_terminated_direct(&soft)
        );
    }

    #[test]
    fn with_simd_false_forces_direct_and_matches() {
        let fast = ViterbiDecoder::ieee80211();
        let slow = ViterbiDecoder::ieee80211().with_simd(false);
        let soft = rand_llrs(7, 240);
        assert_eq!(
            fast.decode_soft_truncated(&soft),
            slow.decode_soft_truncated(&soft)
        );
    }

    #[test]
    fn k3_code_uses_batched_path_and_matches() {
        // (7, 5) taps newest+oldest bits in both generators → butterfly form.
        let dec = ViterbiDecoder::new(3, 0b111, 0b101);
        assert!(dec.batched.is_some());
        let soft = rand_llrs(11, 60);
        assert_eq!(
            dec.decode_soft_truncated(&soft),
            dec.decode_soft_truncated_direct(&soft)
        );
    }

    #[test]
    fn non_butterfly_code_falls_back_to_direct() {
        // g1 = 0b110 doesn't tap the oldest bit → butterfly relations fail,
        // the decoder must silently use the direct path and stay correct.
        let dec = ViterbiDecoder::new(3, 0b111, 0b110);
        assert!(dec.batched.is_none());
        let bits: Vec<bool> = (0..20).map(|i| (i * 5) % 3 == 1).collect();
        let mut enc = ConvEncoder::new(3, 0b111, 0b110);
        let coded = enc.encode_terminated(&bits);
        assert_eq!(dec.decode_hard_terminated(&coded), bits);
    }

    #[test]
    fn small_code_k3() {
        // K=3 (7,5) code — a classic textbook example.
        let bits: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let mut enc = ConvEncoder::new(3, 0b111, 0b101);
        let coded = enc.encode_terminated(&bits);
        let dec = ViterbiDecoder::new(3, 0b111, 0b101).decode_hard_terminated(&coded);
        assert_eq!(dec, bits);
    }
}
