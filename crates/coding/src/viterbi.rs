//! Viterbi decoding of the rate-1/2 convolutional code (optionally punctured).
//!
//! The BackFi reader runs this after MRC demodulation ("decoded using a
//! standard Viterbi decoder", §4.3.2), and the WiFi client receiver runs it on
//! every packet. Supports both hard decisions and soft metrics; erasures from
//! depuncturing carry zero metric and cost nothing either way.

use crate::puncture::{depuncture_soft, CodeRate};

/// Precomputed trellis for a rate-1/2 code.
#[derive(Clone, Debug)]
struct Trellis {
    /// Number of states = 2^(k−1).
    states: usize,
    /// next_state[s][input] — state after shifting `input` into state `s`.
    next: Vec<[u32; 2]>,
    /// out[s][input] — the two coded bits (b0, b1) packed as `b0 | b1<<1`.
    out: Vec<[u8; 2]>,
}

impl Trellis {
    fn new(k: usize, g0: u32, g1: u32) -> Self {
        let states = 1usize << (k - 1);
        let mut next = vec![[0u32; 2]; states];
        let mut out = vec![[0u8; 2]; states];
        for s in 0..states {
            for (input, slot) in [(false, 0usize), (true, 1usize)] {
                // Trellis state = the (k−1)-bit memory (the most recent k−1
                // inputs, newest in the MSB, bit k−2). The full k-bit register
                // seen by the generator taps when `input` is shifted in has
                // the new bit at the MSB (bit k−1) — mirroring
                // `ConvEncoder::push`.
                let mem = s as u32;
                let register = ((input as u32) << (k - 1)) | mem;
                let b0 = ((register & g0).count_ones() & 1) as u8;
                let b1 = ((register & g1).count_ones() & 1) as u8;
                out[s][slot] = b0 | (b1 << 1);
                // New memory: drop the oldest bit (LSB), newest input enters
                // at the MSB of the memory (bit k−2).
                let new_mem = (mem >> 1) | ((input as u32) << (k - 2));
                next[s][slot] = new_mem;
            }
        }
        Trellis { states, next, out }
    }
}

/// A Viterbi decoder for the K=7 (133, 171) code, shared by the WiFi receiver
/// and the BackFi reader.
#[derive(Clone, Debug)]
pub struct ViterbiDecoder {
    trellis: Trellis,
    k: usize,
}

impl Default for ViterbiDecoder {
    fn default() -> Self {
        Self::ieee80211()
    }
}

impl ViterbiDecoder {
    /// Decoder for the standard K=7 (133, 171) code.
    pub fn ieee80211() -> Self {
        ViterbiDecoder {
            trellis: Trellis::new(
                crate::conv::CONSTRAINT_LENGTH,
                crate::conv::G0,
                crate::conv::G1,
            ),
            k: crate::conv::CONSTRAINT_LENGTH,
        }
    }

    /// Decoder for a custom rate-1/2 code matching
    /// [`ConvEncoder::new`](crate::conv::ConvEncoder::new).
    pub fn new(k: usize, g0: u32, g1: u32) -> Self {
        assert!((2..=16).contains(&k), "constraint length must be in 2..=16");
        ViterbiDecoder {
            trellis: Trellis::new(k, g0, g1),
            k,
        }
    }

    /// Soft-decision decode of a **terminated** frame.
    ///
    /// `soft` holds one metric per mother-code bit (`> 0` means bit 1 is
    /// likely; magnitude is confidence; `0.0` is an erasure). Its length must
    /// be even; the frame is assumed to start and end in state 0 (the encoder
    /// appended `k−1` zero tail bits, which are stripped from the output).
    ///
    /// Returns the decoded information bits (length `soft.len()/2 − (k−1)`).
    ///
    /// # Panics
    /// Panics if `soft.len()` is odd or shorter than the tail.
    pub fn decode_soft_terminated(&self, soft: &[f64]) -> Vec<bool> {
        assert_eq!(soft.len() % 2, 0, "soft stream must have even length");
        let steps = soft.len() / 2;
        let tail = self.k - 1;
        assert!(steps >= tail, "frame shorter than the code tail");
        let decided = self.run(soft, steps, true);
        decided[..steps - tail].to_vec()
    }

    /// Soft-decision decode without termination assumption (traceback from
    /// the best end state). Used for streams that were truncated.
    pub fn decode_soft_truncated(&self, soft: &[f64]) -> Vec<bool> {
        assert_eq!(soft.len() % 2, 0, "soft stream must have even length");
        let steps = soft.len() / 2;
        self.run(soft, steps, false)
    }

    /// Hard-decision decode of a terminated frame: bits are mapped to ±1
    /// metrics internally.
    pub fn decode_hard_terminated(&self, bits: &[bool]) -> Vec<bool> {
        let soft: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        self.decode_soft_terminated(&soft)
    }

    /// Convenience: depuncture a soft stream at `rate` and decode the
    /// terminated frame. `info_bits` is the number of information bits
    /// (excluding the `k−1` tail the encoder appended).
    pub fn decode_punctured_soft(
        &self,
        punctured_soft: &[f64],
        rate: CodeRate,
        info_bits: usize,
    ) -> Vec<bool> {
        let mother_len = (info_bits + self.k - 1) * 2;
        let soft = depuncture_soft(punctured_soft, rate, mother_len);
        self.decode_soft_terminated(&soft)
    }

    /// Core add-compare-select + traceback.
    fn run(&self, soft: &[f64], steps: usize, terminated: bool) -> Vec<bool> {
        let ns = self.trellis.states;
        const NEG: f64 = f64::NEG_INFINITY;
        let mut metric = vec![NEG; ns];
        metric[0] = 0.0; // encoder starts from state 0
        let mut metric_next = vec![NEG; ns];
        // survivor[t][s] packs (prev_state, input) — input in bit 31.
        let mut survivor = vec![0u32; steps * ns];

        for t in 0..steps {
            let m0 = soft[2 * t];
            let m1 = soft[2 * t + 1];
            metric_next.iter_mut().for_each(|m| *m = NEG);
            let surv = &mut survivor[t * ns..(t + 1) * ns];
            #[allow(clippy::needless_range_loop)] // s is the state label, not just an index
            for s in 0..ns {
                let pm = metric[s];
                if pm == NEG {
                    continue;
                }
                for input in 0..2usize {
                    let nsid = self.trellis.next[s][input] as usize;
                    let out = self.trellis.out[s][input];
                    // Correlation metric: +m when coded bit is 1, −m when 0.
                    let bm = (if out & 1 == 1 { m0 } else { -m0 })
                        + (if out & 2 == 2 { m1 } else { -m1 });
                    let cand = pm + bm;
                    if cand > metric_next[nsid] {
                        metric_next[nsid] = cand;
                        surv[nsid] = s as u32 | ((input as u32) << 31);
                    }
                }
            }
            std::mem::swap(&mut metric, &mut metric_next);
        }

        // Traceback.
        let mut state = if terminated {
            0usize
        } else {
            // NaN-poisoned path metrics (corrupted LLR inputs) must lose the
            // comparison, not panic it: map NaN below -inf, then total order.
            let key = |m: &f64| if m.is_nan() { f64::NEG_INFINITY } else { *m };
            metric
                .iter()
                .enumerate()
                .max_by(|a, b| key(a.1).total_cmp(&key(b.1)))
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let mut bits = vec![false; steps];
        for t in (0..steps).rev() {
            let packed = survivor[t * ns + state];
            bits[t] = packed >> 31 == 1;
            state = (packed & 0x7FFF_FFFF) as usize;
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvEncoder;
    use crate::puncture::puncture;

    fn roundtrip(bits: &[bool]) -> Vec<bool> {
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(bits);
        ViterbiDecoder::ieee80211().decode_hard_terminated(&coded)
    }

    #[test]
    fn clean_roundtrip() {
        let bits: Vec<bool> = (0..64).map(|i| (i * 31) % 7 > 2).collect();
        assert_eq!(roundtrip(&bits), bits);
    }

    #[test]
    fn clean_roundtrip_all_lengths() {
        for n in 1..40 {
            let bits: Vec<bool> = (0..n).map(|i| (i * 13) % 5 < 2).collect();
            assert_eq!(roundtrip(&bits), bits, "length {n}");
        }
    }

    #[test]
    fn corrects_scattered_errors() {
        let bits: Vec<bool> = (0..100).map(|i| (i * 17) % 13 > 6).collect();
        let mut enc = ConvEncoder::ieee80211();
        let mut coded = enc.encode_terminated(&bits);
        // Flip well-separated bits — the free distance 10 code fixes these.
        for idx in [3usize, 40, 80, 120, 160] {
            coded[idx] = !coded[idx];
        }
        let dec = ViterbiDecoder::ieee80211().decode_hard_terminated(&coded);
        assert_eq!(dec, bits);
    }

    #[test]
    fn soft_beats_hard_with_confidence() {
        // A bit flipped with tiny confidence should be shrugged off.
        let bits: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(&bits);
        let mut soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        // Weak wrong values at several places
        for idx in [2usize, 11, 30, 31, 50] {
            soft[idx] = -soft[idx] * 0.05;
        }
        let dec = ViterbiDecoder::ieee80211().decode_soft_terminated(&soft);
        assert_eq!(dec, bits);
    }

    #[test]
    fn erasures_are_neutral() {
        let bits: Vec<bool> = (0..30).map(|i| (i * 7) % 4 == 1).collect();
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(&bits);
        let mut soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        // Erase a quarter of the bits.
        for i in (0..soft.len()).step_by(4) {
            soft[i] = 0.0;
        }
        let dec = ViterbiDecoder::ieee80211().decode_soft_terminated(&soft);
        assert_eq!(dec, bits);
    }

    #[test]
    fn punctured_roundtrip_all_rates() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            // info length chosen so (info + 6) mother bits align with the
            // puncturing period
            let info = 54;
            let bits: Vec<bool> = (0..info).map(|i| (i * 29) % 11 < 5).collect();
            let mut enc = ConvEncoder::ieee80211();
            let mother = enc.encode_terminated(&bits);
            let tx = puncture(&mother, rate);
            let soft: Vec<f64> = tx.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
            let dec = ViterbiDecoder::ieee80211().decode_punctured_soft(&soft, rate, info);
            assert_eq!(dec, bits, "rate {}", rate.label());
        }
    }

    #[test]
    fn punctured_with_errors() {
        let info = 96;
        let bits: Vec<bool> = (0..info).map(|i| (i * 3) % 7 == 1).collect();
        let mut enc = ConvEncoder::ieee80211();
        let mother = enc.encode_terminated(&bits);
        let mut tx = puncture(&mother, CodeRate::TwoThirds);
        for idx in [10usize, 70, 130] {
            tx[idx] = !tx[idx];
        }
        let soft: Vec<f64> = tx.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let dec =
            ViterbiDecoder::ieee80211().decode_punctured_soft(&soft, CodeRate::TwoThirds, info);
        assert_eq!(dec, bits);
    }

    #[test]
    fn truncated_decode_recovers_most_bits() {
        let bits: Vec<bool> = (0..80).map(|i| (i * 19) % 6 < 3).collect();
        let mut enc = ConvEncoder::ieee80211();
        enc.reset();
        let coded = enc.encode(&bits); // no termination
        let soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let dec = ViterbiDecoder::ieee80211().decode_soft_truncated(&soft);
        assert_eq!(dec.len(), bits.len());
        // all but perhaps the last few bits must match
        assert_eq!(&dec[..70], &bits[..70]);
    }

    #[test]
    fn small_code_k3() {
        // K=3 (7,5) code — a classic textbook example.
        let bits: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let mut enc = ConvEncoder::new(3, 0b111, 0b101);
        let coded = enc.encode_terminated(&bits);
        let dec = ViterbiDecoder::new(3, 0b111, 0b101).decode_hard_terminated(&coded);
        assert_eq!(dec, bits);
    }
}
