//! The 802.11 frame-synchronous scrambler (polynomial x⁷ + x⁴ + 1).
//!
//! The WiFi transmitter whitens the PSDU so the OFDM signal has no DC bias or
//! repetitive structure; the receiver runs the identical circuit to undo it.
//! Scrambling and descrambling are the same operation.

/// The 127-bit-period scrambler from IEEE 802.11-2012 §18.3.5.5.
#[derive(Clone, Debug)]
pub struct Scrambler {
    state: u8, // 7 bits
}

impl Scrambler {
    /// Create with the given 7-bit initial state (must be nonzero; 802.11
    /// uses a pseudo-random nonzero seed per frame, 0x7F in the Annex G
    /// example).
    ///
    /// # Panics
    /// Panics if `seed == 0` or `seed > 0x7F` (an all-zero state never leaves
    /// zero).
    pub fn new(seed: u8) -> Self {
        assert!(seed != 0 && seed <= 0x7F, "scrambler seed must be 1..=0x7F");
        Scrambler { state: seed }
    }

    /// Advance the LFSR one step and return the scrambling bit.
    #[inline]
    pub fn next_bit(&mut self) -> bool {
        // feedback = x7 xor x4 (bits 6 and 3 when state bit0 is the newest)
        let b = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | b) & 0x7F;
        b == 1
    }

    /// Scramble (or descramble) a bit stream in place.
    pub fn process_in_place(&mut self, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            *b ^= self.next_bit();
        }
    }

    /// Scramble (or descramble) into a new vector.
    pub fn process(&mut self, bits: &[bool]) -> Vec<bool> {
        bits.iter().map(|&b| b ^ self.next_bit()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let bits: Vec<bool> = (0..300).map(|i| (i * 11) % 13 < 6).collect();
        let mut a = Scrambler::new(0x5D);
        let scrambled = a.process(&bits);
        assert_ne!(scrambled, bits);
        let mut b = Scrambler::new(0x5D);
        assert_eq!(b.process(&scrambled), bits);
    }

    #[test]
    fn period_is_127() {
        let mut s = Scrambler::new(0x7F);
        let seq: Vec<bool> = (0..254).map(|_| s.next_bit()).collect();
        assert_eq!(&seq[..127], &seq[127..]);
        // and not shorter
        assert_ne!(&seq[..63], &seq[63..126]);
    }

    #[test]
    fn annex_g_first_bits() {
        // IEEE 802.11-2012 Table L-6: with all-ones initial state the first
        // scrambler output bits are 0000 1110 1111 0010 ...
        let mut s = Scrambler::new(0x7F);
        let expect = [0u8, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(s.next_bit() as u8, e, "bit {i}");
        }
    }

    #[test]
    fn balanced_output() {
        // The m-sequence has 64 ones and 63 zeros per period.
        let mut s = Scrambler::new(0x01);
        let ones = (0..127).filter(|_| s.next_bit()).count();
        assert_eq!(ones, 64);
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn rejects_zero_seed() {
        Scrambler::new(0);
    }
}
