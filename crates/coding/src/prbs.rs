//! Pseudo-random binary sequences.
//!
//! Two protocol elements of BackFi are built on PN sequences (§4.1):
//! * the AP's 16-bit wake-up/identification preamble, pulsed at 1 µs per bit
//!   ("a series of short pulses to encode a pseudo-random preamble sequence"),
//! * the tag's 32 µs synchronization preamble, "pseudo random with very high
//!   auto-correlation", used by the reader for channel estimation and symbol
//!   timing.
//!
//! Maximal-length LFSR sequences (m-sequences) give exactly the required
//! two-valued autocorrelation (N vs −1).

/// A Fibonacci LFSR over GF(2) defined by a tap mask.
///
/// `taps` has bit i set when register bit i feeds the XOR (bit 0 is the
/// output end). With a primitive polynomial the period is `2^degree − 1`.
#[derive(Clone, Debug)]
pub struct Lfsr {
    state: u32,
    taps: u32,
    degree: u32,
}

impl Lfsr {
    /// Create an LFSR of the given degree with `taps` (must include bit
    /// `degree−1`) and a nonzero initial state.
    ///
    /// # Panics
    /// Panics if `degree` is 0 or > 31, or `state` is zero after masking.
    pub fn new(degree: u32, taps: u32, state: u32) -> Self {
        assert!((1..=31).contains(&degree), "degree must be 1..=31");
        let mask = (1u32 << degree) - 1;
        let state = state & mask;
        assert!(state != 0, "LFSR state must be nonzero");
        Lfsr {
            state,
            taps: taps & mask,
            degree,
        }
    }

    /// Standard maximal-length generators for a few degrees used in BackFi.
    ///
    /// # Panics
    /// Panics for unsupported degrees (supported: 4, 5, 6, 7, 9, 15).
    pub fn maximal(degree: u32, seed: u32) -> Self {
        // Tap masks encode the recurrence x_{n+d} = XOR of x_{n+i} for set
        // bits i. Each corresponds to a primitive polynomial x^d + x^i + 1
        // (bit 0 is always set because the polynomial's constant term maps to
        // the oldest register bit under this crate's shift-right convention).
        let taps = match degree {
            4 => 0b1001,                // x^4 + x^3 + 1
            5 => 0b0_1001,              // x^5 + x^3 + 1
            6 => 0b10_0001,             // x^6 + x^5 + 1
            7 => 0b100_0001,            // x^7 + x^6 + 1
            9 => 0b0_0010_0001,         // x^9 + x^5 + 1
            15 => 0b100_0000_0000_0001, // x^15 + x^14 + 1
            _ => panic!("no canned maximal polynomial for degree {degree}"),
        };
        Lfsr::new(degree, taps, seed)
    }

    /// Advance one step, returning the output bit.
    #[inline]
    pub fn next_bit(&mut self) -> bool {
        let out = self.state & 1 == 1;
        let fb = (self.state & self.taps).count_ones() & 1;
        self.state = (self.state >> 1) | (fb << (self.degree - 1));
        out
    }

    /// Generate `n` bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Sequence period (`2^degree − 1` when the polynomial is primitive).
    pub fn period(&self) -> usize {
        (1usize << self.degree) - 1
    }
}

/// The default 16-bit AP wake-up preamble used throughout the workspace.
/// One fixed draw from a degree-15 m-sequence; tags can be assigned other
/// 16-bit patterns to support per-tag addressing.
pub fn default_ap_preamble() -> Vec<bool> {
    Lfsr::maximal(15, 0x4D2E).bits(16)
}

/// A per-tag 16-bit identification preamble derived from the tag id.
pub fn tag_preamble(tag_id: u16) -> Vec<bool> {
    // Different nonzero seeds give different phases of the m-sequence, which
    // have low mutual correlation.
    let seed = (tag_id as u32).wrapping_mul(0x9E37).wrapping_add(1) & 0x7FFF;
    Lfsr::maximal(15, seed.max(1)).bits(16)
}

/// A ±1 m-sequence of length `2^degree − 1` as `f64` chips, for preambles
/// needing sharp autocorrelation.
pub fn msequence_chips(degree: u32, seed: u32) -> Vec<f64> {
    let mut l = Lfsr::maximal(degree, seed);
    let period = l.period();
    l.bits(period)
        .into_iter()
        .map(|b| if b { 1.0 } else { -1.0 })
        .collect()
}

/// Periodic autocorrelation of a ±1 chip sequence at integer lag.
pub fn periodic_autocorr(chips: &[f64], lag: usize) -> f64 {
    let n = chips.len();
    (0..n).map(|i| chips[i] * chips[(i + lag) % n]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_period() {
        for degree in [4u32, 5, 6, 7, 9] {
            let mut l = Lfsr::maximal(degree, 1);
            let period = l.period();
            let seq = l.bits(period * 2);
            assert_eq!(&seq[..period], &seq[period..], "degree {degree}");
            // no shorter period dividing it: check the first repeat isn't earlier
            for p in 1..period {
                if period.is_multiple_of(p)
                    && seq[..p] == seq[p..2 * p]
                    && seq[..period - p] == seq[p..period]
                {
                    panic!("degree {degree} repeated at {p}");
                }
            }
        }
    }

    #[test]
    fn balance_property() {
        // m-sequence of degree n has 2^(n-1) ones per period.
        let mut l = Lfsr::maximal(7, 3);
        let ones = l.bits(127).iter().filter(|&&b| b).count();
        assert_eq!(ones, 64);
    }

    #[test]
    fn two_valued_autocorrelation() {
        let chips = msequence_chips(6, 1);
        let n = chips.len() as f64;
        assert!((periodic_autocorr(&chips, 0) - n).abs() < 1e-12);
        for lag in 1..chips.len() {
            assert!(
                (periodic_autocorr(&chips, lag) + 1.0).abs() < 1e-12,
                "lag {lag}"
            );
        }
    }

    #[test]
    fn preambles_are_16_bits_and_distinct() {
        let ap = default_ap_preamble();
        assert_eq!(ap.len(), 16);
        let a = tag_preamble(1);
        let b = tag_preamble(2);
        assert_eq!(a.len(), 16);
        assert_ne!(a, b, "different tags must get different preambles");
    }

    #[test]
    fn deterministic() {
        assert_eq!(default_ap_preamble(), default_ap_preamble());
        assert_eq!(tag_preamble(42), tag_preamble(42));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_state() {
        Lfsr::new(5, 0b10100, 0);
    }
}
