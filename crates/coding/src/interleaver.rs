//! The 802.11a/g block interleaver.
//!
//! Coded bits in one OFDM symbol are permuted twice (IEEE 802.11-2012
//! §18.3.5.7): the first permutation spreads adjacent coded bits across
//! non-adjacent subcarriers; the second spreads them across constellation bit
//! positions so a faded subcarrier does not wipe out consecutive bits.

/// Interleaver for one OFDM symbol of `ncbps` coded bits with `nbpsc` bits
/// per subcarrier (1 = BPSK, 2 = QPSK, 4 = 16-QAM, 6 = 64-QAM).
#[derive(Clone, Debug)]
pub struct Interleaver {
    ncbps: usize,
    /// perm[k] = position after interleaving of input bit k.
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Interleaver {
    /// Build the permutation tables for a symbol size.
    ///
    /// # Panics
    /// Panics if `ncbps` is not a multiple of 16·`max(nbpsc/2,1)` (the 802.11
    /// sizes 48, 96, 192, 288 all are) or `nbpsc` is not one of 1, 2, 4, 6.
    pub fn new(ncbps: usize, nbpsc: usize) -> Self {
        assert!(
            matches!(nbpsc, 1 | 2 | 4 | 6),
            "nbpsc must be 1, 2, 4 or 6 (got {nbpsc})"
        );
        assert!(ncbps.is_multiple_of(16), "ncbps must be a multiple of 16");
        let s = (nbpsc / 2).max(1);
        let mut perm = vec![0usize; ncbps];
        #[allow(clippy::needless_range_loop)] // k feeds both permutation formulas
        for k in 0..ncbps {
            // First permutation (write row-wise into 16 columns).
            let i = (ncbps / 16) * (k % 16) + k / 16;
            // Second permutation (rotate within groups of s).
            let j = s * (i / s) + (i + ncbps - (16 * i) / ncbps) % s;
            perm[k] = j;
        }
        let mut inv = vec![0usize; ncbps];
        for (k, &j) in perm.iter().enumerate() {
            inv[j] = k;
        }
        Interleaver { ncbps, perm, inv }
    }

    /// Symbol size in coded bits.
    pub fn block_len(&self) -> usize {
        self.ncbps
    }

    /// Interleave exactly one symbol's worth of bits.
    ///
    /// # Panics
    /// Panics if `bits.len() != block_len()`.
    pub fn interleave<T: Copy + Default>(&self, bits: &[T]) -> Vec<T> {
        assert_eq!(bits.len(), self.ncbps, "interleave: wrong block size");
        let mut out = vec![T::default(); self.ncbps];
        for (k, &b) in bits.iter().enumerate() {
            out[self.perm[k]] = b;
        }
        out
    }

    /// Invert the permutation for one symbol.
    ///
    /// # Panics
    /// Panics if `bits.len() != block_len()`.
    pub fn deinterleave<T: Copy + Default>(&self, bits: &[T]) -> Vec<T> {
        assert_eq!(bits.len(), self.ncbps, "deinterleave: wrong block size");
        let mut out = vec![T::default(); self.ncbps];
        for (k, &b) in bits.iter().enumerate() {
            out[self.inv[k]] = b;
        }
        out
    }

    /// Invert the permutation for one symbol, writing into a caller-provided
    /// slice — the batched receive path deinterleaves each symbol straight
    /// into its slot of the packet-wide LLR buffer with no per-symbol
    /// allocation. Every position of `out` is written (the permutation is a
    /// bijection), so stale contents never leak through.
    ///
    /// # Panics
    /// Panics if `bits.len()` or `out.len()` differs from `block_len()`.
    pub fn deinterleave_into<T: Copy>(&self, bits: &[T], out: &mut [T]) {
        assert_eq!(bits.len(), self.ncbps, "deinterleave: wrong block size");
        assert_eq!(out.len(), self.ncbps, "deinterleave: wrong output size");
        for (k, &b) in bits.iter().enumerate() {
            out[self.inv[k]] = b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_sizes() {
        for (ncbps, nbpsc) in [(48, 1), (96, 2), (192, 4), (288, 6)] {
            let il = Interleaver::new(ncbps, nbpsc);
            let bits: Vec<bool> = (0..ncbps).map(|i| (i * 7) % 3 == 0).collect();
            let inter = il.interleave(&bits);
            assert_ne!(inter, bits, "permutation must not be identity");
            assert_eq!(il.deinterleave(&inter), bits);
        }
    }

    #[test]
    fn permutation_is_bijective() {
        for (ncbps, nbpsc) in [(48, 1), (96, 2), (192, 4), (288, 6)] {
            let il = Interleaver::new(ncbps, nbpsc);
            let mut seen = vec![false; ncbps];
            for &p in &il.perm {
                assert!(!seen[p], "duplicate target {p}");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn bpsk_interleaver_known_values() {
        // For BPSK (s=1) the second permutation is the identity, so
        // perm[k] = (ncbps/16)·(k mod 16) + floor(k/16).
        let il = Interleaver::new(48, 1);
        assert_eq!(il.perm[0], 0);
        assert_eq!(il.perm[1], 3);
        assert_eq!(il.perm[16], 1);
        assert_eq!(il.perm[47], 47);
    }

    #[test]
    fn adjacent_bits_are_spread() {
        // Adjacent coded bits must land at least ncbps/16 positions apart
        // (first permutation property), for every modulation.
        for (ncbps, nbpsc) in [(48, 1), (192, 4)] {
            let il = Interleaver::new(ncbps, nbpsc);
            for k in 0..ncbps - 1 {
                let d = il.perm[k].abs_diff(il.perm[k + 1]);
                assert!(d >= ncbps / 16 - 2, "bits {k},{} too close: {d}", k + 1);
            }
        }
    }

    #[test]
    fn works_with_soft_values() {
        let il = Interleaver::new(96, 2);
        let soft: Vec<f64> = (0..96).map(|i| i as f64 - 48.0).collect();
        assert_eq!(il.deinterleave(&il.interleave(&soft)), soft);
    }
}
