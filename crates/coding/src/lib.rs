//! # backfi-coding
//!
//! Channel coding used by both ends of the BackFi system:
//!
//! * [`conv`] — the K=7 (133, 171) convolutional encoder shared by 802.11 and
//!   the BackFi tag (§4.1 of the paper: "a rate 1/2 convolutional encoder with
//!   constraint length of 7 requires 6 shift registers and 8 XOR gates"),
//! * [`puncture`] — rate 1/2 → 2/3 and 3/4 puncturing (802.11 patterns; the
//!   tag uses 1/2 and 2/3),
//! * [`viterbi`] — hard- and soft-decision Viterbi decoding with traceback,
//! * [`scrambler`] — the 802.11 x⁷+x⁴+1 self-synchronizing scrambler,
//! * [`interleaver`] — the 802.11a/g two-permutation block interleaver,
//! * [`crc`] — CRC-32 (802.11 FCS) and CRC-8 (tag packet header/payload),
//! * [`prbs`] — maximal-length PN sequences (tag preambles, §4.1),
//! * [`bits`] — bit/byte packing helpers shared by the PHYs.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bits;
pub mod conv;
pub mod crc;
pub mod interleaver;
pub mod prbs;
pub mod puncture;
pub mod scrambler;
pub mod viterbi;

pub use conv::ConvEncoder;
pub use puncture::CodeRate;
pub use viterbi::ViterbiDecoder;
