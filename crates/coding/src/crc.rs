//! Cyclic redundancy checks.
//!
//! * [`crc32`] — the IEEE 802.3/802.11 FCS polynomial, appended to every WiFi
//!   frame so the client receiver can report packet success/failure in the
//!   coexistence experiments (Figs. 12–13).
//! * [`crc8`] — a short CRC for the tag's uplink packet (the paper's tag
//!   payload needs an integrity check so the reader can report goodput).

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320, init 0xFFFFFFFF, final
/// XOR 0xFFFFFFFF) — the 802.11 FCS.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// Verify a frame whose last four bytes are the little-endian CRC-32 of the
/// preceding bytes.
pub fn crc32_check(frame: &[u8]) -> bool {
    if frame.len() < 4 {
        return false;
    }
    let (body, fcs) = frame.split_at(frame.len() - 4);
    let expect = u32::from_le_bytes([fcs[0], fcs[1], fcs[2], fcs[3]]);
    crc32(body) == expect
}

/// Append the little-endian CRC-32 to a frame body.
pub fn crc32_append(body: &[u8]) -> Vec<u8> {
    let mut out = body.to_vec();
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out
}

/// CRC-8/ATM (polynomial x⁸+x²+x+1 = 0x07, init 0, no reflection).
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &byte in data {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Verify a block whose final byte is the CRC-8 of the preceding bytes.
pub fn crc8_check(frame: &[u8]) -> bool {
    if frame.is_empty() {
        return false;
    }
    let (body, tail) = frame.split_at(frame.len() - 1);
    crc8(body) == tail[0]
}

/// Append the CRC-8 to a block.
pub fn crc8_append(body: &[u8]) -> Vec<u8> {
    let mut out = body.to_vec();
    out.push(crc8(body));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_vector() {
        // The canonical "123456789" check value for CRC-32/IEEE is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_roundtrip_and_tamper() {
        let body = b"backfi tag payload".to_vec();
        let framed = crc32_append(&body);
        assert!(crc32_check(&framed));
        let mut bad = framed.clone();
        bad[3] ^= 0x01;
        assert!(!crc32_check(&bad));
        assert!(!crc32_check(&framed[..3]));
    }

    #[test]
    fn crc8_check_vector() {
        // CRC-8/ATM check value for "123456789" is 0xF4.
        assert_eq!(crc8(b"123456789"), 0xF4);
    }

    #[test]
    fn crc8_roundtrip_and_tamper() {
        let body = vec![0xDE, 0xAD, 0xBE, 0xEF];
        let framed = crc8_append(&body);
        assert!(crc8_check(&framed));
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert!(!crc8_check(&bad), "tamper at byte {i} undetected");
        }
        assert!(!crc8_check(&[]));
    }

    #[test]
    fn crc8_detects_single_bit_errors_exhaustively() {
        let body = vec![0x12, 0x34, 0x56];
        let framed = crc8_append(&body);
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(!crc8_check(&bad), "missed flip {byte}:{bit}");
            }
        }
    }
}
