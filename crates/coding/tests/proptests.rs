//! Randomized tests over the coding stack: any bit stream must survive
//! encode → (puncture →) channel-free decode, and every integrity mechanism
//! must catch random mutations.
//!
//! Formerly `proptest`-based; now driven by the in-tree [`SplitMix64`]
//! generator so the suite builds offline and every case is reproducible from
//! its loop index.

use backfi_coding::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};
use backfi_coding::crc::{crc32_append, crc32_check, crc8_append, crc8_check};
use backfi_coding::interleaver::Interleaver;
use backfi_coding::puncture::{puncture, CodeRate};
use backfi_coding::scrambler::Scrambler;
use backfi_coding::{ConvEncoder, ViterbiDecoder};
use backfi_dsp::rng::SplitMix64;

const CASES: u64 = 48;

fn bool_vec(rng: &mut SplitMix64, len: usize) -> Vec<bool> {
    (0..len).map(|_| rng.next_u64() & 1 == 1).collect()
}

fn byte_vec(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn conv_viterbi_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x11_0000 + case);
        let n_bits = 1 + rng.below(199) as usize;
        let bits = bool_vec(&mut rng, n_bits);
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(&bits);
        let dec = ViterbiDecoder::ieee80211().decode_hard_terminated(&coded);
        assert_eq!(dec, bits);
    }
}

#[test]
fn conv_viterbi_corrects_any_two_spread_errors() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x12_0000 + case);
        let n_bits = 30 + rng.below(90) as usize;
        let bits = bool_vec(&mut rng, n_bits);
        let e1 = rng.below(30) as usize;
        let gap = 20 + rng.below(20) as usize;
        let mut enc = ConvEncoder::ieee80211();
        let mut coded = enc.encode_terminated(&bits);
        let e2 = e1 + gap;
        if e2 >= coded.len() {
            continue;
        }
        coded[e1] = !coded[e1];
        coded[e2] = !coded[e2];
        let dec = ViterbiDecoder::ieee80211().decode_hard_terminated(&coded);
        assert_eq!(dec, bits);
    }
}

#[test]
fn punctured_roundtrip_all_rates() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x13_0000 + case);
        let n_bits = 12 + rng.below(108) as usize;
        let mut bits = bool_vec(&mut rng, n_bits);
        let rate =
            [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters][rng.below(3) as usize];
        // Align the mother stream with the puncturing period.
        while !((bits.len() + 6) * 2).is_multiple_of(2 * rate.k()) {
            bits.push(false);
        }
        let mut enc = ConvEncoder::ieee80211();
        let mother = enc.encode_terminated(&bits);
        let tx = puncture(&mother, rate);
        let soft: Vec<f64> = tx.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let dec = ViterbiDecoder::ieee80211().decode_punctured_soft(&soft, rate, bits.len());
        assert_eq!(dec, bits);
    }
}

#[test]
fn scrambler_is_involution() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x14_0000 + case);
        let n_bits = rng.below(300) as usize;
        let bits = bool_vec(&mut rng, n_bits);
        let seed = 1 + rng.below(0x7F) as u8;
        let mut a = Scrambler::new(seed);
        let s = a.process(&bits);
        let mut b = Scrambler::new(seed);
        assert_eq!(b.process(&s), bits);
    }
}

#[test]
fn interleaver_is_bijective() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x15_0000 + case);
        let data = bool_vec(&mut rng, 96);
        let il = Interleaver::new(96, 2);
        let forward = il.interleave(&data);
        assert_eq!(il.deinterleave(&forward), data);
    }
}

#[test]
fn crc32_detects_any_single_byte_mutation() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x16_0000 + case);
        let n_body = 1 + rng.below(63) as usize;
        let body = byte_vec(&mut rng, n_body);
        let framed = crc32_append(&body);
        assert!(crc32_check(&framed));
        let mut bad = framed.clone();
        let i = rng.below(bad.len() as u64) as usize;
        let flip = 1 + rng.below(255) as u8;
        bad[i] ^= flip;
        assert!(!crc32_check(&bad));
    }
}

#[test]
fn crc8_detects_any_single_byte_mutation() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x17_0000 + case);
        let n_body = 1 + rng.below(31) as usize;
        let body = byte_vec(&mut rng, n_body);
        let framed = crc8_append(&body);
        assert!(crc8_check(&framed));
        let mut bad = framed.clone();
        let i = rng.below(bad.len() as u64) as usize;
        let flip = 1 + rng.below(255) as u8;
        bad[i] ^= flip;
        assert!(!crc8_check(&bad));
    }
}

#[test]
fn bit_byte_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x18_0000 + case);
        let n_bytes = rng.below(64) as usize;
        let bytes = byte_vec(&mut rng, n_bytes);
        assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(&bytes)), bytes);
    }
}

#[test]
fn soft_decisions_scale_invariant() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x19_0000 + case);
        let n_bits = 10 + rng.below(50) as usize;
        let bits = bool_vec(&mut rng, n_bits);
        // Log-uniform scale over 0.01..100.
        let scale = 10f64.powf(-2.0 + 4.0 * rng.next_f64());
        // Scaling all soft metrics by a positive constant must not change
        // the decoded bits (Viterbi compares path sums).
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(&bits);
        let soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let scaled: Vec<f64> = soft.iter().map(|v| v * scale).collect();
        let dec = ViterbiDecoder::ieee80211();
        assert_eq!(
            dec.decode_soft_terminated(&soft),
            dec.decode_soft_terminated(&scaled)
        );
    }
}

#[test]
fn lfsr_never_reaches_zero_state() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A_0000 + case);
        let seed = 1 + rng.below(126) as u32;
        let n = 1 + rng.below(499) as usize;
        let mut l = backfi_coding::prbs::Lfsr::maximal(7, seed);
        // If the state ever hit zero the sequence would be all-zero from
        // there on; a maximal LFSR must keep producing both values.
        let bits = l.bits(n + 127);
        let tail = &bits[n.saturating_sub(1)..];
        if tail.len() >= 127 {
            assert!(tail.iter().any(|&b| b));
            assert!(tail.iter().any(|&b| !b));
        }
    }
}
