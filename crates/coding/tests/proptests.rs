//! Property-based tests over the coding stack: any bit stream must survive
//! encode → (puncture →) channel-free decode, and every integrity mechanism
//! must catch random mutations.

use backfi_coding::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};
use backfi_coding::crc::{crc32_append, crc32_check, crc8_append, crc8_check};
use backfi_coding::interleaver::Interleaver;
use backfi_coding::puncture::{puncture, CodeRate};
use backfi_coding::scrambler::Scrambler;
use backfi_coding::{ConvEncoder, ViterbiDecoder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_viterbi_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(&bits);
        let dec = ViterbiDecoder::ieee80211().decode_hard_terminated(&coded);
        prop_assert_eq!(dec, bits);
    }

    #[test]
    fn conv_viterbi_corrects_any_two_spread_errors(
        bits in proptest::collection::vec(any::<bool>(), 30..120),
        e1 in 0usize..30, gap in 20usize..40,
    ) {
        let mut enc = ConvEncoder::ieee80211();
        let mut coded = enc.encode_terminated(&bits);
        let e2 = e1 + gap;
        prop_assume!(e2 < coded.len());
        coded[e1] = !coded[e1];
        coded[e2] = !coded[e2];
        let dec = ViterbiDecoder::ieee80211().decode_hard_terminated(&coded);
        prop_assert_eq!(dec, bits);
    }

    #[test]
    fn punctured_roundtrip_all_rates(
        bits in proptest::collection::vec(any::<bool>(), 12..120),
        rate_idx in 0usize..3,
    ) {
        let rate = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters][rate_idx];
        // Align the mother stream with the puncturing period.
        let mut bits = bits;
        while (bits.len() + 6) * 2 % (2 * rate.k()) != 0 {
            bits.push(false);
        }
        let mut enc = ConvEncoder::ieee80211();
        let mother = enc.encode_terminated(&bits);
        let tx = puncture(&mother, rate);
        let soft: Vec<f64> = tx.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let dec = ViterbiDecoder::ieee80211().decode_punctured_soft(&soft, rate, bits.len());
        prop_assert_eq!(dec, bits);
    }

    #[test]
    fn scrambler_is_involution(bits in proptest::collection::vec(any::<bool>(), 0..300),
                               seed in 1u8..=0x7F) {
        let mut a = Scrambler::new(seed);
        let s = a.process(&bits);
        let mut b = Scrambler::new(seed);
        prop_assert_eq!(b.process(&s), bits);
    }

    #[test]
    fn interleaver_is_bijective(data in proptest::collection::vec(any::<bool>(), 96..97)) {
        let il = Interleaver::new(96, 2);
        let forward = il.interleave(&data);
        prop_assert_eq!(il.deinterleave(&forward), data);
    }

    #[test]
    fn crc32_detects_any_single_byte_mutation(
        body in proptest::collection::vec(any::<u8>(), 1..64),
        idx in 0usize..64, flip in 1u8..=255,
    ) {
        let framed = crc32_append(&body);
        prop_assert!(crc32_check(&framed));
        let mut bad = framed.clone();
        let i = idx % bad.len();
        bad[i] ^= flip;
        prop_assert!(!crc32_check(&bad));
    }

    #[test]
    fn crc8_detects_any_single_byte_mutation(
        body in proptest::collection::vec(any::<u8>(), 1..32),
        idx in 0usize..33, flip in 1u8..=255,
    ) {
        let framed = crc8_append(&body);
        prop_assert!(crc8_check(&framed));
        let mut bad = framed.clone();
        let i = idx % bad.len();
        bad[i] ^= flip;
        prop_assert!(!crc8_check(&bad));
    }

    #[test]
    fn bit_byte_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(&bytes)), bytes);
    }

    #[test]
    fn soft_decisions_scale_invariant(bits in proptest::collection::vec(any::<bool>(), 10..60),
                                      scale in 0.01f64..100.0) {
        // Scaling all soft metrics by a positive constant must not change
        // the decoded bits (Viterbi compares path sums).
        let mut enc = ConvEncoder::ieee80211();
        let coded = enc.encode_terminated(&bits);
        let soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let scaled: Vec<f64> = soft.iter().map(|v| v * scale).collect();
        let dec = ViterbiDecoder::ieee80211();
        prop_assert_eq!(
            dec.decode_soft_terminated(&soft),
            dec.decode_soft_terminated(&scaled)
        );
    }

    #[test]
    fn lfsr_never_reaches_zero_state(seed in 1u32..127, n in 1usize..500) {
        let mut l = backfi_coding::prbs::Lfsr::maximal(7, seed);
        // If the state ever hit zero the sequence would be all-zero from
        // there on; a maximal LFSR must keep producing both values.
        let bits = l.bits(n + 127);
        let tail = &bits[n.saturating_sub(1)..];
        if tail.len() >= 127 {
            prop_assert!(tail.iter().any(|&b| b));
            prop_assert!(tail.iter().any(|&b| !b));
        }
    }
}
