//! The SIGNAL field: the BPSK rate-1/2 header symbol that announces the
//! packet's rate and length.

use crate::params::Mcs;
use backfi_coding::ConvEncoder;

/// Decoded contents of a SIGNAL field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signal {
    /// The announced modulation-and-coding scheme.
    pub mcs: Mcs,
    /// PSDU length in bytes (12-bit field, 1–4095).
    pub length: usize,
}

impl Signal {
    /// Build the 24 uncoded SIGNAL bits: RATE(4) | reserved(1) |
    /// LENGTH(12, LSB first) | even parity(1) | tail(6).
    ///
    /// # Panics
    /// Panics if `length` doesn't fit in 12 bits or is zero.
    pub fn to_bits(self) -> [bool; 24] {
        assert!(
            self.length > 0 && self.length < 4096,
            "length must be 1..=4095"
        );
        let mut bits = [false; 24];
        bits[..4].copy_from_slice(&self.mcs.rate_bits());
        // bits[4] reserved = 0
        for i in 0..12 {
            bits[5 + i] = (self.length >> i) & 1 == 1;
        }
        let parity = bits[..17].iter().filter(|&&b| b).count() % 2 == 1;
        bits[17] = parity; // even parity over bits 0..17
                           // bits 18..24 tail zeros
        bits
    }

    /// Parse and validate 24 uncoded SIGNAL bits.
    ///
    /// Returns `None` on parity failure, unknown rate, zero length, or
    /// non-zero tail.
    pub fn from_bits(bits: &[bool; 24]) -> Option<Signal> {
        let ones = bits[..18].iter().filter(|&&b| b).count();
        if ones % 2 != 0 {
            return None; // parity violated
        }
        if bits[18..].iter().any(|&b| b) {
            return None; // tail must be zero
        }
        if bits[4] {
            return None; // reserved bit must be zero
        }
        let mcs = Mcs::from_rate_bits([bits[0], bits[1], bits[2], bits[3]])?;
        let mut length = 0usize;
        for i in 0..12 {
            length |= (bits[5 + i] as usize) << i;
        }
        if length == 0 {
            return None;
        }
        Some(Signal { mcs, length })
    }

    /// Convolutionally encode the SIGNAL bits at rate 1/2 (no termination
    /// tail beyond the six zeros already inside the field) → 48 coded bits,
    /// exactly one BPSK OFDM symbol.
    pub fn encode(self) -> Vec<bool> {
        let mut enc = ConvEncoder::ieee80211();
        enc.reset();
        enc.encode(&self.to_bits())
    }

    /// Decode 48 soft metrics back into a SIGNAL field.
    pub fn decode_soft(soft: &[f64]) -> Option<Signal> {
        if soft.len() != 48 {
            return None;
        }
        // The six in-field tail zeros terminate the trellis, so decode as a
        // terminated frame of 18 information bits.
        let dec = backfi_coding::ViterbiDecoder::ieee80211().decode_soft_terminated(soft);
        let mut bits = [false; 24];
        bits[..18].copy_from_slice(&dec[..18]);
        Signal::from_bits(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip_all_rates() {
        for mcs in Mcs::ALL {
            for length in [1usize, 100, 1500, 4095] {
                let s = Signal { mcs, length };
                let parsed = Signal::from_bits(&s.to_bits()).expect("roundtrip");
                assert_eq!(parsed, s);
            }
        }
    }

    #[test]
    fn parity_detects_single_flip() {
        let s = Signal {
            mcs: Mcs::Mbps24,
            length: 1000,
        };
        let bits = s.to_bits();
        for i in 0..18 {
            let mut bad = bits;
            bad[i] = !bad[i];
            assert_ne!(Signal::from_bits(&bad), Some(s), "flip {i} undetected");
        }
    }

    #[test]
    fn coded_roundtrip() {
        let s = Signal {
            mcs: Mcs::Mbps54,
            length: 1234,
        };
        let coded = s.encode();
        assert_eq!(coded.len(), 48);
        let soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        assert_eq!(Signal::decode_soft(&soft), Some(s));
    }

    #[test]
    fn coded_roundtrip_with_errors() {
        let s = Signal {
            mcs: Mcs::Mbps6,
            length: 40,
        };
        let coded = s.encode();
        let mut soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        soft[5] = -soft[5];
        soft[30] = -soft[30];
        assert_eq!(Signal::decode_soft(&soft), Some(s));
    }

    #[test]
    fn rejects_zero_length() {
        let mut bits = Signal {
            mcs: Mcs::Mbps6,
            length: 1,
        }
        .to_bits();
        // clear the length LSB -> length 0, fix parity by flipping reserved?
        bits[5] = false;
        bits[17] = !bits[17]; // keep parity even
        assert_eq!(Signal::from_bits(&bits), None);
    }
}
