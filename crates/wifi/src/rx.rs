//! The 802.11g OFDM receiver chain.
//!
//! Detection (STF autocorrelation) → coarse CFO → LTF timing (cross-
//! correlation) → fine CFO → LTF channel + noise estimation → SIGNAL decode →
//! per-symbol equalization with pilot phase tracking → soft demap →
//! deinterleave → depuncture → Viterbi → descramble.
//!
//! The coexistence experiments of the paper (Figs. 12b, 13) hinge on this
//! receiver: a backscattering tag perturbs the client's channel mid-packet,
//! and the question is how much that costs in post-equalization SNR and
//! packet success.

use crate::modmap::{demap_soft, demap_soft_batch, demap_soft_direct};
use crate::params::{Mcs, Modulation, OFDM};
use crate::preamble::{ltf_frequency_domain, ltf_symbol};
use crate::signal_field::Signal;
use crate::subcarrier::{
    bin, data_subcarriers, disassemble_symbol, pilot_polarity_sequence, PILOT_BASE,
    PILOT_SUBCARRIERS,
};
use backfi_coding::bits::bits_to_bytes_lsb;
use backfi_coding::interleaver::Interleaver;
use backfi_coding::puncture::depuncture_soft;
use backfi_coding::ViterbiDecoder;
use backfi_dsp::correlate::{autocorr_metric, xcorr_normalized};
use backfi_dsp::fft::FftPlan;
use backfi_dsp::{stats, Complex, SAMPLE_RATE_HZ};

/// Why a packet could not be decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxError {
    /// No STF-like structure found in the buffer.
    NotDetected,
    /// STF found but LTF timing could not be confirmed.
    SyncFailed,
    /// The SIGNAL field failed its parity/consistency checks.
    BadSignalField,
    /// The buffer ends before the announced packet length.
    Truncated,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RxError::NotDetected => "no packet detected",
            RxError::SyncFailed => "LTF synchronization failed",
            RxError::BadSignalField => "SIGNAL field invalid",
            RxError::Truncated => "buffer shorter than announced packet",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RxError {}

/// A successfully synchronized and decoded packet.
#[derive(Clone, Debug)]
pub struct RxPacket {
    /// Announced and used MCS.
    pub mcs: Mcs,
    /// Recovered PSDU bytes (integrity not yet checked — see
    /// [`crate::mac::check_fcs`]).
    pub psdu: Vec<u8>,
    /// Post-equalization SNR estimate in dB (from the LTF).
    pub snr_db: f64,
    /// Estimated carrier frequency offset in Hz.
    pub cfo_hz: f64,
    /// Sample index where the preamble started.
    pub start: usize,
}

/// Channel-probe result: everything up to (not including) payload decoding.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// LTF-based SNR estimate in dB.
    pub snr_db: f64,
    /// Estimated CFO in Hz.
    pub cfo_hz: f64,
    /// Sample index of the preamble start.
    pub start: usize,
    /// Per-bin channel estimate (64 entries; unloaded bins are zero).
    pub channel: Vec<Complex>,
}

/// Number of OFDM symbols processed per planar batch by the payload demod
/// loop. One batch shares one strided FFT invocation, one demapper table
/// fetch and one set of planar scratch buffers; symbols are independent, so
/// the cut is purely a locality/amortization knob — output is bit-identical
/// at every batch size (pinned by the `_equiv` suite). 16 symbols keep the
/// whole working set (16 KiB of FFT lanes + ~45 KiB of planar f64 scratch)
/// L1/L2-resident while amortizing per-call overhead ~16×.
pub const RX_SYMBOL_BATCH: usize = 16;

/// Detection thresholds and search limits.
#[derive(Clone, Copy, Debug)]
pub struct RxConfig {
    /// Normalized STF autocorrelation threshold (0–1).
    pub detect_threshold: f64,
    /// Normalized LTF cross-correlation threshold (0–1).
    pub sync_threshold: f64,
    /// Samples of timing backoff into the cyclic prefix.
    pub timing_backoff: usize,
}

impl Default for RxConfig {
    fn default() -> Self {
        RxConfig {
            detect_threshold: 0.7,
            sync_threshold: 0.55,
            timing_backoff: 2,
        }
    }
}

/// The receiver. Holds precomputed tables; reusable across packets.
#[derive(Clone, Debug)]
pub struct WifiReceiver {
    plan: FftPlan,
    polarity: Vec<f64>,
    ltf_time: Vec<Complex>,
    ltf_freq: Vec<Complex>,
    /// FFT bins of the 48 data subcarriers, in transmission order —
    /// precomputed so the per-symbol hot loop gathers instead of re-deriving
    /// the subcarrier map.
    data_bins: Vec<usize>,
    cfg: RxConfig,
}

impl Default for WifiReceiver {
    fn default() -> Self {
        Self::new(RxConfig::default())
    }
}

impl WifiReceiver {
    /// Create a receiver with the given thresholds.
    pub fn new(cfg: RxConfig) -> Self {
        WifiReceiver {
            plan: FftPlan::new(OFDM::FFT),
            polarity: pilot_polarity_sequence(),
            ltf_time: ltf_symbol(),
            ltf_freq: ltf_frequency_domain(),
            data_bins: data_subcarriers().into_iter().map(bin).collect(),
            cfg,
        }
    }

    /// Synchronize to the strongest packet in `samples` and estimate the
    /// channel, without decoding the payload.
    pub fn probe(&self, samples: &[Complex]) -> Result<ProbeReport, RxError> {
        let sync = self.synchronize(samples)?;
        Ok(ProbeReport {
            snr_db: sync.snr_db,
            cfo_hz: sync.cfo_hz,
            start: sync.start,
            channel: sync.channel,
        })
    }

    /// Full packet decode.
    pub fn receive(&self, samples: &[Complex]) -> Result<RxPacket, RxError> {
        let sync = {
            let _span = backfi_obs::span("wifi.rx.sync");
            self.synchronize(samples)?
        };
        let x = &sync.corrected;
        let noise_var = sync.noise_var;

        // ---- SIGNAL symbol ------------------------------------------------
        let sig_start = sync.data_start;
        if sig_start + OFDM::SYMBOL > x.len() {
            return Err(RxError::Truncated);
        }
        let sig_llr =
            self.demap_symbol(x, sig_start, 0, &sync.channel, noise_var, Modulation::Bpsk);
        let sig_deil = Interleaver::new(48, 1).deinterleave(&sig_llr);
        let signal = Signal::decode_soft(&sig_deil).ok_or(RxError::BadSignalField)?;
        let mcs = signal.mcs;
        let nsym = mcs.data_symbols(signal.length);

        let payload_start = sig_start + OFDM::SYMBOL;
        if payload_start + nsym * OFDM::SYMBOL > x.len() {
            return Err(RxError::Truncated);
        }

        // ---- DATA symbols ---------------------------------------------------
        let llrs =
            self.demap_payload_batched(x, payload_start, nsym, &sync.channel, noise_var, mcs);

        // ---- decode ---------------------------------------------------------
        let _decode_span = backfi_obs::span("wifi.rx.decode");
        let info_bits = nsym * mcs.dbps();
        let mother_len = info_bits * 2;
        let soft = {
            let _span = backfi_obs::span("wifi.rx.depuncture");
            depuncture_soft(&llrs, mcs.code_rate(), mother_len)
        };
        let scrambled = {
            let _span = backfi_obs::span("wifi.rx.viterbi");
            ViterbiDecoder::ieee80211().decode_soft_truncated(&soft)
        };

        // Descramble: SERVICE bits are zero on air, so the first 7 decoded
        // bits are the scrambler sequence itself; extend it by its recurrence
        // z[i] = z[i−4] ⊕ z[i−7], descrambling in the same preallocated pass.
        let mut z = vec![false; scrambled.len()];
        z[..7].copy_from_slice(&scrambled[..7]);
        for i in 7..scrambled.len() {
            z[i] = z[i - 4] ^ z[i - 7];
        }
        let bits: Vec<bool> = scrambled.iter().zip(&z).map(|(b, s)| b ^ s).collect();

        let need = 16 + 8 * signal.length;
        if bits.len() < need {
            return Err(RxError::Truncated);
        }
        let psdu = bits_to_bytes_lsb(&bits[16..need]);

        Ok(RxPacket {
            mcs,
            psdu,
            snr_db: sync.snr_db,
            cfo_hz: sync.cfo_hz,
            start: sync.start,
        })
    }

    // ---- internals ----------------------------------------------------------

    fn synchronize(&self, samples: &[Complex]) -> Result<SyncState, RxError> {
        if samples.len() < 480 {
            return Err(RxError::NotDetected);
        }
        // 1. STF detection: 16-sample periodicity.
        let (p, e) = autocorr_metric(samples, 16, 64);
        let peak_energy = e.iter().cloned().fold(0.0, f64::max);
        if peak_energy <= 0.0 {
            return Err(RxError::NotDetected);
        }
        let mut detect = None;
        for k in 0..p.len() {
            // Require real energy (vs. the quietest parts of the buffer) so
            // noise-only regions with flukey correlation don't trigger.
            if e[k] > 0.05 * peak_energy && p[k].abs() / e[k] > self.cfg.detect_threshold {
                detect = Some(k);
                break;
            }
        }
        let coarse = detect.ok_or(RxError::NotDetected)?;

        // 2. Coarse CFO from the STF autocorrelation phase.
        let cfo1 = -p[coarse].arg() / (2.0 * std::f64::consts::PI * 16.0 / SAMPLE_RATE_HZ);
        let mut x: Vec<Complex> = samples.to_vec();
        apply_cfo(&mut x, -cfo1);

        // 3. LTF timing by normalized cross-correlation, confirmed by the
        // second long symbol exactly 64 samples later.
        let search_end = (coarse + 500).min(x.len());
        let window = &x[coarse..search_end];
        if window.len() < 192 {
            return Err(RxError::SyncFailed);
        }
        let corr = xcorr_normalized(window, &self.ltf_time);
        let mut best: Option<(usize, f64)> = None;
        for k in 0..corr.len().saturating_sub(64) {
            let score = corr[k] + corr[k + 64];
            if corr[k] > self.cfg.sync_threshold && corr[k + 64] > self.cfg.sync_threshold {
                match best {
                    Some((_, b)) if score <= b => {}
                    _ => best = Some((k, score)),
                }
            }
        }
        let (rel, _) = best.ok_or(RxError::SyncFailed)?;
        let ltf1 = (coarse + rel).saturating_sub(self.cfg.timing_backoff);
        if ltf1 + 128 + OFDM::SYMBOL > x.len() {
            return Err(RxError::Truncated);
        }

        // 4. Fine CFO from the two long symbols.
        let s1 = &x[ltf1..ltf1 + 64];
        let s2 = &x[ltf1 + 64..ltf1 + 128];
        // s2 = s1·e^{j2π·cfo·64/fs}, so Σ s1·conj(s2) has phase −2π·cfo·64/fs.
        let acc: Complex = s1.iter().zip(s2).map(|(a, b)| *a * b.conj()).sum();
        let cfo2 = -acc.arg() / (2.0 * std::f64::consts::PI * 64.0 / SAMPLE_RATE_HZ);
        apply_cfo(&mut x, -cfo2);

        // 5. Channel + noise estimation from the two (re-corrected) symbols.
        let mut f1 = x[ltf1..ltf1 + 64].to_vec();
        let mut f2 = x[ltf1 + 64..ltf1 + 128].to_vec();
        self.plan.forward(&mut f1);
        self.plan.forward(&mut f2);
        let mut channel = vec![Complex::ZERO; 64];
        let mut noise_acc = 0.0;
        let mut sig_acc = 0.0;
        let mut loaded = 0usize;
        for k in -26i32..=26 {
            if k == 0 {
                continue;
            }
            let b = bin(k);
            let l = self.ltf_freq[b];
            if l.abs() < 0.5 {
                continue;
            }
            let avg = (f1[b] + f2[b]) / 2.0;
            channel[b] = avg / l;
            noise_acc += (f1[b] - f2[b]).norm_sqr() / 2.0;
            sig_acc += avg.norm_sqr();
            loaded += 1;
        }
        let noise_var = (noise_acc / loaded as f64).max(1e-15);
        let sig_pow = sig_acc / loaded as f64;
        let snr_db = stats::db((sig_pow / noise_var).max(1e-12));

        let start = ltf1.saturating_sub(192); // preamble start estimate
        Ok(SyncState {
            corrected: x,
            channel,
            noise_var,
            snr_db,
            cfo_hz: cfo1 + cfo2,
            data_start: ltf1 + 128,
            start,
        })
    }

    /// FFT one symbol, equalize, track pilot phase, demap soft bits.
    ///
    /// Hot path: stack scratch, a precomputed data-bin gather, planar
    /// equalization ([`backfi_dsp::soa::equalize_planar`]) and the cached
    /// table demapper. Bit-identical to [`Self::demap_symbol_direct`]
    /// (pinned by the `_equiv` test).
    fn demap_symbol(
        &self,
        x: &[Complex],
        at: usize,
        n: usize,
        channel: &[Complex],
        noise_var: f64,
        modulation: Modulation,
    ) -> Vec<f64> {
        let mut bins = [Complex::ZERO; OFDM::FFT];
        bins.copy_from_slice(&x[at + OFDM::CP..at + OFDM::SYMBOL]);
        self.plan.forward(&mut bins);

        // Pilot-based common phase error estimate.
        let pol = self.polarity[n % self.polarity.len()];
        let mut acc = Complex::ZERO;
        for (i, &k) in PILOT_SUBCARRIERS.iter().enumerate() {
            let b = bin(k);
            let expected = channel[b] * (PILOT_BASE[i] * pol);
            acc += bins[b] * expected.conj();
        }
        let phase = if acc.abs() > 0.0 { acc.arg() } else { 0.0 };
        let derot = Complex::exp_j(-phase);

        // Gather the data subcarriers and their channel estimates into
        // planar scratch, equalize all 48 at once, then demap.
        const ND: usize = 48;
        debug_assert_eq!(self.data_bins.len(), ND);
        let mut sr = [0.0f64; ND];
        let mut si = [0.0f64; ND];
        let mut hr = [0.0f64; ND];
        let mut hi = [0.0f64; ND];
        for (i, &b) in self.data_bins.iter().enumerate() {
            sr[i] = bins[b].re;
            si[i] = bins[b].im;
            hr[i] = channel[b].re;
            hi[i] = channel[b].im;
        }
        let mut eq_re = [0.0f64; ND];
        let mut eq_im = [0.0f64; ND];
        let mut csi = [0.0f64; ND];
        backfi_dsp::soa::equalize_planar(
            &sr, &si, &hr, &hi, derot, &mut eq_re, &mut eq_im, &mut csi,
        );
        let mut llr = Vec::with_capacity(ND * modulation.bits_per_subcarrier());
        for i in 0..ND {
            demap_soft(
                modulation,
                Complex::new(eq_re[i], eq_im[i]),
                csi[i],
                noise_var,
                &mut llr,
            );
        }
        llr
    }

    /// Reference form of [`Self::demap_symbol`]: heap scratch, per-subcarrier
    /// AoS equalization, and the rebuild-every-call demapper — the original
    /// receive path, kept for the `_equiv` suite.
    #[cfg_attr(not(test), allow(dead_code))]
    fn demap_symbol_direct(
        &self,
        x: &[Complex],
        at: usize,
        n: usize,
        channel: &[Complex],
        noise_var: f64,
        modulation: Modulation,
    ) -> Vec<f64> {
        let mut bins = x[at + OFDM::CP..at + OFDM::SYMBOL].to_vec();
        self.plan.forward(&mut bins);

        // Pilot-based common phase error estimate.
        let pol = self.polarity[n % self.polarity.len()];
        let mut acc = Complex::ZERO;
        for (i, &k) in PILOT_SUBCARRIERS.iter().enumerate() {
            let b = bin(k);
            let expected = channel[b] * (PILOT_BASE[i] * pol);
            acc += bins[b] * expected.conj();
        }
        let phase = if acc.abs() > 0.0 { acc.arg() } else { 0.0 };
        let derot = Complex::exp_j(-phase);

        let (data, _pilots) = disassemble_symbol(&bins);
        let mut llr = Vec::with_capacity(data.len() * modulation.bits_per_subcarrier());
        for (pt, k) in data.iter().zip(data_subcarriers()) {
            let h = channel[bin(k)];
            let csi = h.norm_sqr();
            let eq = if csi > 1e-15 {
                (*pt * derot) / h
            } else {
                Complex::ZERO
            };
            demap_soft_direct(modulation, eq, csi, noise_var, &mut llr);
        }
        llr
    }

    /// Demodulate the whole payload in [`RX_SYMBOL_BATCH`]-symbol planar
    /// batches: one strided FFT call per batch, per-symbol pilot phase
    /// tracking and planar equalization into shared scratch, one fused demap
    /// pass over the batch, and per-symbol deinterleaving straight into the
    /// packet-wide LLR buffer. Per symbol the arithmetic is exactly
    /// [`Self::demap_symbol`]'s (which in turn is pinned bitwise against
    /// [`Self::demap_symbol_direct`]), so output is bit-identical to the
    /// per-symbol loop at every symbol count — including counts that are not
    /// a multiple of the batch size.
    fn demap_payload_batched(
        &self,
        x: &[Complex],
        payload_start: usize,
        nsym: usize,
        channel: &[Complex],
        noise_var: f64,
        mcs: Mcs,
    ) -> Vec<f64> {
        let _batch_span = backfi_obs::span("wifi.rx.batch");
        const ND: usize = 48;
        let modulation = mcs.modulation();
        let nbpsc = modulation.bits_per_subcarrier();
        let cbps = mcs.cbps();
        debug_assert_eq!(cbps, ND * nbpsc);
        let il = Interleaver::new(cbps, nbpsc);
        // deinterleave_into writes every slot of each symbol's range.
        let mut llrs = vec![0.0f64; nsym * cbps];

        // The channel is static over the packet: gather its planar form once.
        let mut hr = [0.0f64; ND];
        let mut hi = [0.0f64; ND];
        for (i, &b) in self.data_bins.iter().enumerate() {
            hr[i] = channel[b].re;
            hi[i] = channel[b].im;
        }

        let mut fftbuf = vec![Complex::ZERO; RX_SYMBOL_BATCH * OFDM::FFT];
        let mut sr = vec![0.0f64; RX_SYMBOL_BATCH * ND];
        let mut si = vec![0.0f64; RX_SYMBOL_BATCH * ND];
        let mut eq_re = vec![0.0f64; RX_SYMBOL_BATCH * ND];
        let mut eq_im = vec![0.0f64; RX_SYMBOL_BATCH * ND];
        let mut csi = vec![0.0f64; RX_SYMBOL_BATCH * ND];
        let mut batch_llr: Vec<f64> = Vec::with_capacity(RX_SYMBOL_BATCH * cbps);

        let mut n0 = 0usize;
        while n0 < nsym {
            let b = RX_SYMBOL_BATCH.min(nsym - n0);
            // 1. Strip CPs and transform the whole batch with one plan call.
            for s in 0..b {
                let at = payload_start + (n0 + s) * OFDM::SYMBOL;
                fftbuf[s * OFDM::FFT..(s + 1) * OFDM::FFT]
                    .copy_from_slice(&x[at + OFDM::CP..at + OFDM::SYMBOL]);
            }
            self.plan.forward_many(&mut fftbuf[..b * OFDM::FFT]);
            // 2. Pilot CPE + planar equalization, symbol by symbol (the
            // derotator differs per symbol; the 48-wide kernel calls are the
            // same as the unbatched path's).
            for s in 0..b {
                let bins_s = &fftbuf[s * OFDM::FFT..(s + 1) * OFDM::FFT];
                let pol = self.polarity[(n0 + s + 1) % self.polarity.len()];
                let mut acc = Complex::ZERO;
                for (i, &k) in PILOT_SUBCARRIERS.iter().enumerate() {
                    let pb = bin(k);
                    let expected = channel[pb] * (PILOT_BASE[i] * pol);
                    acc += bins_s[pb] * expected.conj();
                }
                let phase = if acc.abs() > 0.0 { acc.arg() } else { 0.0 };
                let derot = Complex::exp_j(-phase);
                let o = s * ND;
                for (i, &pb) in self.data_bins.iter().enumerate() {
                    sr[o + i] = bins_s[pb].re;
                    si[o + i] = bins_s[pb].im;
                }
                backfi_dsp::soa::equalize_planar(
                    &sr[o..o + ND],
                    &si[o..o + ND],
                    &hr,
                    &hi,
                    derot,
                    &mut eq_re[o..o + ND],
                    &mut eq_im[o..o + ND],
                    &mut csi[o..o + ND],
                );
            }
            // 3. One fused demap pass over the whole batch.
            batch_llr.clear();
            demap_soft_batch(
                modulation,
                &eq_re[..b * ND],
                &eq_im[..b * ND],
                &csi[..b * ND],
                noise_var,
                &mut batch_llr,
            );
            // 4. Deinterleave each symbol into its slot of the output.
            for s in 0..b {
                il.deinterleave_into(
                    &batch_llr[s * cbps..(s + 1) * cbps],
                    &mut llrs[(n0 + s) * cbps..(n0 + s + 1) * cbps],
                );
            }
            n0 += b;
        }
        llrs
    }

    /// Reference form of [`Self::demap_payload_batched`]: the original
    /// symbol-at-a-time loop over [`Self::demap_symbol_direct`] with
    /// allocating deinterleaves. Kept for the batched `_equiv` suite.
    #[cfg_attr(not(test), allow(dead_code))]
    fn demap_payload_direct(
        &self,
        x: &[Complex],
        payload_start: usize,
        nsym: usize,
        channel: &[Complex],
        noise_var: f64,
        mcs: Mcs,
    ) -> Vec<f64> {
        let il = Interleaver::new(mcs.cbps(), mcs.modulation().bits_per_subcarrier());
        let mut llrs = Vec::with_capacity(nsym * mcs.cbps());
        for n in 0..nsym {
            let sym_llr = self.demap_symbol_direct(
                x,
                payload_start + n * OFDM::SYMBOL,
                n + 1,
                channel,
                noise_var,
                mcs.modulation(),
            );
            llrs.extend(il.deinterleave(&sym_llr));
        }
        llrs
    }
}

struct SyncState {
    corrected: Vec<Complex>,
    channel: Vec<Complex>,
    noise_var: f64,
    snr_db: f64,
    cfo_hz: f64,
    data_start: usize,
    start: usize,
}

/// Apply a frequency shift of `hz` to a sample buffer in place.
pub fn apply_cfo(x: &mut [Complex], hz: f64) {
    if hz == 0.0 {
        return;
    }
    let w = 2.0 * std::f64::consts::PI * hz / SAMPLE_RATE_HZ;
    for (i, v) in x.iter_mut().enumerate() {
        *v *= Complex::exp_j(w * i as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::WifiTransmitter;
    use backfi_dsp::noise::add_noise;
    use backfi_dsp::rng::SplitMix64;

    fn loopback(
        mcs: Mcs,
        len: usize,
        noise: f64,
        cfo: f64,
        pad: usize,
    ) -> Result<RxPacket, RxError> {
        let tx = WifiTransmitter::new();
        let psdu: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
        let pkt = tx.transmit(&psdu, mcs, 0x5D);
        let mut buf = vec![Complex::ZERO; pad];
        buf.extend_from_slice(&pkt.samples);
        buf.extend(std::iter::repeat_n(Complex::ZERO, 200));
        let mut rng = SplitMix64::new(99);
        add_noise(&mut rng, &mut buf, noise);
        if cfo != 0.0 {
            apply_cfo(&mut buf, cfo);
        }
        let rx = WifiReceiver::default();
        let got = rx.receive(&buf)?;
        assert_eq!(got.psdu, psdu, "PSDU mismatch");
        Ok(got)
    }

    #[test]
    fn clean_loopback_all_rates() {
        for mcs in Mcs::ALL {
            loopback(mcs, 200, 0.0, 0.0, 64).unwrap_or_else(|e| panic!("{mcs:?}: {e}"));
        }
    }

    #[test]
    fn noisy_loopback_low_rate() {
        // 20 dB SNR is plenty for 6 Mbps.
        let got = loopback(Mcs::Mbps6, 300, 0.01, 0.0, 128).expect("decode");
        assert!(got.snr_db > 15.0, "snr {}", got.snr_db);
    }

    #[test]
    fn noisy_loopback_high_rate() {
        // 30 dB SNR decodes 54 Mbps.
        loopback(Mcs::Mbps54, 300, 0.001, 0.0, 48).expect("decode");
    }

    #[test]
    fn cfo_is_estimated_and_corrected() {
        let got = loopback(Mcs::Mbps12, 150, 0.003, 40_000.0, 100).expect("decode");
        assert!(
            (got.cfo_hz - 40_000.0).abs() < 2_000.0,
            "cfo estimate {}",
            got.cfo_hz
        );
    }

    #[test]
    fn detects_start_offset() {
        let got = loopback(Mcs::Mbps6, 60, 0.001, 0.0, 500).expect("decode");
        assert!(
            (got.start as i64 - 500).unsigned_abs() <= 8,
            "start {}",
            got.start
        );
    }

    #[test]
    fn noise_only_is_not_detected() {
        let mut rng = SplitMix64::new(5);
        let mut buf = vec![Complex::ZERO; 4000];
        add_noise(&mut rng, &mut buf, 1.0);
        let rx = WifiReceiver::default();
        match rx.receive(&buf) {
            Err(RxError::NotDetected) | Err(RxError::SyncFailed) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn truncated_buffer_reports_truncated() {
        let tx = WifiTransmitter::new();
        let pkt = tx.transmit(&vec![9u8; 400], Mcs::Mbps6, 0x5D);
        let cut = &pkt.samples[..pkt.samples.len() / 2];
        let rx = WifiReceiver::default();
        assert_eq!(rx.receive(cut).unwrap_err(), RxError::Truncated);
    }

    #[test]
    fn probe_reports_high_snr_on_clean_signal() {
        let tx = WifiTransmitter::new();
        let pkt = tx.transmit(&[1u8; 100], Mcs::Mbps24, 0x33);
        let mut buf = pkt.samples.clone();
        let mut rng = SplitMix64::new(8);
        add_noise(&mut rng, &mut buf, 1e-4);
        let rx = WifiReceiver::default();
        let probe = rx.probe(&buf).expect("probe");
        assert!(probe.snr_db > 30.0, "snr {}", probe.snr_db);
        // channel should be ~flat unit gain
        let loaded: Vec<f64> = probe
            .channel
            .iter()
            .filter(|h| h.abs() > 1e-6)
            .map(|h| h.abs())
            .collect();
        assert_eq!(loaded.len(), 52);
    }

    #[test]
    fn demap_symbol_equiv_direct() {
        // The planar gather + equalize + cached-table demap must reproduce
        // the original AoS symbol pipeline bit-for-bit, for every modulation.
        let tx = WifiTransmitter::new();
        let psdu: Vec<u8> = (0..300).map(|i| (i * 31 + 7) as u8).collect();
        let pkt = tx.transmit(&psdu, Mcs::Mbps54, 0x5D);
        let mut buf = pkt.samples.clone();
        let mut rng = SplitMix64::new(3);
        add_noise(&mut rng, &mut buf, 1e-3);
        let rx = WifiReceiver::default();
        let sync = rx.synchronize(&buf).expect("sync");
        let x = &sync.corrected;
        for (n, modu) in [
            (0usize, Modulation::Bpsk),
            (1, Modulation::Qpsk),
            (2, Modulation::Qam16),
            (3, Modulation::Qam64),
        ] {
            let at = sync.data_start + n * OFDM::SYMBOL;
            assert!(at + OFDM::SYMBOL <= x.len());
            let fast = rx.demap_symbol(x, at, n, &sync.channel, sync.noise_var, modu);
            let slow = rx.demap_symbol_direct(x, at, n, &sync.channel, sync.noise_var, modu);
            assert_eq!(fast.len(), slow.len(), "{modu:?}");
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "sym {n} {modu:?} llr {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn demap_payload_batched_equiv_direct() {
        // Whole-payload check of the batched FFT→equalize→demap→deinterleave
        // pipeline against the original symbol-at-a-time loop: bit-identical
        // LLR buffers at symbol counts that are NOT a multiple of the batch
        // size (both the ragged tail and the full-batch body must agree),
        // across code rates/modulations.
        let tx = WifiTransmitter::new();
        let rx = WifiReceiver::default();
        for (bytes, mcs, seed) in [
            (500usize, Mcs::Mbps24, 21u64), // nsym = 42: 2×16 + ragged 10
            (61, Mcs::Mbps6, 22),           // BPSK, small ragged count
            (97, Mcs::Mbps18, 23),          // QPSK 3/4
            (1500, Mcs::Mbps54, 24),        // 64-QAM 3/4, > 3 batches
        ] {
            let psdu: Vec<u8> = (0..bytes).map(|i| (i * 13 + 5) as u8).collect();
            let pkt = tx.transmit(&psdu, mcs, 0x5D);
            let mut buf = pkt.samples.clone();
            let mut rng = SplitMix64::new(seed);
            add_noise(&mut rng, &mut buf, 1e-3);
            let sync = rx.synchronize(&buf).expect("sync");
            let x = &sync.corrected;
            let nsym = mcs.data_symbols(bytes);
            let payload_start = sync.data_start + OFDM::SYMBOL;
            assert!(payload_start + nsym * OFDM::SYMBOL <= x.len());
            let fast = rx.demap_payload_batched(
                x,
                payload_start,
                nsym,
                &sync.channel,
                sync.noise_var,
                mcs,
            );
            let slow =
                rx.demap_payload_direct(x, payload_start, nsym, &sync.channel, sync.noise_var, mcs);
            assert_eq!(fast.len(), slow.len(), "{mcs:?}");
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "{mcs:?} nsym {nsym} llr {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn multipath_loopback() {
        // Two-tap channel within the CP.
        let tx = WifiTransmitter::new();
        let psdu: Vec<u8> = (0..250).map(|i| (i ^ 0x5A) as u8).collect();
        let pkt = tx.transmit(&psdu, Mcs::Mbps24, 0x41);
        let h = [
            Complex::from_polar(1.0, 0.4),
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_polar(0.4, -1.1),
        ];
        let mut buf = backfi_dsp::fir::filter(&h, &pkt.samples);
        let mut rng = SplitMix64::new(17);
        add_noise(&mut rng, &mut buf, 1e-4);
        let rx = WifiReceiver::default();
        let got = rx.receive(&buf).expect("decode through multipath");
        assert_eq!(got.psdu, psdu);
    }
}
