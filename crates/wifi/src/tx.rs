//! The 802.11g OFDM transmitter chain.
//!
//! PSDU bytes → SERVICE + tail + pad → scramble → convolutional encode →
//! puncture → per-symbol interleave → constellation map → pilot insertion →
//! 64-point IFFT + cyclic prefix, with the PLCP preamble and SIGNAL symbol in
//! front. The emitted packet is normalized to unit average power; the link
//! budget in `backfi-chan` sets the absolute transmit power.

use crate::modmap::map_block;
use crate::params::{Mcs, OFDM};
use crate::preamble::full_preamble;
use crate::signal_field::Signal;
use crate::subcarrier::{assemble_symbol, pilot_polarity_sequence};
use backfi_coding::bits::bytes_to_bits_lsb;
use backfi_coding::interleaver::Interleaver;
use backfi_coding::puncture::puncture;
use backfi_coding::scrambler::Scrambler;
use backfi_coding::ConvEncoder;
use backfi_dsp::fft::FftPlan;
use backfi_dsp::{stats, Complex};

/// A generated baseband packet plus the metadata tests and experiments need.
#[derive(Clone, Debug)]
pub struct TxPacket {
    /// Unit-power baseband samples at 20 MHz (preamble + SIGNAL + DATA).
    pub samples: Vec<Complex>,
    /// The MCS used.
    pub mcs: Mcs,
    /// The PSDU that was encoded (so receivers can compute BER).
    pub psdu: Vec<u8>,
    /// Number of DATA OFDM symbols.
    pub data_symbols: usize,
    /// Scale factor that was applied for unit power (needed by tests that
    /// reconstruct intermediate signals).
    pub power_scale: f64,
}

impl TxPacket {
    /// Airtime of this packet in microseconds.
    pub fn airtime_us(&self) -> f64 {
        backfi_dsp::samples_to_us(self.samples.len())
    }
}

/// The transmitter. Holds precomputed tables; reusable across packets.
#[derive(Clone, Debug)]
pub struct WifiTransmitter {
    plan: FftPlan,
    polarity: Vec<f64>,
    preamble: Vec<Complex>,
}

impl Default for WifiTransmitter {
    fn default() -> Self {
        Self::new()
    }
}

impl WifiTransmitter {
    /// Create a transmitter with precomputed preamble/FFT/pilot tables.
    pub fn new() -> Self {
        WifiTransmitter {
            plan: FftPlan::new(OFDM::FFT),
            polarity: pilot_polarity_sequence(),
            preamble: full_preamble(),
        }
    }

    /// Encode one PSDU into a baseband packet.
    ///
    /// `scrambler_seed` must be a nonzero 7-bit value (pick pseudo-randomly
    /// per packet like real hardware; Annex G uses 0x5D).
    ///
    /// # Panics
    /// Panics if the PSDU is empty or longer than 4095 bytes.
    pub fn transmit(&self, psdu: &[u8], mcs: Mcs, scrambler_seed: u8) -> TxPacket {
        assert!(
            !psdu.is_empty() && psdu.len() < 4096,
            "PSDU must be 1..=4095 bytes"
        );
        let nsym = mcs.data_symbols(psdu.len());
        let dbps = mcs.dbps();

        // --- bit pipeline -------------------------------------------------
        // SERVICE (16 zero bits) + PSDU + 6 tail + pad.
        let mut bits = vec![false; 16];
        bits.extend(bytes_to_bits_lsb(psdu));
        let tail_at = bits.len();
        bits.extend(std::iter::repeat_n(false, 6));
        let total = nsym * dbps;
        bits.resize(total, false);

        // Scramble everything, then restore the tail bits to zero so the
        // decoder's trellis terminates (§18.3.5.3).
        let mut scr = Scrambler::new(scrambler_seed);
        scr.process_in_place(&mut bits);
        for b in &mut bits[tail_at..tail_at + 6] {
            *b = false;
        }

        // Convolutional encode + puncture.
        let mut enc = ConvEncoder::ieee80211();
        enc.reset();
        let mother = enc.encode(&bits);
        let coded = puncture(&mother, mcs.code_rate());
        debug_assert_eq!(coded.len(), nsym * mcs.cbps());

        // --- symbol pipeline ----------------------------------------------
        let mut samples = self.preamble.clone();

        // SIGNAL symbol (symbol index 0).
        let sig = Signal {
            mcs,
            length: psdu.len(),
        }
        .encode();
        let sig_il = Interleaver::new(48, 1).interleave(&sig);
        let sig_pts = map_block(crate::params::Modulation::Bpsk, &sig_il);
        self.push_symbol(&mut samples, &sig_pts, 0);

        // DATA symbols (indices 1..).
        let il = Interleaver::new(mcs.cbps(), mcs.modulation().bits_per_subcarrier());
        for (n, chunk) in coded.chunks_exact(mcs.cbps()).enumerate() {
            let inter = il.interleave(chunk);
            let pts = map_block(mcs.modulation(), &inter);
            self.push_symbol(&mut samples, &pts, n + 1);
        }

        // Normalize to unit average power.
        let p = stats::mean_power(&samples);
        let scale = 1.0 / p.sqrt();
        for s in &mut samples {
            *s *= scale;
        }

        TxPacket {
            samples,
            mcs,
            psdu: psdu.to_vec(),
            data_symbols: nsym,
            power_scale: scale,
        }
    }

    /// IFFT one frequency-domain symbol, prepend its cyclic prefix, append to
    /// the sample stream.
    fn push_symbol(&self, out: &mut Vec<Complex>, data: &[Complex], n: usize) {
        let mut bins = assemble_symbol(data, n, &self.polarity);
        self.plan.inverse(&mut bins);
        out.extend_from_slice(&bins[OFDM::FFT - OFDM::CP..]);
        out.extend_from_slice(&bins);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_length_matches_airtime_formula() {
        let tx = WifiTransmitter::new();
        for mcs in Mcs::ALL {
            let pkt = tx.transmit(&[0xA5; 100], mcs, 0x5D);
            let expect_us = mcs.packet_airtime_us(100);
            assert!(
                (pkt.airtime_us() - expect_us).abs() < 1e-9,
                "{mcs:?}: {} vs {}",
                pkt.airtime_us(),
                expect_us
            );
        }
    }

    #[test]
    fn unit_power() {
        let tx = WifiTransmitter::new();
        let pkt = tx.transmit(&vec![0x3C; 500], Mcs::Mbps24, 0x11);
        let p = stats::mean_power(&pkt.samples);
        assert!((p - 1.0).abs() < 1e-9, "power {p}");
    }

    #[test]
    fn papr_is_ofdm_like() {
        // OFDM should have multi-dB PAPR — a sanity check that we're not
        // emitting a constant-envelope signal.
        let tx = WifiTransmitter::new();
        let pkt = tx.transmit(&vec![0x77; 1000], Mcs::Mbps54, 0x2F);
        let papr = stats::papr_db(&pkt.samples);
        assert!(papr > 5.0 && papr < 15.0, "papr {papr}");
    }

    #[test]
    fn different_seeds_give_different_waveforms() {
        let tx = WifiTransmitter::new();
        let a = tx.transmit(&[0u8; 100], Mcs::Mbps6, 0x01);
        let b = tx.transmit(&[0u8; 100], Mcs::Mbps6, 0x55);
        assert_eq!(a.samples.len(), b.samples.len());
        let diff: f64 = a
            .samples
            .iter()
            .zip(&b.samples)
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum();
        assert!(diff > 1.0, "scrambler had no effect");
    }

    #[test]
    fn preamble_is_in_front() {
        let tx = WifiTransmitter::new();
        let pkt = tx.transmit(&[1, 2, 3], Mcs::Mbps6, 0x5D);
        let pre = full_preamble();
        // Same shape up to the power normalization factor.
        let k = pkt.power_scale;
        #[allow(clippy::needless_range_loop)] // compares two buffers at index i
        for i in 0..pre.len() {
            assert!((pkt.samples[i] - pre[i] * k).abs() < 1e-9, "sample {i}");
        }
    }

    #[test]
    #[should_panic(expected = "PSDU")]
    fn rejects_empty_psdu() {
        WifiTransmitter::new().transmit(&[], Mcs::Mbps6, 0x5D);
    }
}
