//! Minimal 802.11 MAC: just enough framing for the BackFi protocol.
//!
//! The BackFi AP "transmits a CTS_to_SELF packet to force other WiFi devices
//! to keep silent" (§4.1) and then sends an ordinary data frame to its client
//! — that data frame is the backscatter excitation. This module builds and
//! parses those two frame types (with real FCS), and provides the airtime
//! arithmetic used by the network/trace simulators.

use crate::params::Mcs;
use backfi_coding::crc::{crc32_append, crc32_check};

/// A 48-bit MAC address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A deterministic locally-administered address derived from an id.
    pub fn local(id: u16) -> MacAddr {
        let [a, b] = id.to_be_bytes();
        MacAddr([0x02, 0x00, 0x00, 0x00, a, b])
    }
}

/// Frame types this MAC understands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A CTS frame addressed to the sender itself, reserving the medium for
    /// `duration_us` microseconds.
    CtsToSelf {
        /// The address that sent (and is addressed by) the CTS.
        addr: MacAddr,
        /// NAV duration in microseconds.
        duration_us: u16,
    },
    /// A data frame carrying an LLC payload.
    Data {
        /// Destination address.
        dst: MacAddr,
        /// Source address.
        src: MacAddr,
        /// Sequence number (12 bits used).
        seq: u16,
        /// Payload bytes.
        payload: Vec<u8>,
    },
}

/// Frame-control constants (type/subtype packed little-endian like 802.11).
const FC_CTS: u16 = 0b1100_0100; // control / CTS
const FC_DATA: u16 = 0b0000_1000; // data / data

impl Frame {
    /// Serialize to a PSDU including the 4-byte FCS.
    pub fn to_psdu(&self) -> Vec<u8> {
        let mut b: Vec<u8> = Vec::new();
        match self {
            Frame::CtsToSelf { addr, duration_us } => {
                b.extend_from_slice(&FC_CTS.to_le_bytes());
                b.extend_from_slice(&duration_us.to_le_bytes());
                b.extend_from_slice(&addr.0);
            }
            Frame::Data {
                dst,
                src,
                seq,
                payload,
            } => {
                b.extend_from_slice(&FC_DATA.to_le_bytes());
                b.extend_from_slice(&0u16.to_le_bytes()); // duration handled by NAV of CTS
                b.extend_from_slice(&dst.0);
                b.extend_from_slice(&src.0);
                b.extend_from_slice(&MacAddr::BROADCAST.0); // BSSID placeholder
                b.extend_from_slice(&(seq << 4).to_le_bytes());
                b.extend_from_slice(payload);
            }
        }
        crc32_append(&b)
    }

    /// Parse a PSDU; returns `None` when the FCS fails or the frame is
    /// malformed.
    pub fn from_psdu(psdu: &[u8]) -> Option<Frame> {
        if !crc32_check(psdu) {
            return None;
        }
        let body = &psdu[..psdu.len() - 4];
        if body.len() < 4 {
            return None;
        }
        let fc = u16::from_le_bytes([body[0], body[1]]);
        match fc {
            FC_CTS => {
                if body.len() != 10 {
                    return None;
                }
                let duration_us = u16::from_le_bytes([body[2], body[3]]);
                let mut addr = [0u8; 6];
                addr.copy_from_slice(&body[4..10]);
                Some(Frame::CtsToSelf {
                    addr: MacAddr(addr),
                    duration_us,
                })
            }
            FC_DATA => {
                if body.len() < 24 {
                    return None;
                }
                let mut dst = [0u8; 6];
                dst.copy_from_slice(&body[4..10]);
                let mut src = [0u8; 6];
                src.copy_from_slice(&body[10..16]);
                let seq = u16::from_le_bytes([body[22], body[23]]) >> 4;
                Some(Frame::Data {
                    dst: MacAddr(dst),
                    src: MacAddr(src),
                    seq,
                    payload: body[24..].to_vec(),
                })
            }
            _ => None,
        }
    }
}

/// Check the FCS of a received PSDU (convenience re-export for receivers that
/// don't need full parsing).
pub fn check_fcs(psdu: &[u8]) -> bool {
    crc32_check(psdu)
}

/// 802.11 timing constants (OFDM PHY, 20 MHz).
pub mod timing {
    /// Short interframe space, µs.
    pub const SIFS_US: f64 = 16.0;
    /// DCF interframe space, µs (SIFS + 2 slots).
    pub const DIFS_US: f64 = 34.0;
    /// Slot time, µs.
    pub const SLOT_US: f64 = 9.0;
}

/// Airtime of a data exchange: CTS-to-self + SIFS + data packet. CTS is sent
/// at the 6 Mbit/s base rate; the data frame at `mcs`.
pub fn exchange_airtime_us(mcs: Mcs, payload_bytes: usize) -> f64 {
    let cts_psdu = 14; // 10-byte body + FCS
    let data_psdu = 24 + payload_bytes + 4;
    Mcs::Mbps6.packet_airtime_us(cts_psdu) + timing::SIFS_US + mcs.packet_airtime_us(data_psdu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cts_roundtrip() {
        let f = Frame::CtsToSelf {
            addr: MacAddr::local(7),
            duration_us: 1234,
        };
        let psdu = f.to_psdu();
        assert_eq!(psdu.len(), 14);
        assert_eq!(Frame::from_psdu(&psdu), Some(f));
    }

    #[test]
    fn data_roundtrip() {
        let f = Frame::Data {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            seq: 0x123,
            payload: b"hello backscatter world".to_vec(),
        };
        let psdu = f.to_psdu();
        assert_eq!(Frame::from_psdu(&psdu), Some(f));
    }

    #[test]
    fn fcs_rejects_corruption() {
        let f = Frame::Data {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            seq: 1,
            payload: vec![0u8; 64],
        };
        let mut psdu = f.to_psdu();
        for i in [0usize, 10, 30, psdu.len() - 1] {
            psdu[i] ^= 0x80;
            assert_eq!(Frame::from_psdu(&psdu), None, "byte {i}");
            psdu[i] ^= 0x80;
        }
        assert!(Frame::from_psdu(&psdu).is_some());
    }

    #[test]
    fn addresses() {
        assert_ne!(MacAddr::local(1), MacAddr::local(2));
        assert_eq!(MacAddr::local(9), MacAddr::local(9));
    }

    #[test]
    fn exchange_airtime_is_dominated_by_data() {
        let t_small = exchange_airtime_us(Mcs::Mbps54, 100);
        let t_big = exchange_airtime_us(Mcs::Mbps54, 1400);
        assert!(t_big > t_small);
        // A 1500-byte frame at 6 Mbps takes ~2 ms.
        let slow = exchange_airtime_us(Mcs::Mbps6, 1500);
        assert!(slow > 2000.0 && slow < 2300.0, "{slow}");
    }

    #[test]
    fn truncated_frames_are_rejected() {
        assert_eq!(Frame::from_psdu(&[1, 2, 3]), None);
        let good = Frame::CtsToSelf {
            addr: MacAddr::local(0),
            duration_us: 1,
        }
        .to_psdu();
        assert_eq!(Frame::from_psdu(&good[..10]), None);
    }
}
