//! # backfi-wifi
//!
//! A complete 802.11a/g OFDM PHY (20 MHz, 6–54 Mbit/s) plus the minimal MAC
//! machinery BackFi needs.
//!
//! In the BackFi system (SIGCOMM 2015) the WiFi packet the AP is sending to a
//! normal client *is* the backscatter excitation signal, so the reproduction
//! needs a real transmitter: the decoder's performance depends on the
//! wideband, frequency-selective nature of OFDM (that is exactly why the
//! single-tap RFID canceller fails, §3.2). The receiver side is needed too:
//! the coexistence experiments (Figs. 12b/13) measure how the *client's*
//! decoding suffers when a tag is backscattering.
//!
//! Layout (smoltcp-style: wire formats separated from state machines):
//!
//! * [`params`] — OFDM numerology and the eight 802.11g rates,
//! * [`modmap`] — constellation mapping and max-log soft demapping,
//! * [`subcarrier`] — data/pilot subcarrier layout and pilot polarity,
//! * [`preamble`] — STF/LTF generation and their detection metrics,
//! * [`signal_field`] — the SIGNAL field (rate + length header),
//! * [`tx`] — the full transmitter chain,
//! * [`rx`] — the full receiver chain (sync, CFO, channel est, equalize,
//!   decode),
//! * [`mac`] — CTS-to-self and data frames, FCS, airtime arithmetic.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod mac;
pub mod modmap;
pub mod params;
pub mod preamble;
pub mod rx;
pub mod signal_field;
pub mod subcarrier;
pub mod tx;

pub use params::{Mcs, OFDM};
pub use rx::{RxError, WifiReceiver};
pub use tx::WifiTransmitter;
