//! Subcarrier layout: 48 data + 4 pilot subcarriers in a 64-bin FFT.
//!
//! Logical subcarriers −26…+26 (excluding DC) map to FFT bins; pilots sit at
//! ±7 and ±21 and carry a polarity that follows the 127-chip scrambler
//! sequence, one step per OFDM symbol (SIGNAL is symbol 0).

use backfi_coding::scrambler::Scrambler;
use backfi_dsp::Complex;

/// Logical indices of the four pilot subcarriers.
pub const PILOT_SUBCARRIERS: [i32; 4] = [-21, -7, 7, 21];

/// Base pilot values at (−21, −7, +7, +21) before polarity.
pub const PILOT_BASE: [f64; 4] = [1.0, 1.0, 1.0, -1.0];

/// Logical indices of the 48 data subcarriers, in transmission order
/// (ascending from −26 to +26, skipping DC and pilots).
pub fn data_subcarriers() -> Vec<i32> {
    (-26..=26)
        .filter(|&k| k != 0 && !PILOT_SUBCARRIERS.contains(&k))
        .collect()
}

/// Map a logical subcarrier index (−32…31, excluding nothing) to its FFT bin.
///
/// # Panics
/// Panics if `k` is outside −32…31.
pub fn bin(k: i32) -> usize {
    assert!((-32..=31).contains(&k), "subcarrier index {k} out of range");
    if k >= 0 {
        k as usize
    } else {
        (64 + k) as usize
    }
}

/// The 127-element pilot polarity sequence p₀…p₁₂₆ (+1/−1), generated from
/// the all-ones scrambler state per §18.3.5.10. Index with `n % 127` where
/// `n` is the OFDM symbol number counting the SIGNAL symbol as 0.
pub fn pilot_polarity_sequence() -> Vec<f64> {
    let mut s = Scrambler::new(0x7F);
    (0..127)
        .map(|_| if s.next_bit() { -1.0 } else { 1.0 })
        .collect()
}

/// Assemble one frequency-domain OFDM symbol (64 bins) from 48 data points
/// and the symbol index `n` (for pilot polarity). Unused bins are zero.
///
/// # Panics
/// Panics if `data.len() != 48`.
pub fn assemble_symbol(data: &[Complex], n: usize, polarity: &[f64]) -> Vec<Complex> {
    assert_eq!(data.len(), 48, "need exactly 48 data points");
    let mut bins = vec![Complex::ZERO; 64];
    for (point, k) in data.iter().zip(data_subcarriers()) {
        bins[bin(k)] = *point;
    }
    let p = polarity[n % polarity.len()];
    for (i, &k) in PILOT_SUBCARRIERS.iter().enumerate() {
        bins[bin(k)] = Complex::real(PILOT_BASE[i] * p);
    }
    bins
}

/// Extract the 48 data points and the 4 pilot observations from a 64-bin
/// frequency-domain symbol. Pilots are returned in the order of
/// [`PILOT_SUBCARRIERS`].
pub fn disassemble_symbol(bins: &[Complex]) -> (Vec<Complex>, [Complex; 4]) {
    assert_eq!(bins.len(), 64, "need a 64-bin symbol");
    let data = data_subcarriers()
        .into_iter()
        .map(|k| bins[bin(k)])
        .collect();
    let mut pilots = [Complex::ZERO; 4];
    for (i, &k) in PILOT_SUBCARRIERS.iter().enumerate() {
        pilots[i] = bins[bin(k)];
    }
    (data, pilots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_eight_data_subcarriers() {
        let d = data_subcarriers();
        assert_eq!(d.len(), 48);
        assert!(!d.contains(&0));
        for p in PILOT_SUBCARRIERS {
            assert!(!d.contains(&p));
        }
        assert_eq!(*d.first().unwrap(), -26);
        assert_eq!(*d.last().unwrap(), 26);
    }

    #[test]
    fn bin_mapping() {
        assert_eq!(bin(0), 0);
        assert_eq!(bin(1), 1);
        assert_eq!(bin(26), 26);
        assert_eq!(bin(-1), 63);
        assert_eq!(bin(-26), 38);
    }

    #[test]
    fn polarity_starts_like_standard() {
        // p0..p15 from §18.3.5.10: 1,1,1,1,-1,-1,-1,1,-1,-1,-1,-1,1,1,-1,1
        let p = pilot_polarity_sequence();
        let expect = [
            1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0,
        ];
        assert_eq!(&p[..16], &expect[..]);
        assert_eq!(p.len(), 127);
    }

    #[test]
    fn assemble_disassemble_roundtrip() {
        let polarity = pilot_polarity_sequence();
        let data: Vec<Complex> = (0..48).map(|i| Complex::exp_j(i as f64 * 0.37)).collect();
        let bins = assemble_symbol(&data, 5, &polarity);
        let (d2, pilots) = disassemble_symbol(&bins);
        assert_eq!(d2, data);
        // symbol 5 has polarity −1
        assert!((pilots[0].re + 1.0).abs() < 1e-12);
        assert!((pilots[3].re - 1.0).abs() < 1e-12);
        // DC bin must be empty
        assert!(bins[0].abs() < 1e-12);
    }

    #[test]
    fn guard_bins_are_zero() {
        let polarity = pilot_polarity_sequence();
        let data = vec![Complex::ONE; 48];
        let bins = assemble_symbol(&data, 0, &polarity);
        #[allow(clippy::needless_range_loop)] // k is the FFT bin number
        for k in 27..=37 {
            assert!(bins[k].abs() < 1e-12, "guard bin {k} loaded");
        }
    }
}
