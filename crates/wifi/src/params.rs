//! OFDM numerology and the 802.11g rate set.

use backfi_coding::CodeRate;

/// Fixed 20 MHz OFDM numerology (IEEE 802.11-2012 clause 18).
pub struct OFDM;

impl OFDM {
    /// FFT size.
    pub const FFT: usize = 64;
    /// Cyclic prefix length in samples (0.8 µs).
    pub const CP: usize = 16;
    /// Samples per OFDM symbol (4 µs).
    pub const SYMBOL: usize = Self::FFT + Self::CP;
    /// Number of data subcarriers.
    pub const DATA_CARRIERS: usize = 48;
    /// Number of pilot subcarriers.
    pub const PILOT_CARRIERS: usize = 4;
    /// Subcarrier spacing in Hz (312.5 kHz).
    pub const SUBCARRIER_SPACING_HZ: f64 = 20.0e6 / 64.0;
    /// OFDM symbol duration in seconds.
    pub const SYMBOL_DURATION_S: f64 = Self::SYMBOL as f64 / 20.0e6;
    /// Preamble duration: STF (8 µs) + LTF (8 µs) = 320 samples.
    pub const PREAMBLE_LEN: usize = 320;
}

/// Constellation used on the data subcarriers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// 1 bit per subcarrier.
    Bpsk,
    /// 2 bits per subcarrier.
    Qpsk,
    /// 4 bits per subcarrier.
    Qam16,
    /// 6 bits per subcarrier.
    Qam64,
}

impl Modulation {
    /// Coded bits carried per subcarrier (N_BPSC).
    pub fn bits_per_subcarrier(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16-QAM",
            Modulation::Qam64 => "64-QAM",
        }
    }
}

/// The eight 802.11a/g modulation-and-coding schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mcs {
    /// 6 Mbit/s — BPSK, rate 1/2.
    Mbps6,
    /// 9 Mbit/s — BPSK, rate 3/4.
    Mbps9,
    /// 12 Mbit/s — QPSK, rate 1/2.
    Mbps12,
    /// 18 Mbit/s — QPSK, rate 3/4.
    Mbps18,
    /// 24 Mbit/s — 16-QAM, rate 1/2.
    Mbps24,
    /// 36 Mbit/s — 16-QAM, rate 3/4.
    Mbps36,
    /// 48 Mbit/s — 64-QAM, rate 2/3.
    Mbps48,
    /// 54 Mbit/s — 64-QAM, rate 3/4.
    Mbps54,
}

impl Mcs {
    /// All rates, slowest first.
    pub const ALL: [Mcs; 8] = [
        Mcs::Mbps6,
        Mcs::Mbps9,
        Mcs::Mbps12,
        Mcs::Mbps18,
        Mcs::Mbps24,
        Mcs::Mbps36,
        Mcs::Mbps48,
        Mcs::Mbps54,
    ];

    /// PHY bit rate in Mbit/s.
    pub fn mbps(self) -> f64 {
        match self {
            Mcs::Mbps6 => 6.0,
            Mcs::Mbps9 => 9.0,
            Mcs::Mbps12 => 12.0,
            Mcs::Mbps18 => 18.0,
            Mcs::Mbps24 => 24.0,
            Mcs::Mbps36 => 36.0,
            Mcs::Mbps48 => 48.0,
            Mcs::Mbps54 => 54.0,
        }
    }

    /// Constellation.
    pub fn modulation(self) -> Modulation {
        match self {
            Mcs::Mbps6 | Mcs::Mbps9 => Modulation::Bpsk,
            Mcs::Mbps12 | Mcs::Mbps18 => Modulation::Qpsk,
            Mcs::Mbps24 | Mcs::Mbps36 => Modulation::Qam16,
            Mcs::Mbps48 | Mcs::Mbps54 => Modulation::Qam64,
        }
    }

    /// Convolutional code rate.
    pub fn code_rate(self) -> CodeRate {
        match self {
            Mcs::Mbps6 | Mcs::Mbps12 | Mcs::Mbps24 => CodeRate::Half,
            Mcs::Mbps48 => CodeRate::TwoThirds,
            _ => CodeRate::ThreeQuarters,
        }
    }

    /// Coded bits per OFDM symbol (N_CBPS).
    pub fn cbps(self) -> usize {
        OFDM::DATA_CARRIERS * self.modulation().bits_per_subcarrier()
    }

    /// Data bits per OFDM symbol (N_DBPS).
    pub fn dbps(self) -> usize {
        self.cbps() * self.code_rate().k() / self.code_rate().n()
    }

    /// The 4-bit RATE field encoding used in the SIGNAL symbol, LSB-first
    /// order `[R1, R2, R3, R4]` per Table 18-6.
    pub fn rate_bits(self) -> [bool; 4] {
        let bits = match self {
            Mcs::Mbps6 => [1, 1, 0, 1],
            Mcs::Mbps9 => [1, 1, 1, 1],
            Mcs::Mbps12 => [0, 1, 0, 1],
            Mcs::Mbps18 => [0, 1, 1, 1],
            Mcs::Mbps24 => [1, 0, 0, 1],
            Mcs::Mbps36 => [1, 0, 1, 1],
            Mcs::Mbps48 => [0, 0, 0, 1],
            Mcs::Mbps54 => [0, 0, 1, 1],
        };
        bits.map(|b| b == 1)
    }

    /// Inverse of [`Mcs::rate_bits`].
    pub fn from_rate_bits(bits: [bool; 4]) -> Option<Mcs> {
        Mcs::ALL.into_iter().find(|m| m.rate_bits() == bits)
    }

    /// Number of DATA OFDM symbols needed for a PSDU of `psdu_bytes`
    /// (16 SERVICE bits + 8·bytes + 6 tail bits, rounded up).
    pub fn data_symbols(self, psdu_bytes: usize) -> usize {
        (16 + 8 * psdu_bytes + 6).div_ceil(self.dbps())
    }

    /// Total packet duration in microseconds: 16 µs preamble + 4 µs SIGNAL +
    /// 4 µs per DATA symbol.
    pub fn packet_airtime_us(self, psdu_bytes: usize) -> f64 {
        16.0 + 4.0 + 4.0 * self.data_symbols(psdu_bytes) as f64
    }

    /// Minimum post-equalization SNR (dB) at which this MCS sustains ~90 %
    /// packet success for ~1000-byte frames. Derived from the standard AWGN
    /// waterfalls of the K=7 code (used by the rate-adaptation model in the
    /// network simulator; the sample-level receiver is used when exact
    /// behaviour matters).
    pub fn required_snr_db(self) -> f64 {
        match self {
            Mcs::Mbps6 => 5.0,
            Mcs::Mbps9 => 7.0,
            Mcs::Mbps12 => 8.0,
            Mcs::Mbps18 => 10.5,
            Mcs::Mbps24 => 13.5,
            Mcs::Mbps36 => 17.5,
            Mcs::Mbps48 => 21.5,
            Mcs::Mbps54 => 23.5,
        }
    }

    /// Label such as `"24 Mbps (16-QAM 1/2)"`.
    pub fn label(self) -> String {
        format!(
            "{} Mbps ({} {})",
            self.mbps(),
            self.modulation().label(),
            self.code_rate().label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbps_table() {
        // IEEE Table 18-4.
        let expect = [24, 36, 48, 72, 96, 144, 192, 216];
        for (mcs, e) in Mcs::ALL.into_iter().zip(expect) {
            assert_eq!(mcs.dbps(), e, "{mcs:?}");
        }
    }

    #[test]
    fn cbps_table() {
        let expect = [48, 48, 96, 96, 192, 192, 288, 288];
        for (mcs, e) in Mcs::ALL.into_iter().zip(expect) {
            assert_eq!(mcs.cbps(), e, "{mcs:?}");
        }
    }

    #[test]
    fn rate_bits_roundtrip() {
        for mcs in Mcs::ALL {
            assert_eq!(Mcs::from_rate_bits(mcs.rate_bits()), Some(mcs));
        }
        assert_eq!(Mcs::from_rate_bits([false; 4]), None);
    }

    #[test]
    fn mbps_consistent_with_dbps() {
        for mcs in Mcs::ALL {
            // N_DBPS per 4 µs symbol == Mbit/s × 4
            assert_eq!(mcs.dbps() as f64, mcs.mbps() * 4.0, "{mcs:?}");
        }
    }

    #[test]
    fn airtime_annex_g_example() {
        // 100-byte PSDU at 36 Mbit/s needs 6 DATA symbols (Annex G) -> 44 µs.
        assert_eq!(Mcs::Mbps36.data_symbols(100), 6);
        assert!((Mcs::Mbps36.packet_airtime_us(100) - 44.0).abs() < 1e-9);
    }

    #[test]
    fn symbol_duration() {
        assert_eq!(OFDM::SYMBOL, 80);
        assert!((OFDM::SYMBOL_DURATION_S - 4e-6).abs() < 1e-15);
    }

    #[test]
    fn required_snr_is_monotone() {
        for w in Mcs::ALL.windows(2) {
            assert!(w[0].required_snr_db() < w[1].required_snr_db());
        }
    }
}
