//! The 802.11a/g PLCP preamble: short and long training fields.
//!
//! * STF — ten repetitions of a 16-sample pattern (8 µs); used for packet
//!   detection, AGC and coarse CFO.
//! * LTF — a 32-sample guard plus two identical 64-sample symbols (8 µs);
//!   used for fine timing, fine CFO and channel estimation.

use crate::subcarrier::bin;
use backfi_dsp::fft::FftPlan;
use backfi_dsp::Complex;

/// Frequency-domain definition of the short training symbol: the 12 loaded
/// subcarriers (±4, ±8, ±12, ±16, ±20, ±24) with their (1+j)/(−1−j) pattern,
/// scaled by √(13/6).
pub fn stf_frequency_domain() -> Vec<Complex> {
    let s = (13.0 / 6.0f64).sqrt();
    let plus = Complex::new(1.0, 1.0).scale(s);
    let minus = Complex::new(-1.0, -1.0).scale(s);
    let loaded: [(i32, Complex); 12] = [
        (-24, plus),
        (-20, minus),
        (-16, plus),
        (-12, minus),
        (-8, minus),
        (-4, plus),
        (4, minus),
        (8, minus),
        (12, plus),
        (16, plus),
        (20, plus),
        (24, plus),
    ];
    let mut bins = vec![Complex::ZERO; 64];
    for (k, v) in loaded {
        bins[bin(k)] = v;
    }
    bins
}

/// Frequency-domain definition of the long training symbol
/// (the ±1 sequence on subcarriers −26…26, DC = 0).
pub fn ltf_frequency_domain() -> Vec<Complex> {
    const L: [i8; 53] = [
        1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1,
        1, // -26..-1
        0, // DC
        1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1,
        1, // 1..26
    ];
    let mut bins = vec![Complex::ZERO; 64];
    for (i, &v) in L.iter().enumerate() {
        let k = i as i32 - 26;
        if v != 0 {
            bins[bin(k)] = Complex::real(v as f64);
        }
    }
    bins
}

/// One period (16 samples) of the time-domain short training symbol.
pub fn stf_period() -> Vec<Complex> {
    let plan = FftPlan::new(64);
    let mut t = stf_frequency_domain();
    plan.inverse(&mut t);
    t.truncate(16);
    t
}

/// One 64-sample time-domain long training symbol.
pub fn ltf_symbol() -> Vec<Complex> {
    let plan = FftPlan::new(64);
    let mut t = ltf_frequency_domain();
    plan.inverse(&mut t);
    t
}

/// The full 320-sample preamble: 160 samples of STF (10 repetitions) followed
/// by 160 samples of LTF (32-sample CP + two 64-sample symbols).
pub fn full_preamble() -> Vec<Complex> {
    let mut out = Vec::with_capacity(320);
    let period = stf_period();
    for _ in 0..10 {
        out.extend_from_slice(&period);
    }
    let sym = ltf_symbol();
    out.extend_from_slice(&sym[32..]); // 32-sample cyclic prefix
    out.extend_from_slice(&sym);
    out.extend_from_slice(&sym);
    out
}

/// Sample offsets inside [`full_preamble`].
pub mod layout {
    /// Start of the LTF guard interval.
    pub const LTF_START: usize = 160;
    /// Start of the first long training symbol.
    pub const LTF_SYM1: usize = 192;
    /// Start of the second long training symbol.
    pub const LTF_SYM2: usize = 256;
    /// Total preamble length.
    pub const TOTAL: usize = 320;
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::stats::mean_power;

    #[test]
    fn stf_period_repeats() {
        // The 64-sample IFFT of the STF bins is periodic with period 16
        // because only every 4th subcarrier is loaded.
        let plan = FftPlan::new(64);
        let mut t = stf_frequency_domain();
        plan.inverse(&mut t);
        for i in 0..48 {
            assert!((t[i] - t[i + 16]).abs() < 1e-9, "sample {i}");
        }
    }

    #[test]
    fn preamble_length_and_power() {
        let p = full_preamble();
        assert_eq!(p.len(), layout::TOTAL);
        // Sanity: both halves have comparable average power (within 3 dB).
        let stf_p = mean_power(&p[..160]);
        let ltf_p = mean_power(&p[160..]);
        assert!(stf_p > 0.0 && ltf_p > 0.0);
        let ratio = stf_p / ltf_p;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn ltf_symbols_are_identical() {
        let p = full_preamble();
        let s1 = &p[layout::LTF_SYM1..layout::LTF_SYM1 + 64];
        let s2 = &p[layout::LTF_SYM2..layout::LTF_SYM2 + 64];
        for i in 0..64 {
            assert!((s1[i] - s2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn ltf_guard_is_cyclic_prefix() {
        let p = full_preamble();
        let guard = &p[layout::LTF_START..layout::LTF_START + 32];
        let tail = &p[layout::LTF_SYM1 + 32..layout::LTF_SYM1 + 64];
        for i in 0..32 {
            assert!((guard[i] - tail[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn ltf_has_53_loaded_bins() {
        let f = ltf_frequency_domain();
        let loaded = f.iter().filter(|v| v.abs() > 0.5).count();
        assert_eq!(loaded, 52); // 53 positions minus the zero DC
        assert!(f[0].abs() < 1e-12, "DC must be empty");
    }

    #[test]
    fn stf_has_12_loaded_bins() {
        let f = stf_frequency_domain();
        assert_eq!(f.iter().filter(|v| v.abs() > 0.5).count(), 12);
    }
}
