//! Constellation mapping and max-log soft demapping.
//!
//! Gray-coded BPSK/QPSK/16-QAM/64-QAM per IEEE 802.11-2012 §18.3.5.8, with
//! the standard normalization factors (1, 1/√2, 1/√10, 1/√42) so every
//! constellation has unit average power.

use crate::params::Modulation;
use backfi_dsp::Complex;

/// Per-axis Gray levels for 16-QAM: input bits (b0 b1) → amplitude.
const LEVELS4: [f64; 4] = [-3.0, -1.0, 3.0, 1.0]; // index = b0 + 2*b1
/// Per-axis Gray levels for 64-QAM: index = b0 + 2*b1 + 4*b2.
const LEVELS8: [f64; 8] = [-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0];

/// Normalization factor K_MOD for a modulation.
pub fn norm(modulation: Modulation) -> f64 {
    match modulation {
        Modulation::Bpsk => 1.0,
        Modulation::Qpsk => 1.0 / 2f64.sqrt(),
        Modulation::Qam16 => 1.0 / 10f64.sqrt(),
        Modulation::Qam64 => 1.0 / 42f64.sqrt(),
    }
}

/// Map `bits_per_subcarrier` bits to one constellation point.
///
/// Bit order follows the standard: the first half of the bits select the I
/// axis (first bit is the MSB-like Gray bit), the second half the Q axis.
/// BPSK uses only the I axis.
///
/// # Panics
/// Panics if `bits.len()` doesn't match the modulation.
pub fn map_bits(modulation: Modulation, bits: &[bool]) -> Complex {
    assert_eq!(
        bits.len(),
        modulation.bits_per_subcarrier(),
        "wrong bit count for {modulation:?}"
    );
    let k = norm(modulation);
    match modulation {
        Modulation::Bpsk => Complex::new(if bits[0] { 1.0 } else { -1.0 }, 0.0),
        Modulation::Qpsk => Complex::new(
            if bits[0] { 1.0 } else { -1.0 },
            if bits[1] { 1.0 } else { -1.0 },
        )
        .scale(k),
        Modulation::Qam16 => {
            let i = LEVELS4[bits[0] as usize + 2 * bits[1] as usize];
            let q = LEVELS4[bits[2] as usize + 2 * bits[3] as usize];
            Complex::new(i, q).scale(k)
        }
        Modulation::Qam64 => {
            let i = LEVELS8[bits[0] as usize + 2 * bits[1] as usize + 4 * bits[2] as usize];
            let q = LEVELS8[bits[3] as usize + 2 * bits[4] as usize + 4 * bits[5] as usize];
            Complex::new(i, q).scale(k)
        }
    }
}

/// Map a whole coded-bit block to constellation points.
///
/// # Panics
/// Panics if `bits.len()` is not a multiple of the bits-per-subcarrier.
pub fn map_block(modulation: Modulation, bits: &[bool]) -> Vec<Complex> {
    let n = modulation.bits_per_subcarrier();
    assert_eq!(bits.len() % n, 0, "bit block not a multiple of {n}");
    bits.chunks_exact(n)
        .map(|c| map_bits(modulation, c))
        .collect()
}

/// All constellation points of a modulation together with their bit labels,
/// used by the max-log demapper and by tests.
pub fn constellation(modulation: Modulation) -> Vec<(Complex, Vec<bool>)> {
    let n = modulation.bits_per_subcarrier();
    (0..1usize << n)
        .map(|v| {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            (map_bits(modulation, &bits), bits)
        })
        .collect()
}

/// Planar constellation table for the hot demapper: points in the same
/// `v = 0..2^n` order as [`constellation`], split into re/im slices, with
/// `labels[v] = v` (bit `i` of the label is the point's `i`-th mapped bit).
struct ConstTable {
    n: usize,
    nbits: usize,
    re: [f64; 64],
    im: [f64; 64],
    labels: [u8; 64],
    /// Axis-separable form: square Gray constellations factor into
    /// independent I/Q PAM axes — the low `rb` label bits select the I
    /// level `rax[v & (2^rb−1)]`, the high `ib` bits the Q level
    /// `iax[v >> rb]`. Verified bitwise at build time (`sep`); the batch
    /// demapper falls back to the full 2-D scan if it ever fails.
    sep: bool,
    rb: usize,
    ib: usize,
    rax: [f64; 8],
    iax: [f64; 8],
}

/// Process-wide cached [`ConstTable`]s, one per modulation. The reference
/// demapper rebuilds (and heap-allocates) the constellation on every call —
/// per subcarrier per symbol — which dominated receive-side demod time.
fn table(modulation: Modulation) -> &'static ConstTable {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[ConstTable; 4]> = OnceLock::new();
    let all = TABLES.get_or_init(|| {
        [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ]
        .map(|m| {
            let nbits = m.bits_per_subcarrier();
            let mut t = ConstTable {
                n: 1 << nbits,
                nbits,
                re: [0.0; 64],
                im: [0.0; 64],
                labels: [0; 64],
                sep: false,
                rb: nbits - nbits / 2,
                ib: nbits / 2,
                rax: [0.0; 8],
                iax: [0.0; 8],
            };
            for (v, (p, _)) in constellation(m).into_iter().enumerate() {
                t.re[v] = p.re;
                t.im[v] = p.im;
                t.labels[v] = v as u8;
            }
            // Axis tables: I levels from the points with all Q bits zero, Q
            // levels from the points with all I bits zero; then prove every
            // point factors through them bitwise.
            let rmask = (1usize << t.rb) - 1;
            for j in 0..1usize << t.rb {
                t.rax[j] = t.re[j];
            }
            for j in 0..1usize << t.ib {
                t.iax[j] = t.im[j << t.rb];
            }
            t.sep = (0..t.n).all(|v| {
                t.re[v].to_bits() == t.rax[v & rmask].to_bits()
                    && t.im[v].to_bits() == t.iax[v >> t.rb].to_bits()
            });
            t
        })
    });
    let idx = match modulation {
        Modulation::Bpsk => 0,
        Modulation::Qpsk => 1,
        Modulation::Qam16 => 2,
        Modulation::Qam64 => 3,
    };
    &all[idx]
}

/// Max-log LLR soft demapping of one received point.
///
/// `noise_var` scales the confidence; `csi` (channel gain magnitude squared)
/// further weights the result, so faded subcarriers contribute weak metrics —
/// this is what makes soft-decision Viterbi shine on frequency-selective
/// channels. Output convention matches `backfi-coding`: positive ⇒ bit 1.
///
/// Runs on cached planar constellation tables through the
/// [`backfi_dsp::soa`] kernels; bit-identical to [`demap_soft_direct`]
/// (pinned by the `_equiv` tests — same distances in the same order, and
/// `f64::min` against the mask's +∞ filler is the identity).
pub fn demap_soft(
    modulation: Modulation,
    point: Complex,
    csi: f64,
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    let t = table(modulation);
    let scale = csi / noise_var.max(1e-12);
    let (d0, d1) =
        backfi_dsp::soa::demap_mins(point, &t.re[..t.n], &t.im[..t.n], &t.labels[..t.n], t.nbits);
    for bit in 0..t.nbits {
        out.push((d0[bit] - d1[bit]) * scale);
    }
}

/// Fused soft demap of a whole planar batch of equalized points (the
/// receive chain passes every symbol of a batch in one call). Routes the
/// batch to [`backfi_dsp::soa::demap_llrs_batch`], which exploits the cached
/// tables' identity labeling (`labels[v] = v`) to hoist the table fetch,
/// modulation dispatch, and label mask arithmetic out of the per-subcarrier
/// loop. Value-identical to per-point [`demap_soft`] calls at every batch
/// size (see the kernel's reassociation argument), and pinned against
/// [`demap_soft_direct`] by the `_equiv` tests.
///
/// # Panics
/// Panics if the planar slices differ in length.
pub fn demap_soft_batch(
    modulation: Modulation,
    eq_re: &[f64],
    eq_im: &[f64],
    csi: &[f64],
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    let t = table(modulation);
    let nv = noise_var.max(1e-12);
    if t.sep {
        // O(2·√M) separable axis scan instead of the O(M) 2-D scan.
        match (t.rb, t.ib) {
            (1, 0) => demap_sep_batch::<1, 0>(t, eq_re, eq_im, csi, nv, out),
            (1, 1) => demap_sep_batch::<1, 1>(t, eq_re, eq_im, csi, nv, out),
            (2, 2) => demap_sep_batch::<2, 2>(t, eq_re, eq_im, csi, nv, out),
            (3, 3) => demap_sep_batch::<3, 3>(t, eq_re, eq_im, csi, nv, out),
            _ => unreachable!("no constellation maps to ({}, {})", t.rb, t.ib),
        }
        return;
    }
    backfi_dsp::soa::demap_llrs_batch(
        eq_re,
        eq_im,
        csi,
        nv,
        &t.re[..t.n],
        &t.im[..t.n],
        &t.labels[..t.n],
        t.nbits,
        out,
    );
}

/// Separable max-log demap of a planar batch: per point, `2^RB + 2^IB`
/// axis distances instead of `2^(RB+IB)` point distances.
///
/// **Value-identical to the 2-D scan.** Every point distance is
/// `fl(dre[j] + dim[j2])` over the product set of axis distances, and
/// float addition is monotone in both operands, so the minimum over any
/// subset `{bit fixed} × {all}` equals `fl(min dre + min dim)` bitwise —
/// the candidate built from the two axis minima is a member of the subset
/// and no member can round below it. Axis minima use the same
/// `f64::min`-chain semantics as the reference (a NaN input point NaNs
/// *every* distance on both paths, leaving the same +∞ minima).
fn demap_sep_batch<const RB: usize, const IB: usize>(
    t: &ConstTable,
    eq_re: &[f64],
    eq_im: &[f64],
    csi: &[f64],
    nv: f64,
    out: &mut Vec<f64>,
) {
    assert_eq!(eq_re.len(), eq_im.len(), "planar batch length mismatch");
    assert_eq!(eq_re.len(), csi.len(), "planar batch length mismatch");
    let nbits = RB + IB;
    debug_assert_eq!(nbits, t.nbits);
    let start = out.len();
    out.resize(start + eq_re.len() * nbits, 0.0);
    let dst = &mut out[start..];
    for p in 0..eq_re.len() {
        let pre = eq_re[p];
        let pim = eq_im[p];
        let mut dre = [0.0f64; 8];
        let mut dim = [0.0f64; 8];
        for (j, d) in dre.iter_mut().enumerate().take(1 << RB) {
            let dx = pre - t.rax[j];
            *d = dx * dx;
        }
        for (j, d) in dim.iter_mut().enumerate().take(1 << IB) {
            let dy = pim - t.iax[j];
            *d = dy * dy;
        }
        // Per-bit split minima along each axis, plus the whole-axis minimum
        // (min of any split — the multiset is order-independent).
        let mut r0 = [f64::INFINITY; 3];
        let mut r1 = [f64::INFINITY; 3];
        for (j, &d) in dre.iter().enumerate().take(1 << RB) {
            for b in 0..RB {
                if (j >> b) & 1 == 0 {
                    r0[b] = d.min(r0[b]);
                } else {
                    r1[b] = d.min(r1[b]);
                }
            }
        }
        let mre = if RB > 0 { r0[0].min(r1[0]) } else { dre[0] };
        let mut i0 = [f64::INFINITY; 3];
        let mut i1 = [f64::INFINITY; 3];
        for (j, &d) in dim.iter().enumerate().take(1 << IB) {
            for b in 0..IB {
                if (j >> b) & 1 == 0 {
                    i0[b] = d.min(i0[b]);
                } else {
                    i1[b] = d.min(i1[b]);
                }
            }
        }
        let mim = if IB > 0 { i0[0].min(i1[0]) } else { dim[0] };
        let scale = csi[p] / nv;
        let row = &mut dst[p * nbits..(p + 1) * nbits];
        for b in 0..RB {
            row[b] = ((r0[b] + mim) - (r1[b] + mim)) * scale;
        }
        for b in 0..IB {
            row[RB + b] = ((mre + i0[b]) - (mre + i1[b])) * scale;
        }
    }
}

/// Reference form of [`demap_soft`]: rebuilds the constellation and scans it
/// with the original branchy min loop. Pinned against the fast path by the
/// `_equiv` tests.
pub fn demap_soft_direct(
    modulation: Modulation,
    point: Complex,
    csi: f64,
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    let nbits = modulation.bits_per_subcarrier();
    let set = constellation(modulation);
    let scale = csi / noise_var.max(1e-12);
    for bit in 0..nbits {
        let mut d0 = f64::INFINITY;
        let mut d1 = f64::INFINITY;
        for (p, bits) in &set {
            let d = (point - *p).norm_sqr();
            if bits[bit] {
                d1 = d1.min(d);
            } else {
                d0 = d0.min(d);
            }
        }
        out.push((d0 - d1) * scale);
    }
}

/// Hard-decision demapping: nearest constellation point's bits. NaN
/// distances (a NaN input point) lose the nearest-point comparison instead
/// of panicking it.
pub fn demap_hard(modulation: Modulation, point: Complex) -> Vec<bool> {
    let key = |c: &(Complex, Vec<bool>)| {
        let d = (point - c.0).norm_sqr();
        if d.is_nan() {
            f64::INFINITY
        } else {
            d
        }
    };
    constellation(modulation)
        .into_iter()
        .min_by(|a, b| key(a).total_cmp(&key(b)))
        .map(|(_, bits)| bits)
        .expect("constellation is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Modulation::*;

    #[test]
    fn unit_average_power() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            let pts = constellation(m);
            let p: f64 = pts.iter().map(|(c, _)| c.norm_sqr()).sum::<f64>() / pts.len() as f64;
            assert!((p - 1.0).abs() < 1e-12, "{m:?} power {p}");
        }
    }

    #[test]
    fn constellations_have_distinct_points() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            let pts = constellation(m);
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    assert!((pts[i].0 - pts[j].0).abs() > 1e-9, "{m:?} {i},{j}");
                }
            }
        }
    }

    #[test]
    fn gray_property_adjacent_levels_differ_one_bit() {
        // Sort 16-QAM I-axis levels; adjacent levels must differ in one bit.
        let mut lv: Vec<(i32, usize)> = (0..4).map(|v| (LEVELS4[v] as i32, v)).collect();
        lv.sort();
        for w in lv.windows(2) {
            let d = (w[0].1 ^ w[1].1).count_ones();
            assert_eq!(d, 1, "not gray: {:?}", w);
        }
        let mut lv8: Vec<(i32, usize)> = (0..8).map(|v| (LEVELS8[v] as i32, v)).collect();
        lv8.sort();
        for w in lv8.windows(2) {
            assert_eq!((w[0].1 ^ w[1].1).count_ones(), 1, "64qam not gray: {w:?}");
        }
    }

    #[test]
    fn hard_demap_roundtrip() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            for (p, bits) in constellation(m) {
                assert_eq!(demap_hard(m, p), bits, "{m:?}");
            }
        }
    }

    #[test]
    fn soft_demap_sign_matches_bits_at_high_snr() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            for (p, bits) in constellation(m) {
                let mut llr = Vec::new();
                demap_soft(m, p, 1.0, 0.01, &mut llr);
                for (i, &b) in bits.iter().enumerate() {
                    assert_eq!(llr[i] > 0.0, b, "{m:?} bit {i}");
                }
            }
        }
    }

    #[test]
    fn soft_demap_scales_with_csi() {
        let mut strong = Vec::new();
        let mut weak = Vec::new();
        let pt = map_bits(Qpsk, &[true, false]);
        demap_soft(Qpsk, pt, 1.0, 0.1, &mut strong);
        demap_soft(Qpsk, pt, 0.01, 0.1, &mut weak);
        assert!(strong[0].abs() > weak[0].abs() * 50.0);
    }

    #[test]
    fn demap_soft_equiv_direct() {
        // Fast cached-table demapper vs the rebuild-every-call reference:
        // bit-identical LLRs over a grid of points, all modulations, all
        // csi/noise combinations — including NaN/Inf points (both paths
        // yield NaN LLRs there; NaN bit patterns are unspecified).
        let mut points: Vec<Complex> = Vec::new();
        for i in -4i32..=4 {
            for q in -4i32..=4 {
                points.push(Complex::new(i as f64 * 0.37, q as f64 * 0.29));
            }
        }
        points.push(Complex::new(f64::NAN, 0.1));
        points.push(Complex::new(f64::INFINITY, -1.0));
        points.push(Complex::new(1e-300, -5e-324));
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            for &p in &points {
                for (csi, nv) in [(1.0, 0.1), (0.3, 1e-14), (0.0, 0.5)] {
                    let mut fast = Vec::new();
                    let mut slow = Vec::new();
                    demap_soft(m, p, csi, nv, &mut fast);
                    demap_soft_direct(m, p, csi, nv, &mut slow);
                    assert_eq!(fast.len(), slow.len());
                    for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                        assert!(
                            a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                            "{m:?} point {p:?} bit {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn demap_soft_batch_equiv_direct() {
        // The fused batch demapper (separable axis scan for the square
        // constellations, SoA fallback otherwise) against the
        // rebuild-every-call per-point reference: bit-identical LLR rows at
        // every batch length — including lengths that are not a multiple of
        // any SIMD lane width — with NaN/∞ lanes and per-point csi.
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            for len in [1usize, 5, 17, 48, 53] {
                let mut re = Vec::with_capacity(len);
                let mut im = Vec::with_capacity(len);
                let mut csi = Vec::with_capacity(len);
                for i in 0..len {
                    re.push(((i * 7 + 3) % 13) as f64 * 0.21 - 1.2);
                    im.push(((i * 5 + 1) % 11) as f64 * 0.27 - 1.3);
                    csi.push(0.2 + (i % 4) as f64 * 0.45);
                }
                if len >= 5 {
                    re[1] = f64::NAN;
                    im[2] = f64::INFINITY;
                    re[3] = f64::NEG_INFINITY;
                    csi[4] = 0.0;
                }
                for nv in [0.15, 1e-14] {
                    let mut fast = Vec::new();
                    demap_soft_batch(m, &re, &im, &csi, nv, &mut fast);
                    let mut slow = Vec::new();
                    for i in 0..len {
                        demap_soft_direct(m, Complex::new(re[i], im[i]), csi[i], nv, &mut slow);
                    }
                    assert_eq!(fast.len(), slow.len(), "{m:?} len {len}");
                    for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                        assert!(
                            a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                            "{m:?} len {len} nv {nv} llr {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn demap_hard_nan_point_does_not_panic() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            let bits = demap_hard(m, Complex::new(f64::NAN, f64::NAN));
            assert_eq!(bits.len(), m.bits_per_subcarrier());
        }
    }

    #[test]
    fn block_mapping_length() {
        let bits: Vec<bool> = (0..96).map(|i| i % 2 == 0).collect();
        assert_eq!(map_block(Qpsk, &bits).len(), 48);
        assert_eq!(map_block(Qam16, &bits).len(), 24);
    }

    #[test]
    fn bpsk_points_are_real() {
        for (p, _) in constellation(Bpsk) {
            assert!(p.im.abs() < 1e-12);
        }
    }
}
