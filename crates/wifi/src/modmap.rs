//! Constellation mapping and max-log soft demapping.
//!
//! Gray-coded BPSK/QPSK/16-QAM/64-QAM per IEEE 802.11-2012 §18.3.5.8, with
//! the standard normalization factors (1, 1/√2, 1/√10, 1/√42) so every
//! constellation has unit average power.

use crate::params::Modulation;
use backfi_dsp::Complex;

/// Per-axis Gray levels for 16-QAM: input bits (b0 b1) → amplitude.
const LEVELS4: [f64; 4] = [-3.0, -1.0, 3.0, 1.0]; // index = b0 + 2*b1
/// Per-axis Gray levels for 64-QAM: index = b0 + 2*b1 + 4*b2.
const LEVELS8: [f64; 8] = [-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0];

/// Normalization factor K_MOD for a modulation.
pub fn norm(modulation: Modulation) -> f64 {
    match modulation {
        Modulation::Bpsk => 1.0,
        Modulation::Qpsk => 1.0 / 2f64.sqrt(),
        Modulation::Qam16 => 1.0 / 10f64.sqrt(),
        Modulation::Qam64 => 1.0 / 42f64.sqrt(),
    }
}

/// Map `bits_per_subcarrier` bits to one constellation point.
///
/// Bit order follows the standard: the first half of the bits select the I
/// axis (first bit is the MSB-like Gray bit), the second half the Q axis.
/// BPSK uses only the I axis.
///
/// # Panics
/// Panics if `bits.len()` doesn't match the modulation.
pub fn map_bits(modulation: Modulation, bits: &[bool]) -> Complex {
    assert_eq!(
        bits.len(),
        modulation.bits_per_subcarrier(),
        "wrong bit count for {modulation:?}"
    );
    let k = norm(modulation);
    match modulation {
        Modulation::Bpsk => Complex::new(if bits[0] { 1.0 } else { -1.0 }, 0.0),
        Modulation::Qpsk => Complex::new(
            if bits[0] { 1.0 } else { -1.0 },
            if bits[1] { 1.0 } else { -1.0 },
        )
        .scale(k),
        Modulation::Qam16 => {
            let i = LEVELS4[bits[0] as usize + 2 * bits[1] as usize];
            let q = LEVELS4[bits[2] as usize + 2 * bits[3] as usize];
            Complex::new(i, q).scale(k)
        }
        Modulation::Qam64 => {
            let i = LEVELS8[bits[0] as usize + 2 * bits[1] as usize + 4 * bits[2] as usize];
            let q = LEVELS8[bits[3] as usize + 2 * bits[4] as usize + 4 * bits[5] as usize];
            Complex::new(i, q).scale(k)
        }
    }
}

/// Map a whole coded-bit block to constellation points.
///
/// # Panics
/// Panics if `bits.len()` is not a multiple of the bits-per-subcarrier.
pub fn map_block(modulation: Modulation, bits: &[bool]) -> Vec<Complex> {
    let n = modulation.bits_per_subcarrier();
    assert_eq!(bits.len() % n, 0, "bit block not a multiple of {n}");
    bits.chunks_exact(n)
        .map(|c| map_bits(modulation, c))
        .collect()
}

/// All constellation points of a modulation together with their bit labels,
/// used by the max-log demapper and by tests.
pub fn constellation(modulation: Modulation) -> Vec<(Complex, Vec<bool>)> {
    let n = modulation.bits_per_subcarrier();
    (0..1usize << n)
        .map(|v| {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            (map_bits(modulation, &bits), bits)
        })
        .collect()
}

/// Planar constellation table for the hot demapper: points in the same
/// `v = 0..2^n` order as [`constellation`], split into re/im slices, with
/// `labels[v] = v` (bit `i` of the label is the point's `i`-th mapped bit).
struct ConstTable {
    n: usize,
    nbits: usize,
    re: [f64; 64],
    im: [f64; 64],
    labels: [u8; 64],
}

/// Process-wide cached [`ConstTable`]s, one per modulation. The reference
/// demapper rebuilds (and heap-allocates) the constellation on every call —
/// per subcarrier per symbol — which dominated receive-side demod time.
fn table(modulation: Modulation) -> &'static ConstTable {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[ConstTable; 4]> = OnceLock::new();
    let all = TABLES.get_or_init(|| {
        [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ]
        .map(|m| {
            let mut t = ConstTable {
                n: 1 << m.bits_per_subcarrier(),
                nbits: m.bits_per_subcarrier(),
                re: [0.0; 64],
                im: [0.0; 64],
                labels: [0; 64],
            };
            for (v, (p, _)) in constellation(m).into_iter().enumerate() {
                t.re[v] = p.re;
                t.im[v] = p.im;
                t.labels[v] = v as u8;
            }
            t
        })
    });
    let idx = match modulation {
        Modulation::Bpsk => 0,
        Modulation::Qpsk => 1,
        Modulation::Qam16 => 2,
        Modulation::Qam64 => 3,
    };
    &all[idx]
}

/// Max-log LLR soft demapping of one received point.
///
/// `noise_var` scales the confidence; `csi` (channel gain magnitude squared)
/// further weights the result, so faded subcarriers contribute weak metrics —
/// this is what makes soft-decision Viterbi shine on frequency-selective
/// channels. Output convention matches `backfi-coding`: positive ⇒ bit 1.
///
/// Runs on cached planar constellation tables through the
/// [`backfi_dsp::soa`] kernels; bit-identical to [`demap_soft_direct`]
/// (pinned by the `_equiv` tests — same distances in the same order, and
/// `f64::min` against the mask's +∞ filler is the identity).
pub fn demap_soft(
    modulation: Modulation,
    point: Complex,
    csi: f64,
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    let t = table(modulation);
    let scale = csi / noise_var.max(1e-12);
    let (d0, d1) =
        backfi_dsp::soa::demap_mins(point, &t.re[..t.n], &t.im[..t.n], &t.labels[..t.n], t.nbits);
    for bit in 0..t.nbits {
        out.push((d0[bit] - d1[bit]) * scale);
    }
}

/// Reference form of [`demap_soft`]: rebuilds the constellation and scans it
/// with the original branchy min loop. Pinned against the fast path by the
/// `_equiv` tests.
pub fn demap_soft_direct(
    modulation: Modulation,
    point: Complex,
    csi: f64,
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    let nbits = modulation.bits_per_subcarrier();
    let set = constellation(modulation);
    let scale = csi / noise_var.max(1e-12);
    for bit in 0..nbits {
        let mut d0 = f64::INFINITY;
        let mut d1 = f64::INFINITY;
        for (p, bits) in &set {
            let d = (point - *p).norm_sqr();
            if bits[bit] {
                d1 = d1.min(d);
            } else {
                d0 = d0.min(d);
            }
        }
        out.push((d0 - d1) * scale);
    }
}

/// Hard-decision demapping: nearest constellation point's bits. NaN
/// distances (a NaN input point) lose the nearest-point comparison instead
/// of panicking it.
pub fn demap_hard(modulation: Modulation, point: Complex) -> Vec<bool> {
    let key = |c: &(Complex, Vec<bool>)| {
        let d = (point - c.0).norm_sqr();
        if d.is_nan() {
            f64::INFINITY
        } else {
            d
        }
    };
    constellation(modulation)
        .into_iter()
        .min_by(|a, b| key(a).total_cmp(&key(b)))
        .map(|(_, bits)| bits)
        .expect("constellation is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Modulation::*;

    #[test]
    fn unit_average_power() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            let pts = constellation(m);
            let p: f64 = pts.iter().map(|(c, _)| c.norm_sqr()).sum::<f64>() / pts.len() as f64;
            assert!((p - 1.0).abs() < 1e-12, "{m:?} power {p}");
        }
    }

    #[test]
    fn constellations_have_distinct_points() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            let pts = constellation(m);
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    assert!((pts[i].0 - pts[j].0).abs() > 1e-9, "{m:?} {i},{j}");
                }
            }
        }
    }

    #[test]
    fn gray_property_adjacent_levels_differ_one_bit() {
        // Sort 16-QAM I-axis levels; adjacent levels must differ in one bit.
        let mut lv: Vec<(i32, usize)> = (0..4).map(|v| (LEVELS4[v] as i32, v)).collect();
        lv.sort();
        for w in lv.windows(2) {
            let d = (w[0].1 ^ w[1].1).count_ones();
            assert_eq!(d, 1, "not gray: {:?}", w);
        }
        let mut lv8: Vec<(i32, usize)> = (0..8).map(|v| (LEVELS8[v] as i32, v)).collect();
        lv8.sort();
        for w in lv8.windows(2) {
            assert_eq!((w[0].1 ^ w[1].1).count_ones(), 1, "64qam not gray: {w:?}");
        }
    }

    #[test]
    fn hard_demap_roundtrip() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            for (p, bits) in constellation(m) {
                assert_eq!(demap_hard(m, p), bits, "{m:?}");
            }
        }
    }

    #[test]
    fn soft_demap_sign_matches_bits_at_high_snr() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            for (p, bits) in constellation(m) {
                let mut llr = Vec::new();
                demap_soft(m, p, 1.0, 0.01, &mut llr);
                for (i, &b) in bits.iter().enumerate() {
                    assert_eq!(llr[i] > 0.0, b, "{m:?} bit {i}");
                }
            }
        }
    }

    #[test]
    fn soft_demap_scales_with_csi() {
        let mut strong = Vec::new();
        let mut weak = Vec::new();
        let pt = map_bits(Qpsk, &[true, false]);
        demap_soft(Qpsk, pt, 1.0, 0.1, &mut strong);
        demap_soft(Qpsk, pt, 0.01, 0.1, &mut weak);
        assert!(strong[0].abs() > weak[0].abs() * 50.0);
    }

    #[test]
    fn demap_soft_equiv_direct() {
        // Fast cached-table demapper vs the rebuild-every-call reference:
        // bit-identical LLRs over a grid of points, all modulations, all
        // csi/noise combinations — including NaN/Inf points (both paths
        // yield NaN LLRs there; NaN bit patterns are unspecified).
        let mut points: Vec<Complex> = Vec::new();
        for i in -4i32..=4 {
            for q in -4i32..=4 {
                points.push(Complex::new(i as f64 * 0.37, q as f64 * 0.29));
            }
        }
        points.push(Complex::new(f64::NAN, 0.1));
        points.push(Complex::new(f64::INFINITY, -1.0));
        points.push(Complex::new(1e-300, -5e-324));
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            for &p in &points {
                for (csi, nv) in [(1.0, 0.1), (0.3, 1e-14), (0.0, 0.5)] {
                    let mut fast = Vec::new();
                    let mut slow = Vec::new();
                    demap_soft(m, p, csi, nv, &mut fast);
                    demap_soft_direct(m, p, csi, nv, &mut slow);
                    assert_eq!(fast.len(), slow.len());
                    for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                        assert!(
                            a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                            "{m:?} point {p:?} bit {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn demap_hard_nan_point_does_not_panic() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            let bits = demap_hard(m, Complex::new(f64::NAN, f64::NAN));
            assert_eq!(bits.len(), m.bits_per_subcarrier());
        }
    }

    #[test]
    fn block_mapping_length() {
        let bits: Vec<bool> = (0..96).map(|i| i % 2 == 0).collect();
        assert_eq!(map_block(Qpsk, &bits).len(), 48);
        assert_eq!(map_block(Qam16, &bits).len(), 24);
    }

    #[test]
    fn bpsk_points_are_real() {
        for (p, _) in constellation(Bpsk) {
            assert!(p.im.abs() < 1e-12);
        }
    }
}
