//! Constellation mapping and max-log soft demapping.
//!
//! Gray-coded BPSK/QPSK/16-QAM/64-QAM per IEEE 802.11-2012 §18.3.5.8, with
//! the standard normalization factors (1, 1/√2, 1/√10, 1/√42) so every
//! constellation has unit average power.

use crate::params::Modulation;
use backfi_dsp::Complex;

/// Per-axis Gray levels for 16-QAM: input bits (b0 b1) → amplitude.
const LEVELS4: [f64; 4] = [-3.0, -1.0, 3.0, 1.0]; // index = b0 + 2*b1
/// Per-axis Gray levels for 64-QAM: index = b0 + 2*b1 + 4*b2.
const LEVELS8: [f64; 8] = [-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0];

/// Normalization factor K_MOD for a modulation.
pub fn norm(modulation: Modulation) -> f64 {
    match modulation {
        Modulation::Bpsk => 1.0,
        Modulation::Qpsk => 1.0 / 2f64.sqrt(),
        Modulation::Qam16 => 1.0 / 10f64.sqrt(),
        Modulation::Qam64 => 1.0 / 42f64.sqrt(),
    }
}

/// Map `bits_per_subcarrier` bits to one constellation point.
///
/// Bit order follows the standard: the first half of the bits select the I
/// axis (first bit is the MSB-like Gray bit), the second half the Q axis.
/// BPSK uses only the I axis.
///
/// # Panics
/// Panics if `bits.len()` doesn't match the modulation.
pub fn map_bits(modulation: Modulation, bits: &[bool]) -> Complex {
    assert_eq!(
        bits.len(),
        modulation.bits_per_subcarrier(),
        "wrong bit count for {modulation:?}"
    );
    let k = norm(modulation);
    match modulation {
        Modulation::Bpsk => Complex::new(if bits[0] { 1.0 } else { -1.0 }, 0.0),
        Modulation::Qpsk => Complex::new(
            if bits[0] { 1.0 } else { -1.0 },
            if bits[1] { 1.0 } else { -1.0 },
        )
        .scale(k),
        Modulation::Qam16 => {
            let i = LEVELS4[bits[0] as usize + 2 * bits[1] as usize];
            let q = LEVELS4[bits[2] as usize + 2 * bits[3] as usize];
            Complex::new(i, q).scale(k)
        }
        Modulation::Qam64 => {
            let i = LEVELS8[bits[0] as usize + 2 * bits[1] as usize + 4 * bits[2] as usize];
            let q = LEVELS8[bits[3] as usize + 2 * bits[4] as usize + 4 * bits[5] as usize];
            Complex::new(i, q).scale(k)
        }
    }
}

/// Map a whole coded-bit block to constellation points.
///
/// # Panics
/// Panics if `bits.len()` is not a multiple of the bits-per-subcarrier.
pub fn map_block(modulation: Modulation, bits: &[bool]) -> Vec<Complex> {
    let n = modulation.bits_per_subcarrier();
    assert_eq!(bits.len() % n, 0, "bit block not a multiple of {n}");
    bits.chunks_exact(n)
        .map(|c| map_bits(modulation, c))
        .collect()
}

/// All constellation points of a modulation together with their bit labels,
/// used by the max-log demapper and by tests.
pub fn constellation(modulation: Modulation) -> Vec<(Complex, Vec<bool>)> {
    let n = modulation.bits_per_subcarrier();
    (0..1usize << n)
        .map(|v| {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            (map_bits(modulation, &bits), bits)
        })
        .collect()
}

/// Max-log LLR soft demapping of one received point.
///
/// `noise_var` scales the confidence; `csi` (channel gain magnitude squared)
/// further weights the result, so faded subcarriers contribute weak metrics —
/// this is what makes soft-decision Viterbi shine on frequency-selective
/// channels. Output convention matches `backfi-coding`: positive ⇒ bit 1.
pub fn demap_soft(
    modulation: Modulation,
    point: Complex,
    csi: f64,
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    let nbits = modulation.bits_per_subcarrier();
    let set = constellation(modulation);
    let scale = csi / noise_var.max(1e-12);
    for bit in 0..nbits {
        let mut d0 = f64::INFINITY;
        let mut d1 = f64::INFINITY;
        for (p, bits) in &set {
            let d = (point - *p).norm_sqr();
            if bits[bit] {
                d1 = d1.min(d);
            } else {
                d0 = d0.min(d);
            }
        }
        out.push((d0 - d1) * scale);
    }
}

/// Hard-decision demapping: nearest constellation point's bits.
pub fn demap_hard(modulation: Modulation, point: Complex) -> Vec<bool> {
    constellation(modulation)
        .into_iter()
        .min_by(|a, b| {
            (point - a.0)
                .norm_sqr()
                .partial_cmp(&(point - b.0).norm_sqr())
                .unwrap()
        })
        .map(|(_, bits)| bits)
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Modulation::*;

    #[test]
    fn unit_average_power() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            let pts = constellation(m);
            let p: f64 = pts.iter().map(|(c, _)| c.norm_sqr()).sum::<f64>() / pts.len() as f64;
            assert!((p - 1.0).abs() < 1e-12, "{m:?} power {p}");
        }
    }

    #[test]
    fn constellations_have_distinct_points() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            let pts = constellation(m);
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    assert!((pts[i].0 - pts[j].0).abs() > 1e-9, "{m:?} {i},{j}");
                }
            }
        }
    }

    #[test]
    fn gray_property_adjacent_levels_differ_one_bit() {
        // Sort 16-QAM I-axis levels; adjacent levels must differ in one bit.
        let mut lv: Vec<(i32, usize)> = (0..4).map(|v| (LEVELS4[v] as i32, v)).collect();
        lv.sort();
        for w in lv.windows(2) {
            let d = (w[0].1 ^ w[1].1).count_ones();
            assert_eq!(d, 1, "not gray: {:?}", w);
        }
        let mut lv8: Vec<(i32, usize)> = (0..8).map(|v| (LEVELS8[v] as i32, v)).collect();
        lv8.sort();
        for w in lv8.windows(2) {
            assert_eq!((w[0].1 ^ w[1].1).count_ones(), 1, "64qam not gray: {w:?}");
        }
    }

    #[test]
    fn hard_demap_roundtrip() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            for (p, bits) in constellation(m) {
                assert_eq!(demap_hard(m, p), bits, "{m:?}");
            }
        }
    }

    #[test]
    fn soft_demap_sign_matches_bits_at_high_snr() {
        for m in [Bpsk, Qpsk, Qam16, Qam64] {
            for (p, bits) in constellation(m) {
                let mut llr = Vec::new();
                demap_soft(m, p, 1.0, 0.01, &mut llr);
                for (i, &b) in bits.iter().enumerate() {
                    assert_eq!(llr[i] > 0.0, b, "{m:?} bit {i}");
                }
            }
        }
    }

    #[test]
    fn soft_demap_scales_with_csi() {
        let mut strong = Vec::new();
        let mut weak = Vec::new();
        let pt = map_bits(Qpsk, &[true, false]);
        demap_soft(Qpsk, pt, 1.0, 0.1, &mut strong);
        demap_soft(Qpsk, pt, 0.01, 0.1, &mut weak);
        assert!(strong[0].abs() > weak[0].abs() * 50.0);
    }

    #[test]
    fn block_mapping_length() {
        let bits: Vec<bool> = (0..96).map(|i| i % 2 == 0).collect();
        assert_eq!(map_block(Qpsk, &bits).len(), 48);
        assert_eq!(map_block(Qam16, &bits).len(), 24);
    }

    #[test]
    fn bpsk_points_are_real() {
        for (p, _) in constellation(Bpsk) {
            assert!(p.im.abs() < 1e-12);
        }
    }
}
