//! Receiver robustness sweeps: CFO, SNR ladders, timing, and channel
//! conditions. These are the impairments a real client endures while the
//! coexistence experiments run on top of it.

use backfi_dsp::noise::add_noise;
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::Complex;
use backfi_wifi::rx::apply_cfo;
use backfi_wifi::{Mcs, WifiReceiver, WifiTransmitter};

fn loop_once(mcs: Mcs, noise: f64, cfo_hz: f64, pad: usize, seed: u64, taps: &[Complex]) -> bool {
    let tx = WifiTransmitter::new();
    let psdu: Vec<u8> = (0..300).map(|i| (i * 31 + seed as usize) as u8).collect();
    let pkt = tx.transmit(&psdu, mcs, ((seed as u8) & 0x7E) | 1);
    let mut buf = vec![Complex::ZERO; pad];
    buf.extend(backfi_dsp::fir::filter(taps, &pkt.samples));
    buf.extend(std::iter::repeat_n(Complex::ZERO, 160));
    let mut rng = SplitMix64::new(seed);
    add_noise(&mut rng, &mut buf, noise);
    if cfo_hz != 0.0 {
        apply_cfo(&mut buf, cfo_hz);
    }
    WifiReceiver::default()
        .receive(&buf)
        .map(|got| got.psdu == psdu)
        .unwrap_or(false)
}

const FLAT: &[Complex] = &[Complex::ONE];

#[test]
fn survives_cfo_up_to_100khz() {
    // 802.11 tolerates ±20 ppm at 2.4 GHz ≈ ±48 kHz per side; our receiver
    // should comfortably track ±100 kHz.
    for cfo in [-100e3, -40e3, 0.0, 40e3, 100e3] {
        assert!(
            loop_once(Mcs::Mbps12, 1e-3, cfo, 90, 4, FLAT),
            "failed at CFO {cfo}"
        );
    }
}

#[test]
fn per_is_monotone_in_snr() {
    // Sweep noise power at 24 Mbps; success must not *improve* as noise grows.
    let mut successes = Vec::new();
    for noise in [1e-4, 3e-2, 1e-1, 0.5] {
        let ok = (0..4)
            .filter(|&s| loop_once(Mcs::Mbps24, noise, 0.0, 50, s, FLAT))
            .count();
        successes.push(ok);
    }
    for w in successes.windows(2) {
        assert!(w[1] <= w[0], "PER not monotone: {successes:?}");
    }
    assert_eq!(successes[0], 4, "clean case must always decode");
    assert_eq!(
        *successes.last().unwrap(),
        0,
        "3 dB SNR must fail 16-QAM 1/2"
    );
}

#[test]
fn higher_mcs_needs_more_snr() {
    // At a noise level where 6 Mbps sails, 54 Mbps must struggle.
    let noise = 0.05; // ≈13 dB SNR
    let ok6 = (0..4)
        .filter(|&s| loop_once(Mcs::Mbps6, noise, 0.0, 60, s, FLAT))
        .count();
    let ok54 = (0..4)
        .filter(|&s| loop_once(Mcs::Mbps54, noise, 0.0, 60, s, FLAT))
        .count();
    assert_eq!(ok6, 4, "6 Mbps should survive 13 dB");
    assert_eq!(ok54, 0, "54 Mbps needs ~24 dB");
}

#[test]
fn arbitrary_start_offsets() {
    for pad in [0usize, 1, 7, 33, 250, 1111] {
        assert!(
            loop_once(Mcs::Mbps12, 1e-3, 0.0, pad, 9, FLAT),
            "failed at pad {pad}"
        );
    }
}

#[test]
fn deep_in_cp_multipath() {
    // An 8-tap channel (400 ns delay spread) still inside the 800 ns CP.
    let taps: Vec<Complex> = (0..8)
        .map(|i| Complex::from_polar(0.8f64.powi(i), i as f64 * 1.1))
        .collect();
    for seed in 0..3 {
        assert!(
            loop_once(Mcs::Mbps12, 1e-4, 0.0, 40, seed, &taps),
            "multipath failure at seed {seed}"
        );
    }
}

#[test]
fn back_to_back_packets_decode_first() {
    // Two packets separated by a SIFS — the receiver must lock the first.
    let tx = WifiTransmitter::new();
    let a: Vec<u8> = (0..100).map(|i| i as u8).collect();
    let b: Vec<u8> = (0..100).map(|i| (i ^ 0xFF) as u8).collect();
    let pa = tx.transmit(&a, Mcs::Mbps12, 0x5D);
    let pb = tx.transmit(&b, Mcs::Mbps12, 0x33);
    let mut buf = vec![Complex::ZERO; 64];
    buf.extend_from_slice(&pa.samples);
    buf.extend(std::iter::repeat_n(Complex::ZERO, 320));
    buf.extend_from_slice(&pb.samples);
    let mut rng = SplitMix64::new(1);
    add_noise(&mut rng, &mut buf, 1e-4);
    let rx = WifiReceiver::default();
    let got = rx.receive(&buf).expect("first packet");
    assert_eq!(got.psdu, a);
    // …and the second decodes from past the first.
    let got2 = rx
        .receive(&buf[got.start + pa.samples.len()..])
        .expect("second packet");
    assert_eq!(got2.psdu, b);
}
