//! Property-based tests of the 802.11 PHY: arbitrary PSDUs must survive the
//! TX→RX loop at every rate, and the frame layer must reject corruption.

use backfi_dsp::Complex;
use backfi_wifi::mac::{Frame, MacAddr};
use backfi_wifi::{Mcs, WifiReceiver, WifiTransmitter};
use bytes::Bytes;
use proptest::prelude::*;

fn any_mcs() -> impl Strategy<Value = Mcs> {
    (0usize..8).prop_map(|i| Mcs::ALL[i])
}

proptest! {
    // The loopback cases are heavier; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn clean_loopback_any_psdu(psdu in proptest::collection::vec(any::<u8>(), 1..400),
                               mcs in any_mcs(), seed in 1u8..=0x7F) {
        let tx = WifiTransmitter::new();
        let pkt = tx.transmit(&psdu, mcs, seed);
        let mut buf = vec![Complex::ZERO; 80];
        buf.extend_from_slice(&pkt.samples);
        buf.extend(std::iter::repeat(Complex::ZERO).take(120));
        let rx = WifiReceiver::default();
        let got = rx.receive(&buf).expect("clean loopback must decode");
        prop_assert_eq!(got.mcs, mcs);
        prop_assert_eq!(got.psdu, psdu);
    }

    #[test]
    fn signal_field_roundtrip(mcs in any_mcs(), len in 1usize..4096) {
        use backfi_wifi::signal_field::Signal;
        let s = Signal { mcs, length: len };
        prop_assert_eq!(Signal::from_bits(&s.to_bits()), Some(s));
    }

    #[test]
    fn mac_frame_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..256),
                           seq in 0u16..4096, d in any::<u16>(), s in any::<u16>()) {
        let f = Frame::Data {
            dst: MacAddr::local(d),
            src: MacAddr::local(s),
            seq,
            payload: Bytes::from(payload),
        };
        let psdu = f.to_psdu();
        prop_assert_eq!(Frame::from_psdu(&psdu), Some(f));
    }

    #[test]
    fn mac_rejects_any_corruption(payload in proptest::collection::vec(any::<u8>(), 0..64),
                                  byte in 0usize..96, flip in 1u8..=255) {
        let f = Frame::Data {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            seq: 7,
            payload: Bytes::from(payload),
        };
        let mut psdu = f.to_psdu();
        let i = byte % psdu.len();
        psdu[i] ^= flip;
        prop_assert_eq!(Frame::from_psdu(&psdu), None);
    }

    #[test]
    fn airtime_monotone_in_payload(mcs in any_mcs(), a in 1usize..2000, b in 1usize..2000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(mcs.packet_airtime_us(lo) <= mcs.packet_airtime_us(hi));
    }

    #[test]
    fn faster_mcs_shorter_airtime(len in 50usize..2000) {
        for pair in Mcs::ALL.windows(2) {
            prop_assert!(pair[1].packet_airtime_us(len) <= pair[0].packet_airtime_us(len));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn constellation_mapping_roundtrip(bits in proptest::collection::vec(any::<bool>(), 6..7),
                                       m in 0usize..4) {
        use backfi_wifi::modmap::{demap_hard, map_bits};
        use backfi_wifi::params::Modulation;
        let modulation = [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][m];
        let n = modulation.bits_per_subcarrier();
        let point = map_bits(modulation, &bits[..n]);
        prop_assert_eq!(demap_hard(modulation, point), bits[..n].to_vec());
    }
}
