//! Randomized tests of the 802.11 PHY: arbitrary PSDUs must survive the
//! TX→RX loop at every rate, and the frame layer must reject corruption.
//!
//! Formerly `proptest`-based; now driven by the in-tree [`SplitMix64`]
//! generator so the suite builds offline and every case is reproducible from
//! its loop index.

use backfi_dsp::rng::SplitMix64;
use backfi_dsp::Complex;
use backfi_wifi::mac::{Frame, MacAddr};
use backfi_wifi::{Mcs, WifiReceiver, WifiTransmitter};

fn byte_vec(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn any_mcs(rng: &mut SplitMix64) -> Mcs {
    Mcs::ALL[rng.below(8) as usize]
}

#[test]
fn clean_loopback_any_psdu() {
    // The loopback cases are heavier; keep the case count modest.
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x21_0000 + case);
        let n = 1 + rng.below(399) as usize;
        let psdu = byte_vec(&mut rng, n);
        let mcs = any_mcs(&mut rng);
        let seed = 1 + rng.below(0x7F) as u8;
        let tx = WifiTransmitter::new();
        let pkt = tx.transmit(&psdu, mcs, seed);
        let mut buf = vec![Complex::ZERO; 80];
        buf.extend_from_slice(&pkt.samples);
        buf.extend(std::iter::repeat_n(Complex::ZERO, 120));
        let rx = WifiReceiver::default();
        let got = rx.receive(&buf).expect("clean loopback must decode");
        assert_eq!(got.mcs, mcs);
        assert_eq!(got.psdu, psdu);
    }
}

#[test]
fn signal_field_roundtrip() {
    use backfi_wifi::signal_field::Signal;
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x22_0000 + case);
        let mcs = any_mcs(&mut rng);
        let len = 1 + rng.below(4095) as usize;
        let s = Signal { mcs, length: len };
        assert_eq!(Signal::from_bits(&s.to_bits()), Some(s));
    }
}

#[test]
fn mac_frame_roundtrip() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x23_0000 + case);
        let n = rng.below(256) as usize;
        let payload = byte_vec(&mut rng, n);
        let f = Frame::Data {
            dst: MacAddr::local(rng.next_u64() as u16),
            src: MacAddr::local(rng.next_u64() as u16),
            seq: rng.below(4096) as u16,
            payload,
        };
        let psdu = f.to_psdu();
        assert_eq!(Frame::from_psdu(&psdu), Some(f));
    }
}

#[test]
fn mac_rejects_any_corruption() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x24_0000 + case);
        let n = rng.below(64) as usize;
        let payload = byte_vec(&mut rng, n);
        let f = Frame::Data {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            seq: 7,
            payload,
        };
        let mut psdu = f.to_psdu();
        let i = rng.below(psdu.len() as u64) as usize;
        let flip = 1 + rng.below(255) as u8;
        psdu[i] ^= flip;
        assert_eq!(Frame::from_psdu(&psdu), None);
    }
}

#[test]
fn airtime_monotone_in_payload() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x25_0000 + case);
        let mcs = any_mcs(&mut rng);
        let a = 1 + rng.below(1999) as usize;
        let b = 1 + rng.below(1999) as usize;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(mcs.packet_airtime_us(lo) <= mcs.packet_airtime_us(hi));
    }
}

#[test]
fn faster_mcs_shorter_airtime() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x26_0000 + case);
        let len = 50 + rng.below(1950) as usize;
        for pair in Mcs::ALL.windows(2) {
            assert!(pair[1].packet_airtime_us(len) <= pair[0].packet_airtime_us(len));
        }
    }
}

#[test]
fn constellation_mapping_roundtrip() {
    use backfi_wifi::modmap::{demap_hard, map_bits};
    use backfi_wifi::params::Modulation;
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x27_0000 + case);
        let bits: Vec<bool> = (0..6).map(|_| rng.next_u64() & 1 == 1).collect();
        let modulation = [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ][rng.below(4) as usize];
        let n = modulation.bits_per_subcarrier();
        let point = map_bits(modulation, &bits[..n]);
        assert_eq!(demap_hard(modulation, point), bits[..n].to_vec());
    }
}
