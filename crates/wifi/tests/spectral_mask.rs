//! Spectral sanity of the simulated 802.11g waveform: the excitation the tag
//! rides on must look like real WiFi in the frequency domain.

use backfi_dsp::fft::fftshift;
use backfi_dsp::spectrum::{occupied_bandwidth, welch_psd};
use backfi_wifi::{Mcs, WifiTransmitter};

#[test]
fn ofdm_occupies_the_loaded_subcarriers() {
    let tx = WifiTransmitter::new();
    let pkt = tx.transmit(&vec![0xA7; 1500], Mcs::Mbps24, 0x5D);
    let psd = welch_psd(&pkt.samples, 64, 0.5);
    // 90 % of power inside ≈52/64 · 20 MHz = 16.25 MHz.
    let bw = occupied_bandwidth(&psd, 20e6, 0.90);
    assert!(bw > 12e6 && bw < 18e6, "occupied bandwidth {bw}");
}

#[test]
fn guard_bands_are_quiet() {
    let tx = WifiTransmitter::new();
    let pkt = tx.transmit(&vec![0x3C; 1500], Mcs::Mbps54, 0x11);
    let psd = fftshift(&welch_psd(&pkt.samples, 64, 0.5));
    // Centred spectrum: bins 0..4 and 60..64 are the deep guard band
    // (|k| > 28 of 32), loaded region is bins 6..58.
    let guard: f64 = psd[..4].iter().chain(psd[60..].iter()).sum::<f64>() / 8.0;
    let loaded: f64 = psd[8..56].iter().sum::<f64>() / 48.0;
    let ratio_db = 10.0 * (loaded / guard).log10();
    // Welch with a 64-bin Hann window leaks ~-15 dB into adjacent bins, so
    // the measurable null depth is bounded; 12 dB clearly separates loaded
    // from guard spectrum at this resolution.
    assert!(ratio_db > 12.0, "guard suppression only {ratio_db:.1} dB");
}

#[test]
fn all_rates_share_the_same_occupancy() {
    let tx = WifiTransmitter::new();
    let mut bws = Vec::new();
    for mcs in [Mcs::Mbps6, Mcs::Mbps24, Mcs::Mbps54] {
        let pkt = tx.transmit(&vec![1u8; 800], mcs, 0x2F);
        let psd = welch_psd(&pkt.samples, 64, 0.5);
        bws.push(occupied_bandwidth(&psd, 20e6, 0.9));
    }
    let spread = bws.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - bws.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 2e6, "occupancy should not depend on MCS: {bws:?}");
}
