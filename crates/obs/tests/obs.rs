//! Integration tests for the global recorder: enabled/disabled contract,
//! concurrent recording from `std::thread::scope` workers, and the
//! `OBS_*.json` manifest schema round-trip.
//!
//! Every test that flips the global enable state or reads whole-registry
//! snapshots serializes on one mutex — the recorder is process-global by
//! design, and the cargo test harness runs tests on parallel threads.

use backfi_obs as obs;
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_fast_path_records_nothing() {
    let _g = lock();
    obs::disable();
    obs::reset();
    {
        let _t = obs::span("t.disabled_span");
        obs::counter_add("t.disabled_counter", 5);
        obs::probe("t.disabled_probe", 1.0);
        obs::gauge_set("t.disabled_gauge", 2.0);
        obs::set_meta("t.disabled", "yes");
    }
    let snap = obs::snapshot();
    assert!(snap.span("t.disabled_span").is_none());
    assert_eq!(snap.counter("t.disabled_counter"), 0);
    assert!(snap.probe("t.disabled_probe").is_none());
    assert!(snap.gauges.is_empty());
    assert!(snap.meta.is_empty());
    assert!(obs::run_scope("t_disabled").is_none());
    assert!(obs::write_manifest("t_disabled").is_none());
}

#[test]
fn concurrent_span_recording_counts_deterministically() {
    let _g = lock();
    obs::enable();
    obs::reset();
    const WORKERS: usize = 8;
    const PER_WORKER: usize = 250;
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            scope.spawn(move || {
                for i in 0..PER_WORKER {
                    let _t = obs::span("t.concurrent_span");
                    obs::counter_add("t.concurrent_counter", 1);
                    obs::probe("t.concurrent_probe", (w * PER_WORKER + i) as f64);
                }
            });
        }
    });
    let snap = obs::snapshot();
    // Counts are deterministic regardless of interleaving; timings are not.
    let span = snap.span("t.concurrent_span").expect("span registered");
    assert_eq!(span.count, (WORKERS * PER_WORKER) as u64);
    assert!(span.p50_ns <= span.p90_ns && span.p90_ns <= span.p99_ns);
    assert!(span.p99_ns <= span.max_ns.max(1));
    assert_eq!(
        snap.counter("t.concurrent_counter"),
        (WORKERS * PER_WORKER) as u64
    );
    let probe = snap.probe("t.concurrent_probe").expect("probe registered");
    assert_eq!(probe.count, (WORKERS * PER_WORKER) as u64);
    assert_eq!(probe.min, 0.0);
    assert_eq!(probe.max, (WORKERS * PER_WORKER - 1) as f64);
    let n = (WORKERS * PER_WORKER) as f64;
    assert!((probe.mean - (n - 1.0) / 2.0).abs() < 1e-9);
    obs::disable();
}

#[test]
fn manifest_schema_round_trips() {
    let _g = lock();
    obs::enable();
    obs::reset();
    obs::set_meta("figure", "roundtrip");
    obs::set_meta("seed", "42");
    obs::record_span_ns("t.rt_stage_a", 1_000);
    obs::record_span_ns("t.rt_stage_a", 2_000);
    obs::record_span_ns("t.rt_stage_b", 50);
    obs::counter_add("t.rt_counter", 7);
    obs::gauge_set("t.rt_gauge", 2.5);
    obs::probe("t.rt_probe", -92.0);
    obs::probe("t.rt_probe", -88.0);

    let dir = std::env::temp_dir().join(format!("backfi_obs_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = obs::write_manifest_to(&dir, "round/trip").expect("manifest written");
    assert_eq!(
        path.file_name().unwrap().to_str().unwrap(),
        "OBS_round_trip.json"
    );

    let doc = std::fs::read_to_string(&path).unwrap();
    let v = obs::json::parse(&doc).expect("manifest is valid JSON");

    assert_eq!(v.get("run").unwrap().as_str(), Some("round/trip"));
    assert!(v.get("git").unwrap().as_str().is_some());
    let meta = v.get("meta").unwrap();
    assert_eq!(meta.get("figure").unwrap().as_str(), Some("roundtrip"));
    assert_eq!(meta.get("seed").unwrap().as_str(), Some("42"));

    let spans = v.get("spans").unwrap().as_arr().unwrap();
    let a = spans
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("t.rt_stage_a"))
        .expect("stage_a span in manifest");
    assert_eq!(a.get("count").unwrap().as_f64(), Some(2.0));
    for key in ["total_ms", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
        assert!(a.get(key).unwrap().as_f64().is_some(), "span field {key}");
    }
    assert_eq!(a.get("max_ns").unwrap().as_f64(), Some(2000.0));

    let counters = v.get("counters").unwrap().as_arr().unwrap();
    let c = counters
        .iter()
        .find(|c| c.get("name").unwrap().as_str() == Some("t.rt_counter"))
        .expect("counter in manifest");
    assert_eq!(c.get("value").unwrap().as_f64(), Some(7.0));

    let gauges = v.get("gauges").unwrap().as_arr().unwrap();
    let g = gauges
        .iter()
        .find(|g| g.get("name").unwrap().as_str() == Some("t.rt_gauge"))
        .expect("gauge in manifest");
    assert_eq!(g.get("value").unwrap().as_f64(), Some(2.5));

    let probes = v.get("probes").unwrap().as_arr().unwrap();
    let p = probes
        .iter()
        .find(|p| p.get("name").unwrap().as_str() == Some("t.rt_probe"))
        .expect("probe in manifest");
    assert_eq!(p.get("count").unwrap().as_f64(), Some(2.0));
    assert_eq!(p.get("mean").unwrap().as_f64(), Some(-90.0));
    assert_eq!(p.get("min").unwrap().as_f64(), Some(-92.0));
    assert_eq!(p.get("max").unwrap().as_f64(), Some(-88.0));

    std::fs::remove_dir_all(&dir).ok();
    obs::disable();
    obs::reset();
}

#[test]
fn run_scope_emits_manifest_on_drop() {
    let _g = lock();
    obs::enable();
    obs::reset();
    let dir = std::env::temp_dir().join(format!("backfi_obs_scope_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Route the default manifest dir through the env override.
    std::env::set_var("BACKFI_OBS_DIR", &dir);
    {
        let _scope = obs::run_scope("scope_test").expect("enabled");
        obs::counter_add("t.scope_counter", 1);
    }
    std::env::remove_var("BACKFI_OBS_DIR");
    let path = dir.join("OBS_scope_test.json");
    let doc = std::fs::read_to_string(&path).expect("manifest emitted on drop");
    let v = obs::json::parse(&doc).unwrap();
    // The run scope records its wall time as a gauge before serializing.
    let gauges = v.get("gauges").unwrap().as_arr().unwrap();
    assert!(gauges
        .iter()
        .any(|g| g.get("name").unwrap().as_str() == Some("run.wall_s")));
    std::fs::remove_dir_all(&dir).ok();
    obs::disable();
    obs::reset();
}

#[test]
fn macros_compile_and_record() {
    let _g = lock();
    obs::enable();
    obs::reset();
    {
        backfi_obs::obs_span!("t.macro_span");
        backfi_obs::obs_count!("t.macro_counter");
        backfi_obs::obs_count!("t.macro_counter", 2);
        backfi_obs::obs_probe!("t.macro_probe", 1.5);
    }
    let snap = obs::snapshot();
    assert_eq!(snap.span("t.macro_span").map(|s| s.count), Some(1));
    assert_eq!(snap.counter("t.macro_counter"), 3);
    assert_eq!(snap.probe("t.macro_probe").map(|p| p.count), Some(1));
    obs::disable();
    obs::reset();
}
