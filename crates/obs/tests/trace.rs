//! Integration tests for the event tracer: disabled-path inertness, the
//! span-guard/trace coupling, concurrent recording from scoped-thread
//! workers (no lost or duplicated events, per-thread timestamp order), and
//! byte-deterministic coordinator merge of worker event lists.
//!
//! The tracer (like the recorder) is process-global, and the cargo test
//! harness runs tests on parallel threads — every test here serializes on
//! one mutex and resets both layers around itself.

use backfi_obs as obs;
use backfi_obs::trace::{self, Event, Phase};
use std::borrow::Cow;
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn fresh() -> std::sync::MutexGuard<'static, ()> {
    let g = lock();
    obs::disable();
    trace::disable();
    obs::reset();
    trace::reset();
    g
}

#[test]
fn disabled_tracer_buffers_nothing() {
    let _g = fresh();
    {
        let _t = obs::span("tr.disabled_span");
        trace::instant("tr.disabled_instant");
        trace::begin("tr.disabled_slice");
        trace::end("tr.disabled_slice");
    }
    assert!(trace::local_events().is_empty());
    assert_eq!(trace::dropped(), 0);
    assert!(trace::write_trace_to(std::env::temp_dir().as_path(), "tr_disabled").is_none());
    assert!(obs::run_scope("tr_disabled").is_none());
}

#[test]
fn span_guard_emits_complete_event_even_with_recorder_off() {
    let _g = fresh();
    trace::enable();
    {
        let _t = obs::span("tr.guard_span");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let events = trace::local_events();
    let ev: Vec<_> = events
        .iter()
        .filter(|e| e.name == "tr.guard_span")
        .collect();
    assert_eq!(ev.len(), 1, "exactly one complete slice");
    assert_eq!(ev[0].phase, Phase::Complete);
    assert!(ev[0].dur_ns >= 1_000_000, "≥ 1 ms slept: {}", ev[0].dur_ns);
    // The recorder stayed off: the histogram side saw nothing.
    assert!(obs::snapshot().span("tr.guard_span").is_none());
    trace::reset();
    trace::disable();
}

#[test]
fn concurrent_workers_lose_and_duplicate_nothing() {
    let _g = fresh();
    trace::enable();
    const WORKERS: usize = 8;
    const ITERS: usize = 400;
    const NAMES: [&str; WORKERS] = [
        "tr.w0", "tr.w1", "tr.w2", "tr.w3", "tr.w4", "tr.w5", "tr.w6", "tr.w7",
    ];
    std::thread::scope(|scope| {
        for name in NAMES {
            scope.spawn(move || {
                for i in 0..ITERS {
                    trace::begin(name);
                    trace::instant_arg(name, "i", i as f64);
                    trace::end(name);
                }
            });
        }
    });
    let events = trace::local_events();
    assert_eq!(trace::dropped(), 0);
    assert_eq!(
        events.len(),
        WORKERS * ITERS * 3,
        "every event buffered once"
    );
    for name in NAMES {
        let own: Vec<&Event> = events.iter().filter(|e| e.name == name).collect();
        assert_eq!(own.len(), ITERS * 3, "{name}: no loss, no duplication");
        // One thread per name: its events sit on exactly one lane …
        let tid = own[0].tid;
        assert!(own.iter().all(|e| e.tid == tid), "{name}: single tid");
        // … and per-thread ring order is timestamp order (monotonic clock,
        // single writer): begin ≤ instant ≤ end per iteration, iteration
        // blocks in emit order.
        for pair in own.windows(2) {
            assert!(
                pair[0].ts_ns <= pair[1].ts_ns,
                "{name}: per-thread timestamps must be non-decreasing"
            );
        }
        let phases: Vec<Phase> = own.iter().map(|e| e.phase).collect();
        for block in phases.chunks(3) {
            assert_eq!(block, [Phase::Begin, Phase::Instant, Phase::End]);
        }
    }
    // The exported document is valid JSON under the hand-rolled parser.
    let doc = trace::trace_json("tr_stress");
    obs::json::validate(&doc).expect("stress timeline is valid JSON");
    trace::reset();
    trace::disable();
}

/// Synthetic worker shipment: what `sweep::service` decodes off the wire.
fn worker_events(tag: u64) -> Vec<Event> {
    (0..5u64)
        .map(|i| Event {
            name: Cow::Owned(format!("wk.job{tag}")),
            phase: if i % 2 == 0 {
                Phase::Complete
            } else {
                Phase::Instant
            },
            ts_ns: 1_000 * i + tag,
            dur_ns: if i % 2 == 0 { 500 } else { 0 },
            tid: (i % 2) as u32 + 1,
            arg: (i == 0).then(|| (Cow::Owned("cell".to_string()), tag as f64)),
        })
        .collect()
}

#[test]
fn coordinator_merge_is_byte_deterministic() {
    let _g = fresh();
    // Same worker payloads, merged in opposite arrival orders (shard threads
    // finish in any order) — the exported timeline must not care.
    trace::add_remote_events(1, 10_000, worker_events(1));
    trace::add_remote_events(2, 20_000, worker_events(2));
    let doc_a = trace::trace_json("tr_merge");
    trace::reset();
    trace::add_remote_events(2, 20_000, worker_events(2));
    trace::add_remote_events(1, 10_000, worker_events(1));
    let doc_b = trace::trace_json("tr_merge");
    trace::reset();
    assert_eq!(doc_a, doc_b, "merge output must be byte-identical");
    obs::json::validate(&doc_a).expect("merged timeline is valid JSON");
    // Worker lanes are sorted and labelled.
    let p1 = doc_a
        .find("\"args\":{\"name\":\"worker 1\"}")
        .expect("worker 1 lane");
    let p2 = doc_a
        .find("\"args\":{\"name\":\"worker 2\"}")
        .expect("worker 2 lane");
    assert!(p1 < p2, "lanes sorted by pid");
    // Offsets re-based the worker epochs: 10_000 + 1 ns → ts 10.001 µs.
    assert!(doc_a.contains("\"ts\":10.001"), "shard 1 offset applied");
    assert!(doc_a.contains("\"ts\":20.002"), "shard 2 offset applied");
}

#[test]
fn trace_file_round_trips_through_the_parser() {
    let _g = fresh();
    trace::enable();
    trace::instant("tr.file_marker");
    {
        let _t = obs::span("tr.file_span");
    }
    let dir = std::env::temp_dir().join(format!("backfi-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = trace::write_trace_to(&dir, "tr file!").expect("tracer on → file written");
    assert!(
        path.file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("TRACE_tr_file_"),
        "run name sanitized: {path:?}"
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = obs::json::parse(&text).expect("valid JSON on disk");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("tr.file_marker")
                && e.get("ph").and_then(|p| p.as_str()) == Some("i")
        }),
        "instant marker present"
    );
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("tr.file_span")
                && e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("dur").is_some()
        }),
        "complete slice present with dur"
    );
    let _ = std::fs::remove_dir_all(&dir);
    trace::reset();
    trace::disable();
}
