//! Event-level tracing: per-thread ring-buffered timelines exported as
//! Chrome `trace_event` JSON (`TRACE_<run>.json`, loadable in
//! `chrome://tracing` / Perfetto).
//!
//! Where the [`crate`] histograms answer *"how long does stage X take on
//! average?"*, the tracer answers *"where inside **this** trial did the time
//! go?"*: every [`crate::span`] guard doubles as a begin/end pair on the
//! active thread's timeline, and [`instant`] / [`begin`] / [`end`] mark
//! one-off events between spans.
//!
//! ## The disabled-by-default contract
//!
//! Tracing is **off** unless `BACKFI_TRACE=1` is set (or a harness calls
//! [`enable`], e.g. for a `--trace` flag). While disabled every tracing call
//! is one relaxed atomic load plus a branch — no clock reads, no locks, no
//! allocation — so hot-path instrumentation stays free (the kernels bench
//! asserts < 5 ns/call). Figure stdout is never touched in either mode.
//!
//! ## Model
//!
//! Events land in per-thread rings (an uncontended mutex over a bounded
//! `Vec`; overflow drops the event and counts it in [`dropped`]). Thread ids
//! are small dense integers assigned at first use. The exporter assembles
//! one JSON document from (a) this process's rings under `pid 0`
//! ("coordinator") and (b) any worker-shipped event lists merged in via
//! [`add_remote_events`] under `pid = shard + 1` — sorted by
//! `(pid, tid, ts, dur, name)` so the output is deterministic for a fixed
//! event set regardless of drain order.

use std::borrow::Cow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ------------------------------------------------------------ on/off gate ---

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Is the tracer on? First call resolves `BACKFI_TRACE` from the
/// environment; every later call is one relaxed atomic load and a branch.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("BACKFI_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if on {
        epoch(); // pin the timeline origin before the first event
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Turn the tracer on programmatically (e.g. for a `--trace` CLI flag).
pub fn enable() {
    epoch();
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// Turn the tracer off. Already-buffered events are kept until [`reset`].
pub fn disable() {
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

// ---------------------------------------------------------------- events ---

/// Chrome `trace_event` phase tags the tracer emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// `"B"` — begin of a duration slice.
    Begin,
    /// `"E"` — end of a duration slice.
    End,
    /// `"X"` — complete slice (`ts` + `dur`).
    Complete,
    /// `"i"` — instant marker.
    Instant,
}

impl Phase {
    /// The single-character phase string Chrome expects.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete => "X",
            Phase::Instant => "i",
        }
    }

    /// Wire tag for the worker protocol (stable across builds).
    pub fn wire_tag(self) -> u8 {
        match self {
            Phase::Begin => 1,
            Phase::End => 2,
            Phase::Complete => 3,
            Phase::Instant => 4,
        }
    }

    /// Inverse of [`Phase::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Phase> {
        match tag {
            1 => Some(Phase::Begin),
            2 => Some(Phase::End),
            3 => Some(Phase::Complete),
            4 => Some(Phase::Instant),
            _ => None,
        }
    }
}

/// One timeline event. Local hot-path events carry `&'static str` names
/// (zero allocation); events decoded off the worker wire carry owned names —
/// [`Cow`] covers both.
#[derive(Clone, Debug)]
pub struct Event {
    /// Event name (a span/stage name, by convention dot-separated).
    pub name: Cow<'static, str>,
    /// Phase tag.
    pub phase: Phase,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (`Complete` events only; 0 otherwise).
    pub dur_ns: u64,
    /// Dense per-process thread id.
    pub tid: u32,
    /// Optional single numeric argument, rendered into `"args"`.
    pub arg: Option<(Cow<'static, str>, f64)>,
}

// ----------------------------------------------------------- thread rings ---

/// Per-thread ring capacity. At ~100 events per trial this covers thousands
/// of trials per thread; overflow drops events (counted), never blocks.
pub const RING_CAP: usize = 1 << 18;

struct ThreadRing {
    tid: u32,
    events: Mutex<Vec<Event>>,
}

struct TraceState {
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    /// Events merged in from remote workers: `(pid, event)`.
    remote: Mutex<Vec<(u32, Event)>>,
}

fn state() -> &'static TraceState {
    static S: OnceLock<TraceState> = OnceLock::new();
    S.get_or_init(|| TraceState {
        rings: Mutex::new(Vec::new()),
        remote: Mutex::new(Vec::new()),
    })
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// The process trace epoch: `ts_ns = now − epoch`. Pinned on first use.
fn epoch() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static RING: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
        });
        state()
            .rings
            .lock()
            .expect("trace ring registry poisoned")
            .push(ring.clone());
        ring
    };
}

fn push(mut ev: Event) {
    RING.with(|ring| {
        ev.tid = ring.tid;
        let mut g = ring.events.lock().expect("trace ring poisoned");
        if g.len() < RING_CAP {
            g.push(ev);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Events dropped on ring overflow since the last [`reset`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

// -------------------------------------------------------------- recording ---

/// Mark an instant event on the current thread's timeline (no-op while
/// disabled).
#[inline]
pub fn instant(name: &'static str) {
    if enabled() {
        push(Event {
            name: Cow::Borrowed(name),
            phase: Phase::Instant,
            ts_ns: now_ns(),
            dur_ns: 0,
            tid: 0,
            arg: None,
        });
    }
}

/// [`instant`] with one numeric argument (shows in the Chrome event pane).
#[inline]
pub fn instant_arg(name: &'static str, key: &'static str, value: f64) {
    if enabled() {
        push(Event {
            name: Cow::Borrowed(name),
            phase: Phase::Instant,
            ts_ns: now_ns(),
            dur_ns: 0,
            tid: 0,
            arg: Some((Cow::Borrowed(key), value)),
        });
    }
}

/// Open a duration slice on the current thread's timeline (no-op while
/// disabled). Pair with [`end`] on the **same thread**; prefer
/// [`crate::span`] where a scope guard fits.
#[inline]
pub fn begin(name: &'static str) {
    if enabled() {
        push(Event {
            name: Cow::Borrowed(name),
            phase: Phase::Begin,
            ts_ns: now_ns(),
            dur_ns: 0,
            tid: 0,
            arg: None,
        });
    }
}

/// Close the innermost open slice named `name` (no-op while disabled).
#[inline]
pub fn end(name: &'static str) {
    if enabled() {
        push(Event {
            name: Cow::Borrowed(name),
            phase: Phase::End,
            ts_ns: now_ns(),
            dur_ns: 0,
            tid: 0,
            arg: None,
        });
    }
}

/// Record a complete slice whose start was captured as an [`Instant`]
/// (the [`crate::span`] drop path; callers own the enabled gate).
pub fn complete_from(name: &'static str, start: Instant, dur_ns: u64) {
    let ts_ns = start.duration_since(epoch()).as_nanos() as u64;
    push(Event {
        name: Cow::Borrowed(name),
        phase: Phase::Complete,
        ts_ns,
        dur_ns,
        tid: 0,
        arg: None,
    });
}

// ------------------------------------------------------- drain/merge APIs ---

/// Drain every local ring, returning all buffered events (remote-merged
/// events are untouched). A sweep worker calls this around each job to ship
/// exactly the events that job produced.
pub fn take_local_events() -> Vec<Event> {
    let rings = state().rings.lock().expect("trace ring registry poisoned");
    let mut out = Vec::new();
    for ring in rings.iter() {
        out.append(&mut ring.events.lock().expect("trace ring poisoned"));
    }
    out
}

/// Copy (without draining) every buffered local event, for tests.
pub fn local_events() -> Vec<Event> {
    let rings = state().rings.lock().expect("trace ring registry poisoned");
    let mut out = Vec::new();
    for ring in rings.iter() {
        out.extend(
            ring.events
                .lock()
                .expect("trace ring poisoned")
                .iter()
                .cloned(),
        );
    }
    out
}

/// Merge events shipped back by a remote worker under process lane `pid`
/// (the coordinator is `pid 0`; shard *s* conventionally lands on
/// `pid = s + 1`). `ts_offset_ns` re-bases the worker's epoch-relative
/// timestamps onto this process's timeline (pass the shard start time).
pub fn add_remote_events(pid: u32, ts_offset_ns: u64, events: Vec<Event>) {
    let mut g = state().remote.lock().expect("trace remote list poisoned");
    for mut ev in events {
        ev.ts_ns = ev.ts_ns.saturating_add(ts_offset_ns);
        g.push((pid, ev));
    }
}

/// Clear every buffered local and remote event and the dropped counter
/// (test isolation; the enabled state is left alone).
pub fn reset() {
    let s = state();
    for ring in s.rings.lock().expect("trace ring registry poisoned").iter() {
        ring.events.lock().expect("trace ring poisoned").clear();
    }
    s.remote.lock().expect("trace remote list poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------- export ---

/// Format nanoseconds as the microsecond `ts`/`dur` field Chrome expects,
/// with exact 3-decimal precision (`1234567 ns` → `"1234.567"`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn event_json(out: &mut String, pid: u32, ev: &Event) {
    use crate::json::{escape, num};
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        escape(&ev.name),
        ev.phase.as_str(),
        us(ev.ts_ns),
        pid,
        ev.tid,
    ));
    if ev.phase == Phase::Complete {
        out.push_str(&format!(",\"dur\":{}", us(ev.dur_ns)));
    }
    if ev.phase == Phase::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if let Some((k, v)) = &ev.arg {
        out.push_str(&format!(",\"args\":{{\"{}\":{}}}", escape(k), num(*v)));
    }
    out.push('}');
}

/// Serialize the merged timeline (local + remote events) as a Chrome
/// `trace_event` JSON document. Deterministic for a fixed event set: lanes
/// and events are emitted in sorted `(pid, tid, ts, dur, name, phase)`
/// order, so reruns that buffer the same events produce identical bytes.
pub fn trace_json(run: &str) -> String {
    use crate::json::escape;
    let mut all: Vec<(u32, Event)> = local_events().into_iter().map(|e| (0u32, e)).collect();
    all.extend(
        state()
            .remote
            .lock()
            .expect("trace remote list poisoned")
            .iter()
            .cloned(),
    );
    all.sort_by(|(pa, a), (pb, b)| {
        (*pa, a.tid, a.ts_ns, a.dur_ns, a.name.as_ref(), a.phase).cmp(&(
            *pb,
            b.tid,
            b.ts_ns,
            b.dur_ns,
            b.name.as_ref(),
            b.phase,
        ))
    });
    let mut pids: Vec<u32> = all.iter().map(|(p, _)| *p).collect();
    pids.dedup(); // sorted by pid first, so dedup removes all duplicates
    let mut s = String::new();
    s.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for &pid in &pids {
        let label = if pid == 0 {
            Cow::Borrowed("coordinator")
        } else {
            Cow::Owned(format!("worker {pid}"))
        };
        if !first {
            s.push_str(",\n");
        }
        first = false;
        s.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&label)
        ));
    }
    for (pid, ev) in &all {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        event_json(&mut s, *pid, ev);
    }
    s.push_str(&format!(
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"run\":\"{}\",\"dropped_events\":{}}}}}\n",
        escape(run),
        dropped()
    ));
    s
}

/// Write `TRACE_<run>.json` into `dir`. Returns the path written, or `None`
/// when the tracer is disabled. I/O failures are reported on stderr, never
/// panicked — telemetry must not kill a run.
pub fn write_trace_to(dir: &std::path::Path, run: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let path = dir.join(format!("TRACE_{}.json", crate::sanitize_run_name(run)));
    let doc = trace_json(run);
    match std::fs::write(&path, doc) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("# trace: failed to write {}: {e}", path.display());
            None
        }
    }
}

/// Write `TRACE_<run>.json` into [`crate::manifest_dir`].
pub fn write_trace(run: &str) -> Option<PathBuf> {
    write_trace_to(&crate::manifest_dir(), run)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled gate is process-global; these unit tests only exercise
    // gate-independent pieces. End-to-end enable/record/export sequencing
    // lives in tests/trace.rs behind a mutex.

    #[test]
    fn phase_wire_tags_round_trip() {
        for ph in [Phase::Begin, Phase::End, Phase::Complete, Phase::Instant] {
            assert_eq!(Phase::from_wire_tag(ph.wire_tag()), Some(ph));
        }
        assert_eq!(Phase::from_wire_tag(0), None);
        assert_eq!(Phase::from_wire_tag(9), None);
    }

    #[test]
    fn microsecond_formatting_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn remote_only_timeline_exports_sorted_lanes() {
        // Synthetic remote events exercise the exporter without touching the
        // global gate or this process's rings.
        let mk = |name: &str, ts: u64, tid: u32| Event {
            name: Cow::Owned(name.to_string()),
            phase: Phase::Complete,
            ts_ns: ts,
            dur_ns: 10,
            tid,
            arg: None,
        };
        add_remote_events(7, 0, vec![mk("b", 2000, 1)]);
        add_remote_events(3, 500, vec![mk("a", 1000, 2), mk("a", 0, 1)]);
        let doc = trace_json("unit_remote");
        crate::json::validate(&doc).expect("exporter emits valid JSON");
        let p3 = doc.find("\"pid\":3").expect("pid 3 lane present");
        let p7 = doc.find("\"pid\":7").expect("pid 7 lane present");
        assert!(p3 < p7, "lanes sorted by pid");
        assert!(doc.contains("worker 3") && doc.contains("worker 7"));
        // ts offsets re-based: 1000+500 → "1.500"
        assert!(doc.contains("\"ts\":1.500"), "offset applied:\n{doc}");
        reset();
        assert!(state().remote.lock().unwrap().is_empty());
    }
}
