//! Log-bucketed latency histogram (HDR-style, power-of-two buckets).
//!
//! Recording is wait-free: one `fetch_add` into the bucket whose index is
//! `floor(log2(v)) + 1`, plus count/sum/max bookkeeping — no allocation and
//! no locks, so sweep workers can hammer the same histogram concurrently.
//! Quantiles are approximate by construction (resolved to the bucket's upper
//! bound, i.e. within a factor of 2), which is plenty for stage-latency
//! attribution.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets. Bucket 0 holds exact zeros; bucket `i`
/// (`i ≥ 1`) holds values in `[2^(i-1), 2^i - 1]`. 64 buckets cover the full
/// `u64` nanosecond range (≈ 584 years).
pub const BUCKETS: usize = 64;

/// A concurrent log₂-bucketed histogram of `u64` samples (nanoseconds, by
/// convention).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: 0 for 0, else `floor(log2(v)) + 1`,
    /// clamped to the last bucket.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The largest value bucket `i` can hold (`u64::MAX` for the last).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            i if i >= BUCKETS - 1 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Raw count in bucket `i` (for tests and exporters).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// The non-zero `(bucket index, count)` pairs — the faithful wire
    /// representation for cross-process merge (quantiles resolved after an
    /// [`Histogram::absorb`] are exactly what a shared histogram would give).
    pub fn nonzero_buckets(&self) -> Vec<(u8, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then_some((i as u8, c))
            })
            .collect()
    }

    /// Merge another histogram's raw state (e.g. shipped from a sweep
    /// worker) into this one. Out-of-range bucket indices are clamped into
    /// the last bucket rather than dropped.
    pub fn absorb(&self, count: u64, sum: u64, max: u64, buckets: &[(u8, u64)]) {
        for &(i, c) in buckets {
            self.buckets[(i as usize).min(BUCKETS - 1)].fetch_add(c, Ordering::Relaxed);
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        self.max.fetch_max(max, Ordering::Relaxed);
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket the
    /// `ceil(q·count)`-th smallest sample falls in, capped at the observed
    /// max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.buckets[i].load(Ordering::Relaxed);
            if cum >= target {
                return Self::bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        // Every bucket i ≥ 1 covers exactly [2^(i-1), 2^i - 1].
        for i in 1..BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "high edge of bucket {i}");
            assert_eq!(Histogram::bucket_upper_bound(i), hi);
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counts_sum_max() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1111);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_count(0), 1); // the zero
        assert_eq!(h.bucket_count(3), 2); // the two fives ∈ [4,7]
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8,15]
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512,1023]
        }
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.9), 15);
        // p99 lands in the tail bucket; capped at the observed max.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }
}
