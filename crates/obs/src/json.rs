//! Minimal JSON emit/parse support for the run manifests.
//!
//! The offline build has no serde; the manifest writer hand-rolls its JSON
//! (like `backfi-bench`'s `BENCH_*.json`), and this module provides the
//! escaping helpers plus a small recursive-descent parser so tests and CI
//! can round-trip `OBS_*.json` without external tooling.

use std::collections::BTreeMap;

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/∞; clamp those to 0).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v:.6}")
        }
    } else {
        "0".to_string()
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order preserved as sorted map).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Check that `s` is one complete, well-formed JSON document. A thin veneer
/// over [`parse`] for callers (tests, CI) that only care about validity.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

/// Parse a JSON document. Errors carry a byte offset and a short reason.
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through byte-wise; find the
                    // char boundary from the original str slice.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest
                        .chars()
                        .next()
                        .expect("from_utf8 on a non-empty slice yields at least one char");
                    out.push(c);
                    self.i += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            out.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(1.0), "1.0");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(0.5), "0.500000");
    }
}
