//! # backfi-obs
//!
//! Zero-dependency structured observability for the BackFi pipeline: scoped
//! [`Span`] timers aggregated into log-bucketed latency histograms, named
//! counter/gauge registries, per-trial [`probe`] points for stage-level
//! physics, and machine-readable `OBS_<run>.json` run manifests.
//!
//! ## The disabled-by-default contract
//!
//! The global recorder is **off** unless `BACKFI_OBS=1` is set in the
//! environment (or a harness calls [`enable`], e.g. for a `--obs` flag).
//! While disabled, every instrumentation call — [`span`], [`counter_add`],
//! [`probe`], [`gauge_set`] and the `obs_*!` macros — compiles down to a
//! single relaxed atomic load plus a branch: no clock reads, no locks, no
//! allocation. Figure stdout is never touched in either mode; all obs output
//! goes to stderr and to the JSON manifest.
//!
//! ## Usage
//!
//! ```
//! backfi_obs::enable();
//! {
//!     let _t = backfi_obs::span("demo.stage");      // timed to end of scope
//!     backfi_obs::counter_add("demo.events", 1);
//!     backfi_obs::probe("demo.residual_db", -92.5); // streaming min/mean/max
//! }
//! let snap = backfi_obs::snapshot();
//! assert_eq!(snap.counter("demo.events"), 1);
//! backfi_obs::disable();
//! ```
//!
//! Span, counter and probe names are `&'static str` by design: the registry
//! interns nothing and the steady-state record path does a read-locked map
//! lookup plus wait-free atomics.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod hist;
pub mod json;
pub mod probe;
pub mod trace;

use hist::Histogram;
use probe::ProbeStats;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

// ------------------------------------------------------------ on/off gate ---

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Is the global recorder on? First call resolves `BACKFI_OBS` from the
/// environment; every later call is one relaxed atomic load and a branch.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("BACKFI_OBS")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Turn the recorder on programmatically (e.g. for a `--obs` CLI flag).
pub fn enable() {
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// Turn the recorder off. Already-recorded data is kept until [`reset`].
pub fn disable() {
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

// --------------------------------------------------------------- registry ---

struct Registry {
    spans: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    probes: RwLock<BTreeMap<&'static str, Arc<ProbeStats>>>,
    meta: Mutex<BTreeMap<String, String>>,
}

fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(|| Registry {
        spans: RwLock::new(BTreeMap::new()),
        counters: RwLock::new(BTreeMap::new()),
        gauges: RwLock::new(BTreeMap::new()),
        probes: RwLock::new(BTreeMap::new()),
        meta: Mutex::new(BTreeMap::new()),
    })
}

/// Look up (or lazily create) a named entry and hand it to `f`. The steady
/// state is a read lock + map lookup; the write lock is taken once per name.
fn with_entry<T: Default, R2>(
    map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
    name: &'static str,
    f: impl FnOnce(&T) -> R2,
) -> R2 {
    {
        let g = map.read().expect("obs registry poisoned");
        if let Some(v) = g.get(name) {
            return f(v);
        }
    }
    let arc = map
        .write()
        .expect("obs registry poisoned")
        .entry(name)
        .or_default()
        .clone();
    f(&arc)
}

// ------------------------------------------------------------------ spans ---

/// A scoped stage timer. Created by [`span`]; records its elapsed wall time
/// into the named latency histogram when dropped. When the recorder is
/// disabled the guard is inert (no clock read on either end).
#[must_use = "a span measures the scope it is bound to; bind it with `let _t = span(..)`"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Start a scoped timer for stage `name`.
///
/// The guard records into the latency histogram when the recorder is on,
/// **and** emits a complete slice on the current thread's [`trace`] timeline
/// when the tracer is on — one clock read either way. With both layers off
/// the guard is inert (two relaxed atomic loads, no clock read).
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: (enabled() || trace::enabled()).then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let ns = t0.elapsed().as_nanos() as u64;
            if enabled() {
                record_span_ns(self.name, ns);
            }
            if trace::enabled() {
                trace::complete_from(self.name, t0, ns);
            }
        }
    }
}

/// Record a pre-measured duration (nanoseconds) into stage `name`'s
/// histogram. Bypasses the enabled check — callers own that gate.
pub fn record_span_ns(name: &'static str, ns: u64) {
    with_entry(&registry().spans, name, |h| h.record(ns));
}

// ------------------------------------------------- counters/gauges/probes ---

/// Add `delta` to the named counter (no-op while disabled).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        with_entry(&registry().counters, name, |c| {
            c.fetch_add(delta, Ordering::Relaxed);
        });
    }
}

/// Current value of a counter (0 if never written).
pub fn counter_value(name: &str) -> u64 {
    registry()
        .counters
        .read()
        .expect("obs registry poisoned")
        .get(name)
        .map(|c| c.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Set the named gauge to `value` (last write wins; no-op while disabled).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() {
        with_entry(&registry().gauges, name, |g| {
            g.store(value.to_bits(), Ordering::Relaxed);
        });
    }
}

/// Current value of a gauge (0.0 if never written).
pub fn gauge_value(name: &str) -> f64 {
    registry()
        .gauges
        .read()
        .expect("obs registry poisoned")
        .get(name)
        .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
        .unwrap_or(0.0)
}

/// Record one sample at the named probe point (no-op while disabled;
/// non-finite samples are dropped by the summary). Guard *expensive* sample
/// computations with [`enabled`] at the call site — the argument is
/// evaluated either way.
#[inline]
pub fn probe(name: &'static str, value: f64) {
    if enabled() {
        with_entry(&registry().probes, name, |p| p.record(value));
    }
}

/// Attach a key → value pair to the next manifest (config hash, seed, …).
/// No-op while disabled.
pub fn set_meta(key: &str, value: &str) {
    if enabled() {
        registry()
            .meta
            .lock()
            .expect("obs meta poisoned")
            .insert(key.to_string(), value.to_string());
    }
}

/// Clear every histogram, counter, gauge, probe and meta entry (test
/// isolation; the enabled state is left alone).
pub fn reset() {
    let r = registry();
    r.spans.write().expect("obs registry poisoned").clear();
    r.counters.write().expect("obs registry poisoned").clear();
    r.gauges.write().expect("obs registry poisoned").clear();
    r.probes.write().expect("obs registry poisoned").clear();
    r.meta.lock().expect("obs meta poisoned").clear();
}

// ---------------------------------------------------- raw telemetry (wire) ---

/// The raw, mergeable state of one span histogram: exact bucket counts
/// rather than resolved quantiles, so a remote worker's histogram can be
/// absorbed into the coordinator's without precision loss (DESIGN.md §13).
#[derive(Clone, Debug)]
pub struct RawSpanHist {
    /// Stage name.
    pub name: String,
    /// Recorded samples.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub sum: u64,
    /// Largest recorded span, nanoseconds.
    pub max: u64,
    /// Non-zero `(bucket index, count)` pairs (see [`hist::Histogram`]).
    pub buckets: Vec<(u8, u64)>,
}

/// The raw, mergeable state of one probe point.
#[derive(Clone, Debug)]
pub struct RawProbe {
    /// Probe name.
    pub name: String,
    /// Finite samples recorded.
    pub count: u64,
    /// Sum of the samples.
    pub sum: f64,
    /// Smallest sample (+∞ when empty).
    pub min: f64,
    /// Largest sample (−∞ when empty).
    pub max: f64,
}

/// Dump every span histogram in raw bucket form, sorted by name.
pub fn span_dump() -> Vec<RawSpanHist> {
    registry()
        .spans
        .read()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, h)| RawSpanHist {
            name: name.to_string(),
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            buckets: h.nonzero_buckets(),
        })
        .collect()
}

/// Dump every counter as `(name, value)`, sorted by name.
pub fn counter_dump() -> Vec<(String, u64)> {
    registry()
        .counters
        .read()
        .expect("obs registry poisoned")
        .iter()
        .map(|(n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
        .collect()
}

/// Dump every probe point in raw form, sorted by name.
pub fn probe_dump() -> Vec<RawProbe> {
    registry()
        .probes
        .read()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, p)| RawProbe {
            name: name.to_string(),
            count: p.count(),
            sum: p.sum(),
            min: p.min(),
            max: p.max(),
        })
        .collect()
}

/// Intern a runtime name into the `&'static str` key space the registry
/// uses. The metric-name set is small and fixed, so the leak is bounded;
/// repeated names resolve to the same interned pointer.
fn intern(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let map = INTERNED.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut g = map.lock().expect("obs intern table poisoned");
    if let Some(&s) = g.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    g.insert(name.to_string(), leaked);
    leaked
}

/// Merge a remote counter delta into the local registry. Bypasses the
/// enabled gate — the caller (the sweep coordinator) owns the decision to
/// request and absorb remote telemetry.
pub fn absorb_counter(name: &str, delta: u64) {
    if delta > 0 {
        with_entry(&registry().counters, intern(name), |c| {
            c.fetch_add(delta, Ordering::Relaxed);
        });
    }
}

/// Merge a remote span histogram (raw bucket counts) into the local one.
/// Bypasses the enabled gate, like [`absorb_counter`].
pub fn absorb_span_hist(name: &str, count: u64, sum: u64, max: u64, buckets: &[(u8, u64)]) {
    if count > 0 {
        with_entry(&registry().spans, intern(name), |h| {
            h.absorb(count, sum, max, buckets)
        });
    }
}

/// Merge a remote probe summary into the local one. Bypasses the enabled
/// gate, like [`absorb_counter`].
pub fn absorb_probe(name: &str, count: u64, sum: f64, min: f64, max: f64) {
    if count > 0 {
        with_entry(&registry().probes, intern(name), |p| {
            p.absorb(count, sum, min, max)
        });
    }
}

// ----------------------------------------------------------------- macros ---

/// Time the rest of the enclosing scope as stage `$name`.
///
/// Expands to a `let` binding of a [`Span`] guard; while the recorder is
/// disabled this is one relaxed atomic load and a branch.
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        let _obs_span_guard = $crate::span($name);
    };
}

/// Increment a named counter (by 1, or by an explicit delta).
#[macro_export]
macro_rules! obs_count {
    ($name:expr) => {
        $crate::counter_add($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta)
    };
}

/// Record one sample at a named probe point.
#[macro_export]
macro_rules! obs_probe {
    ($name:expr, $value:expr) => {
        $crate::probe($name, $value)
    };
}

// --------------------------------------------------------------- snapshot ---

/// Aggregated view of one span histogram.
#[derive(Clone, Debug)]
pub struct SpanSummary {
    /// Stage name.
    pub name: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Approximate 50th percentile, nanoseconds.
    pub p50_ns: u64,
    /// Approximate 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// Approximate 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Largest recorded span, nanoseconds.
    pub max_ns: u64,
}

/// Aggregated view of one probe point.
#[derive(Clone, Debug)]
pub struct ProbeSummary {
    /// Probe name.
    pub name: String,
    /// Finite samples recorded.
    pub count: u64,
    /// Mean of the samples.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// A point-in-time copy of everything the recorder holds.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Span histograms, sorted by name.
    pub spans: Vec<SpanSummary>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Probe summaries, sorted by name.
    pub probes: Vec<ProbeSummary>,
    /// Manifest metadata, sorted by key.
    pub meta: Vec<(String, String)>,
}

impl Snapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Span summary by name.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Probe summary by name.
    pub fn probe(&self, name: &str) -> Option<&ProbeSummary> {
        self.probes.iter().find(|p| p.name == name)
    }
}

/// Copy out the recorder's current state (works whether or not the recorder
/// is currently enabled — data survives [`disable`] until [`reset`]).
pub fn snapshot() -> Snapshot {
    let r = registry();
    let spans = r
        .spans
        .read()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, h)| SpanSummary {
            name: name.to_string(),
            count: h.count(),
            total_ns: h.sum(),
            p50_ns: h.quantile(0.50),
            p90_ns: h.quantile(0.90),
            p99_ns: h.quantile(0.99),
            max_ns: h.max(),
        })
        .collect();
    let counters = r
        .counters
        .read()
        .expect("obs registry poisoned")
        .iter()
        .map(|(n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
        .collect();
    let gauges = r
        .gauges
        .read()
        .expect("obs registry poisoned")
        .iter()
        .map(|(n, g)| (n.to_string(), f64::from_bits(g.load(Ordering::Relaxed))))
        .collect();
    let probes = r
        .probes
        .read()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, p)| ProbeSummary {
            name: name.to_string(),
            count: p.count(),
            mean: p.mean(),
            min: p.min(),
            max: p.max(),
        })
        .collect();
    let meta = r
        .meta
        .lock()
        .expect("obs meta poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    Snapshot {
        spans,
        counters,
        gauges,
        probes,
        meta,
    }
}

// --------------------------------------------------------------- manifest ---

/// 64-bit FNV-1a — a stable, dependency-free config hash for manifests.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Where manifests land: `$BACKFI_OBS_DIR` if set, else the workspace root
/// (next to the `BENCH_*.json` perf-trajectory files).
pub fn manifest_dir() -> PathBuf {
    let dir = std::env::var_os("BACKFI_OBS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    // Resolve the `crates/obs/../..` hop so reported paths read cleanly.
    dir.canonicalize().unwrap_or(dir)
}

/// `git describe --always --dirty` at the workspace root, or `"unknown"`.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Serialize a snapshot as the manifest JSON document.
pub fn manifest_json(run: &str, snap: &Snapshot) -> String {
    use json::{escape, num};
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"run\": \"{}\",\n", escape(run)));
    s.push_str(&format!("  \"git\": \"{}\",\n", escape(&git_describe())));
    s.push_str("  \"meta\": {");
    for (i, (k, v)) in snap.meta.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\": \"{}\"", escape(k), escape(v)));
    }
    if !snap.meta.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("},\n  \"spans\": [");
    for (i, sp) in snap.spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"count\": {}, \"total_ms\": {}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            escape(&sp.name),
            sp.count,
            num(sp.total_ns as f64 * 1e-6),
            sp.p50_ns,
            sp.p90_ns,
            sp.p99_ns,
            sp.max_ns,
        ));
    }
    if !snap.spans.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"counters\": [");
    for (i, (n, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"value\": {v}}}",
            escape(n)
        ));
    }
    if !snap.counters.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"gauges\": [");
    for (i, (n, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"value\": {}}}",
            escape(n),
            num(*v)
        ));
    }
    if !snap.gauges.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"probes\": [");
    for (i, p) in snap.probes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"count\": {}, \"mean\": {}, \"min\": {}, \"max\": {}}}",
            escape(&p.name),
            p.count,
            num(p.mean),
            num(if p.count == 0 { 0.0 } else { p.min }),
            num(if p.count == 0 { 0.0 } else { p.max }),
        ));
    }
    if !snap.probes.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

pub(crate) fn sanitize_run_name(run: &str) -> String {
    run.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Write `OBS_<run>.json` into `dir` from the current snapshot. Returns the
/// path written, or `None` when the recorder is disabled. I/O failures are
/// reported on stderr, never panicked — telemetry must not kill a run.
pub fn write_manifest_to(dir: &std::path::Path, run: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let path = dir.join(format!("OBS_{}.json", sanitize_run_name(run)));
    let doc = manifest_json(run, &snapshot());
    match std::fs::write(&path, doc) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("# obs: failed to write {}: {e}", path.display());
            None
        }
    }
}

/// Write `OBS_<run>.json` into [`manifest_dir`]. See [`write_manifest_to`].
pub fn write_manifest(run: &str) -> Option<PathBuf> {
    write_manifest_to(&manifest_dir(), run)
}

/// Guard tying a run to its output files: emits `OBS_<run>.json` (recorder
/// on) and/or `TRACE_<run>.json` (tracer on), each with a one-line stderr
/// pointer, when dropped. Created by [`run_scope`].
pub struct RunScope {
    run: String,
    t0: Instant,
}

/// Open a run scope named `run`. Returns `None` while both the recorder and
/// the [`trace`] tracer are disabled, so holding the guard costs nothing in
/// the default mode.
pub fn run_scope(run: &str) -> Option<RunScope> {
    (enabled() || trace::enabled()).then(|| RunScope {
        run: run.to_string(),
        t0: Instant::now(),
    })
}

impl Drop for RunScope {
    fn drop(&mut self) {
        gauge_set("run.wall_s", self.t0.elapsed().as_secs_f64());
        if trace::dropped() > 0 {
            counter_add("trace.dropped_events", trace::dropped());
        }
        if let Some(path) = write_manifest(&self.run) {
            eprintln!("# obs manifest: {}", path.display());
        }
        if let Some(path) = trace::write_trace(&self.run) {
            eprintln!("# trace timeline: {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests here only touch uniquely named entries so they stay
    // independent of the integration tests and of each other; global
    // enable/disable sequencing lives in tests/obs.rs behind a mutex.

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a64(b"config-a"), fnv1a64(b"config-b"));
    }

    #[test]
    fn sanitized_run_names_are_path_safe() {
        assert_eq!(sanitize_run_name("fig11a"), "fig11a");
        assert_eq!(sanitize_run_name("a/b c!"), "a_b_c_");
    }

    #[test]
    fn manifest_json_of_empty_snapshot_parses() {
        let doc = manifest_json("unit_empty", &Snapshot::default());
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(v.get("run").unwrap().as_str(), Some("unit_empty"));
        assert_eq!(v.get("spans").unwrap().as_arr().unwrap().len(), 0);
    }
}
