//! Per-trial physics probes: lock-free streaming summaries of `f64` samples.
//!
//! A probe point captures a stage-level quantity every trial (residual power
//! after analog SIC, channel-estimate MSE, Viterbi corrected bits, …) and
//! keeps only a streaming summary — count / sum / min / max — updated with
//! CAS loops on the value's bit pattern, so sweep workers never contend on a
//! lock and nothing allocates after the probe's first registration.

use std::sync::atomic::{AtomicU64, Ordering};

/// Streaming summary of one probe point.
#[derive(Debug)]
pub struct ProbeStats {
    count: AtomicU64,
    /// `f64` bit pattern, accumulated with a CAS loop.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for ProbeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeStats {
    /// An empty probe summary.
    pub fn new() -> Self {
        ProbeStats {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one sample. Non-finite values are dropped (a probe fed
    /// `-inf` dB from a failed trial must not poison the whole summary).
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        // sum += v
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(x) => cur = x,
            }
        }
        // min/max: compare as f64 (bit order and float order disagree for
        // negative values), swap only while we'd improve the bound.
        let mut cur = self.min_bits.load(Ordering::Relaxed);
        while v < f64::from_bits(cur) {
            match self.min_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(x) => cur = x,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(x) => cur = x,
            }
        }
    }

    /// Merge another probe summary (e.g. shipped from a sweep worker) into
    /// this one: counts and sums add, min/max bounds widen. Non-finite
    /// pieces are ignored, mirroring [`ProbeStats::record`].
    pub fn absorb(&self, count: u64, sum: f64, min: f64, max: f64) {
        if count == 0 {
            return;
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        if sum.is_finite() {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + sum).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(x) => cur = x,
                }
            }
        }
        if min.is_finite() {
            let mut cur = self.min_bits.load(Ordering::Relaxed);
            while min < f64::from_bits(cur) {
                match self.min_bits.compare_exchange_weak(
                    cur,
                    min.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(x) => cur = x,
                }
            }
        }
        if max.is_finite() {
            let mut cur = self.max_bits.load(Ordering::Relaxed);
            while max > f64::from_bits(cur) {
                match self.max_bits.compare_exchange_weak(
                    cur,
                    max.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(x) => cur = x,
                }
            }
        }
    }

    /// Finite samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest recorded sample (+∞ when empty).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Largest recorded sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_count_mean_min_max() {
        let p = ProbeStats::new();
        for v in [3.0, -1.0, 5.0, 1.0] {
            p.record(v);
        }
        assert_eq!(p.count(), 4);
        assert!((p.mean() - 2.0).abs() < 1e-12);
        assert_eq!(p.min(), -1.0);
        assert_eq!(p.max(), 5.0);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let p = ProbeStats::new();
        p.record(f64::NEG_INFINITY);
        p.record(f64::NAN);
        p.record(2.5);
        assert_eq!(p.count(), 1);
        assert_eq!(p.min(), 2.5);
        assert_eq!(p.max(), 2.5);
    }

    #[test]
    fn negative_minima_beat_positive_ones() {
        // Bit-pattern ordering would get this wrong; f64 comparison must win.
        let p = ProbeStats::new();
        p.record(0.5);
        p.record(-0.5);
        assert_eq!(p.min(), -0.5);
        assert_eq!(p.max(), 0.5);
    }
}
