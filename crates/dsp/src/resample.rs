//! Integer-factor rate conversion.
//!
//! The tag's comparator makes one decision per microsecond (a 20× decimation
//! of the 20 MHz baseband) and the tag symbol clock runs at 0.01–2.5 MSPS, so
//! the workspace only needs integer up/down conversion, not arbitrary
//! resampling.

use crate::Complex;

/// Repeat each sample `factor` times (zero-order hold upsampling).
///
/// This is exactly what the tag's phase modulator does: it holds one
/// constellation phasor for a whole symbol period of baseband samples.
///
/// # Panics
/// Panics if `factor == 0`.
pub fn hold_upsample(x: &[Complex], factor: usize) -> Vec<Complex> {
    assert!(factor > 0, "hold_upsample: factor must be positive");
    let mut out = Vec::with_capacity(x.len() * factor);
    for &v in x {
        out.extend(std::iter::repeat_n(v, factor));
    }
    out
}

/// Keep every `factor`-th sample starting at `offset`.
///
/// # Panics
/// Panics if `factor == 0`.
pub fn decimate(x: &[Complex], factor: usize, offset: usize) -> Vec<Complex> {
    assert!(factor > 0, "decimate: factor must be positive");
    x.iter().skip(offset).step_by(factor).copied().collect()
}

/// Average consecutive groups of `factor` samples (boxcar-decimate); the final
/// partial group (if any) is dropped. This is the integrate-and-dump front end
/// of the tag's 1 µs energy comparator.
///
/// # Panics
/// Panics if `factor == 0`.
pub fn boxcar_decimate(x: &[Complex], factor: usize) -> Vec<Complex> {
    assert!(factor > 0, "boxcar_decimate: factor must be positive");
    x.chunks_exact(factor)
        .map(|c| c.iter().copied().sum::<Complex>() / factor as f64)
        .collect()
}

/// Real-valued boxcar decimation of a power/envelope sequence.
pub fn boxcar_decimate_real(x: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "boxcar_decimate_real: factor must be positive");
    x.chunks_exact(factor)
        .map(|c| c.iter().sum::<f64>() / factor as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_then_decimate_is_identity() {
        let x: Vec<Complex> = (0..10)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let up = hold_upsample(&x, 7);
        assert_eq!(up.len(), 70);
        let down = decimate(&up, 7, 0);
        assert_eq!(down, x);
        let down3 = decimate(&up, 7, 3); // any intra-symbol phase works for a hold
        assert_eq!(down3, x);
    }

    #[test]
    fn boxcar_averages() {
        let x = vec![
            Complex::real(1.0),
            Complex::real(3.0),
            Complex::real(5.0),
            Complex::real(7.0),
            Complex::real(100.0), // dropped: partial group
        ];
        let y = boxcar_decimate(&x, 2);
        assert_eq!(y.len(), 2);
        assert!((y[0].re - 2.0).abs() < 1e-12);
        assert!((y[1].re - 6.0).abs() < 1e-12);
    }

    #[test]
    fn boxcar_real() {
        let y = boxcar_decimate_real(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(y, vec![2.0, 5.0]);
    }
}
