//! FFT-accelerated linear convolution and cross-correlation (overlap-save).
//!
//! The direct kernels in [`crate::fir`] and [`crate::correlate`] cost
//! O(N·L) for an N-sample signal against an L-tap filter/template. For the
//! long products the simulator hits in its hot loops — multipath cascades,
//! canceller reconstruction over whole packets, preamble searches with 640+
//! sample templates — the overlap-save method here brings that down to
//! O(N·log B) for a block size B that depends only on L.
//!
//! These functions are **exact** linear convolutions (no circular wrap-around
//! artifacts): the FFT block size leaves `L − 1` samples of overlap between
//! blocks and the wrapped prefix of every block is discarded. They differ
//! from the direct forms only by floating-point summation order, bounded by
//! the usual FFT error growth of O(ε·log B); the equivalence test suite in
//! `tests/fast_kernel_equiv.rs` pins this below 1e-9 relative.
//!
//! Callers normally do not use this module directly: [`crate::fir::convolve`],
//! [`crate::fir::filter`] and [`crate::correlate::xcorr`] dispatch here
//! automatically above an empirically-tuned size crossover (constants in
//! [`crate::fir`]; measured numbers in DESIGN.md §8).

use crate::fft::FftPlan;
use crate::Complex;

/// Pick the overlap-save FFT block size for an `m`-tap kernel over an
/// `n`-sample signal.
///
/// The per-output cost of a block size `B` is `≈ 2·B·log2(B) / (B − m + 1)`
/// butterflies, minimized near `B ≈ 8·m`; for short signals a single block
/// covering the whole product avoids the overlap machinery entirely.
fn block_size(n: usize, m: usize) -> usize {
    let single = (n + m - 1).next_power_of_two();
    let blocked = (8 * m).next_power_of_two();
    blocked.min(single).max(64)
}

/// Full linear convolution of `x` and `h` via overlap-save,
/// `y[i] = Σ_k x[k]·h[i−k]`, output length `x.len() + h.len() − 1`.
///
/// Commutative in its arguments; the shorter one is treated as the kernel.
///
/// # Panics
/// Panics if either input is empty.
pub fn convolve_full_fft(x: &[Complex], h: &[Complex]) -> Vec<Complex> {
    assert!(
        !x.is_empty() && !h.is_empty(),
        "convolve_full_fft: empty input"
    );
    // Overlap-save wants the kernel to be the shorter operand.
    let (x, h) = if h.len() <= x.len() { (x, h) } else { (h, x) };
    let n = x.len();
    let m = h.len();
    let total = n + m - 1;

    let nfft = block_size(n, m);
    let step = nfft - (m - 1); // valid outputs per block
    let plan = FftPlan::cached(nfft);

    // Kernel spectrum, computed once per call.
    let mut hspec = vec![Complex::ZERO; nfft];
    hspec[..m].copy_from_slice(h);
    plan.forward(&mut hspec);

    let mut y = Vec::with_capacity(total);
    let mut buf = vec![Complex::ZERO; nfft];
    let mut out = 0usize; // next output index to produce
    while out < total {
        // The block's input window covers x[out−(m−1) .. out−(m−1)+nfft);
        // indices outside x are the zero-padding of linear convolution.
        let base = out as isize - (m as isize - 1);
        for (i, b) in buf.iter_mut().enumerate() {
            let xi = base + i as isize;
            *b = if (0..n as isize).contains(&xi) {
                x[xi as usize]
            } else {
                Complex::ZERO
            };
        }
        plan.forward(&mut buf);
        for (b, hs) in buf.iter_mut().zip(&hspec) {
            *b *= *hs;
        }
        plan.inverse(&mut buf);
        // The first m−1 outputs of each block are circularly wrapped: drop.
        let take = step.min(total - out);
        y.extend_from_slice(&buf[m - 1..m - 1 + take]);
        out += take;
    }
    y
}

/// Causal FIR application via overlap-save: the first `x.len()` samples of
/// the full convolution (the tail beyond the input length is dropped),
/// matching [`crate::fir::filter`].
///
/// # Panics
/// Panics if `h` is empty.
pub fn filter_fft(h: &[Complex], x: &[Complex]) -> Vec<Complex> {
    assert!(!h.is_empty(), "filter_fft: empty impulse response");
    if x.is_empty() {
        return Vec::new();
    }
    let mut y = convolve_full_fft(x, h);
    y.truncate(x.len());
    y
}

/// Sliding cross-correlation via overlap-save, matching
/// [`crate::correlate::xcorr`]: `r[k] = Σ_i x[k+i]·conj(t[i])` for every
/// full-overlap lag.
///
/// Cross-correlation is convolution with the conjugated, time-reversed
/// template; the full-overlap lags are exactly the `Valid` part of that
/// convolution.
///
/// # Panics
/// Panics if `template` is empty or longer than `x`.
pub fn xcorr_fft(x: &[Complex], template: &[Complex]) -> Vec<Complex> {
    assert!(!template.is_empty(), "xcorr_fft: empty template");
    assert!(
        template.len() <= x.len(),
        "xcorr_fft: template longer than signal"
    );
    let m = template.len();
    let kernel: Vec<Complex> = template.iter().rev().map(|t| t.conj()).collect();
    let full = convolve_full_fft(x, &kernel);
    full[m - 1..x.len()].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::xcorr;
    use crate::fir::{convolve, ConvMode};
    use crate::noise::cgauss_vec;
    use crate::rng::SplitMix64;

    fn assert_close(a: &[Complex], b: &[Complex], scale: f64) {
        assert_eq!(a.len(), b.len(), "length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < 1e-9 * scale, "index {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_direct_convolution_across_sizes() {
        let mut rng = SplitMix64::new(11);
        for &(n, m) in &[(1usize, 1usize), (5, 3), (64, 64), (300, 17), (1000, 129)] {
            let x = cgauss_vec(&mut rng, n, 1.0);
            let h = cgauss_vec(&mut rng, m, 1.0);
            let direct = convolve(&x, &h, ConvMode::Full);
            let fast = convolve_full_fft(&x, &h);
            assert_close(&fast, &direct, (n.min(m) as f64).sqrt() + 1.0);
        }
    }

    #[test]
    fn commutes() {
        let mut rng = SplitMix64::new(12);
        let a = cgauss_vec(&mut rng, 400, 1.0);
        let b = cgauss_vec(&mut rng, 37, 1.0);
        assert_close(&convolve_full_fft(&a, &b), &convolve_full_fft(&b, &a), 10.0);
    }

    #[test]
    fn filter_fft_truncates_like_filter() {
        let mut rng = SplitMix64::new(13);
        let x = cgauss_vec(&mut rng, 500, 1.0);
        let h = cgauss_vec(&mut rng, 40, 1.0);
        let fast = filter_fft(&h, &x);
        let direct = crate::fir::filter(&h, &x);
        assert_close(&fast, &direct, 10.0);
    }

    #[test]
    fn xcorr_fft_matches_direct() {
        let mut rng = SplitMix64::new(14);
        let x = cgauss_vec(&mut rng, 700, 1.0);
        let t = cgauss_vec(&mut rng, 81, 1.0);
        let fast = xcorr_fft(&x, &t);
        let direct = xcorr(&x, &t);
        assert_close(&fast, &direct, 10.0);
    }

    #[test]
    fn impulse_kernel_is_identity() {
        let mut rng = SplitMix64::new(15);
        let x = cgauss_vec(&mut rng, 333, 1.0);
        let y = convolve_full_fft(&x, &[Complex::ONE]);
        assert_close(&y, &x, 1.0);
    }
}
