//! Window functions.
//!
//! Used for spectral estimates in the tests/benches and for the windowed-sinc
//! filter design in [`crate::fir::lowpass_taps`].

use std::f64::consts::PI;

/// Rectangular window (all ones).
pub fn rectangular(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// Hann window.
pub fn hann(n: usize) -> Vec<f64> {
    periodic(n, |x| 0.5 - 0.5 * (2.0 * PI * x).cos())
}

/// Hamming window.
pub fn hamming(n: usize) -> Vec<f64> {
    periodic(n, |x| 0.54 - 0.46 * (2.0 * PI * x).cos())
}

/// Blackman window.
pub fn blackman(n: usize) -> Vec<f64> {
    periodic(n, |x| {
        0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos()
    })
}

fn periodic(n: usize, f: impl Fn(f64) -> f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    (0..n).map(|i| f(i as f64 / (n as f64 - 1.0))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_edges() {
        for n in [1usize, 2, 16, 64] {
            for w in [hann(n), hamming(n), blackman(n), rectangular(n)] {
                assert_eq!(w.len(), n);
                assert!(w.iter().all(|v| (-1e-12..=1.0 + 1e-12).contains(v)));
            }
        }
        // Hann endpoints are zero, peak is one (odd length)
        let w = hann(65);
        assert!(w[0].abs() < 1e-12 && w[64].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        for w in [hann(33), hamming(33), blackman(33)] {
            for i in 0..w.len() {
                assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(hann(0).is_empty());
        assert_eq!(hann(1), vec![1.0]);
    }
}
