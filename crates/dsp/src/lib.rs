//! # backfi-dsp
//!
//! Complex-baseband DSP primitives used throughout the BackFi reproduction.
//!
//! The BackFi system (SIGCOMM 2015) operates on 20 MHz complex baseband
//! samples. This crate provides the numeric substrate for every other crate in
//! the workspace:
//!
//! * [`Complex`] — complex arithmetic (the `num-complex` crate is not on the
//!   offline allowlist, so we implement it ourselves),
//! * [`fft`] — an iterative radix-2 FFT/IFFT for OFDM modulation, with a
//!   process-wide plan cache,
//! * [`fir`] — FIR filtering and convolution (channels, cancellers), with
//!   automatic FFT dispatch for long products,
//! * [`fastconv`] — the overlap-save kernels behind that dispatch,
//! * [`correlate`] — cross/auto-correlation and peak search (synchronization),
//! * [`window`] — window functions,
//! * [`stats`] — power/SNR/EVM measurement and dB conversions,
//! * [`noise`] — deterministic complex Gaussian noise generation,
//! * [`rng`] — the seedable SplitMix64 generator behind all randomness,
//! * [`resample`] — integer-factor rate conversion,
//! * [`spectrum`] — Welch PSD estimation (waveform sanity checks),
//! * [`simd`] — runtime feature detection and dispatched reductions,
//! * [`soa`] — structure-of-arrays planar kernels for the receive hot paths.
//!
//! Everything is `f64`: the simulation favours numerical fidelity over
//! throughput, and the wall-clock benches show the pipelines are still fast
//! enough to sweep the paper's full parameter space.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod complex;
pub mod correlate;
pub mod fastconv;
pub mod fft;
pub mod fir;
pub mod noise;
pub mod resample;
pub mod rng;
pub mod simd;
pub mod soa;
pub mod spectrum;
pub mod stats;
pub mod window;

pub use complex::Complex;

/// Shorthand for the sample type used across the workspace: `f64` complex.
pub type Cf64 = Complex;

/// The baseband sampling rate used by the whole system: 20 MHz (one sample
/// per 50 ns), matching a 20 MHz-wide 802.11g channel.
pub const SAMPLE_RATE_HZ: f64 = 20.0e6;

/// Duration of one baseband sample in seconds (50 ns at 20 MHz).
pub const SAMPLE_DT_S: f64 = 1.0 / SAMPLE_RATE_HZ;

/// Convert a duration in microseconds to a whole number of baseband samples.
///
/// ```
/// assert_eq!(backfi_dsp::us_to_samples(16.0), 320);
/// ```
pub fn us_to_samples(us: f64) -> usize {
    (us * 1e-6 * SAMPLE_RATE_HZ).round() as usize
}

/// Convert a number of baseband samples to microseconds.
///
/// ```
/// assert!((backfi_dsp::samples_to_us(320) - 16.0).abs() < 1e-9);
/// ```
pub fn samples_to_us(n: usize) -> f64 {
    n as f64 * SAMPLE_DT_S * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_time_roundtrip() {
        for us in [1.0, 4.0, 16.0, 32.0, 96.0, 1000.0] {
            let n = us_to_samples(us);
            assert!((samples_to_us(n) - us).abs() < 1e-6, "us={us}");
        }
    }

    #[test]
    fn twenty_megahertz() {
        assert_eq!(us_to_samples(1.0), 20);
        assert_eq!(us_to_samples(0.05), 1);
    }
}
