//! Correlation and peak-search primitives used for synchronization.
//!
//! Three consumers in the workspace:
//! * the tag's 16-bit wake-up preamble correlator (§4.1 of the paper),
//! * the reader's tag-preamble timing search (§4.3.1),
//! * the WiFi receiver's STF/LTF packet detection and symbol timing.

use crate::Complex;

/// Sliding cross-correlation of `x` against a shorter `template`:
/// `r[k] = Σ_i x[k+i]·conj(template[i])` for every full-overlap lag
/// (`x.len() − template.len() + 1` outputs).
///
/// Long templates (the reader's 640-sample tag-preamble search is the hot
/// case) dispatch to the overlap-save FFT path in [`crate::fastconv`] under
/// the same size crossover as [`crate::fir::convolve`]; short ones use the
/// direct form.
///
/// # Panics
/// Panics if `template` is empty or longer than `x`.
pub fn xcorr(x: &[Complex], template: &[Complex]) -> Vec<Complex> {
    assert!(!template.is_empty(), "xcorr: empty template");
    assert!(
        template.len() <= x.len(),
        "xcorr: template longer than signal"
    );
    if template.len() >= crate::fir::FFT_MIN_KERNEL
        && x.len().saturating_mul(template.len()) >= crate::fir::FFT_MIN_PRODUCT
    {
        crate::fastconv::xcorr_fft(x, template)
    } else if x.len().saturating_mul(template.len()) >= crate::fir::SOA_MIN_PRODUCT {
        // Bit-identical to xcorr_direct, vectorized planar form.
        crate::soa::xcorr_soa(x, template)
    } else {
        xcorr_direct(x, template)
    }
}

/// The direct O(n·m) form of [`xcorr`], bypassing the size dispatch.
/// Reference implementation for the equivalence tests and benches.
///
/// # Panics
/// Panics if `template` is empty or longer than `x`.
pub fn xcorr_direct(x: &[Complex], template: &[Complex]) -> Vec<Complex> {
    assert!(!template.is_empty(), "xcorr: empty template");
    assert!(
        template.len() <= x.len(),
        "xcorr: template longer than signal"
    );
    let lags = x.len() - template.len() + 1;
    let mut out = Vec::with_capacity(lags);
    for k in 0..lags {
        let mut acc = Complex::ZERO;
        for (i, &t) in template.iter().enumerate() {
            acc += x[k + i] * t.conj();
        }
        out.push(acc);
    }
    out
}

/// Normalized sliding cross-correlation: magnitude of [`xcorr`] divided by
/// the local energy of both windows, yielding values in `[0, 1]`.
///
/// A value near 1 at lag `k` means the signal window starting at `k` is a
/// scaled copy of the template — robust to unknown channel gain, which is why
/// the reader uses it to find the tag preamble.
pub fn xcorr_normalized(x: &[Complex], template: &[Complex]) -> Vec<f64> {
    let raw = xcorr(x, template);
    let temp_energy: f64 = template.iter().map(|v| v.norm_sqr()).sum();
    let mut out = Vec::with_capacity(raw.len());
    // running window energy of x
    let m = template.len();
    let mut win_energy: f64 = x[..m].iter().map(|v| v.norm_sqr()).sum();
    for (k, r) in raw.iter().enumerate() {
        let denom = (temp_energy * win_energy).sqrt();
        out.push(if denom > 0.0 { r.abs() / denom } else { 0.0 });
        if k + m < x.len() {
            win_energy += x[k + m].norm_sqr() - x[k].norm_sqr();
            if win_energy < 0.0 {
                win_energy = 0.0;
            }
        }
    }
    out
}

/// Lag-`d` autocorrelation metric used for 802.11 packet detection
/// (Schmidl–Cox style): `p[k] = Σ_{i<w} x[k+i]·conj(x[k+i+d])`, plus the
/// corresponding window energy `e[k] = Σ_{i<w} |x[k+i+d]|²`.
///
/// Returns `(p, e)` with `x.len() − d − w + 1` entries each.
///
/// # Panics
/// Panics if `x.len() < d + w`.
pub fn autocorr_metric(x: &[Complex], d: usize, w: usize) -> (Vec<Complex>, Vec<f64>) {
    assert!(x.len() >= d + w, "autocorr_metric: signal too short");
    let n = x.len() - d - w + 1;
    let mut p = Vec::with_capacity(n);
    let mut e = Vec::with_capacity(n);
    // initial window
    let mut acc = Complex::ZERO;
    let mut energy = 0.0;
    for i in 0..w {
        acc += x[i] * x[i + d].conj();
        energy += x[i + d].norm_sqr();
    }
    p.push(acc);
    e.push(energy);
    for k in 1..n {
        let out_i = k - 1;
        let in_i = k + w - 1;
        acc += x[in_i] * x[in_i + d].conj() - x[out_i] * x[out_i + d].conj();
        energy += x[in_i + d].norm_sqr() - x[out_i + d].norm_sqr();
        p.push(acc);
        e.push(energy.max(0.0));
    }
    (p, e)
}

/// Index and value of the maximum of a real-valued sequence.
/// Returns `None` for an empty slice; NaNs are skipped.
pub fn peak(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if v <= b => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Index of the first element that is at least `threshold`, or `None`.
pub fn first_above(x: &[f64], threshold: f64) -> Option<usize> {
    x.iter().position(|&v| v >= threshold)
}

/// Binary correlation of a ±1 bit sequence against a received bit window,
/// as done by the tag's digital preamble matcher: counts agreements minus
/// disagreements. Output range is `[-len, +len]`.
///
/// # Panics
/// Panics if lengths differ.
pub fn bit_correlation(rx: &[bool], pattern: &[bool]) -> i32 {
    assert_eq!(rx.len(), pattern.len(), "bit_correlation: length mismatch");
    rx.iter()
        .zip(pattern)
        .map(|(a, b)| if a == b { 1 } else { -1 })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xcorr_finds_embedded_template() {
        let template: Vec<Complex> = (0..8).map(|i| Complex::exp_j(i as f64 * 1.3)).collect();
        let mut x = vec![Complex::ZERO; 50];
        let offset = 17;
        for (i, &t) in template.iter().enumerate() {
            x[offset + i] = t * Complex::from_polar(2.0, 0.7); // unknown gain+phase
        }
        let r = xcorr_normalized(&x, &template);
        let (idx, val) = peak(&r).unwrap();
        assert_eq!(idx, offset);
        assert!(val > 0.999);
    }

    #[test]
    fn xcorr_raw_peak_value() {
        let t = vec![Complex::ONE; 4];
        let mut x = vec![Complex::ZERO; 10];
        x[3..7].fill(Complex::ONE);
        let r = xcorr(&x, &t);
        assert!((r[3] - Complex::real(4.0)).abs() < 1e-12);
    }

    #[test]
    fn normalized_bounded_by_one() {
        let t: Vec<Complex> = (0..5).map(|i| Complex::new(i as f64, 1.0)).collect();
        let x: Vec<Complex> = (0..40)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        for v in xcorr_normalized(&x, &t) {
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn autocorr_detects_repetition() {
        // Signal with period-16 repetition for 64 samples then noise-free zeros
        let base: Vec<Complex> = (0..16).map(|i| Complex::exp_j(i as f64)).collect();
        let mut x = Vec::new();
        for _ in 0..4 {
            x.extend_from_slice(&base);
        }
        x.extend(std::iter::repeat_n(Complex::ZERO, 32));
        let (p, e) = autocorr_metric(&x, 16, 16);
        // at k=0 the window and its d-shift are identical -> |p| == e
        assert!((p[0].abs() - e[0]).abs() < 1e-9);
        assert!(e[0] > 1.0);
    }

    #[test]
    fn peak_and_threshold_helpers() {
        let v = [0.1, 0.5, f64::NAN, 0.9, 0.2];
        assert_eq!(peak(&v), Some((3, 0.9)));
        assert_eq!(first_above(&v, 0.5), Some(1));
        assert_eq!(first_above(&v, 2.0), None);
        assert_eq!(peak(&[]), None);
    }

    #[test]
    fn bit_correlation_extremes() {
        let p = [true, false, true, true];
        assert_eq!(bit_correlation(&p, &p), 4);
        let inv: Vec<bool> = p.iter().map(|b| !b).collect();
        assert_eq!(bit_correlation(&inv, &p), -4);
    }
}
